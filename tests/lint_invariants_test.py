#!/usr/bin/env python3
"""Unit tests for scripts/lint_invariants.py.

Runs the linter over pass/fail fixtures (tests/lint/) and asserts that every
fail fixture fires exactly its rule and every pass fixture is clean. Finally
asserts the real src/ tree is clean — the same gate scripts/check.sh runs.

Usage: lint_invariants_test.py <repo_root>
"""

import os
import subprocess
import sys


def run_linter(repo, *paths):
    return subprocess.run(
        [sys.executable, os.path.join(repo, "scripts", "lint_invariants.py"),
         *paths],
        capture_output=True, text=True, cwd=repo)


def main():
    repo = sys.argv[1] if len(sys.argv) > 1 else "."
    fixtures = os.path.join(repo, "tests", "lint")
    cases = [
        ("fail_cache_key.h", "cache-key-governance"),
        ("service/fail_unordered_iter.cc", "unordered-iter"),
        ("whatif/fail_steady_clock.cc", "steady-clock"),
        ("whatif/fail_raw_atomic.cc", "raw-atomic-partition"),
        ("fail_void_cast.cc", "void-cast"),
    ]
    failures = []

    for rel, rule in cases:
        r = run_linter(repo, os.path.join(fixtures, rel))
        if r.returncode != 1:
            failures.append(f"{rel}: expected exit 1, got {r.returncode}\n"
                            f"{r.stdout}{r.stderr}")
        elif f"[{rule}]" not in r.stdout:
            failures.append(f"{rel}: expected rule [{rule}] to fire, got:\n"
                            f"{r.stdout}")
        else:
            print(f"ok: {rel} fires [{rule}]")

    for rel in ("pass_cache_key.h", "service/pass_unordered_iter.cc",
                "whatif/pass_steady_clock.cc", "whatif/pass_raw_atomic.cc",
                "pass_void_cast.cc"):
        r = run_linter(repo, os.path.join(fixtures, rel))
        if r.returncode != 0:
            failures.append(f"{rel}: expected clean, got exit "
                            f"{r.returncode}:\n{r.stdout}{r.stderr}")
        else:
            print(f"ok: {rel} clean")

    r = run_linter(repo, os.path.join(repo, "src"))
    if r.returncode != 0:
        failures.append(f"src/ must be lint-clean:\n{r.stdout}{r.stderr}")
    else:
        print("ok: src/ clean")

    if failures:
        print("\n".join(["FAIL:"] + failures))
        return 1
    print("lint_invariants_test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
