#include <gtest/gtest.h>

#include "baselines/ground_truth.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper::data {
namespace {

// ---------------------------------------------------------------------------
// German-Syn
// ---------------------------------------------------------------------------

TEST(GermanSynTest, ShapeAndSchema) {
  GermanOptions opt;
  opt.rows = 500;
  auto ds = MakeGermanSyn(opt).value();
  const Table& t = *ds.db.GetTable("German").value();
  EXPECT_EQ(t.num_rows(), 500u);
  EXPECT_TRUE(t.schema().Contains("Status"));
  EXPECT_TRUE(t.schema().Contains("Credit"));
  EXPECT_TRUE(ds.graph.Validate().ok());
  EXPECT_FALSE(ds.graph.HasCrossTupleEdges());
}

TEST(GermanSynTest, ValuesInDeclaredDomains) {
  GermanOptions opt;
  opt.rows = 300;
  auto ds = MakeGermanSyn(opt).value();
  const Table& t = *ds.db.GetTable("German").value();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int64_t status = t.At(r, 3).int_value();
    EXPECT_GE(status, 0);
    EXPECT_LE(status, 3);
    const int64_t credit = t.At(r, 8).int_value();
    EXPECT_TRUE(credit == 0 || credit == 1);
  }
}

TEST(GermanSynTest, DeterministicAcrossSeeds) {
  GermanOptions opt;
  opt.rows = 100;
  auto a = MakeGermanSyn(opt).value();
  auto b = MakeGermanSyn(opt).value();
  const Table& ta = *a.db.GetTable("German").value();
  const Table& tb = *b.db.GetTable("German").value();
  for (size_t r = 0; r < ta.num_rows(); ++r) {
    EXPECT_TRUE(ta.At(r, 8).Equals(tb.At(r, 8)));
  }
}

TEST(GermanSynTest, StatusRaisesCreditCausally) {
  GermanOptions opt;
  opt.rows = 3000;
  auto ds = MakeGermanSyn(opt).value();
  auto low = sql::ParseSql(
                 "Use German Update(Status) = 0 Output Avg(Post(Credit))")
                 .value();
  auto high = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Avg(Post(Credit))")
                  .value();
  double p_low =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *low.whatif).value();
  double p_high =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *high.whatif).value();
  EXPECT_GT(p_high, p_low + 0.15);  // status has a large causal effect
}

TEST(GermanSynTest, IndepOverestimatesStatusEffect) {
  // The Figure 10a phenomenon: Age confounds Status and Credit, so the
  // correlational estimate of do(Status=3) exceeds the causal one.
  GermanOptions opt;
  opt.rows = 20000;
  auto ds = MakeGermanSyn(opt).value();
  auto stmt = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Avg(Post(Credit))")
                  .value();
  const double truth =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *stmt.whatif).value();

  whatif::WhatIfOptions hyper_opt;
  hyper_opt.estimator = learn::EstimatorKind::kFrequency;
  auto hyper = whatif::WhatIfEngine(&ds.db, &ds.graph, hyper_opt)
                   .Run(*stmt.whatif)
                   .value();
  whatif::WhatIfOptions indep_opt = hyper_opt;
  indep_opt.backdoor = whatif::BackdoorMode::kUpdateOnly;
  auto indep = whatif::WhatIfEngine(&ds.db, &ds.graph, indep_opt)
                   .Run(*stmt.whatif)
                   .value();

  EXPECT_NEAR(hyper.value, truth, 0.04);        // HypeR tracks ground truth
  EXPECT_GT(indep.value, truth + 0.015);        // Indep inflated by Age
}

TEST(GermanSynTest, ContinuousVariantHasDoubleAmount) {
  GermanOptions opt;
  opt.rows = 200;
  opt.continuous_amount = true;
  auto ds = MakeGermanSyn(opt).value();
  const Table& t = *ds.db.GetTable("German").value();
  EXPECT_EQ(t.schema().attribute(7).type, ValueType::kDouble);
}

// ---------------------------------------------------------------------------
// Adult-Syn
// ---------------------------------------------------------------------------

TEST(AdultSynTest, MarriageDominatesIncome) {
  AdultOptions opt;
  opt.rows = 5000;
  auto ds = MakeAdultSyn(opt).value();
  auto married = sql::ParseSql(
                     "Use Adult Update(Marital) = 1 Output Avg(Post(Income))")
                     .value();
  auto single = sql::ParseSql(
                    "Use Adult Update(Marital) = 0 Output Avg(Post(Income))")
                    .value();
  const double p_married =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *married.whatif).value();
  const double p_single =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *single.whatif).value();
  // §5.3: ~38% when everyone is married, <9% when unmarried (we land at
  // roughly 38% / 10% — same order-of-magnitude gap).
  EXPECT_GT(p_married, 0.30);
  EXPECT_LT(p_single, 0.13);
}

TEST(AdultSynTest, WorkclassEffectIsSmall) {
  AdultOptions opt;
  opt.rows = 5000;
  auto ds = MakeAdultSyn(opt).value();
  auto lo = sql::ParseSql(
                "Use Adult Update(Workclass) = 0 Output Avg(Post(Income))")
                .value();
  auto hi = sql::ParseSql(
                "Use Adult Update(Workclass) = 2 Output Avg(Post(Income))")
                .value();
  const double gap =
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *hi.whatif).value() -
      baselines::GroundTruthWhatIf(ds.db, ds.scm, *lo.whatif).value();
  EXPECT_GT(gap, 0.0);
  EXPECT_LT(gap, 0.08);  // much smaller than the marital gap
}

// ---------------------------------------------------------------------------
// Amazon-Syn
// ---------------------------------------------------------------------------

TEST(AmazonSynTest, TwoRelationsLinkedByPid) {
  AmazonOptions opt;
  opt.products = 200;
  opt.reviews_per_product = 6;
  auto ds = MakeAmazonSyn(opt).value();
  const Table& product = *ds.db.GetTable("Product").value();
  const Table& review = *ds.db.GetTable("Review").value();
  EXPECT_EQ(product.num_rows(), 200u);
  EXPECT_GT(review.num_rows(), 200u);
  // The flat image has one row per review.
  EXPECT_EQ(ds.flat.GetTable("FlatReview").value()->num_rows(),
            review.num_rows());
}

TEST(AmazonSynTest, QualityCorrelatesWithPrice) {
  AmazonOptions opt;
  opt.products = 1000;
  auto ds = MakeAmazonSyn(opt).value();
  const Table& t = *ds.db.GetTable("Product").value();
  // Average laptop price for top-quality vs bottom-quality halves.
  double hi_sum = 0, lo_sum = 0;
  size_t hi_n = 0, lo_n = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (!t.At(r, 1).Equals(Value::String("Laptop"))) continue;
    const double quality = t.At(r, 4).double_value();
    const double price = t.At(r, 5).double_value();
    if (quality > 0.65) {
      hi_sum += price;
      ++hi_n;
    } else if (quality < 0.55) {
      lo_sum += price;
      ++lo_n;
    }
  }
  ASSERT_GT(hi_n, 10u);
  ASSERT_GT(lo_n, 10u);
  EXPECT_GT(hi_sum / hi_n, lo_sum / lo_n + 50);
}

TEST(AmazonSynTest, PriceCutRaisesRatings) {
  // §5.3: reducing laptop prices raises average ratings. Run the engine on
  // the joined view (Figure 4 shape).
  AmazonOptions opt;
  opt.products = 800;
  opt.reviews_per_product = 8;
  auto ds = MakeAmazonSyn(opt).value();
  const std::string base =
      "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, "
      "T1.Quality, Avg(T2.Rating) As Rtng From Product As T1, Review As T2 "
      "Where T1.PID = T2.PID Group By T1.PID, T1.Category, T1.Brand, "
      "T1.Price, T1.Quality) When Category = 'Laptop' ";
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 12;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  auto cheaper = engine.RunSql(base +
                               "Update(Price) = 0.6 * Pre(Price) "
                               "Output Avg(Post(Rtng)) "
                               "For Pre(Category) = 'Laptop'");
  ASSERT_TRUE(cheaper.ok()) << cheaper.status();
  auto pricier = engine.RunSql(base +
                               "Update(Price) = 1.4 * Pre(Price) "
                               "Output Avg(Post(Rtng)) "
                               "For Pre(Category) = 'Laptop'");
  ASSERT_TRUE(pricier.ok()) << pricier.status();
  EXPECT_GT(cheaper->value, pricier->value);
}

// ---------------------------------------------------------------------------
// Student-Syn
// ---------------------------------------------------------------------------

TEST(StudentSynTest, FiveCoursesPerStudent) {
  StudentOptions opt;
  opt.students = 150;
  auto ds = MakeStudentSyn(opt).value();
  EXPECT_EQ(ds.db.GetTable("Student").value()->num_rows(), 150u);
  EXPECT_EQ(ds.db.GetTable("Participation").value()->num_rows(), 750u);
  EXPECT_EQ(ds.flat.GetTable("FlatParticipation").value()->num_rows(), 750u);
  EXPECT_TRUE(ds.graph.HasCrossTupleEdges());  // SID links
}

TEST(StudentSynTest, AttendanceHasLargestTotalEffectOnGrade) {
  StudentOptions opt;
  opt.students = 800;
  auto ds = MakeStudentSyn(opt).value();
  // Ground-truth interventions on the flat image.
  auto effect = [&](const std::string& attr, const std::string& lo,
                    const std::string& hi) {
    auto q_lo = sql::ParseSql("Use FlatParticipation Update(" + attr +
                              ") = " + lo + " Output Avg(Post(Grade))")
                    .value();
    auto q_hi = sql::ParseSql("Use FlatParticipation Update(" + attr +
                              ") = " + hi + " Output Avg(Post(Grade))")
                    .value();
    return baselines::GroundTruthWhatIf(ds.flat, ds.scm, *q_hi.whatif)
               .value() -
           baselines::GroundTruthWhatIf(ds.flat, ds.scm, *q_lo.whatif)
               .value();
  };
  const double att = effect("Attendance", "40", "100");
  const double assign = effect("Assignment", "0", "100");
  const double disc = effect("Discussion", "0", "3");
  const double hand = effect("HandRaised", "0", "3");
  EXPECT_GT(att, 0);
  EXPECT_GT(assign, 0);
  // Attendance's total effect (direct + mediated) beats every single
  // participation attribute (§5.4).
  EXPECT_GT(att, assign);
  EXPECT_GT(att, disc);
  EXPECT_GT(att, hand);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, AllNamesResolve) {
  for (const char* name :
       {"german", "german-syn-20k", "german-syn-20k-continuous", "adult",
        "amazon", "student-syn"}) {
    auto ds = MakeByName(name, /*scale=*/0.05);
    ASSERT_TRUE(ds.ok()) << name << ": " << ds.status();
    EXPECT_GT(ds->db.TotalRows(), 0u) << name;
  }
}

TEST(RegistryTest, ScaleShrinksRows) {
  auto small = MakeByName("german-syn-20k", 0.05).value();
  auto large = MakeByName("german-syn-20k", 0.2).value();
  EXPECT_LT(small.db.TotalRows(), large.db.TotalRows());
}

TEST(RegistryTest, UnknownNameErrors) {
  EXPECT_EQ(MakeByName("nope").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hyper::data
