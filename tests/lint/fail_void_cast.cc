// Fixture: bare (void)-discarded call, no justification — must FIRE
// void-cast.
Status DoThing();

void Caller() {
  (void)DoThing();
}
