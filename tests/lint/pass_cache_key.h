// Fixture: clean cache-key struct — must NOT fire.
#pragma once

struct GoodPlanKey {
  std::string scope;
  std::string query_text;
  uint64_t options_fingerprint = 0;
};

// Governance types outside a *Key struct are fine.
struct RequestContext {
  QueryBudget budget;
  CancelToken cancel;
};
