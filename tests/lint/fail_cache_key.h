// Fixture: cache-key struct carrying governance state — must FIRE
// cache-key-governance.
#pragma once

struct BadPlanKey {
  std::string scope;
  QueryBudget budget;  // governance state in a shared key
};
