// Fixture: annotated iteration and ordered containers — must NOT fire.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int Sum() {
  std::unordered_map<std::string, int> counts;
  int total = 0;
  // lint:allow(unordered-iter): summation is order-independent
  for (const auto& [k, v] : counts) {
    total += v;
  }
  std::map<std::string, int> ordered;
  for (const auto& [k, v] : ordered) {
    total += v;
  }
  return total;
}
