// Fixture (under a serving dir name): unannotated range-for over an
// unordered container — must FIRE unordered-iter.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> Serve() {
  std::unordered_map<std::string, int> counts;
  std::vector<std::string> out;
  for (const auto& [k, v] : counts) {
    out.push_back(k);
  }
  return out;
}
