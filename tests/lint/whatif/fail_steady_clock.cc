// Fixture (under a hot dir name): naked clock read — must FIRE steady-clock.
#include <chrono>

double Evaluate() {
  double total = 0;
  for (int i = 0; i < 1000000; ++i) {
    auto now = std::chrono::steady_clock::now();
    (void)now;
    total += i;
  }
  return total;
}
