// Fixture (under a partition dir name): atomic RMW fold of partial results
// — must FIRE raw-atomic-partition.
#include <atomic>
#include <cstddef>

double FoldPartials(const double* block_sums, size_t n) {
  std::atomic<long> folded{0};
  for (size_t b = 0; b < n; ++b) {
    folded.fetch_add(static_cast<long>(block_sums[b]),
                     std::memory_order_relaxed);
  }
  return static_cast<double>(folded.load());
}
