// Fixture: per-block partials merged in block order (no atomics), plus an
// annotated diagnostics counter — must NOT fire.
#include <atomic>
#include <cstddef>
#include <vector>

double FoldPartials(const double* block_sums, size_t n,
                    std::atomic<size_t>* blocks_seen) {
  std::vector<double> partials(block_sums, block_sums + n);
  double total = 0.0;
  for (size_t b = 0; b < n; ++b) total += partials[b];
  blocks_seen->fetch_add(  // lint:allow(raw-atomic-partition): metrics counter, never folded into a served value
      n);
  return total;
}
