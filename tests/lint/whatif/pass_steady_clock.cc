// Fixture: annotated clock read — must NOT fire.
#include <chrono>

double StampOnce() {
  auto start = std::chrono::steady_clock::now();  // lint:allow(steady-clock): once per call, not per row
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start)  // lint:allow(steady-clock): once per call
      .count();
}
