// Fixture: justified discards and non-call casts — must NOT fire.
Status DoThing();

void Caller() {
  // Best-effort: failure here only delays cleanup, retried on next tick.
  (void)DoThing();
  (void)DoThing();  // same-line justification also accepted
  bool inserted = true;
  (void)inserted;
}
