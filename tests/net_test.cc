#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/governance.h"
#include "common/json.h"
#include "data/datasets.h"
#include "net/http.h"
#include "net/listener.h"
#include "net/query_handler.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"
#include "whatif/engine.h"

namespace hyper::net {
namespace {

// The serving contract under test: a request answered over HTTP (or the
// stdin line protocol, which shares the handler) must be BIT-FOR-BIT equal
// to the same request submitted in-process, and governance aborts must map
// onto the documented HTTP status codes.

// --- HttpParser: fragmentation, pipelining, limits -------------------------

std::string SimplePost(std::string_view path, std::string_view body,
                       std::string_view extra_headers = "") {
  std::string out = "POST ";
  out += path;
  out += " HTTP/1.1\r\nHost: test\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

TEST(HttpParserTest, ParsesCompleteRequestInOneFeed) {
  HttpParser parser;
  const std::string wire = SimplePost("/v1/whatif?pretty", "{\"a\":1}");
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/whatif?pretty");
  EXPECT_EQ(request.path(), "/v1/whatif");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.Header("host"), "test");
  EXPECT_EQ(request.body, "{\"a\":1}");
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpParserTest, ReassemblesByteByByteFragmentation) {
  // A request delivered one byte per read must parse identically to one
  // delivered whole.
  HttpParser parser;
  const std::string wire = SimplePost("/v1/query", "{\"sql\":\"x\"}");
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Feed(&wire[i], 1), HttpParser::State::kNeedMore)
        << "byte " << i;
  }
  ASSERT_EQ(parser.Feed(&wire[wire.size() - 1], 1),
            HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "{\"sql\":\"x\"}");
}

TEST(HttpParserTest, ResetRollsForwardToPipelinedRequest) {
  HttpParser parser;
  const std::string first = SimplePost("/one", "AA");
  const std::string second = SimplePost("/two", "BBBB");
  const std::string wire = first + second;
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/one");
  EXPECT_EQ(parser.request().body, "AA");
  EXPECT_TRUE(parser.has_buffered());
  // Reset re-parses the buffered leftover without another Feed.
  ASSERT_EQ(parser.Reset(), HttpParser::State::kComplete);
  EXPECT_EQ(parser.request().target, "/two");
  EXPECT_EQ(parser.request().body, "BBBB");
  EXPECT_FALSE(parser.has_buffered());
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  const std::string wire =
      SimplePost("/v1/whatif", "", "X-Pad: " + std::string(256, 'x') + "\r\n");
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  const std::string wire = SimplePost("/v1/whatif", std::string(64, 'x'));
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  HttpParser parser;
  const std::string wire = "NONSENSE\r\n\r\n";
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, UnknownHttpVersionIs505) {
  HttpParser parser;
  const std::string wire = "GET / HTTP/2.0\r\nHost: t\r\n\r\n";
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  HttpParser parser;
  const std::string wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, NonNumericContentLengthIs400) {
  HttpParser parser;
  const std::string wire = "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
  ASSERT_EQ(parser.Feed(wire.data(), wire.size()), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpRequestTest, KeepAliveFollowsHttpDefaults) {
  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_TRUE(request.keep_alive());
  request.headers = {{"connection", "close"}};
  EXPECT_FALSE(request.keep_alive());
  request.version = "HTTP/1.0";
  request.headers.clear();
  EXPECT_FALSE(request.keep_alive());
  request.headers = {{"connection", "keep-alive"}};
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpResponseTest, SerializeEmitsFramingHeaders) {
  HttpResponse response;
  response.status = 429;
  response.body = "{}";
  response.headers.push_back({"Retry-After", "1"});
  const std::string wire = SerializeResponse(response, /*keep_alive=*/false);
  EXPECT_EQ(wire.rfind("HTTP/1.1 429 Too Many Requests\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 6), "\r\n\r\n{}");
}

// --- JSON wire format -------------------------------------------------------

TEST(JsonTest, IntegralLexemesStayIntegral) {
  auto parsed = JsonValue::Parse("{\"a\":2,\"b\":2.0,\"c\":-7}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->Find("a")->is_integer());
  EXPECT_FALSE(parsed->Find("b")->is_integer());
  EXPECT_EQ(parsed->GetInt("c"), -7);
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  const double value = 2343.3026607348943;
  auto parsed = JsonValue::Parse("{\"value\":" + JsonDouble(value) + "}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetNumber("value"), value);  // ==, not NEAR
}

TEST(JsonTest, MalformedDocumentsAreRejected) {
  EXPECT_FALSE(JsonValue::Parse("{\"a\":").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("").ok());
}

// --- fault-injection hook (same pattern as governance_test) -----------------
// Parks governed requests at "whatif.eval.rows" so admission/deadline tests
// get a deterministic window in which a request provably occupies a slot.

std::mutex g_block_mu;
std::condition_variable g_block_cv;
bool g_block_enabled = false;
size_t g_blocked_now = 0;

Status BlockingHook(const char* checkpoint) {
  if (std::string_view(checkpoint) != "whatif.eval.rows") return Status::OK();
  std::unique_lock<std::mutex> lock(g_block_mu);
  if (!g_block_enabled) return Status::OK();
  ++g_blocked_now;
  g_block_cv.notify_all();
  g_block_cv.wait(lock, [] { return !g_block_enabled; });
  --g_blocked_now;
  return Status::OK();
}

void ArmBlockingHook() {
  std::lock_guard<std::mutex> lock(g_block_mu);
  g_block_enabled = true;
  governance::SetFaultHook(&BlockingHook);
}

// Waits until `n` requests are parked at the hook, or `abandoned` flips true
// (see AbandonAwait). The escape hatch matters for governed requests with a
// real deadline: under a sanitizer build the deadline can expire at a
// checkpoint *before* "whatif.eval.rows", so the request finishes without
// ever parking and an unconditional wait here would never return. Returns
// whether the requests actually parked.
bool AwaitBlockedRequests(size_t n,
                          const std::atomic<bool>* abandoned = nullptr) {
  std::unique_lock<std::mutex> lock(g_block_mu);
  g_block_cv.wait(lock, [&] {
    return g_blocked_now >= n ||
           (abandoned != nullptr &&
            abandoned->load(std::memory_order_relaxed));
  });
  return g_blocked_now >= n;
}

// Flips the waiter's give-up flag. The store happens under g_block_mu so it
// cannot land between the waiter's predicate check and its wait (the notify
// would be lost and the waiter would sleep forever).
void AbandonAwait(std::atomic<bool>* abandoned) {
  {
    std::lock_guard<std::mutex> lock(g_block_mu);
    abandoned->store(true, std::memory_order_relaxed);
  }
  g_block_cv.notify_all();
}

void ReleaseBlockedRequests() {
  std::lock_guard<std::mutex> lock(g_block_mu);
  g_block_enabled = false;
  g_block_cv.notify_all();
}

struct HookGuard {
  ~HookGuard() { governance::SetFaultHook(nullptr); }
};

// --- QueryHandler over a real service ---------------------------------------

constexpr const char* kQuery =
    "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)";

class QueryHandlerTest : public ::testing::Test {
 protected:
  QueryHandlerTest() {
    data::GermanOptions options;
    options.rows = 400;
    options.seed = 11;
    auto ds = data::MakeGermanSyn(options);
    EXPECT_TRUE(ds.ok()) << ds.status();
    db_ = std::move(ds->db);
    graph_ = std::move(ds->graph);
  }

  std::unique_ptr<service::ScenarioService> MakeService(
      size_t max_concurrent = 0, size_t max_queued = 0) {
    service::ServiceOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.num_threads = 1;
    options.whatif.num_threads = 1;
    options.max_concurrent_requests = max_concurrent;
    options.max_queued_requests = max_queued;
    options.metrics = &registry_;
    return std::make_unique<service::ScenarioService>(db_, graph_, options);
  }

  static HttpResponse Call(QueryHandler& handler, const char* method,
                           const std::string& path, const std::string& body) {
    HttpRequest request;
    request.method = method;
    request.target = path;
    request.version = "HTTP/1.1";
    request.body = body;
    HttpResponse response;
    handler.Handle(request, &response);
    return response;
  }

  static std::string HeaderValue(const HttpResponse& response,
                                 std::string_view name) {
    for (const auto& [key, value] : response.headers) {
      if (key == name) return value;
    }
    return "";
  }

  obs::MetricsRegistry registry_;
  Database db_;
  causal::CausalGraph graph_;
};

TEST_F(QueryHandlerTest, ServedWhatIfBitEqualsInProcessSubmit) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  const double reference = service->Submit({"main", kQuery, {}}).whatif.value;

  const std::string body =
      std::string("{\"scenario\":\"main\",\"sql\":\"") + kQuery + "\"}";
  const HttpResponse response = Call(handler, "POST", "/v1/whatif", body);
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = JsonValue::Parse(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("kind"), "whatif");
  EXPECT_EQ(parsed->GetNumber("value"), reference);  // bit-equality
  EXPECT_TRUE(parsed->GetBool("plan_cache_hit"));
  EXPECT_GT(parsed->GetInt("view_rows"), 0);

  // The stdin line protocol shares the handler, so it serves the identical
  // value through the identical JSON shape.
  auto line = JsonValue::Parse(handler.HandleLine("main", kQuery));
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(line->GetNumber("value"), reference);
}

TEST_F(QueryHandlerTest, BatchItemsBitEqualInProcessBatch) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);

  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int v = 0; v <= 2; ++v) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(v);
    interventions.push_back({spec});
  }
  auto reference = service->SubmitWhatIfBatch("main", kQuery, interventions);
  ASSERT_TRUE(reference.ok()) << reference.status();

  const std::string body =
      std::string("{\"scenario\":\"main\",\"sql\":\"") + kQuery +
      "\",\"interventions\":["
      "[{\"attribute\":\"Status\",\"value\":0}],"
      "[{\"attribute\":\"Status\",\"value\":1}],"
      "[{\"attribute\":\"Status\",\"value\":2}]]}";
  const HttpResponse response = Call(handler, "POST", "/v1/whatif/batch", body);
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = JsonValue::Parse(response.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* items = parsed->Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->array().size(), 3u);
  for (int v = 0; v <= 2; ++v) {
    const JsonValue& item = items->array()[v];
    ASSERT_EQ(item.GetString("status"), "ok") << item.Dump();
    ASSERT_TRUE((*reference)[v].ok());
    EXPECT_EQ(item.GetNumber("value"), (*reference)[v].result.value)
        << "Status <- " << v;
  }
}

TEST_F(QueryHandlerTest, ScenarioLifecycleOverHttp) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  const double main_value = service->Submit({"main", kQuery, {}}).whatif.value;

  EXPECT_EQ(Call(handler, "POST", "/v1/scenario",
                 "{\"action\":\"create\",\"name\":\"b1\"}")
                .status,
            200);
  EXPECT_EQ(Call(handler, "POST", "/v1/scenario",
                 "{\"action\":\"apply\",\"scenario\":\"b1\",\"sql\":"
                 "\"Use German When Savings = 0 Update(Credit) = 0 "
                 "Output Count(*)\"}")
                .status,
            200);

  // The branch sees the hypothetical; main is isolated.
  const std::string branch_body =
      std::string("{\"scenario\":\"b1\",\"sql\":\"") + kQuery + "\"}";
  EXPECT_EQ(Call(handler, "POST", "/v1/whatif", branch_body).status, 200);
  const std::string main_body =
      std::string("{\"scenario\":\"main\",\"sql\":\"") + kQuery + "\"}";
  auto main_after = JsonValue::Parse(
      Call(handler, "POST", "/v1/whatif", main_body).body);
  ASSERT_TRUE(main_after.ok());
  EXPECT_EQ(main_after->GetNumber("value"), main_value);

  auto list = JsonValue::Parse(Call(handler, "GET", "/v1/scenario", "").body);
  ASSERT_TRUE(list.ok()) << list.status();
  const JsonValue* scenarios = list->Find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  EXPECT_EQ(scenarios->array().size(), 2u);  // main + b1

  EXPECT_EQ(Call(handler, "POST", "/v1/scenario",
                 "{\"action\":\"drop\",\"name\":\"b1\"}")
                .status,
            200);
  // Creating a duplicate of a live branch is a 409.
  EXPECT_EQ(Call(handler, "POST", "/v1/scenario",
                 "{\"action\":\"create\",\"name\":\"main\"}")
                .status,
            409);
}

TEST_F(QueryHandlerTest, ClientMistakesMapInto4xx) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);

  EXPECT_EQ(Call(handler, "POST", "/v1/nosuch", "{}").status, 404);
  EXPECT_EQ(Call(handler, "GET", "/v1/whatif", "").status, 405);
  EXPECT_EQ(Call(handler, "POST", "/v1/whatif", "{not json").status, 400);
  EXPECT_EQ(Call(handler, "POST", "/v1/whatif", "{\"scenario\":\"main\"}")
                .status,
            400);  // missing sql
  // A how-to statement on the what-if route is a kind mismatch.
  const HttpResponse wrong_kind =
      Call(handler, "POST", "/v1/whatif",
           "{\"sql\":\"Use German HowToUpdate Status ToMaximize "
           "Count(Credit = 1)\"}");
  EXPECT_EQ(wrong_kind.status, 400) << wrong_kind.body;
  // Unknown scenario -> 404, and the error object carries the status code.
  const HttpResponse missing =
      Call(handler, "POST", "/v1/whatif",
           std::string("{\"scenario\":\"ghost\",\"sql\":\"") + kQuery + "\"}");
  EXPECT_EQ(missing.status, 404);
  auto parsed = JsonValue::Parse(missing.body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->GetInt("http_status"), 404);
}

TEST_F(QueryHandlerTest, ResourceBudgetAbortIs429WithRetryAfter) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  const HttpResponse response =
      Call(handler, "POST", "/v1/whatif",
           std::string("{\"max_rows\":1,\"sql\":\"") + kQuery + "\"}");
  EXPECT_EQ(response.status, 429) << response.body;
  EXPECT_EQ(HeaderValue(response, "Retry-After"), "1");
}

TEST_F(QueryHandlerTest, ExpiredDeadlineIs504) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  // Park the governed request at the eval checkpoint until its 1ms deadline
  // has provably expired, then release it into the deadline check.
  HookGuard guard;
  ArmBlockingHook();
  // `finished` lets the releaser stop waiting if the deadline fires at an
  // earlier checkpoint and the request never reaches the hook (slow
  // sanitizer builds) — the 504 is already decided in that case.
  std::atomic<bool> finished{false};
  std::thread releaser([&] {
    if (AwaitBlockedRequests(1, &finished)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ReleaseBlockedRequests();
  });
  const HttpResponse response =
      Call(handler, "POST", "/v1/whatif",
           std::string("{\"deadline_ms\":1,\"sql\":\"") + kQuery + "\"}");
  AbandonAwait(&finished);
  releaser.join();
  EXPECT_EQ(response.status, 504) << response.body;
}

TEST_F(QueryHandlerTest, ShedIs429AndDrainIs503) {
  auto service = MakeService(/*max_concurrent=*/1, /*max_queued=*/0);
  QueryHandler handler(service.get(), &registry_);

  // Occupy the only slot with a governed request parked at the hook.
  HookGuard guard;
  ArmBlockingHook();
  service::Request occupant;
  occupant.sql = kQuery;
  occupant.budget.max_rows_touched = 1000000000;
  service::Response occupant_response;
  std::thread background(
      [&] { occupant_response = service->Submit(occupant); });
  AwaitBlockedRequests(1);

  // Queue is full (capacity 0): the arrival is shed -> 429, same server.
  const std::string body = std::string("{\"sql\":\"") + kQuery + "\"}";
  const HttpResponse shed = Call(handler, "POST", "/v1/whatif", body);
  EXPECT_EQ(shed.status, 429) << shed.body;
  EXPECT_EQ(HeaderValue(shed, "Retry-After"), "1");

  ReleaseBlockedRequests();
  background.join();
  EXPECT_TRUE(occupant_response.ok()) << occupant_response.status;

  // Draining: rejected with 503 -> retry elsewhere; healthz flips too.
  service->BeginDrain();
  service->AwaitIdle();
  const HttpResponse drained = Call(handler, "POST", "/v1/whatif", body);
  EXPECT_EQ(drained.status, 503) << drained.body;
  EXPECT_EQ(HeaderValue(drained, "Retry-After"), "1");
  EXPECT_EQ(Call(handler, "GET", "/healthz", "").status, 503);
}

TEST_F(QueryHandlerTest, ObservabilityRoutesServeTheWorkload) {
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  const std::string body = std::string("{\"sql\":\"") + kQuery + "\"}";
  ASSERT_EQ(Call(handler, "POST", "/v1/whatif", body).status, 200);

  const HttpResponse metrics = Call(handler, "GET", "/metrics", "");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(metrics.body.find("hyper_http_requests_total{"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("hyper_request_seconds_bucket{"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "hyper_admission_total{outcome=\"admitted\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("hyper_cache_events_total{"), std::string::npos);

  const HttpResponse healthz = Call(handler, "GET", "/healthz", "");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"ok\""), std::string::npos);

  auto statusz = JsonValue::Parse(Call(handler, "GET", "/statusz", "").body);
  ASSERT_TRUE(statusz.ok()) << statusz.status();
  EXPECT_NE(statusz->Find("admission"), nullptr);
  EXPECT_NE(statusz->Find("cache"), nullptr);
  EXPECT_NE(statusz->Find("metrics"), nullptr);
}

// --- socket-level tests ------------------------------------------------------

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

struct WireResponse {
  bool ok = false;
  int status = 0;
  std::string headers;  // raw header block, lowercased
  std::string body;
};

/// Reads exactly one HTTP response (status line + headers + Content-Length
/// body) from `fd`, leaving the connection usable for keep-alive reuse.
WireResponse ReadResponse(int fd) {
  WireResponse out;
  std::string buf;
  size_t head_end = std::string::npos;
  char tmp[4096];
  while (true) {
    head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return out;
    buf.append(tmp, static_cast<size_t>(n));
  }
  std::string head = buf.substr(0, head_end + 4);
  for (char& c : head) c = static_cast<char>(std::tolower(c));
  out.headers = head;
  if (buf.rfind("HTTP/1.1 ", 0) == 0) {
    out.status = std::atoi(buf.c_str() + 9);
  }
  size_t content_length = 0;
  const size_t cl = head.find("content-length:");
  if (cl != std::string::npos) {
    content_length = static_cast<size_t>(
        std::strtoull(head.c_str() + cl + 15, nullptr, 10));
  }
  std::string body = buf.substr(head_end + 4);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) return out;
    body.append(tmp, static_cast<size_t>(n));
  }
  out.body = body.substr(0, content_length);
  out.ok = true;
  return out;
}

WireResponse RoundTrip(uint16_t port, const std::string& wire) {
  const int fd = ConnectTo(port);
  if (fd < 0) return {};
  WireResponse response;
  if (SendAll(fd, wire)) response = ReadResponse(fd);
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesOnEphemeralPortAndCountsRequests) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer server(options);
  ASSERT_TRUE(server
                  .Start([](const HttpRequest& request,
                            HttpResponse* response) {
                    response->body = "echo:" + request.body;
                  })
                  .ok());
  ASSERT_NE(server.port(), 0);

  const WireResponse response =
      RoundTrip(server.port(), SimplePost("/x", "hello"));
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "echo:hello");

  server.Stop();
  const HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_served, 1u);
  EXPECT_EQ(stats.parse_errors, 0u);
}

TEST(HttpServerTest, KeepAliveServesManyRequestsPerConnection) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  HttpServer server(options);
  std::atomic<int> handled{0};
  ASSERT_TRUE(server
                  .Start([&handled](const HttpRequest&, HttpResponse* out) {
                    out->body = std::to_string(++handled);
                  })
                  .ok());

  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(SendAll(fd, SimplePost("/x", "b")));
    const WireResponse response = ReadResponse(fd);
    ASSERT_TRUE(response.ok) << "request " << i;
    EXPECT_EQ(response.body, std::to_string(i));
    EXPECT_NE(response.headers.find("connection: keep-alive"),
              std::string::npos);
  }
  ::close(fd);
  server.Stop();
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  EXPECT_EQ(server.stats().requests_served, 3u);
}

TEST(HttpServerTest, FragmentedWritesReassembleOverTheWire) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  HttpServer server(options);
  ASSERT_TRUE(server
                  .Start([](const HttpRequest& request, HttpResponse* out) {
                    out->body = request.body;
                  })
                  .ok());
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const std::string wire = SimplePost("/x", "fragmented-body");
  for (size_t i = 0; i < wire.size(); i += 7) {
    ASSERT_TRUE(SendAll(fd, wire.substr(i, 7)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const WireResponse response = ReadResponse(fd);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.body, "fragmented-body");
  ::close(fd);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413OverTheWire) {
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.limits.max_body_bytes = 32;
  HttpServer server(options);
  ASSERT_TRUE(server
                  .Start([](const HttpRequest&, HttpResponse* out) {
                    out->body = "{}";
                  })
                  .ok());
  const WireResponse response =
      RoundTrip(server.port(), SimplePost("/x", std::string(128, 'x')));
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 413);
  EXPECT_NE(response.headers.find("connection: close"), std::string::npos);
  server.Stop();
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST_F(QueryHandlerTest, ConcurrentClientsBitEqualAcrossThreadCounts) {
  // The served answer must not depend on the number of handler threads or
  // on client interleaving: every response at every thread count carries
  // the identical value bits.
  auto service = MakeService();
  QueryHandler handler(service.get(), &registry_);
  const double reference = service->Submit({"main", kQuery, {}}).whatif.value;
  const std::string wire = SimplePost(
      "/v1/whatif", std::string("{\"sql\":\"") + kQuery + "\"}");

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    HttpServerOptions options;
    options.port = 0;
    options.num_threads = threads;
    HttpServer server(options);
    ASSERT_TRUE(server.Start(handler.AsHandler()).ok());

    constexpr size_t kClients = 4;
    std::vector<std::thread> clients;
    std::vector<WireResponse> responses(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        responses[c] = RoundTrip(server.port(), wire);
      });
    }
    for (auto& t : clients) t.join();
    server.Stop();

    for (size_t c = 0; c < kClients; ++c) {
      ASSERT_TRUE(responses[c].ok) << threads << " threads, client " << c;
      ASSERT_EQ(responses[c].status, 200) << responses[c].body;
      auto parsed = JsonValue::Parse(responses[c].body);
      ASSERT_TRUE(parsed.ok()) << parsed.status();
      EXPECT_EQ(parsed->GetNumber("value"), reference)
          << threads << " threads, client " << c;
    }
  }
}

}  // namespace
}  // namespace hyper::net
