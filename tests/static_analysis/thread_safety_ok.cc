// Positive fixture for the thread-safety negative-compile test: every access
// to the guarded member happens under the capability, so this translation
// unit must compile cleanly with -Werror=thread-safety. If it stops
// compiling, the annotation macros themselves regressed.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    hyper::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int balance() const {
    hyper::MutexLock lock(&mu_);
    return balance_;
  }

 private:
  mutable hyper::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
