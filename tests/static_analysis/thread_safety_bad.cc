// Negative fixture: reads and writes a GUARDED_BY member without holding the
// mutex. The thread_safety_compile test asserts this file FAILS to compile
// under -Werror=thread-safety — proving the gate actually rejects the bug
// class, not just that the macros expand.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mu_ not held
  }

  int balance() const {
    return balance_;  // BUG: mu_ not held
  }

 private:
  mutable hyper::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
