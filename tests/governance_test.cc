#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/governance.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "service/scenario_service.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

// The resource-governance contract under test:
//   - every abort (deadline, budget, cancellation, injected fault) returns
//     a typed Status (kDeadlineExceeded / kResourceExhausted / kCancelled /
//     kUnavailable) through normal unwinding — no hangs, no crashes;
//   - an abort never leaves a partial plan- or stage-cache entry, so a
//     retry after the abort answers BIT-FOR-BIT equal (==, not NEAR) to a
//     fresh ungoverned run at any thread count;
//   - admission control sheds and drains with kUnavailable and its
//     counters reconcile.

// --- fault-injection hooks -------------------------------------------------
// governance::FaultHook is a captureless function pointer, so the hooks
// communicate through file statics. Every test that installs a hook clears
// it via HookGuard before asserting bit-equality.

std::mutex g_hook_mu;
std::set<std::string> g_seen_checkpoints;  // filled by RecordingHook
std::string g_abort_checkpoint;            // AbortHook's target
std::atomic<size_t> g_abort_hits{0};

// Blocking-hook state: BlockingHook parks governed requests at
// "whatif.eval.rows" until ReleaseBlockedRequests(), giving admission tests
// a deterministic window in which a slot is provably occupied.
std::mutex g_block_mu;
std::condition_variable g_block_cv;
bool g_block_enabled = false;
size_t g_blocked_now = 0;

Status RecordingHook(const char* checkpoint) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  g_seen_checkpoints.insert(checkpoint);
  return Status::OK();
}

Status AbortHook(const char* checkpoint) {
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    if (g_abort_checkpoint != checkpoint) return Status::OK();
  }
  ++g_abort_hits;
  return Status::ResourceExhausted(std::string("injected fault at ") +
                                   checkpoint);
}

Status BlockingHook(const char* checkpoint) {
  if (std::string_view(checkpoint) != "whatif.eval.rows") return Status::OK();
  std::unique_lock<std::mutex> lock(g_block_mu);
  if (!g_block_enabled) return Status::OK();
  ++g_blocked_now;
  g_block_cv.notify_all();
  g_block_cv.wait(lock, [] { return !g_block_enabled; });
  --g_blocked_now;
  return Status::OK();
}

void ArmBlockingHook() {
  std::lock_guard<std::mutex> lock(g_block_mu);
  g_block_enabled = true;
  governance::SetFaultHook(&BlockingHook);
}

void AwaitBlockedRequests(size_t n) {
  std::unique_lock<std::mutex> lock(g_block_mu);
  g_block_cv.wait(lock, [n] { return g_blocked_now >= n; });
}

void ReleaseBlockedRequests() {
  std::lock_guard<std::mutex> lock(g_block_mu);
  g_block_enabled = false;
  g_block_cv.notify_all();
}

struct HookGuard {
  explicit HookGuard(governance::FaultHook hook) {
    governance::SetFaultHook(hook);
  }
  ~HookGuard() { governance::SetFaultHook(nullptr); }
};

// --- fixture ---------------------------------------------------------------

class GovernanceTest : public ::testing::Test {
 protected:
  GovernanceTest() {
    data::GermanOptions options;
    options.rows = 400;
    options.seed = 11;
    auto ds = data::MakeGermanSyn(options);
    EXPECT_TRUE(ds.ok()) << ds.status();
    db_ = std::move(ds->db);
    graph_ = std::move(ds->graph);
    governance::SetFaultHook(nullptr);  // never inherit a stale hook
  }
  ~GovernanceTest() override { governance::SetFaultHook(nullptr); }

  whatif::WhatIfOptions EngineOptions() const {
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    return options;
  }

  std::unique_ptr<service::ScenarioService> MakeService(
      size_t num_threads = 1, size_t max_concurrent = 0,
      size_t max_queued = 0) const {
    service::ServiceOptions options;
    options.whatif = EngineOptions();
    options.whatif.num_threads = num_threads;
    options.num_threads = num_threads;
    options.max_concurrent_requests = max_concurrent;
    options.max_queued_requests = max_queued;
    return std::make_unique<service::ScenarioService>(db_, graph_, options);
  }

  double FreshRun(const std::string& query) const {
    whatif::WhatIfEngine engine(&db_, &graph_, EngineOptions());
    auto result = engine.RunSql(query);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->value;
  }

  Database db_;
  causal::CausalGraph graph_;
};

constexpr const char* kQuery =
    "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)";
constexpr const char* kAvgQuery =
    "Use German When Age = 1 Update(Savings) = 2 Output Avg(Post(Credit))";
constexpr const char* kHowToQuery =
    "Use German HowToUpdate Status ToMaximize Count(Credit = 1)";

// --- primitives ------------------------------------------------------------

TEST(CancelTokenTest, DetachedTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.attached());
  token.RequestCancel();  // no-op, not a crash
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, CopiesShareOneFlag) {
  CancelToken token = CancelToken::Make();
  CancelToken copy = token;
  EXPECT_TRUE(copy.attached());
  EXPECT_FALSE(copy.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(ExecGuardTest, ArmReturnsNullWhenNothingToGovern) {
  EXPECT_TRUE(QueryBudget{}.Unlimited());
  EXPECT_EQ(nullptr, governance::ExecGuard::Arm({}, {}));

  QueryBudget budget;
  budget.max_rows_touched = 10;
  EXPECT_FALSE(budget.Unlimited());
  EXPECT_NE(nullptr, governance::ExecGuard::Arm(budget, {}));
  EXPECT_NE(nullptr, governance::ExecGuard::Arm({}, CancelToken::Make()));

  // An installed fault hook governs everything (tests need every request
  // to pass through its checkpoints).
  HookGuard hook(&RecordingHook);
  EXPECT_NE(nullptr, governance::ExecGuard::Arm({}, {}));
}

TEST(ExecGuardTest, TypedAbortsAndStickiness) {
  // Cancellation.
  CancelToken token = CancelToken::Make();
  governance::ExecGuardPtr guard = governance::ExecGuard::Arm({}, token);
  ASSERT_NE(nullptr, guard);
  EXPECT_TRUE(guard->Check("t.start").ok());
  token.RequestCancel();
  EXPECT_EQ(StatusCode::kCancelled, guard->Check("t.mid").code());

  // Deadline: already expired by the time of the first check.
  QueryBudget deadline;
  deadline.deadline_seconds = 1e-9;
  guard = governance::ExecGuard::Arm(deadline, {});
  ASSERT_NE(nullptr, guard);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(StatusCode::kDeadlineExceeded, guard->Check("t.late").code());
  // Sticky: the deadline never un-expires.
  EXPECT_EQ(StatusCode::kDeadlineExceeded, guard->Check("t.later").code());

  // Row meter: charging may overshoot within one stride, but the charge
  // that crosses the budget aborts.
  QueryBudget rows;
  rows.max_rows_touched = 10;
  guard = governance::ExecGuard::Arm(rows, {});
  ASSERT_NE(nullptr, guard);
  EXPECT_TRUE(guard->ChargeRows(10, "t.rows").ok());  // exactly at budget
  Status busted = guard->ChargeRows(1, "t.rows");
  EXPECT_EQ(StatusCode::kResourceExhausted, busted.code());
  EXPECT_NE(std::string::npos, busted.ToString().find("t.rows"))
      << "abort must name its checkpoint: " << busted;
  // Sticky: meters never decrease, so every later checkpoint agrees.
  EXPECT_EQ(StatusCode::kResourceExhausted, guard->Check("t.after").code());
  EXPECT_EQ(11u, guard->rows_touched());

  // Byte meter.
  QueryBudget bytes;
  bytes.max_bytes_materialized = 1024;
  guard = governance::ExecGuard::Arm(bytes, {});
  ASSERT_NE(nullptr, guard);
  EXPECT_TRUE(guard->ChargeBytes(1024, "t.bytes").ok());
  EXPECT_EQ(StatusCode::kResourceExhausted,
            guard->ChargeBytes(1, "t.bytes").code());
}

TEST(ExecGuardTest, LoopCheckStride) {
  governance::LoopCheck ungoverned(nullptr);
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(ungoverned.Due());

  QueryBudget rows;
  rows.max_rows_touched = 1;
  governance::ExecGuardPtr guard = governance::ExecGuard::Arm(rows, {});
  governance::LoopCheck check(guard.get(), /*stride=*/8);
  size_t due = 0;
  for (int i = 1; i <= 64; ++i) {
    if (check.Due()) {
      ++due;
      EXPECT_EQ(0, i % 8) << "due off-stride at tick " << i;
    }
  }
  EXPECT_EQ(8u, due);
}

TEST(ExecGuardTest, GovernanceAbortPredicate) {
  EXPECT_TRUE(governance::IsGovernanceAbort(Status::Cancelled("x")));
  EXPECT_TRUE(governance::IsGovernanceAbort(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(governance::IsGovernanceAbort(Status::ResourceExhausted("x")));
  EXPECT_TRUE(governance::IsGovernanceAbort(Status::Unavailable("x")));
  EXPECT_FALSE(governance::IsGovernanceAbort(Status::OK()));
  EXPECT_FALSE(governance::IsGovernanceAbort(Status::InvalidArgument("x")));
}

// --- engine-level aborts ---------------------------------------------------

TEST_F(GovernanceTest, EngineDeadlineAbortIsTyped) {
  whatif::WhatIfOptions options = EngineOptions();
  options.budget.deadline_seconds = 1e-9;
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, result.status().code())
      << result.status();
}

TEST_F(GovernanceTest, EngineRowBudgetAbortIsTyped) {
  whatif::WhatIfOptions options = EngineOptions();
  options.budget.max_rows_touched = 5;  // the 400-row view busts this
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, result.status().code())
      << result.status();
}

TEST_F(GovernanceTest, EngineByteBudgetAbortIsTyped) {
  whatif::WhatIfOptions options = EngineOptions();
  options.budget.max_bytes_materialized = 64;  // one column image busts this
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, result.status().code())
      << result.status();
}

TEST_F(GovernanceTest, EngineCancellationAbortIsTyped) {
  whatif::WhatIfOptions options = EngineOptions();
  options.cancel_token = CancelToken::Make();
  options.cancel_token.RequestCancel();  // cancelled before it starts
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kCancelled, result.status().code()) << result.status();
}

TEST_F(GovernanceTest, HowToBudgetAbortIsTyped) {
  howto::HowToOptions options;
  options.whatif = EngineOptions();
  options.whatif.budget.max_rows_touched = 5;
  howto::HowToEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kHowToQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, result.status().code())
      << result.status();
}

TEST_F(GovernanceTest, GenerousBudgetAnswersBitEqualToUngoverned) {
  const double expected = FreshRun(kQuery);
  whatif::WhatIfOptions options = EngineOptions();
  options.budget.deadline_seconds = 3600.0;
  options.budget.max_rows_touched = 1u << 30;
  options.budget.max_bytes_materialized = size_t{1} << 40;
  options.cancel_token = CancelToken::Make();  // attached, never tripped
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(kQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(expected, result->value);  // bit-equal, not NEAR
}

// --- service-level aborts and counters ------------------------------------

TEST_F(GovernanceTest, ServiceBudgetedSubmitAbortsTypedAndRetryIsBitEqual) {
  const double expected = FreshRun(kQuery);
  auto service = MakeService();

  service::Request governed{"main", kQuery, {}};
  governed.budget.deadline_seconds = 1e-9;
  service::Response bounded = service->Submit(governed);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, bounded.status.code())
      << bounded.status;

  // The abort left no partial cache entries: the ungoverned retry prepares
  // from scratch and answers bit-equal to a fresh engine run.
  service::Response retry = service->Submit({"main", kQuery, {}});
  ASSERT_TRUE(retry.ok()) << retry.status;
  EXPECT_EQ(expected, retry.whatif.value);

  service::GovernanceStats stats = service->governance_stats();
  EXPECT_EQ(2u, stats.admitted);
  EXPECT_EQ(2u, stats.completed);
  EXPECT_EQ(1u, stats.deadline_exceeded);
  EXPECT_EQ(0u, stats.in_flight);
}

TEST_F(GovernanceTest, ServiceCancellationCountsOutcome) {
  auto service = MakeService();
  service::Request request{"main", kQuery, {}};
  request.cancel_token = CancelToken::Make();
  request.cancel_token.RequestCancel();
  service::Response response = service->Submit(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kCancelled, response.status.code());
  EXPECT_EQ(1u, service->governance_stats().cancelled);
}

// --- admission control -----------------------------------------------------

TEST_F(GovernanceTest, AdmissionShedsWhenSlotsBusyAndNoQueue) {
  auto service = MakeService(/*num_threads=*/1, /*max_concurrent=*/1,
                             /*max_queued=*/0);
  ArmBlockingHook();

  // Occupy the single slot: the hook parks this request mid-evaluation.
  std::thread holder(
      [&] { EXPECT_TRUE(service->Submit({"main", kQuery, {}}).ok()); });
  AwaitBlockedRequests(1);
  EXPECT_EQ(1u, service->governance_stats().in_flight);

  // No queue configured: the second arrival is shed immediately.
  service::Response shed = service->Submit({"main", kQuery, {}});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(StatusCode::kUnavailable, shed.status.code()) << shed.status;

  ReleaseBlockedRequests();
  holder.join();
  governance::SetFaultHook(nullptr);

  service::GovernanceStats stats = service->governance_stats();
  EXPECT_EQ(1u, stats.shed);
  EXPECT_EQ(1u, stats.admitted);
  EXPECT_EQ(1u, stats.completed);
  EXPECT_EQ(0u, stats.in_flight);
}

TEST_F(GovernanceTest, AdmissionQueuesUpToLimitThenSheds) {
  auto service = MakeService(/*num_threads=*/1, /*max_concurrent=*/1,
                             /*max_queued=*/1);
  ArmBlockingHook();

  std::thread holder(
      [&] { EXPECT_TRUE(service->Submit({"main", kQuery, {}}).ok()); });
  AwaitBlockedRequests(1);

  // Second request queues (observable via the queued_now gauge)...
  std::thread waiter(
      [&] { EXPECT_TRUE(service->Submit({"main", kQuery, {}}).ok()); });
  while (service->governance_stats().queued_now < 1) {
    std::this_thread::yield();
  }

  // ...and with the queue full, a third is shed.
  service::Response shed = service->Submit({"main", kQuery, {}});
  EXPECT_EQ(StatusCode::kUnavailable, shed.status.code()) << shed.status;

  // Release: the holder finishes (the hook no longer parks), the waiter
  // takes the freed slot and runs to completion.
  ReleaseBlockedRequests();
  holder.join();
  waiter.join();
  governance::SetFaultHook(nullptr);

  service::GovernanceStats stats = service->governance_stats();
  EXPECT_EQ(2u, stats.admitted);
  EXPECT_EQ(1u, stats.queued);  // the waiter got a slot only after waiting
  EXPECT_EQ(1u, stats.shed);
  EXPECT_EQ(2u, stats.completed);
  EXPECT_EQ(0u, stats.queued_now);
}

TEST_F(GovernanceTest, DrainRejectsNewAndQueuedRequests) {
  auto service = MakeService(/*num_threads=*/1, /*max_concurrent=*/1,
                             /*max_queued=*/4);
  ArmBlockingHook();

  std::thread holder(
      [&] { EXPECT_TRUE(service->Submit({"main", kQuery, {}}).ok()); });
  AwaitBlockedRequests(1);

  service::Response queued_response;
  std::thread waiter(
      [&] { queued_response = service->Submit({"main", kQuery, {}}); });
  while (service->governance_stats().queued_now < 1) {
    std::this_thread::yield();
  }

  // Drain: the queued request is rejected without running; the in-flight
  // holder finishes normally; brand-new arrivals bounce immediately.
  service->BeginDrain();
  EXPECT_TRUE(service->draining());
  waiter.join();
  EXPECT_EQ(StatusCode::kUnavailable, queued_response.status.code())
      << queued_response.status;

  service::Response late = service->Submit({"main", kQuery, {}});
  EXPECT_EQ(StatusCode::kUnavailable, late.status.code());

  ReleaseBlockedRequests();
  holder.join();
  governance::SetFaultHook(nullptr);
  service->AwaitIdle();

  service::GovernanceStats stats = service->governance_stats();
  EXPECT_EQ(1u, stats.admitted);
  EXPECT_EQ(2u, stats.rejected_draining);
  EXPECT_EQ(1u, stats.completed);
  EXPECT_EQ(0u, stats.in_flight);
  EXPECT_EQ(0u, stats.queued_now);
  EXPECT_TRUE(stats.draining);
}

// --- fault-injection matrix ------------------------------------------------

// The full workload mix: cold + warm what-ifs, an Avg(Post(...)), a
// forced row-interpreter run, a how-to scoring pass, and a what-if batch
// sweep — together they visit every governance checkpoint in the engine.
std::vector<service::Response> RunWorkload(service::ScenarioService& service) {
  std::vector<service::Response> responses;
  responses.push_back(service.Submit({"main", kQuery, {}}));
  responses.push_back(service.Submit({"main", kQuery, {}}));  // warm
  responses.push_back(service.Submit({"main", kAvgQuery, {}}));
  whatif::WhatIfOptions row_options;
  row_options.estimator = learn::EstimatorKind::kFrequency;
  row_options.use_columnar = false;  // exercises the whatif.run_rows path
  responses.push_back(service.Submit({"main", kQuery, row_options}));
  responses.push_back(service.Submit({"main", kHowToQuery, {}}));

  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int status = 2; status <= 3; ++status) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(status);
    interventions.push_back({spec});
  }
  auto batch = service.SubmitWhatIfBatch("main", kQuery, interventions);
  if (batch.ok()) {
    for (const service::WhatIfBatchItem& item : *batch) {
      service::Response r;
      r.status = item.status;
      r.kind = service::Response::Kind::kWhatIf;
      r.whatif = item.result;
      responses.push_back(r);
    }
  } else {
    service::Response r;
    r.status = batch.status();
    responses.push_back(r);
  }
  return responses;
}

TEST_F(GovernanceTest, FaultInjectionMatrixAbortsCleanlyAtEveryCheckpoint) {
  // Phase 1: discover the checkpoint set by running the workload under a
  // recording hook (the hook itself makes every request governed).
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    g_seen_checkpoints.clear();
  }
  {
    HookGuard hook(&RecordingHook);
    auto service = MakeService(/*num_threads=*/2);
    for (const service::Response& r : RunWorkload(*service)) {
      ASSERT_TRUE(r.ok()) << r.status;  // a recording hook aborts nothing
    }
  }
  std::vector<std::string> checkpoints;
  {
    std::lock_guard<std::mutex> lock(g_hook_mu);
    checkpoints.assign(g_seen_checkpoints.begin(), g_seen_checkpoints.end());
  }
  // The matrix must cover every cancellation point the engine declares; a
  // missing name here means the workload no longer reaches it (or a
  // checkpoint was renamed) and the matrix silently shrank.
  for (const char* expected :
       {"whatif.prepare.scope", "whatif.prepare.causal",
        "whatif.prepare.learn", "whatif.prepare.query", "whatif.train",
        "whatif.eval.rows", "whatif.eval.blocks", "whatif.eval.batch",
        "whatif.run_rows", "howto.score"}) {
    EXPECT_NE(checkpoints.end(),
              std::find(checkpoints.begin(), checkpoints.end(), expected))
        << "workload no longer reaches checkpoint " << expected;
  }

  // Phase 2: ungoverned reference answers (threads=1, fresh service).
  std::vector<double> reference;
  {
    auto service = MakeService(/*num_threads=*/1);
    for (const service::Response& r : RunWorkload(*service)) {
      ASSERT_TRUE(r.ok()) << r.status;
      reference.push_back(r.kind == service::Response::Kind::kWhatIf
                              ? r.whatif.value
                              : r.howto.objective_value);
    }
  }

  // Phase 3: for every checkpoint x thread count, inject an abort, then
  // clear the hook and re-run on the same (possibly partially warmed)
  // service: the retry must be bit-equal to the reference, proving the
  // abort left no partial or corrupt cache entry behind.
  for (const std::string& checkpoint : checkpoints) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      auto service = MakeService(threads);
      {
        std::lock_guard<std::mutex> lock(g_hook_mu);
        g_abort_checkpoint = checkpoint;
      }
      g_abort_hits = 0;
      size_t aborted = 0;
      {
        HookGuard hook(&AbortHook);
        for (const service::Response& r : RunWorkload(*service)) {
          if (r.ok()) continue;
          ++aborted;
          EXPECT_EQ(StatusCode::kResourceExhausted, r.status.code())
              << "checkpoint=" << checkpoint << " threads=" << threads
              << ": " << r.status;
        }
      }
      EXPECT_GT(g_abort_hits.load(), 0u)
          << "checkpoint " << checkpoint << " never fired";
      EXPECT_GT(aborted, 0u)
          << "no request aborted for checkpoint " << checkpoint;

      std::vector<service::Response> retry = RunWorkload(*service);
      ASSERT_EQ(reference.size(), retry.size())
          << "checkpoint=" << checkpoint << " threads=" << threads;
      for (size_t i = 0; i < retry.size(); ++i) {
        ASSERT_TRUE(retry[i].ok())
            << "checkpoint=" << checkpoint << " threads=" << threads
            << " request=" << i << ": " << retry[i].status;
        const double value =
            retry[i].kind == service::Response::Kind::kWhatIf
                ? retry[i].whatif.value
                : retry[i].howto.objective_value;
        EXPECT_EQ(reference[i], value)
            << "checkpoint=" << checkpoint << " threads=" << threads
            << " request=" << i;
      }

      // The accounting ledger survived the abort: every section still
      // reconciles lookups = hits + misses + coalesced (a partial entry
      // or a double-published failure would skew it).
      service::GovernanceStats stats = service->governance_stats();
      EXPECT_EQ(0u, stats.in_flight);
      EXPECT_EQ(stats.completed, stats.admitted);
    }
  }
}

// --- deadline stress -------------------------------------------------------

TEST_F(GovernanceTest, RandomTightDeadlinesNeverHangOrCorrupt) {
  const double expected = FreshRun(kQuery);
  const double expected_avg = FreshRun(kAvgQuery);
  auto service = MakeService(/*num_threads=*/2);

  std::mt19937 rng(1234);  // seeded: the stress is reproducible
  std::uniform_real_distribution<double> deadline(0.0, 3e-3);
  std::uniform_int_distribution<int> pick(0, 2);
  for (int i = 0; i < 40; ++i) {
    service::Request request{"main", pick(rng) == 0 ? kAvgQuery : kQuery, {}};
    request.budget.deadline_seconds = std::max(1e-9, deadline(rng));
    if (i % 5 == 4) request.budget.max_rows_touched = 1 + i * 17;
    service::Response response = service->Submit(request);
    // Every outcome is OK or a typed governance abort — anything else
    // (crash, hang, internal error) fails the test.
    EXPECT_TRUE(response.ok() ||
                governance::IsGovernanceAbort(response.status))
        << "iteration " << i << ": " << response.status;
  }

  // Whatever mix of aborts the deadlines produced, the caches are intact:
  // ungoverned runs still answer bit-equal to fresh engine runs.
  service::Response check = service->Submit({"main", kQuery, {}});
  ASSERT_TRUE(check.ok()) << check.status;
  EXPECT_EQ(expected, check.whatif.value);
  service::Response check_avg = service->Submit({"main", kAvgQuery, {}});
  ASSERT_TRUE(check_avg.ok()) << check_avg.status;
  EXPECT_EQ(expected_avg, check_avg.whatif.value);
}

}  // namespace
}  // namespace hyper
