// Failure-injection and edge-case coverage across the public API surface:
// malformed queries, degenerate data shapes, boundary parameter values, and
// contract violations that must surface as Status errors (never crashes).

#include <gtest/gtest.h>

#include "causal/scm.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "whatif/engine.h"
#include "whatif/naive.h"

namespace hyper {
namespace {

Database TinyDb() {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"A", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  for (int i = 0; i < 8; ++i) {
    t.AppendUnchecked(
        {Value::Int(i), Value::Int(i % 2), Value::Int((i / 2) % 2)});
  }
  HYPER_CHECK(db.AddTable(std::move(t)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// Parser failure injection: every malformed fragment yields a ParseError
// with a position, never a crash.
// ---------------------------------------------------------------------------

class ParserFailureSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserFailureSweep, MalformedQueriesReportParseError) {
  auto result = sql::ParseSql(GetParam());
  ASSERT_FALSE(result.ok()) << GetParam();
  EXPECT_EQ(result.status().code(), StatusCode::kParseError) << GetParam();
  // Error messages carry a position.
  EXPECT_NE(result.status().message().find(":"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserFailureSweep,
    ::testing::Values(
        "",                                             // empty
        "Use",                                          // dangling Use
        "Use R",                                        // no update
        "Use R Update(A)",                              // no '='
        "Use R Update(A) = ",                           // no rhs
        "Use R Update(A) = 1 Output",                   // no aggregate
        "Use R Update(A) = 1 Output Foo(Y)",            // bad aggregate
        "Use R Update(A) = 1 Output Count(",            // unclosed paren
        "Use R Update(A) = 1 Output Count(*) For",      // dangling For
        "Use R Update(A) = 2 * Post(A) Output Count(*)",  // Post in update
        "Use R HowToUpdate",                            // no attributes
        "Use R HowToUpdate A Limit ToMaximize Avg(Y)",  // empty limit
        "Use R HowToUpdate A ToMaximize",               // no aggregate
        "Select * From",                                // dangling From
        "Select a From R Where",                        // dangling Where
        "Use R Update(A) = 1 Output Count(*) extra"));  // trailing tokens

// ---------------------------------------------------------------------------
// Engine edge cases
// ---------------------------------------------------------------------------

TEST(EngineEdgeCases, EmptyViewIsError) {
  Database db;
  HYPER_CHECK(db.AddTable(Schema("R",
                                 {{"Id", ValueType::kInt},
                                  {"A", ValueType::kInt,
                                   Mutability::kMutable}},
                                 {"Id"}))
                  .ok());
  whatif::WhatIfEngine engine(&db, nullptr, {});
  auto result = engine.RunSql("Use R Update(A) = 1 Output Count(*)");
  EXPECT_FALSE(result.ok());
}

TEST(EngineEdgeCases, WhenSelectingNothingIsExact) {
  Database db = TinyDb();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql(
      "Use R When Id = 999 Update(A) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->updated_rows, 0u);
  EXPECT_DOUBLE_EQ(result->value, 4.0);  // exact observational count
}

TEST(EngineEdgeCases, ForSelectingNothingGivesZeroCount) {
  Database db = TinyDb();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql(
      "Use R Update(A) = 1 Output Count(*) For Pre(Id) > 100");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->value, 0.0);
}

TEST(EngineEdgeCases, AvgOverEmptyForIsError) {
  Database db = TinyDb();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql(
      "Use R Update(A) = 1 Output Avg(Post(Y)) For Pre(Id) > 100");
  EXPECT_FALSE(result.ok());
}

TEST(EngineEdgeCases, SingleRowDatabase) {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt},
                  {"A", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked({Value::Int(0), Value::Int(0), Value::Int(1)});
  HYPER_CHECK(db.AddTable(std::move(t)).ok());
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql("Use R Update(A) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->value, 0.0);
  EXPECT_LE(result->value, 1.0);
}

TEST(EngineEdgeCases, SampleLargerThanDataIsFullData) {
  Database db = TinyDb();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  options.sample_size = 1000000;  // way beyond 8 rows
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql("Use R Update(A) = 1 Output Count(Y = 1)");
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST(EngineEdgeCases, UpdateStringAttributeWithScaleFails) {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt},
                  {"Color", ValueType::kString, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked({Value::Int(0), Value::String("Red"), Value::Int(1)});
  t.AppendUnchecked({Value::Int(1), Value::String("Blue"), Value::Int(0)});
  HYPER_CHECK(db.AddTable(std::move(t)).ok());
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  auto result = engine.RunSql(
      "Use R Update(Color) = 1.5 * Pre(Color) Output Count(Y = 1)");
  EXPECT_FALSE(result.ok());  // scaling a string is a type error
}

TEST(EngineEdgeCases, ViewMissingUpdateAttributeFails) {
  Database db = TinyDb();
  whatif::WhatIfEngine engine(&db, nullptr, {});
  auto result = engine.RunSql(
      "Use V As (Select Id, Y From R) Update(A) = 1 Output Count(*)");
  EXPECT_FALSE(result.ok());
}

TEST(EngineEdgeCases, ViewMissingKeyFails) {
  Database db = TinyDb();
  whatif::WhatIfEngine engine(&db, nullptr, {});
  auto result = engine.RunSql(
      "Use V As (Select A, Y From R) Update(A) = 1 Output Count(*)");
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// How-to edge cases
// ---------------------------------------------------------------------------

TEST(HowToEdgeCases, ContradictoryLimitsYieldNoCandidates) {
  Database db = TinyDb();
  howto::HowToOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  howto::HowToEngine engine(&db, nullptr, options);
  auto result = engine.RunSql(
      "Use R HowToUpdate A Limit 100 <= Post(A) <= 50 "
      "ToMaximize Avg(Post(Y))");
  // No feasible candidate: the plan leaves the attribute unchanged.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->plan[0].changed);
  EXPECT_DOUBLE_EQ(result->objective_value, result->baseline_value);
}

TEST(HowToEdgeCases, UnknownAttributeFails) {
  Database db = TinyDb();
  howto::HowToEngine engine(&db, nullptr, {});
  auto result =
      engine.RunSql("Use R HowToUpdate Zzz ToMaximize Avg(Post(Y))");
  EXPECT_FALSE(result.ok());
}

TEST(HowToEdgeCases, WhenSelectingNothingFails) {
  Database db = TinyDb();
  howto::HowToEngine engine(&db, nullptr, {});
  auto result = engine.RunSql(
      "Use R When Id = 999 HowToUpdate A ToMaximize Avg(Post(Y))");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HowToEdgeCases, SingleBucket) {
  Database db = TinyDb();
  howto::HowToOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  options.num_buckets = 1;
  howto::HowToEngine engine(&db, nullptr, options);
  auto result =
      engine.RunSql("Use R HowToUpdate A ToMaximize Avg(Post(Y))");
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST(HowToEdgeCases, LexicographicMismatchedAttributesFails) {
  Database db = TinyDb();
  howto::HowToEngine engine(&db, nullptr, {});
  auto a = sql::ParseSql("Use R HowToUpdate A ToMaximize Avg(Post(Y))")
               .value();
  auto b = sql::ParseSql("Use R HowToUpdate Y ToMaximize Avg(Post(A))")
               .value();
  auto result = engine.RunLexicographic({a.howto.get(), b.howto.get()});
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Oracle edge cases
// ---------------------------------------------------------------------------

TEST(OracleEdgeCases, NoUpdatedTuplesIsObservational) {
  Database db = TinyDb();
  causal::Scm scm;
  ASSERT_TRUE(scm.AddAttribute("A", {},
                               std::make_unique<causal::DiscreteMechanism>(
                                   std::vector<Value>{Value::Int(0),
                                                      Value::Int(1)},
                                   [](const std::vector<Value>&) {
                                     return std::vector<double>{0.5, 0.5};
                                   }))
                  .ok());
  ASSERT_TRUE(scm.AddAttribute("Y", {{"A", ""}},
                               std::make_unique<causal::DiscreteMechanism>(
                                   std::vector<Value>{Value::Int(0),
                                                      Value::Int(1)},
                                   [](const std::vector<Value>& ps) {
                                     double p =
                                         ps[0].int_value() ? 0.9 : 0.1;
                                     return std::vector<double>{1 - p, p};
                                   }))
                  .ok());
  auto stmt = sql::ParseSql(
                  "Use R When Id = 999 Update(A) = 1 Output Count(Y = 1)")
                  .value();
  const double exact = whatif::NaiveWhatIf(db, scm, *stmt.whatif).value();
  EXPECT_DOUBLE_EQ(exact, 4.0);  // nothing intervened: observed count
}

// ---------------------------------------------------------------------------
// Relational edge cases
// ---------------------------------------------------------------------------

TEST(RelationalEdgeCases, SelfJoinViaAliases) {
  Database db = TinyDb();
  auto stmt = sql::ParseSql(
                  "Select T1.Id, T2.Id From R As T1, R As T2 "
                  "Where T1.A = T2.A")
                  .value();
  auto result = relational::ExecuteSelect(db, *stmt.select);
  ASSERT_TRUE(result.ok()) << result.status();
  // 4 rows with A=0 and 4 with A=1: 16 + 16 pairs.
  EXPECT_EQ(result->num_rows(), 32u);
}

TEST(RelationalEdgeCases, GroupByExpressionKey) {
  Database db = TinyDb();
  auto stmt = sql::ParseSql(
                  "Select A + Y As K, Count(*) As N From R Group By A + Y")
                  .value();
  auto result = relational::ExecuteSelect(db, *stmt.select);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);  // sums 0, 1, 2
}

TEST(RelationalEdgeCases, WhereOnMissingColumnFails) {
  Database db = TinyDb();
  auto stmt =
      sql::ParseSql("Select Id From R Where Nope = 1").value();
  EXPECT_FALSE(relational::ExecuteSelect(db, *stmt.select).ok());
}

}  // namespace
}  // namespace hyper
