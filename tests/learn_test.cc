#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "learn/dataset.h"
#include "learn/discretizer.h"
#include "learn/forest.h"
#include "learn/frequency.h"
#include "learn/tree.h"
#include "storage/table.h"

namespace hyper::learn {
namespace {

// ---------------------------------------------------------------------------
// FeatureEncoder
// ---------------------------------------------------------------------------

Table MixedTable() {
  Table t(Schema("T",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"Color", ValueType::kString, Mutability::kMutable},
                  {"Price", ValueType::kDouble, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked({Value::Int(0), Value::String("Red"), Value::Double(10)});
  t.AppendUnchecked({Value::Int(1), Value::String("Blue"), Value::Double(20)});
  t.AppendUnchecked({Value::Int(2), Value::String("Red"), Value::Double(30)});
  return t;
}

TEST(FeatureEncoderTest, NumericPassThrough) {
  Table t = MixedTable();
  auto enc = FeatureEncoder::Fit(t, {"Price"}).value();
  auto row = enc.EncodeRow(t, 1).value();
  ASSERT_EQ(row.size(), 1u);
  EXPECT_DOUBLE_EQ(row[0], 20.0);
}

TEST(FeatureEncoderTest, CategoricalLabelEncoding) {
  Table t = MixedTable();
  auto enc = FeatureEncoder::Fit(t, {"Color"}).value();
  EXPECT_DOUBLE_EQ(enc.EncodeRow(t, 0).value()[0], 0.0);  // Red first seen
  EXPECT_DOUBLE_EQ(enc.EncodeRow(t, 1).value()[0], 1.0);  // Blue second
  EXPECT_DOUBLE_EQ(enc.EncodeRow(t, 2).value()[0], 0.0);  // Red again
}

TEST(FeatureEncoderTest, UnseenCategoryGetsFreshCode) {
  Table t = MixedTable();
  auto enc = FeatureEncoder::Fit(t, {"Color"}).value();
  EXPECT_DOUBLE_EQ(enc.EncodeValue(0, Value::String("Green")).value(), 2.0);
}

TEST(FeatureEncoderTest, EncodeAllShape) {
  Table t = MixedTable();
  auto enc = FeatureEncoder::Fit(t, {"Color", "Price"}).value();
  FeatureMatrix m = enc.EncodeAll(t).value();
  ASSERT_EQ(m.num_rows(), 3u);
  ASSERT_EQ(m.num_cols(), 2u);
}

TEST(FeatureEncoderTest, EncodeSubset) {
  Table t = MixedTable();
  auto enc = FeatureEncoder::Fit(t, {"Price"}).value();
  FeatureMatrix m = enc.EncodeSubset(t, {2, 0}).value();
  ASSERT_EQ(m.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 10.0);
}

TEST(FeatureEncoderTest, UnknownColumnFails) {
  Table t = MixedTable();
  EXPECT_FALSE(FeatureEncoder::Fit(t, {"Nope"}).ok());
}

TEST(ExtractTargetTest, BasicAndErrors) {
  Table t = MixedTable();
  auto y = ExtractTarget(t, "Price").value();
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
  EXPECT_FALSE(ExtractTarget(t, "Color").ok());  // string target rejected
}

// ---------------------------------------------------------------------------
// Discretizer
// ---------------------------------------------------------------------------

TEST(DiscretizerTest, BucketsAndRepresentatives) {
  auto d = EquiWidthDiscretizer::Create(0, 100, 4).value();
  EXPECT_EQ(d.BucketOf(10), 0u);
  EXPECT_EQ(d.BucketOf(30), 1u);
  EXPECT_EQ(d.BucketOf(99.9), 3u);
  EXPECT_DOUBLE_EQ(d.Representative(0), 12.5);
  EXPECT_DOUBLE_EQ(d.Representative(3), 87.5);
  EXPECT_EQ(d.Representatives().size(), 4u);
}

TEST(DiscretizerTest, ClampsOutOfRange) {
  auto d = EquiWidthDiscretizer::Create(0, 10, 2).value();
  EXPECT_EQ(d.BucketOf(-5), 0u);
  EXPECT_EQ(d.BucketOf(50), 1u);
}

TEST(DiscretizerTest, BoundsPartitionRange) {
  auto d = EquiWidthDiscretizer::Create(0, 12, 3).value();
  auto [lo0, hi0] = d.Bounds(0);
  auto [lo2, hi2] = d.Bounds(2);
  EXPECT_DOUBLE_EQ(lo0, 0);
  EXPECT_DOUBLE_EQ(hi0, 4);
  EXPECT_DOUBLE_EQ(lo2, 8);
  EXPECT_DOUBLE_EQ(hi2, 12);
}

TEST(DiscretizerTest, FitToData) {
  auto d = EquiWidthDiscretizer::FitToData({3, 9, 5, 1}, 2).value();
  EXPECT_DOUBLE_EQ(d.lo(), 1);
  EXPECT_DOUBLE_EQ(d.hi(), 9);
}

TEST(DiscretizerTest, DegenerateRange) {
  auto d = EquiWidthDiscretizer::Create(5, 5, 3).value();
  EXPECT_EQ(d.BucketOf(5), 0u);  // everything lands in bucket 0 (clamped)
}

TEST(DiscretizerTest, Errors) {
  EXPECT_FALSE(EquiWidthDiscretizer::Create(0, 10, 0).ok());
  EXPECT_FALSE(EquiWidthDiscretizer::Create(10, 0, 3).ok());
  EXPECT_FALSE(EquiWidthDiscretizer::FitToData({}, 2).ok());
}

// ---------------------------------------------------------------------------
// QuantileDiscretizer
// ---------------------------------------------------------------------------

TEST(QuantileDiscretizerTest, EqualCountCells) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  auto d = QuantileDiscretizer::FitToData(values, 4).value();
  ASSERT_EQ(d.num_buckets(), 4u);
  EXPECT_EQ(d.BucketOf(5), 0u);
  EXPECT_EQ(d.BucketOf(30), 1u);
  EXPECT_EQ(d.BucketOf(60), 2u);
  EXPECT_EQ(d.BucketOf(99), 3u);
  // Representatives are cell means: first cell holds 0..24 -> mean 12.
  EXPECT_DOUBLE_EQ(d.Representative(0), 12.0);
}

TEST(QuantileDiscretizerTest, SkewedDataStillBalanced) {
  // Heavily skewed data: equi-width cells would leave the tail cell almost
  // empty, quantile cells stay balanced.
  std::vector<double> values;
  for (int i = 0; i < 90; ++i) values.push_back(1.0);
  for (int i = 0; i < 10; ++i) values.push_back(1000.0 + i);
  auto d = QuantileDiscretizer::FitToData(values, 10).value();
  // Ties collapse: all the 1.0s form one cell.
  EXPECT_LE(d.num_buckets(), 10u);
  EXPECT_EQ(d.BucketOf(1.0), 0u);
  EXPECT_GT(d.BucketOf(1005.0), 0u);
}

TEST(QuantileDiscretizerTest, OutOfRangeClamps) {
  auto d = QuantileDiscretizer::FitToData({1, 2, 3, 4, 5, 6, 7, 8}, 4)
               .value();
  EXPECT_EQ(d.BucketOf(-100), 0u);
  EXPECT_EQ(d.BucketOf(100), d.num_buckets() - 1);
}

TEST(QuantileDiscretizerTest, Errors) {
  EXPECT_FALSE(QuantileDiscretizer::FitToData({}, 4).ok());
  EXPECT_FALSE(QuantileDiscretizer::FitToData({1.0}, 0).ok());
}

TEST(QuantileDiscretizerTest, RepresentativesMonotone) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Gaussian(10, 4));
  auto d = QuantileDiscretizer::FitToData(values, 8).value();
  for (size_t b = 1; b < d.num_buckets(); ++b) {
    EXPECT_GT(d.Representative(b), d.Representative(b - 1));
  }
}

// ---------------------------------------------------------------------------
// FrequencyEstimator shrinkage smoothing
// ---------------------------------------------------------------------------

TEST(FrequencySmoothingTest, ZeroSmoothingIsExact) {
  Matrix x{{0}, {0}, {1}};
  std::vector<double> y{1, 0, 1};
  FrequencyEstimator exact(/*backoff=*/true, /*smoothing=*/0.0);
  ASSERT_TRUE(exact.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(exact.Predict({0}), 0.5);
  EXPECT_DOUBLE_EQ(exact.Predict({1}), 1.0);
}

TEST(FrequencySmoothingTest, ShrinksSparseCellsTowardPrior) {
  // Cell {1} has a single (extreme) observation; with smoothing its
  // estimate moves toward the global mean.
  Matrix x{{0}, {0}, {0}, {0}, {0}, {0}, {0}, {1}};
  std::vector<double> y{0, 0, 0, 0, 0, 0, 0, 1};
  FrequencyEstimator smoothed(/*backoff=*/true, /*smoothing=*/7.0);
  ASSERT_TRUE(smoothed.Fit(x, y).ok());
  const double global_mean = 1.0 / 8.0;
  const double pred = smoothed.Predict({1});
  EXPECT_LT(pred, 1.0);           // pulled down from the raw cell mean
  EXPECT_GT(pred, global_mean);   // but still above the prior
  // (1 + 7 * 0.125) / (1 + 7) = 0.234...
  EXPECT_NEAR(pred, (1.0 + 7.0 * global_mean) / 8.0, 1e-12);
}

TEST(FrequencySmoothingTest, DenseCellsBarelyMove) {
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 1000; ++i) {
    x.push_back({0});
    y.push_back(i % 2 == 0 ? 1.0 : 0.0);
  }
  for (int i = 0; i < 1000; ++i) {
    x.push_back({1});
    y.push_back(1.0);
  }
  FrequencyEstimator smoothed(true, 10.0);
  ASSERT_TRUE(smoothed.Fit(x, y).ok());
  EXPECT_NEAR(smoothed.Predict({0}), 0.5, 0.01);
  EXPECT_NEAR(smoothed.Predict({1}), 1.0, 0.01);
}

// ---------------------------------------------------------------------------
// DecisionTreeRegressor
// ---------------------------------------------------------------------------

/// y = 1 if x0 > 0.5 else 0, with n points on a grid.
void StepData(size_t n, Matrix* x, std::vector<double>* y) {
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(i) / static_cast<double>(n - 1);
    x->push_back({v});
    y->push_back(v > 0.5 ? 1.0 : 0.0);
  }
}

TEST(TreeTest, LearnsStepFunction) {
  Matrix x;
  std::vector<double> y;
  StepData(200, &x, &y);
  TreeOptions opt;
  opt.min_samples_leaf = 2;
  DecisionTreeRegressor tree(opt);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({0.2}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.9}), 1.0, 1e-9);
}

TEST(TreeTest, ConstantTargetSingleLeaf) {
  Matrix x{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}};
  std::vector<double> y(10, 3.25);
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({4}), 3.25);
}

TEST(TreeTest, RespectsMaxDepth) {
  Rng rng(3);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    double v = rng.Uniform();
    x.push_back({v});
    y.push_back(std::sin(6 * v));
  }
  TreeOptions opt;
  opt.max_depth = 2;
  opt.min_samples_leaf = 1;
  DecisionTreeRegressor tree(opt);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_LE(tree.depth(), 2);
  EXPECT_LE(tree.num_nodes(), 7u);
}

TEST(TreeTest, MinSamplesLeafHonored) {
  Matrix x;
  std::vector<double> y;
  StepData(40, &x, &y);
  TreeOptions opt;
  opt.min_samples_leaf = 25;  // cannot split 40 rows into 25+25
  DecisionTreeRegressor tree(opt);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(TreeTest, TwoFeatureInteraction) {
  // y = x0 XOR x1 on a binary grid: needs depth 2.
  Matrix x;
  std::vector<double> y;
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int rep = 0; rep < 10; ++rep) {
        x.push_back({double(a), double(b)});
        y.push_back(double(a ^ b));
      }
    }
  }
  TreeOptions opt;
  opt.min_samples_leaf = 1;
  DecisionTreeRegressor tree(opt);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({0, 0}), 0, 1e-9);
  EXPECT_NEAR(tree.Predict({0, 1}), 1, 1e-9);
  EXPECT_NEAR(tree.Predict({1, 0}), 1, 1e-9);
  EXPECT_NEAR(tree.Predict({1, 1}), 0, 1e-9);
}

TEST(TreeTest, FitErrors) {
  DecisionTreeRegressor tree;
  Matrix x{{1}};
  EXPECT_FALSE(tree.Fit(x, {1.0, 2.0}).ok());
  EXPECT_FALSE(tree.FitSubset(x, {1.0}, {}).ok());
  EXPECT_FALSE(tree.FitSubset(x, {1.0}, {5}).ok());
}

// ---------------------------------------------------------------------------
// RandomForestRegressor
// ---------------------------------------------------------------------------

TEST(ForestTest, RecoverLinearSignal) {
  Rng rng(11);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(2 * a + b + rng.Gaussian(0, 0.05));
  }
  RandomForestRegressor forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_NEAR(forest.Predict({0.5, 0.5}), 1.5, 0.15);
  EXPECT_NEAR(forest.Predict({0.9, 0.1}), 1.9, 0.2);
}

TEST(ForestTest, EstimatesConditionalProbability) {
  // Binary confounded data: the forest should learn P(Y=1 | B, C).
  Rng rng(13);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    double c = rng.Bernoulli(0.5) ? 1 : 0;
    double b = rng.Bernoulli(c ? 0.8 : 0.2) ? 1 : 0;
    double py = (b && c) ? 0.9 : b ? 0.6 : c ? 0.3 : 0.1;
    x.push_back({b, c});
    y.push_back(rng.Bernoulli(py) ? 1 : 0);
  }
  ForestOptions opt;
  opt.num_trees = 24;
  RandomForestRegressor forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_NEAR(forest.Predict({1, 1}), 0.9, 0.06);
  EXPECT_NEAR(forest.Predict({0, 0}), 0.1, 0.06);
  EXPECT_NEAR(forest.Predict({1, 0}), 0.6, 0.08);
}

TEST(ForestTest, DeterministicGivenSeed) {
  Matrix x;
  std::vector<double> y;
  StepData(100, &x, &y);
  ForestOptions opt;
  opt.seed = 99;
  RandomForestRegressor f1(opt), f2(opt);
  ASSERT_TRUE(f1.Fit(x, y).ok());
  ASSERT_TRUE(f2.Fit(x, y).ok());
  for (double v : {0.1, 0.4, 0.6, 0.9}) {
    EXPECT_DOUBLE_EQ(f1.Predict({v}), f2.Predict({v}));
  }
}

TEST(ForestTest, NumTreesHonored) {
  Matrix x;
  std::vector<double> y;
  StepData(50, &x, &y);
  ForestOptions opt;
  opt.num_trees = 5;
  RandomForestRegressor forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_EQ(forest.num_trees(), 5u);
}

TEST(ForestTest, EmptyFitFails) {
  RandomForestRegressor forest;
  EXPECT_FALSE(forest.Fit({}, {}).ok());
}

// ---------------------------------------------------------------------------
// FrequencyEstimator
// ---------------------------------------------------------------------------

TEST(FrequencyTest, ExactConditionalMeans) {
  Matrix x{{0, 0}, {0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 1}};
  std::vector<double> y{1, 0, 1, 0, 1, 1};
  FrequencyEstimator est;
  ASSERT_TRUE(est.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(est.Predict({0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(est.Predict({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(est.Predict({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(est.Predict({1, 1}), 1.0);
}

TEST(FrequencyTest, BackoffDropsTrailingFeatures) {
  Matrix x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> y{0, 0, 1, 1};
  FrequencyEstimator est;
  ASSERT_TRUE(est.Fit(x, y).ok());
  // (1, 7) unseen: backs off to prefix (1) -> mean of rows 2,3 = 1.0.
  EXPECT_DOUBLE_EQ(est.Predict({1, 7}), 1.0);
  // (9, 9) fully unseen: global mean 0.5.
  EXPECT_DOUBLE_EQ(est.Predict({9, 9}), 0.5);
}

TEST(FrequencyTest, NoBackoffGoesStraightToGlobalMean) {
  Matrix x{{0}, {1}};
  std::vector<double> y{0, 1};
  FrequencyEstimator est(/*backoff=*/false);
  ASSERT_TRUE(est.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(est.Predict({2}), 0.5);
  EXPECT_DOUBLE_EQ(est.Predict({1}), 1.0);
}

TEST(FrequencyTest, SupportIndexIsSparse) {
  // 1000 rows but only 4 distinct vectors: index stays at 4 entries
  // (the §A.4 point: support, not domain size).
  Matrix x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.Bernoulli(0.5), b = rng.Bernoulli(0.5);
    x.push_back({a, b});
    y.push_back(a);
  }
  FrequencyEstimator est;
  ASSERT_TRUE(est.Fit(x, y).ok());
  EXPECT_EQ(est.support_size(), 4u);
}

TEST(FrequencyTest, ZeroFeatures) {
  Matrix x{{}, {}, {}};
  std::vector<double> y{1, 2, 3};
  FrequencyEstimator est;
  ASSERT_TRUE(est.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(est.Predict({}), 2.0);
}

// ---------------------------------------------------------------------------
// Property sweep: both estimators converge to truth on discrete data
// ---------------------------------------------------------------------------

class EstimatorConvergence
    : public ::testing::TestWithParam<EstimatorKind> {};

TEST_P(EstimatorConvergence, ConditionalProbabilityWithin5Percent) {
  Rng rng(101);
  Matrix x;
  std::vector<double> y;
  auto truth = [](double b, double c) {
    return 0.2 + 0.5 * b + 0.2 * c;  // P(Y=1|B,C)
  };
  for (int i = 0; i < 20000; ++i) {
    double c = rng.Bernoulli(0.4) ? 1 : 0;
    double b = rng.Bernoulli(c ? 0.7 : 0.3) ? 1 : 0;
    x.push_back({b, c});
    y.push_back(rng.Bernoulli(truth(b, c)) ? 1 : 0);
  }
  std::unique_ptr<ConditionalMeanEstimator> est;
  if (GetParam() == EstimatorKind::kFrequency) {
    est = std::make_unique<FrequencyEstimator>();
  } else {
    est = std::make_unique<RandomForestRegressor>();
  }
  ASSERT_TRUE(est->Fit(x, y).ok());
  for (double b : {0.0, 1.0}) {
    for (double c : {0.0, 1.0}) {
      EXPECT_NEAR(est->Predict({b, c}), truth(b, c), 0.05)
          << "b=" << b << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EstimatorConvergence,
                         ::testing::Values(EstimatorKind::kFrequency,
                                           EstimatorKind::kForest),
                         [](const auto& info) {
                           return EstimatorKindName(info.param);
                         });

}  // namespace
}  // namespace hyper::learn
