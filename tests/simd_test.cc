#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"

namespace hyper::simd {
namespace {

// ---------------------------------------------------------------------------
// SIMD-vs-scalar bit-equality. Every kernel promises to reproduce its scalar
// reference implementation bit for bit at whatever level the CPU dispatches
// to, so each test computes the output once with the scalar path forced and
// once with dispatch enabled and compares the raw bytes. Lengths straddle
// the vector widths (1..65 plus a large run) so heads, full lanes, and tails
// are all exercised.
// ---------------------------------------------------------------------------

const std::vector<size_t>& Lengths() {
  static const std::vector<size_t> kLengths = {0,  1,  2,  3,  4,  7,  8,
                                               15, 16, 17, 31, 32, 33, 63,
                                               64, 65, 1000};
  return kLengths;
}

/// Runs `fn` once under forced-scalar and once under native dispatch,
/// byte-comparing the two output buffers. `fn` fills its argument.
template <typename T, typename Fn>
void ExpectBitEqual(size_t n, const Fn& fn) {
  std::vector<T> scalar_out(n), simd_out(n);
  SetForceScalar(true);
  fn(scalar_out.data());
  SetForceScalar(false);
  fn(simd_out.data());
  ASSERT_EQ(std::memcmp(scalar_out.data(), simd_out.data(), n * sizeof(T)), 0)
      << "n=" << n << " active=" << LevelName(ActiveLevel());
}

/// Doubles with the edge cases the IEEE predicates care about: NaN, ±inf,
/// ±0.0, denormals, and exact ties against the constant under test.
std::vector<double> EdgeDoubles(size_t n, Rng& rng, double tie) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  const double kDen = std::numeric_limits<double>::denorm_min();
  const double specials[] = {kNan, -kNan, kInf, -kInf, 0.0, -0.0, kDen, tie};
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = (rng.Uniform() < 0.4)
               ? specials[rng.UniformInt(0, 7)]
               : rng.Uniform(-5.0, 5.0);
  }
  return x;
}

TEST(SimdTest, LevelPlumbing) {
  EXPECT_GE(static_cast<int>(DetectedLevel()), 0);
  SetForceScalar(true);
  EXPECT_TRUE(ForceScalar());
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  SetForceScalar(false);
  EXPECT_FALSE(ForceScalar());
  // HYPER_SIMD may cap the active level below the detected one, so only the
  // ordering is portable across environments.
  EXPECT_LE(static_cast<int>(ActiveLevel()), static_cast<int>(DetectedLevel()));
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
}

TEST(SimdTest, MirrorFlipsOrderedOps) {
  EXPECT_EQ(Mirror(Cmp::kLt), Cmp::kGt);
  EXPECT_EQ(Mirror(Cmp::kLe), Cmp::kGe);
  EXPECT_EQ(Mirror(Cmp::kGt), Cmp::kLt);
  EXPECT_EQ(Mirror(Cmp::kGe), Cmp::kLe);
  EXPECT_EQ(Mirror(Cmp::kEq), Cmp::kEq);
  EXPECT_EQ(Mirror(Cmp::kNe), Cmp::kNe);
}

TEST(SimdTest, CmpF64ConstAllOpsWithNaN) {
  Rng rng(101);
  const double c = 1.25;
  for (size_t n : Lengths()) {
    const std::vector<double> x = EdgeDoubles(n, rng, c);
    for (Cmp op : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                   Cmp::kGe}) {
      ExpectBitEqual<uint8_t>(n, [&](uint8_t* out) {
        CmpF64Const(x.data(), n, c, op, out);
      });
    }
  }
  SetForceScalar(false);
}

TEST(SimdTest, CmpF64ConstNaNSemanticsMatchCOperators) {
  // Scalar reference aside, pin the absolute semantics: NaN compares false
  // under every ordered predicate and true only under !=.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double x[1] = {kNan};
  uint8_t out[1];
  const std::pair<Cmp, uint8_t> expected[] = {
      {Cmp::kEq, 0}, {Cmp::kNe, 1}, {Cmp::kLt, 0},
      {Cmp::kLe, 0}, {Cmp::kGt, 0}, {Cmp::kGe, 0}};
  for (bool force : {true, false}) {
    SetForceScalar(force);
    for (const auto& [op, want] : expected) {
      CmpF64Const(x, 1, 0.0, op, out);
      EXPECT_EQ(out[0], want) << "force=" << force;
    }
  }
  SetForceScalar(false);
}

TEST(SimdTest, CmpF64ColsAllOps) {
  Rng rng(202);
  for (size_t n : Lengths()) {
    const std::vector<double> a = EdgeDoubles(n, rng, 2.0);
    std::vector<double> b = EdgeDoubles(n, rng, 2.0);
    for (size_t i = 0; i + 3 < n; i += 4) b[i] = a[i];  // exact ties
    for (Cmp op : {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                   Cmp::kGe}) {
      ExpectBitEqual<uint8_t>(n, [&](uint8_t* out) {
        CmpF64Cols(a.data(), b.data(), n, op, out);
      });
    }
  }
  SetForceScalar(false);
}

TEST(SimdTest, CmpI32ConstDictCodes) {
  Rng rng(303);
  for (size_t n : Lengths()) {
    std::vector<int32_t> x(n);
    for (size_t i = 0; i < n; ++i) {
      // Small dictionary-code domain plus the -1 null sentinel, so both
      // match density and the null code are covered.
      x[i] = static_cast<int32_t>(rng.UniformInt(-1, 4));
    }
    for (int32_t code : {-1, 0, 3, 7}) {
      for (bool want_eq : {true, false}) {
        ExpectBitEqual<uint8_t>(n, [&](uint8_t* out) {
          CmpI32Const(x.data(), n, code, want_eq, out);
        });
      }
    }
  }
  SetForceScalar(false);
}

TEST(SimdTest, CmpI32Cols) {
  Rng rng(404);
  for (size_t n : Lengths()) {
    std::vector<int32_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(rng.UniformInt(-1, 2));
      b[i] = static_cast<int32_t>(rng.UniformInt(-1, 2));
    }
    for (bool want_eq : {true, false}) {
      ExpectBitEqual<uint8_t>(n, [&](uint8_t* out) {
        CmpI32Cols(a.data(), b.data(), n, want_eq, out);
      });
    }
  }
  SetForceScalar(false);
}

TEST(SimdTest, MaskCombinators) {
  Rng rng(505);
  for (size_t n : Lengths()) {
    std::vector<uint8_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<uint8_t>(rng.UniformInt(0, 1));
      b[i] = static_cast<uint8_t>(rng.UniformInt(0, 1));
    }
    ExpectBitEqual<uint8_t>(
        n, [&](uint8_t* out) { MaskAnd(a.data(), b.data(), n, out); });
    ExpectBitEqual<uint8_t>(
        n, [&](uint8_t* out) { MaskOr(a.data(), b.data(), n, out); });
    ExpectBitEqual<uint8_t>(n,
                            [&](uint8_t* out) { MaskNot(a.data(), n, out); });
    // Aliased output (out == a) is part of the contract.
    for (bool force : {true, false}) {
      SetForceScalar(force);
      std::vector<uint8_t> aliased = a;
      std::vector<uint8_t> expect(n);
      for (size_t i = 0; i < n; ++i) expect[i] = a[i] & b[i];
      MaskAnd(aliased.data(), b.data(), n, aliased.data());
      EXPECT_EQ(aliased, expect) << "n=" << n;
    }
    // Count agrees across levels and with the naive sum.
    size_t naive = 0;
    for (uint8_t v : a) naive += v != 0;
    SetForceScalar(true);
    EXPECT_EQ(MaskCount(a.data(), n), naive);
    SetForceScalar(false);
    EXPECT_EQ(MaskCount(a.data(), n), naive);
  }
  SetForceScalar(false);
}

TEST(SimdTest, WideningConversions) {
  Rng rng(606);
  for (size_t n : Lengths()) {
    std::vector<int64_t> xi(n);
    std::vector<uint8_t> xb(n);
    for (size_t i = 0; i < n; ++i) {
      // Includes magnitudes beyond 2^53 where the cast rounds.
      xi[i] = static_cast<int64_t>(rng.engine()());
      xb[i] = static_cast<uint8_t>(rng.UniformInt(0, 3));
    }
    if (n > 0) {
      xi[0] = (int64_t{1} << 53) + 1;
      xi[n - 1] = std::numeric_limits<int64_t>::min();
    }
    ExpectBitEqual<double>(n,
                           [&](double* out) { I64ToF64(xi.data(), n, out); });
    ExpectBitEqual<double>(n,
                           [&](double* out) { U8ToF64(xb.data(), n, out); });
    // U8ToF64 treats any non-zero byte as 1.0 (mask semantics).
    if (n > 0) {
      std::vector<double> out(n);
      xb[0] = 2;
      U8ToF64(xb.data(), n, out.data());
      EXPECT_EQ(out[0], 1.0);
    }
  }
  SetForceScalar(false);
}

}  // namespace
}  // namespace hyper::simd
