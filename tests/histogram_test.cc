// Histogram-training substrate tests: quantile binning invariants,
// histogram-vs-exact split parity (identical trees when every distinct value
// gets its own bin), PredictBatch bit-equality with per-row Predict, forest
// determinism across thread budgets, and engine-level A/B equality for the
// batched-inference path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "data/datasets.h"
#include "learn/binning.h"
#include "learn/forest.h"
#include "learn/frequency.h"
#include "learn/tree.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper::learn {
namespace {

/// Integer-valued fixture: sums of targets and squared targets are exactly
/// representable, so exact and histogram split scores agree bit for bit and
/// tree parity is a structural statement, not a tolerance.
void IntegerData(size_t n, size_t num_features, size_t cardinality,
                 uint64_t seed, FeatureMatrix* x, std::vector<double>* y) {
  Rng rng(seed);
  FeatureMatrix m(n, num_features);
  y->clear();
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t f = 0; f < num_features; ++f) {
      const double v = static_cast<double>(
          rng.UniformInt(0, static_cast<int64_t>(cardinality) - 1));
      m.Set(i, f, v);
      acc += v * static_cast<double>(f + 1);
    }
    y->push_back(acc > static_cast<double>(num_features * cardinality) / 3.0
                     ? 1.0
                     : 0.0);
  }
  *x = std::move(m);
}

// ---------------------------------------------------------------------------
// BinnedMatrix
// ---------------------------------------------------------------------------

TEST(BinnedMatrixTest, OneBinPerDistinctValue) {
  FeatureMatrix x(6, 1);
  const double vals[] = {3, 1, 2, 3, 1, 2};
  for (size_t i = 0; i < 6; ++i) x.Set(i, 0, vals[i]);
  auto binned = BinnedMatrix::Build(x, 256).value();
  ASSERT_EQ(binned.num_bins(0), 3u);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_DOUBLE_EQ(binned.bin_min(0, b), binned.bin_max(0, b));
    EXPECT_DOUBLE_EQ(binned.bin_min(0, b), static_cast<double>(b + 1));
  }
  // Codes map each row back to its value's bin.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(binned.bin_min(0, binned.code(i, 0)), vals[i]);
  }
}

TEST(BinnedMatrixTest, QuantileBinsCapAt256AndPartition) {
  const size_t n = 5000;
  Rng rng(17);
  FeatureMatrix x(n, 2);
  for (size_t i = 0; i < n; ++i) {
    x.Set(i, 0, rng.Uniform(0, 1));              // ~n distinct values
    x.Set(i, 1, std::exp(rng.Gaussian(0, 2)));   // heavily skewed
  }
  auto binned = BinnedMatrix::Build(x, 256).value();
  for (size_t f = 0; f < 2; ++f) {
    const size_t bins = binned.num_bins(f);
    ASSERT_LE(bins, 256u);
    ASSERT_GE(bins, 200u);  // plenty of resolution on continuous data
    // Bins are ordered and non-overlapping.
    for (size_t b = 0; b + 1 < bins; ++b) {
      EXPECT_LE(binned.bin_min(f, b), binned.bin_max(f, b));
      EXPECT_LT(binned.bin_max(f, b), binned.bin_min(f, b + 1));
    }
    // Every row's value lies inside its bin.
    for (size_t i = 0; i < n; ++i) {
      const uint8_t c = binned.code(i, f);
      EXPECT_GE(x.At(i, f), binned.bin_min(f, c));
      EXPECT_LE(x.At(i, f), binned.bin_max(f, c));
    }
  }
}

TEST(BinnedMatrixTest, EqualCountBinsOnSkewedData) {
  // 90% ties at one value must not starve the tail of bins.
  const size_t n = 1000;
  FeatureMatrix x(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.Set(i, 0, i < 900 ? 1.0 : 1000.0 + static_cast<double>(i));
  }
  auto binned = BinnedMatrix::Build(x, 16).value();
  // The tie run collapses into one bin; the 100 tail values share the rest.
  ASSERT_GE(binned.num_bins(0), 2u);
  ASSERT_LE(binned.num_bins(0), 16u);
  EXPECT_DOUBLE_EQ(binned.bin_max(0, 0), 1.0);
}

// ---------------------------------------------------------------------------
// Histogram-vs-exact parity
// ---------------------------------------------------------------------------

TEST(HistogramParityTest, SingleTreeIdenticalWhenBinsCoverDistinct) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    FeatureMatrix x;
    std::vector<double> y;
    IntegerData(600, 3, 20, seed, &x, &y);  // 20 distinct <= 64 thresholds

    TreeOptions exact_opt;
    exact_opt.use_histograms = false;
    DecisionTreeRegressor exact(exact_opt, /*seed=*/42);
    ASSERT_TRUE(exact.Fit(x, y).ok());

    TreeOptions hist_opt;
    hist_opt.use_histograms = true;
    DecisionTreeRegressor hist(hist_opt, /*seed=*/42);
    ASSERT_TRUE(hist.Fit(x, y).ok());

    EXPECT_EQ(exact.num_nodes(), hist.num_nodes()) << "seed " << seed;
    EXPECT_EQ(exact.depth(), hist.depth()) << "seed " << seed;
    EXPECT_EQ(exact.StructureDigest(), hist.StructureDigest())
        << "seed " << seed;
  }
}

TEST(HistogramParityTest, FractionalButExactValues) {
  // Values at multiples of 0.25 are exactly representable: parity must hold
  // for non-integers too.
  Rng rng(9);
  const size_t n = 400;
  FeatureMatrix x(n, 2);
  std::vector<double> y;
  for (size_t i = 0; i < n; ++i) {
    x.Set(i, 0, static_cast<double>(rng.UniformInt(0, 40)) * 0.25);
    x.Set(i, 1, static_cast<double>(rng.UniformInt(0, 7)));
    y.push_back(x.At(i, 0) > 5.0 || x.At(i, 1) > 5.0 ? 2.0 : -1.0);
  }
  TreeOptions exact_opt;
  exact_opt.use_histograms = false;
  TreeOptions hist_opt;
  hist_opt.use_histograms = true;
  DecisionTreeRegressor exact(exact_opt), hist(hist_opt);
  ASSERT_TRUE(exact.Fit(x, y).ok());
  ASSERT_TRUE(hist.Fit(x, y).ok());
  EXPECT_EQ(exact.StructureDigest(), hist.StructureDigest());
}

TEST(HistogramParityTest, ForestIdenticalWhenBinsCoverDistinct) {
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(800, 4, 12, /*seed=*/7, &x, &y);

  ForestOptions exact_opt;
  exact_opt.num_trees = 8;
  exact_opt.tree.use_histograms = false;
  ForestOptions hist_opt = exact_opt;
  hist_opt.tree.use_histograms = true;

  RandomForestRegressor exact(exact_opt), hist(hist_opt);
  ASSERT_TRUE(exact.Fit(x, y).ok());
  ASSERT_TRUE(hist.Fit(x, y).ok());
  for (size_t t = 0; t < exact.num_trees(); ++t) {
    EXPECT_EQ(exact.tree(t).StructureDigest(), hist.tree(t).StructureDigest())
        << "tree " << t;
  }
  // And therefore bit-identical predictions everywhere.
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p = {rng.Uniform(-2, 14), rng.Uniform(-2, 14),
                             rng.Uniform(-2, 14), rng.Uniform(-2, 14)};
    EXPECT_DOUBLE_EQ(exact.Predict(p), hist.Predict(p));
  }
}

TEST(HistogramQualityTest, ContinuousDataCloseToExact) {
  // > 256 distinct values: trees may differ, but the fitted function must
  // track the exact tree closely.
  Rng rng(23);
  const size_t n = 3000;
  FeatureMatrix x(n, 2);
  std::vector<double> y;
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(0, 1), b = rng.Uniform(0, 1);
    x.Set(i, 0, a);
    x.Set(i, 1, b);
    y.push_back(2.0 * a + b + rng.Gaussian(0, 0.05));
  }
  TreeOptions exact_opt;
  exact_opt.use_histograms = false;
  TreeOptions hist_opt;
  hist_opt.use_histograms = true;
  DecisionTreeRegressor exact(exact_opt), hist(hist_opt);
  ASSERT_TRUE(exact.Fit(x, y).ok());
  ASSERT_TRUE(hist.Fit(x, y).ok());
  double mad = 0.0;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    mad += std::fabs(exact.Predict(p) - hist.Predict(p));
  }
  EXPECT_LT(mad / 500.0, 0.05);
}

// ---------------------------------------------------------------------------
// PredictBatch bit-equality
// ---------------------------------------------------------------------------

TEST(PredictBatchTest, ForestMatchesPerRowBitForBit) {
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(500, 3, 50, /*seed=*/5, &x, &y);
  ForestOptions opt;
  opt.num_trees = 12;
  RandomForestRegressor forest(opt);
  ASSERT_TRUE(forest.Fit(x, y).ok());

  std::vector<double> batch(x.num_rows());
  forest.PredictBatch(x, batch);
  std::vector<double> row(x.num_cols());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    row.assign(x.row(r), x.row(r) + x.num_cols());
    const double expect = forest.Predict(row);
    ASSERT_EQ(std::memcmp(&expect, &batch[r], sizeof(double)), 0)
        << "row " << r << ": " << expect << " vs " << batch[r];
  }
  // The deprecated allocating wrapper routes through PredictBatch.
  std::vector<double> all = forest.PredictAll(x);
  ASSERT_EQ(all.size(), batch.size());
  EXPECT_EQ(std::memcmp(all.data(), batch.data(),
                        all.size() * sizeof(double)),
            0);
}

TEST(PredictBatchTest, FrequencyMatchesPerRowBitForBit) {
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(400, 2, 6, /*seed=*/3, &x, &y);
  FrequencyEstimator est(/*backoff=*/true, /*smoothing=*/4.0);
  ASSERT_TRUE(est.Fit(x, y).ok());
  std::vector<double> batch(x.num_rows());
  est.PredictBatch(x, batch);
  std::vector<double> row(x.num_cols());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    row.assign(x.row(r), x.row(r) + x.num_cols());
    const double expect = est.Predict(row);
    ASSERT_EQ(std::memcmp(&expect, &batch[r], sizeof(double)), 0);
  }
}

TEST(PredictBatchTest, SingleTreeMatchesPerRow) {
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(300, 2, 30, /*seed=*/8, &x, &y);
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  std::vector<double> batch(x.num_rows());
  tree.PredictBatch(x, batch);
  std::vector<double> row(x.num_cols());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    row.assign(x.row(r), x.row(r) + x.num_cols());
    EXPECT_DOUBLE_EQ(tree.Predict(row), batch[r]);
  }
}

// ---------------------------------------------------------------------------
// Forest determinism across thread budgets (histograms on)
// ---------------------------------------------------------------------------

TEST(ForestThreadsTest, DeterministicAcrossThreadCounts) {
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(1200, 3, 25, /*seed=*/13, &x, &y);

  std::vector<std::string> digests;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ForestOptions opt;
    opt.num_trees = 16;
    opt.num_threads = threads;
    opt.tree.use_histograms = true;
    RandomForestRegressor forest(opt);
    ASSERT_TRUE(forest.Fit(x, y).ok());
    std::string digest;
    for (size_t t = 0; t < forest.num_trees(); ++t) {
      digest += forest.tree(t).StructureDigest();
      digest += '|';
    }
    digests.push_back(std::move(digest));
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[0], digests[i]) << "thread budget #" << i;
  }
}

TEST(ForestThreadsTest, ExplicitBudgetOverridesWorkHeuristic) {
  // Small problem (n * trees below the auto-mode threshold): an explicit
  // budget still trains in parallel, and the answer matches sequential.
  FeatureMatrix x;
  std::vector<double> y;
  IntegerData(200, 2, 10, /*seed=*/21, &x, &y);
  ForestOptions seq;
  seq.num_trees = 8;
  seq.num_threads = 1;
  ForestOptions par = seq;
  par.num_threads = 3;
  RandomForestRegressor f_seq(seq), f_par(par);
  ASSERT_TRUE(f_seq.Fit(x, y).ok());
  ASSERT_TRUE(f_par.Fit(x, y).ok());
  for (size_t t = 0; t < f_seq.num_trees(); ++t) {
    EXPECT_EQ(f_seq.tree(t).StructureDigest(), f_par.tree(t).StructureDigest());
  }
}

}  // namespace
}  // namespace hyper::learn

// ---------------------------------------------------------------------------
// Engine-level A/B: batched inference and histogram training
// ---------------------------------------------------------------------------

namespace hyper::whatif {
namespace {

TEST(EngineBatchedInferenceTest, BitIdenticalToPerRowPath) {
  data::GermanOptions gopt;
  gopt.rows = 1500;
  auto ds = data::MakeGermanSyn(gopt).value();
  auto stmt = sql::ParseSql(
                  "Use German When Status = 1 Update(Status) = 2 "
                  "Output Count(Credit = 1) For Pre(Age) = 1")
                  .value();
  for (learn::EstimatorKind kind :
       {learn::EstimatorKind::kForest, learn::EstimatorKind::kFrequency}) {
    WhatIfOptions options;
    options.estimator = kind;
    options.forest.num_trees = 6;
    options.batched_inference = true;
    WhatIfEngine batched(&ds.db, &ds.graph, options);
    options.batched_inference = false;
    WhatIfEngine per_row(&ds.db, &ds.graph, options);
    const double a = batched.Run(*stmt.whatif).value().value;
    const double b = per_row.Run(*stmt.whatif).value().value;
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << learn::EstimatorKindName(kind) << ": " << a << " vs " << b;
  }
}

TEST(EngineHistogramTest, CloseToExactTraining) {
  data::GermanOptions gopt;
  gopt.rows = 2000;
  auto ds = data::MakeGermanSyn(gopt).value();
  auto stmt = sql::ParseSql(
                  "Use German Update(Status) = 3 Output Count(Credit = 1)")
                  .value();
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 8;
  options.forest.tree.use_histograms = true;
  WhatIfEngine hist(&ds.db, &ds.graph, options);
  options.forest.tree.use_histograms = false;
  WhatIfEngine exact(&ds.db, &ds.graph, options);
  const double h = hist.Run(*stmt.whatif).value().value;
  const double e = exact.Run(*stmt.whatif).value().value;
  // German features are small-cardinality discrete: bins cover every
  // distinct value, so training parity makes the answers identical.
  EXPECT_DOUBLE_EQ(h, e);
}

}  // namespace
}  // namespace hyper::whatif
