#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/opt_howto.h"
#include "data/datasets.h"
#include "howto/engine.h"
#include "sql/parser.h"

namespace hyper::howto {
namespace {

class HowToGermanTest : public ::testing::Test {
 protected:
  HowToGermanTest() {
    data::GermanOptions opt;
    opt.rows = 4000;
    opt.seed = 41;
    ds_ = std::make_unique<data::Dataset>(
        std::move(data::MakeGermanSyn(opt).value()));
    options_.whatif.estimator = learn::EstimatorKind::kFrequency;
  }

  HowToEngine Engine() const {
    return HowToEngine(&ds_->db, &ds_->graph, options_);
  }

  std::unique_ptr<data::Dataset> ds_;
  HowToOptions options_;
};

TEST_F(HowToGermanTest, BaselineEqualsObservationalAggregate) {
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  const double baseline = BaselineObjective(ds_->db, *stmt.howto).value();
  // Observational mean of Credit.
  const Table& t = *ds_->db.GetTable("German").value();
  double sum = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    sum += static_cast<double>(t.At(r, 8).int_value());
  }
  EXPECT_NEAR(baseline, sum / t.num_rows(), 1e-9);
}

TEST_F(HowToGermanTest, CandidatesRespectIntegerDomain) {
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto candidates = Engine().EnumerateCandidates(*stmt.howto).value();
  ASSERT_EQ(candidates.size(), 1u);
  ASSERT_EQ(candidates[0].size(), 4u);  // Status in {0,1,2,3}
  for (const auto& spec : candidates[0]) {
    EXPECT_EQ(spec.constant.type(), ValueType::kInt);
  }
}

TEST_F(HowToGermanTest, CandidatesRespectAbsRange) {
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status "
                  "Limit 1 <= Post(Status) <= 2 "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto candidates = Engine().EnumerateCandidates(*stmt.howto).value();
  ASSERT_EQ(candidates[0].size(), 2u);
  for (const auto& spec : candidates[0]) {
    const int64_t v = spec.constant.int_value();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 2);
  }
}

TEST_F(HowToGermanTest, CandidatesRespectL1Limit) {
  // Mean |v - Status_t| over all tuples must stay under the bound; a tiny
  // bound keeps only candidates near the observational mean.
  auto loose = sql::ParseSql(
                   "Use German HowToUpdate Status "
                   "Limit L1(Pre(Status), Post(Status)) <= 10 "
                   "ToMaximize Avg(Post(Credit))")
                   .value();
  auto tight = sql::ParseSql(
                   "Use German HowToUpdate Status "
                   "Limit L1(Pre(Status), Post(Status)) <= 0.9 "
                   "ToMaximize Avg(Post(Credit))")
                   .value();
  auto engine = Engine();
  const size_t all = engine.EnumerateCandidates(*loose.howto)
                         .value()[0]
                         .size();
  const size_t few = engine.EnumerateCandidates(*tight.howto)
                         .value()[0]
                         .size();
  EXPECT_EQ(all, 4u);
  EXPECT_LT(few, all);
  EXPECT_GE(few, 1u);
}

TEST_F(HowToGermanTest, PicksMaxStatus) {
  auto result = Engine().RunSql(
      "Use German HowToUpdate Status ToMaximize Avg(Post(Credit))");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->plan.size(), 1u);
  ASSERT_TRUE(result->plan[0].changed);
  EXPECT_TRUE(result->plan[0].update.constant.Equals(Value::Int(3)));
  EXPECT_GT(result->objective_value, result->baseline_value);
  EXPECT_TRUE(result->used_mck);
  EXPECT_EQ(result->candidates_evaluated, 4u);
}

TEST_F(HowToGermanTest, MatchesOptHowToGroundTruthPlan) {
  // §5.4: HypeR's plan coincides with exhaustive enumeration against the
  // structural equations.
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status, Savings "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto engine = Engine();
  auto hyper = engine.Run(*stmt.howto).value();

  auto candidates = engine.EnumerateCandidates(*stmt.howto).value();
  auto scorer =
      baselines::MakeGroundTruthScorer(&ds_->db, &ds_->scm, stmt.howto.get());
  auto exact = baselines::OptHowTo(*stmt.howto, candidates, scorer).value();

  // Cross product: (4+1) * (3+1) = 20 combinations.
  EXPECT_EQ(exact.combinations_evaluated, 20u);
  ASSERT_EQ(hyper.plan.size(), exact.plan.size());
  for (size_t a = 0; a < hyper.plan.size(); ++a) {
    EXPECT_EQ(hyper.plan[a].changed, exact.plan[a].changed) << a;
    if (hyper.plan[a].changed && exact.plan[a].changed) {
      EXPECT_TRUE(hyper.plan[a].update.constant.Equals(
          exact.plan[a].update.constant))
          << a;
    }
  }
}

TEST_F(HowToGermanTest, MckAndMilpAgree) {
  const std::string query =
      "Use German HowToUpdate Status, Savings, Housing "
      "ToMaximize Avg(Post(Credit))";
  auto mck_result = Engine().RunSql(query).value();
  HowToOptions milp_options = options_;
  milp_options.prefer_mck = false;
  auto milp_result =
      HowToEngine(&ds_->db, &ds_->graph, milp_options).RunSql(query).value();
  EXPECT_TRUE(mck_result.used_mck);
  EXPECT_FALSE(milp_result.used_mck);
  EXPECT_NEAR(mck_result.objective_value, milp_result.objective_value, 1e-9);
  for (size_t a = 0; a < mck_result.plan.size(); ++a) {
    EXPECT_EQ(mck_result.plan[a].changed, milp_result.plan[a].changed);
  }
}

TEST_F(HowToGermanTest, GlobalBudgetForcesSelection) {
  HowToOptions budgeted = options_;
  budgeted.global_l1_budget = 0.0;  // no paid change allowed
  auto result = HowToEngine(&ds_->db, &ds_->graph, budgeted)
                    .RunSql(
                        "Use German HowToUpdate Status, Savings "
                        "ToMaximize Avg(Post(Credit))")
                    .value();
  // Every Set-update has positive L1 cost here, so nothing can change.
  for (const AttributeChoice& c : result.plan) {
    EXPECT_FALSE(c.changed);
  }
  EXPECT_NEAR(result.objective_value, result.baseline_value, 1e-9);
}

TEST_F(HowToGermanTest, ParallelScoringBitEqualAcrossThreadCounts) {
  // Candidate scoring shards the (attribute, candidate) pairs over the
  // worker pool; the ordered merge must make every reported number — not
  // just the chosen plan — bit-for-bit identical to the sequential loop.
  const std::string query =
      "Use German HowToUpdate Status, Savings "
      "ToMaximize Avg(Post(Credit))";
  HowToOptions serial = options_;
  serial.whatif.num_threads = 1;
  auto ref = HowToEngine(&ds_->db, &ds_->graph, serial).RunSql(query);
  ASSERT_TRUE(ref.ok()) << ref.status();
  for (size_t threads : {2u, 4u, 8u}) {
    HowToOptions parallel = options_;
    parallel.whatif.num_threads = threads;
    auto got = HowToEngine(&ds_->db, &ds_->graph, parallel).RunSql(query);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(ref->baseline_value, got->baseline_value) << threads;
    EXPECT_EQ(ref->objective_value, got->objective_value) << threads;
    EXPECT_EQ(ref->PlanToString(), got->PlanToString()) << threads;
    EXPECT_EQ(ref->candidates_evaluated, got->candidates_evaluated);
    ASSERT_EQ(ref->candidates.size(), got->candidates.size());
    for (size_t a = 0; a < ref->candidates.size(); ++a) {
      ASSERT_EQ(ref->candidates[a].size(), got->candidates[a].size());
      for (size_t i = 0; i < ref->candidates[a].size(); ++i) {
        EXPECT_EQ(ref->candidates[a][i].objective_value,
                  got->candidates[a][i].objective_value);
        EXPECT_EQ(ref->candidates[a][i].delta, got->candidates[a][i].delta);
        EXPECT_EQ(ref->candidates[a][i].cost, got->candidates[a][i].cost);
      }
    }
  }
}

TEST_F(HowToGermanTest, BudgetPrunesCostInfeasibleCandidates) {
  // With a global L1 budget, candidates whose own cost busts the budget are
  // skipped without a what-if evaluation. Pruning must be sound (only
  // candidates that could never be chosen are pruned) and must not change
  // the chosen plan relative to the exhaustive MILP solve over the same
  // pruned candidate set.
  const std::string query =
      "Use German HowToUpdate Status, Savings "
      "ToMaximize Avg(Post(Credit))";
  // Unbudgeted run to learn the cost spectrum.
  auto free_run = Engine().RunSql(query).value();
  EXPECT_EQ(0u, free_run.candidates_pruned);
  double min_cost = 1e300, max_cost = 0.0;
  for (const auto& group : free_run.candidates) {
    for (const auto& cu : group) {
      if (cu.cost > 0) min_cost = std::min(min_cost, cu.cost);
      max_cost = std::max(max_cost, cu.cost);
    }
  }
  ASSERT_LT(min_cost, max_cost);

  // A budget strictly between the cheapest and the dearest candidate must
  // prune some candidates but not all, and every pruned candidate's own
  // cost must exceed the budget (the admissible-bound soundness condition).
  const double budget = 0.5 * (min_cost + max_cost);
  HowToOptions budgeted = options_;
  budgeted.global_l1_budget = budget;
  auto pruned_run =
      HowToEngine(&ds_->db, &ds_->graph, budgeted).RunSql(query).value();
  EXPECT_GT(pruned_run.candidates_pruned, 0u);
  EXPECT_GT(pruned_run.candidates_evaluated, 0u);
  double plan_cost = 0.0;
  for (const auto& group : pruned_run.candidates) {
    for (const auto& cu : group) {
      if (cu.pruned) EXPECT_GT(cu.cost, budget);
    }
  }
  for (const auto& choice : pruned_run.plan) {
    if (choice.changed) plan_cost += choice.cost;
  }
  EXPECT_LE(plan_cost, budget + 1e-9);

  // MCK and branch-and-bound agree on the pruned instance.
  HowToOptions milp = budgeted;
  milp.prefer_mck = false;
  auto milp_run =
      HowToEngine(&ds_->db, &ds_->graph, milp).RunSql(query).value();
  EXPECT_NEAR(pruned_run.objective_value, milp_run.objective_value, 1e-9);

  // A budget above every candidate's cost prunes nothing and reproduces the
  // unbudgeted plan (single-attribute costs here never couple).
  HowToOptions roomy = options_;
  roomy.global_l1_budget = 2.0 * max_cost * free_run.candidates.size();
  auto roomy_run =
      HowToEngine(&ds_->db, &ds_->graph, roomy).RunSql(query).value();
  EXPECT_EQ(0u, roomy_run.candidates_pruned);
  EXPECT_EQ(free_run.PlanToString(), roomy_run.PlanToString());
}

TEST_F(HowToGermanTest, MinimizeFlipsDirection) {
  auto result = Engine().RunSql(
      "Use German HowToUpdate Status ToMinimize Avg(Post(Credit))");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->plan[0].changed);
  EXPECT_TRUE(result->plan[0].update.constant.Equals(Value::Int(0)));
  EXPECT_LT(result->objective_value, result->baseline_value);
}

TEST_F(HowToGermanTest, WhenRestrictsUpdateSet) {
  auto result = Engine().RunSql(
      "Use German When Age = 0 HowToUpdate Status "
      "ToMaximize Avg(Post(Credit))");
  ASSERT_TRUE(result.ok()) << result.status();
  // Updating only the young cohort moves the objective less than updating
  // everyone.
  auto full = Engine().RunSql(
      "Use German HowToUpdate Status ToMaximize Avg(Post(Credit))");
  EXPECT_LT(result->objective_value, full->objective_value);
  EXPECT_GT(result->objective_value, result->baseline_value);
}

TEST_F(HowToGermanTest, LexicographicLocksPrimary) {
  auto primary = sql::ParseSql(
                     "Use German HowToUpdate Status, Savings "
                     "ToMaximize Avg(Post(Credit))")
                     .value();
  auto secondary = sql::ParseSql(
                       "Use German HowToUpdate Status, Savings "
                       "ToMinimize Avg(Post(CreditAmount))")
                       .value();
  auto engine = Engine();
  auto solo = engine.Run(*primary.howto).value();
  auto lex = engine
                 .RunLexicographic({primary.howto.get(),
                                    secondary.howto.get()})
                 .value();
  // The lexicographic solution achieves the same primary objective.
  EXPECT_NEAR(lex.objective_value, solo.objective_value, 1e-6);
}

TEST_F(HowToGermanTest, RejectsCausallyRelatedUpdates) {
  // Savings affects CreditAmount in the discrete German SCM.
  auto result = Engine().RunSql(
      "Use German HowToUpdate Savings, CreditAmount "
      "ToMaximize Avg(Post(Credit))");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HowToGermanTest, RejectsImmutableAttribute) {
  auto result = Engine().RunSql(
      "Use German HowToUpdate Age ToMaximize Avg(Post(Credit))");
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(HowToGermanTest, RejectsNonHowToSql) {
  EXPECT_FALSE(Engine().RunSql("Select Id From German").ok());
}

// ---------------------------------------------------------------------------
// Continuous attribute bucketization (Figure 9 machinery)
// ---------------------------------------------------------------------------

TEST(HowToContinuousTest, MoreBucketsRefineTheOptimum) {
  data::GermanOptions opt;
  opt.rows = 12000;
  opt.seed = 43;
  opt.continuous_amount = true;
  auto ds = data::MakeGermanSyn(opt).value();

  auto run = [&](size_t buckets) {
    HowToOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.num_buckets = buckets;
    HowToEngine engine(&ds.db, &ds.graph, options);
    return engine
        .RunSql(
            "Use German HowToUpdate CreditAmount "
            "ToMaximize Avg(Post(Credit))")
        .value();
  };
  auto coarse = run(2);
  auto fine = run(10);
  EXPECT_EQ(coarse.candidates_evaluated, 2u);
  EXPECT_EQ(fine.candidates_evaluated, 10u);
  // Finer buckets cannot do worse (same family of candidate sets).
  EXPECT_GE(fine.objective_value, coarse.objective_value - 1e-6);
  // The chosen amount should be in the upper half of the range (good
  // credit rises monotonically with the amount in this SCM).
  ASSERT_TRUE(fine.plan[0].changed);
  EXPECT_GT(fine.plan[0].update.constant.AsDouble().value(), 3000.0);
}

// ---------------------------------------------------------------------------
// Min-cost formulation (§4.3 footnote 3)
// ---------------------------------------------------------------------------

class MinCostTest : public ::testing::Test {
 protected:
  MinCostTest() {
    data::GermanOptions opt;
    opt.rows = 4000;
    opt.seed = 47;
    ds_ = std::make_unique<data::Dataset>(
        std::move(data::MakeGermanSyn(opt).value()));
    options_.whatif.estimator = learn::EstimatorKind::kFrequency;
  }

  std::unique_ptr<data::Dataset> ds_;
  HowToOptions options_;
};

TEST_F(MinCostTest, ReachesTargetAtMinimalCost) {
  HowToEngine engine(&ds_->db, &ds_->graph, options_);
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status, Savings "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  // First find the full-maximization value, then ask for a modest target.
  auto max_plan = engine.Run(*stmt.howto).value();
  const double modest_target =
      max_plan.baseline_value +
      0.3 * (max_plan.objective_value - max_plan.baseline_value);
  auto cheap = engine.RunMinCost(*stmt.howto, modest_target).value();
  EXPECT_GE(cheap.objective_value, modest_target - 1e-9);
  // The cheap plan must not cost more than the full-max plan.
  double cheap_cost = 0, max_cost = 0;
  for (const auto& c : cheap.plan) cheap_cost += c.changed ? c.cost : 0;
  for (const auto& c : max_plan.plan) max_cost += c.changed ? c.cost : 0;
  EXPECT_LE(cheap_cost, max_cost + 1e-9);
}

TEST_F(MinCostTest, TrivialTargetCostsNothing) {
  HowToEngine engine(&ds_->db, &ds_->graph, options_);
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto result =
      engine.RunMinCost(*stmt.howto, /*objective_target=*/0.0).value();
  // The baseline already exceeds 0: no update needed.
  EXPECT_FALSE(result.plan[0].changed);
}

TEST_F(MinCostTest, ImpossibleTargetFails) {
  HowToEngine engine(&ds_->db, &ds_->graph, options_);
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate Status "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto result = engine.RunMinCost(*stmt.howto, /*objective_target=*/5.0);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HowToContinuousTest, InSetLimitsUseListedValues) {
  data::GermanOptions opt;
  opt.rows = 1000;
  opt.continuous_amount = true;
  auto ds = data::MakeGermanSyn(opt).value();
  HowToOptions options;
  options.whatif.estimator = learn::EstimatorKind::kFrequency;
  HowToEngine engine(&ds.db, &ds.graph, options);
  auto stmt = sql::ParseSql(
                  "Use German HowToUpdate CreditAmount "
                  "Limit Post(CreditAmount) In (1000, 9000) "
                  "ToMaximize Avg(Post(Credit))")
                  .value();
  auto candidates = engine.EnumerateCandidates(*stmt.howto).value();
  ASSERT_EQ(candidates[0].size(), 2u);
  auto result = engine.Run(*stmt.howto).value();
  ASSERT_TRUE(result.plan[0].changed);
  EXPECT_TRUE(result.plan[0].update.constant.Equals(Value::Int(9000)));
}

}  // namespace
}  // namespace hyper::howto
