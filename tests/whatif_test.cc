#include <gtest/gtest.h>

#include <cmath>

#include "causal/scm.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/compile.h"
#include "whatif/engine.h"
#include "whatif/naive.h"

namespace hyper::whatif {
namespace {

using causal::Assignment;
using causal::DiscreteMechanism;
using causal::Scm;

// ---------------------------------------------------------------------------
// Engineered fixture: binary confounder model whose CPTs are matched EXACTLY
// by the empirical frequencies of the database. With the frequency
// estimator, the efficient engine and the possible-world oracle must then
// agree to machine precision — the strongest end-to-end check of §3
// (folding, S selection, adjustment, blocks, decomposable aggregation).
//
//   P(Y=1 | B, C) = 0.25 + 0.25*B + 0.25*C
// ---------------------------------------------------------------------------

double TruthY(int b, int c) { return 0.25 + 0.25 * b + 0.25 * c; }

Scm ConfounderScm() {
  Scm scm;
  auto bern = [](auto prob_fn) {
    return std::make_unique<DiscreteMechanism>(
        std::vector<Value>{Value::Int(0), Value::Int(1)},
        [prob_fn](const std::vector<Value>& ps) {
          double p = prob_fn(ps);
          return std::vector<double>{1.0 - p, p};
        });
  };
  EXPECT_TRUE(
      scm.AddAttribute("C", {}, bern([](const std::vector<Value>&) {
                         return 0.5;
                       }))
          .ok());
  EXPECT_TRUE(scm.AddAttribute("B", {{"C", ""}},
                               bern([](const std::vector<Value>& ps) {
                                 return ps[0].int_value() ? 0.75 : 0.25;
                               }))
                  .ok());
  EXPECT_TRUE(scm.AddAttribute("Y", {{"B", ""}, {"C", ""}},
                               bern([](const std::vector<Value>& ps) {
                                 return TruthY(
                                     static_cast<int>(ps[0].int_value()),
                                     static_cast<int>(ps[1].int_value()));
                               }))
                  .ok());
  return scm;
}

/// 8 rows per (c, b) cell; the number of Y=1 rows per cell is exactly
/// 8 * TruthY(b, c), which is integral for all cells.
Database EngineeredDb() {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"C", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  int id = 0;
  for (int c = 0; c <= 1; ++c) {
    for (int b = 0; b <= 1; ++b) {
      const int ones = static_cast<int>(std::lround(8 * TruthY(b, c)));
      for (int i = 0; i < 8; ++i) {
        t.AppendUnchecked({Value::Int(id++), Value::Int(c), Value::Int(b),
                           Value::Int(i < ones ? 1 : 0)});
      }
    }
  }
  EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  return db;
}

class EngineVsOracle : public ::testing::Test {
 protected:
  EngineVsOracle()
      : db_(EngineeredDb()),
        scm_(ConfounderScm()),
        graph_(scm_.Graph()) {}

  /// Runs the efficient engine (frequency estimator, full data) and the
  /// exact oracle on the same query text and checks agreement.
  void ExpectAgree(const std::string& query, double tolerance = 1e-9) {
    auto stmt = sql::ParseSql(query);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    ASSERT_NE(stmt->whatif, nullptr);

    WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    WhatIfEngine engine(&db_, &graph_, options);
    auto fast = engine.Run(*stmt->whatif);
    ASSERT_TRUE(fast.ok()) << fast.status();

    auto exact = NaiveWhatIf(db_, scm_, *stmt->whatif);
    ASSERT_TRUE(exact.ok()) << exact.status();

    EXPECT_NEAR(fast->value, *exact, tolerance) << query;
  }

  Database db_;
  Scm scm_;
  causal::CausalGraph graph_;
};

TEST_F(EngineVsOracle, CountUpdatedSubset) {
  ExpectAgree(
      "Use R When Id <= 2 Update(B) = 1 Output Count(Y = 1)");
}

TEST_F(EngineVsOracle, CountWithWhenOnConfounder) {
  ExpectAgree(
      "Use R When C = 1 And Id <= 18 Update(B) = 0 Output Count(Y = 1)");
}

TEST_F(EngineVsOracle, CountWithPreFilterInFor) {
  ExpectAgree(
      "Use R When Id <= 4 Update(B) = 1 Output Count(*) "
      "For Post(Y) = 1 And Pre(C) = 1");
}

TEST_F(EngineVsOracle, CountStarIsDeterministic) {
  ExpectAgree("Use R When Id <= 3 Update(B) = 1 Output Count(*)");
}

TEST_F(EngineVsOracle, SumOfPostY) {
  ExpectAgree("Use R When Id <= 4 Update(B) = 1 Output Sum(Post(Y))");
}

TEST_F(EngineVsOracle, AvgWithPreOnlyFor) {
  ExpectAgree(
      "Use R When Id <= 4 Update(B) = 1 Output Avg(Post(Y)) "
      "For Pre(C) = 0");
}

TEST_F(EngineVsOracle, SumWithPostCondition) {
  ExpectAgree(
      "Use R When Id <= 4 Update(B) = 1 Output Sum(Post(Y)) "
      "For Post(Y) = 1");
}

TEST_F(EngineVsOracle, MixedPrePostAtomGrounding) {
  // Post(Y) >= Pre(Y) folds per tuple into "Post(Y) >= <const>" (Prop. 6).
  ExpectAgree(
      "Use R When Id <= 3 Update(B) = 1 Output Count(*) "
      "For Post(Y) >= Pre(Y)");
}

TEST_F(EngineVsOracle, DisjunctiveFor) {
  ExpectAgree(
      "Use R When Id <= 3 Update(B) = 1 Output Count(*) "
      "For Post(Y) = 1 Or Pre(C) = 1");
}

TEST_F(EngineVsOracle, NegatedFor) {
  ExpectAgree(
      "Use R When Id <= 3 Update(B) = 1 Output Count(*) "
      "For Not (Post(Y) = 0)");
}

TEST_F(EngineVsOracle, NoWhenUpdatesEverything) {
  // All 32 tuples update; keep the oracle feasible by filtering to C=0 in
  // When instead... here we restrict via When to 5 tuples.
  ExpectAgree(
      "Use R When Id <= 4 Update(B) = 1 Output Count(Y = 1)");
}

TEST_F(EngineVsOracle, UpdateToObservedValueIsNoOpForTruth) {
  // Setting B to 1 on tuples that already have B=1 must not change Y's
  // distribution relative to observation: engine and oracle still agree.
  ExpectAgree("Use R When B = 1 And Id <= 20 Update(B) = 1 "
              "Output Count(Y = 1)");
}

// ---------------------------------------------------------------------------
// Engine behaviour on larger sampled data, compared to analytic truth
// ---------------------------------------------------------------------------

Database SampleDb(const Scm& scm, size_t n, uint64_t seed) {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"C", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Assignment a = scm.SampleEntity(rng).value();
    t.AppendUnchecked({Value::Int(static_cast<int64_t>(i)), a.at("C"),
                       a.at("B"), a.at("Y")});
  }
  EXPECT_TRUE(db.AddTable(std::move(t)).ok());
  return db;
}

class EngineStatistical : public ::testing::TestWithParam<learn::EstimatorKind> {
 protected:
  EngineStatistical()
      : scm_(ConfounderScm()),
        db_(SampleDb(scm_, 20000, 77)),
        graph_(scm_.Graph()) {}

  Scm scm_;
  Database db_;
  causal::CausalGraph graph_;
};

TEST_P(EngineStatistical, AdjustsForConfounding) {
  // do(B=1): P(Y=1 | do(B=1)) = E_C[0.5 + 0.25 C] = 0.625, so the expected
  // count is 0.625 * n. The correlational value P(Y=1 | B=1) is higher
  // (~0.667) because C confounds.
  WhatIfOptions options;
  options.estimator = GetParam();
  WhatIfEngine engine(&db_, &graph_, options);
  auto result =
      engine.RunSql("Use R Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  const double n = static_cast<double>(db_.GetTable("R").value()->num_rows());
  EXPECT_NEAR(result->value / n, 0.625, 0.02);
  // The adjustment set picked up the confounder.
  ASSERT_EQ(result->backdoor.size(), 1u);
  EXPECT_EQ(result->backdoor[0], "C");
}

TEST_P(EngineStatistical, IndepBaselineIsConfounded) {
  WhatIfOptions options;
  options.estimator = GetParam();
  options.backdoor = BackdoorMode::kUpdateOnly;
  WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql("Use R Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  const double n = static_cast<double>(db_.GetTable("R").value()->num_rows());
  // P(Y=1|B=1) = 0.25 + 0.25 + 0.25*P(C=1|B=1) = 0.5 + 0.25*0.75 = 0.6875.
  EXPECT_NEAR(result->value / n, 0.6875, 0.02);
  EXPECT_TRUE(result->backdoor.empty());
}

TEST_P(EngineStatistical, NbModeStillAccurateHere) {
  // With only one other attribute (the true confounder), HypeR-NB's
  // adjust-on-everything policy coincides with the correct adjustment.
  WhatIfOptions options;
  options.estimator = GetParam();
  options.backdoor = BackdoorMode::kAllAttributes;
  WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql("Use R Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  const double n = static_cast<double>(db_.GetTable("R").value()->num_rows());
  EXPECT_NEAR(result->value / n, 0.625, 0.02);
}

TEST_P(EngineStatistical, SampledVariantClose) {
  WhatIfOptions options;
  options.estimator = GetParam();
  options.sample_size = 4000;
  WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql("Use R Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  const double n = static_cast<double>(db_.GetTable("R").value()->num_rows());
  EXPECT_NEAR(result->value / n, 0.625, 0.04);
}

INSTANTIATE_TEST_SUITE_P(Estimators, EngineStatistical,
                         ::testing::Values(learn::EstimatorKind::kFrequency,
                                           learn::EstimatorKind::kForest),
                         [](const auto& info) {
                           return learn::EstimatorKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Engine unit behaviour
// ---------------------------------------------------------------------------

TEST(WhatIfEngineTest, BlocksMatchSingleBlockValue) {
  Scm scm = ConfounderScm();
  Database db = SampleDb(scm, 2000, 5);
  causal::CausalGraph graph = scm.Graph();

  WhatIfOptions with_blocks;
  with_blocks.estimator = learn::EstimatorKind::kFrequency;
  with_blocks.use_blocks = true;
  WhatIfOptions without_blocks = with_blocks;
  without_blocks.use_blocks = false;

  const std::string query = "Use R Update(B) = 1 Output Count(Y = 1)";
  auto a = WhatIfEngine(&db, &graph, with_blocks).RunSql(query);
  auto b = WhatIfEngine(&db, &graph, without_blocks).RunSql(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->value, b->value, 1e-9);
  EXPECT_EQ(a->num_blocks, 2000u);  // per-tuple blocks
  EXPECT_EQ(b->num_blocks, 1u);
}

TEST(WhatIfEngineTest, ScaleAndShiftUpdates) {
  Scm scm = ConfounderScm();
  Database db = SampleDb(scm, 100, 3);
  causal::CausalGraph graph = scm.Graph();
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  WhatIfEngine engine(&db, &graph, options);
  // B in {0, 1}: scaling by 1.0 and shifting by 0 must be exact no-ops —
  // every tuple keeps its observed Y (no estimation noise by design of the
  // no-op check... they are still "affected" so the estimator runs; with
  // the frequency estimator conditioned on the unchanged B and C, the
  // prediction equals the empirical conditional).
  auto noop = engine.RunSql(
      "Use R Update(B) = 1 * Pre(B) Output Count(Y = 1)");
  ASSERT_TRUE(noop.ok()) << noop.status();
  // Observational count of Y=1 given the estimator sees unchanged features:
  // expectation equals empirical P(Y=1|B,C) summed over tuples = observed
  // count (frequency estimator is exactly the empirical conditional).
  double observed = 0;
  const Table& t = *db.GetTable("R").value();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    observed += t.At(r, 3).int_value();
  }
  EXPECT_NEAR(noop->value, observed, 1e-6);

  auto shifted = engine.RunSql(
      "Use R Update(B) = 1 + Pre(B) Output Count(Y = 1)");
  ASSERT_TRUE(shifted.ok()) << shifted.status();
}

TEST(WhatIfEngineTest, ResultDiagnosticsPopulated) {
  Scm scm = ConfounderScm();
  Database db = SampleDb(scm, 500, 9);
  causal::CausalGraph graph = scm.Graph();
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  WhatIfEngine engine(&db, &graph, options);
  auto result = engine.RunSql(
      "Use R When C = 1 Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->view_rows, 500u);
  EXPECT_GT(result->updated_rows, 0u);
  EXPECT_LT(result->updated_rows, 500u);
  EXPECT_GE(result->num_patterns, 1u);
  EXPECT_GE(result->total_seconds, 0.0);
}

TEST(WhatIfEngineTest, RejectsNonWhatIfSql) {
  Database db = EngineeredDb();
  WhatIfEngine engine(&db, nullptr, {});
  EXPECT_FALSE(engine.RunSql("Select Id From R").ok());
}

TEST(WhatIfEngineTest, RejectsImmutableUpdate) {
  Database db = EngineeredDb();
  WhatIfEngine engine(&db, nullptr, {});
  auto result = engine.RunSql("Use R Update(Id) = 7 Output Count(*)");
  EXPECT_FALSE(result.ok());
}

TEST(WhatIfEngineTest, RejectsPostInWhen) {
  Database db = EngineeredDb();
  WhatIfEngine engine(&db, nullptr, {});
  auto result = engine.RunSql(
      "Use R When Post(Y) = 1 Update(B) = 1 Output Count(*)");
  EXPECT_FALSE(result.ok());
}

TEST(WhatIfEngineTest, NullGraphFallsBackToNb) {
  Scm scm = ConfounderScm();
  Database db = SampleDb(scm, 8000, 21);
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  WhatIfEngine engine(&db, /*graph=*/nullptr, options);
  auto result = engine.RunSql("Use R Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  const double n = 8000;
  EXPECT_NEAR(result->value / n, 0.625, 0.03);
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

TEST(ExplainTest, ReportsPlanFacts) {
  Database db = EngineeredDb();
  Scm scm = ConfounderScm();
  causal::CausalGraph graph = scm.Graph();
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  WhatIfEngine engine(&db, &graph, options);
  auto plan = engine.ExplainSql(
      "Use R When C = 1 Update(B) = 1 Output Count(Y = 1)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // S = the 16 tuples with C = 1.
  EXPECT_NE(plan->find("S has 16 tuple(s)"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("update: B <- set(1)"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("adjust (B -> Y): {C}"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("estimator: frequency"), std::string::npos);
}

TEST(ExplainTest, RejectsNonWhatIf) {
  Database db = EngineeredDb();
  WhatIfEngine engine(&db, nullptr, {});
  EXPECT_FALSE(engine.ExplainSql("Select Id From R").ok());
}

// ---------------------------------------------------------------------------
// Compile layer
// ---------------------------------------------------------------------------

TEST(CompileTest, BareTableView) {
  Database db = EngineeredDb();
  auto stmt =
      sql::ParseSql("Use R Update(B) = 1 Output Count(Y = 1)").value();
  auto compiled = CompileWhatIf(db, *stmt.whatif);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->view_info->update_relation, "R");
  EXPECT_EQ(compiled->view_info->view->num_rows(), 32u);
  EXPECT_EQ(compiled->view_info->view_key_columns,
            std::vector<std::string>{"Id"});
  // Count(pred) folded into For.
  ASSERT_NE(compiled->for_pred, nullptr);
  EXPECT_TRUE(sql::ContainsPost(*compiled->for_pred));
}

TEST(CompileTest, UpdateSpecApply) {
  UpdateSpec set{"A", sql::UpdateFuncKind::kSet, Value::Int(5)};
  EXPECT_TRUE(set.Apply(Value::Int(1)).value().Equals(Value::Int(5)));
  UpdateSpec scale{"A", sql::UpdateFuncKind::kScale, Value::Double(1.1)};
  EXPECT_NEAR(scale.Apply(Value::Double(100)).value().double_value(), 110,
              1e-12);
  UpdateSpec shift{"A", sql::UpdateFuncKind::kShift, Value::Double(-50)};
  EXPECT_NEAR(shift.Apply(Value::Double(100)).value().double_value(), 50,
              1e-12);
  EXPECT_FALSE(scale.Apply(Value::String("red")).ok());
}

TEST(CompileTest, UnknownUpdateAttributeFails) {
  Database db = EngineeredDb();
  auto stmt =
      sql::ParseSql("Use R Update(Zzz) = 1 Output Count(*)").value();
  EXPECT_FALSE(CompileWhatIf(db, *stmt.whatif).ok());
}

TEST(CompileTest, UnknownForAttributeFails) {
  Database db = EngineeredDb();
  auto stmt = sql::ParseSql(
                  "Use R Update(B) = 1 Output Count(*) For Pre(Zzz) = 1")
                  .value();
  EXPECT_FALSE(CompileWhatIf(db, *stmt.whatif).ok());
}

// ---------------------------------------------------------------------------
// Columnar path: the columnar + compiled-expression substrate must return
// exactly what the legacy row interpreter returns, and the parallel block
// loop must reproduce the single-threaded answer bit for bit.
// ---------------------------------------------------------------------------

struct PathQuery {
  const char* name;
  const char* sql;
};

const PathQuery kPathQueries[] = {
    {"count-for", "Use German Update(Status) = 3 Output Count(Credit = 1) "
                  "For Pre(Age) = 1"},
    {"count-nofor", "Use German Update(Status) = 3 Output Count(Credit = 1)"},
    {"avg", "Use German Update(Status) = 3 Output Avg(Credit) "
            "For Pre(Age) = 1"},
    {"sum-when", "Use German When Age = 1 Update(Status) = 2 "
                 "Output Sum(Credit)"},
    {"scale", "Use German When Sex = 1 Update(Status) = 2 "
              "Output Count(Credit = 1)"},
};

TEST(ColumnarPathTest, MatchesRowPathOnGerman) {
  data::GermanOptions opt;
  opt.rows = 1500;
  auto ds = data::MakeGermanSyn(opt);
  ASSERT_TRUE(ds.ok());
  for (auto estimator :
       {learn::EstimatorKind::kFrequency, learn::EstimatorKind::kForest}) {
    for (const PathQuery& q : kPathQueries) {
      WhatIfOptions options;
      options.estimator = estimator;
      options.forest.num_trees = 4;
      options.use_columnar = false;
      WhatIfEngine rows(&ds->db, &ds->graph, options);
      options.use_columnar = true;
      options.num_threads = 1;
      WhatIfEngine columnar(&ds->db, &ds->graph, options);

      auto a = rows.RunSql(q.sql);
      auto b = columnar.RunSql(q.sql);
      ASSERT_TRUE(a.ok()) << q.name << ": " << a.status();
      ASSERT_TRUE(b.ok()) << q.name << ": " << b.status();
      EXPECT_EQ(a->value, b->value) << q.name;  // bit-for-bit
      EXPECT_EQ(a->updated_rows, b->updated_rows) << q.name;
      EXPECT_EQ(a->num_blocks, b->num_blocks) << q.name;
      EXPECT_EQ(a->num_patterns, b->num_patterns) << q.name;
      EXPECT_EQ(a->backdoor, b->backdoor) << q.name;
    }
  }
}

TEST(ColumnarPathTest, MatchesRowPathOnAmazonView) {
  data::AmazonOptions opt;
  opt.products = 200;
  opt.reviews_per_product = 4;
  auto ds = data::MakeAmazonSyn(opt);
  ASSERT_TRUE(ds.ok());
  const char* query =
      "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, T1.Quality, "
      "Avg(T2.Rating) As Rtng From Product As T1, Review As T2 "
      "Where T1.PID = T2.PID Group By T1.PID, T1.Category, T1.Brand, "
      "T1.Price, T1.Quality) "
      "When Category = 'Laptop' Update(Price) = 1.1 * Pre(Price) "
      "Output Count(Rtng >= 4) For Pre(Category) = 'Laptop'";
  for (auto mode : {BackdoorMode::kGraph, BackdoorMode::kAllAttributes,
                    BackdoorMode::kUpdateOnly}) {
    WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kForest;
    options.forest.num_trees = 4;
    options.backdoor = mode;
    options.use_columnar = false;
    WhatIfEngine rows(&ds->db, &ds->graph, options);
    options.use_columnar = true;
    options.num_threads = 1;
    WhatIfEngine columnar(&ds->db, &ds->graph, options);

    auto a = rows.RunSql(query);
    auto b = columnar.RunSql(query);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->value, b->value) << BackdoorModeName(mode);
    EXPECT_EQ(a->num_patterns, b->num_patterns);
  }
}

TEST(ColumnarPathTest, ParallelBlocksAreBitForBitDeterministic) {
  // Amazon decomposes into many independent blocks (one per product group);
  // the sharded loop must reproduce the sequential fold exactly.
  data::AmazonOptions opt;
  opt.products = 150;
  opt.reviews_per_product = 3;
  auto ds = data::MakeAmazonSyn(opt);
  ASSERT_TRUE(ds.ok());
  const char* query =
      "Use V As (Select T1.PID, T1.Category, T1.Brand, T1.Price, T1.Quality, "
      "Avg(T2.Rating) As Rtng From Product As T1, Review As T2 "
      "Where T1.PID = T2.PID Group By T1.PID, T1.Category, T1.Brand, "
      "T1.Price, T1.Quality) "
      "When Category = 'Laptop' Update(Price) = 0.9 * Pre(Price) "
      "Output Avg(Rtng) For Pre(Category) = 'Laptop'";

  double reference = 0.0;
  size_t reference_blocks = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kForest;
    options.forest.num_trees = 4;
    options.num_threads = threads;
    WhatIfEngine engine(&ds->db, &ds->graph, options);
    auto result = engine.RunSql(query);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GT(result->num_blocks, 1u);
    if (threads == 1) {
      reference = result->value;
      reference_blocks = result->num_blocks;
    } else {
      EXPECT_EQ(result->value, reference)
          << "threads=" << threads;  // bit-for-bit
      EXPECT_EQ(result->num_blocks, reference_blocks);
    }
  }
}

TEST(ColumnarPathTest, RepeatedRunsAreDeterministic) {
  data::GermanOptions opt;
  opt.rows = 800;
  auto ds = data::MakeGermanSyn(opt);
  ASSERT_TRUE(ds.ok());
  WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 6;
  options.sample_size = 500;  // exercises the seeded sampler too
  WhatIfEngine engine(&ds->db, &ds->graph, options);
  const char* query =
      "Use German Update(Status) = 3 Output Count(Credit = 1) For Pre(Age) = 1";
  auto first = engine.RunSql(query);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = engine.RunSql(query);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->value, first->value);
  }
}

}  // namespace
}  // namespace hyper::whatif
