#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/json.h"
#include "data/datasets.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"
#include "service/service_metrics.h"

namespace hyper::obs {
namespace {

// --- counters & gauges ------------------------------------------------------

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  // Run under the TSan leg of check.sh: relaxed atomics must still be
  // data-race free and every increment must land.
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (size_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetReplacesValue) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

// --- histogram bucket semantics --------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Prometheus `le` semantics: v lands in the first bucket with v <= bound.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (le is inclusive)
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // bucket 1
  h.Observe(3.9);  // bucket 2
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // +Inf overflow
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.9 + 4.0 + 5.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  // counts [1,1,1,1] over bounds {1,2,4} (+Inf): hand-computed quantiles.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<uint64_t> counts = {1, 1, 1, 1};
  // p50: target 2.0 -> second bucket boundary exactly -> 2.0.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.50), 2.0);
  // p25: target 1.0 -> first bucket, interpolated from 0 -> 1.0.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.25), 1.0);
  // p99: target 3.96 -> +Inf bucket -> clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.99), 4.0);
  // p62.5: target 2.5 -> third bucket, halfway: 2 + 0.5*(4-2) = 3.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.625), 3.0);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsKeepExactCountAndSum) {
  Histogram h(LatencyBuckets());
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (size_t i = 0; i < kPerThread; ++i) h.Observe(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // 1.0 is exactly representable: the CAS-add sum is exact, not approximate.
  EXPECT_DOUBLE_EQ(h.sum(), double(kThreads * kPerThread));
}

// --- registry ---------------------------------------------------------------

TEST(RegistryTest, SameNameAndLabelsInternToOneInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests", "kind=\"x\"");
  Counter* b = registry.GetCounter("requests", "kind=\"x\"");
  Counter* other = registry.GetCounter("requests", "kind=\"y\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta", "", "last")->Increment(3);
  registry.GetCounter("alpha", "", "first")->Increment(1);
  registry.GetGauge("mid", "")->Set(2.0);
  registry.GetHistogram("lat", "", "", {0.1, 1.0})->Observe(0.05);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "alpha");
  EXPECT_EQ(snap.samples[1].name, "mid");
  EXPECT_EQ(snap.samples[2].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 0.05);
}

TEST(RegistryTest, SnapshotsDuringTrafficAreMonotone) {
  // A reader snapshotting mid-traffic must never observe a counter moving
  // backwards, and every histogram snapshot must be internally consistent
  // (count == sum of its bucket counts).
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("traffic", "");
  Histogram* h = registry.GetHistogram("lat", "", "", {1.0});
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < 50000; ++i) {
      c->Increment();
      h->Observe(0.5);
    }
    done.store(true);
  });
  double last = 0.0;
  while (!done.load()) {
    const MetricsSnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.samples.size(), 1u);
    EXPECT_GE(snap.samples[0].value, last);
    last = snap.samples[0].value;
    ASSERT_EQ(snap.histograms.size(), 1u);
    uint64_t bucket_total = 0;
    for (const uint64_t n : snap.histograms[0].counts) bucket_total += n;
    EXPECT_EQ(snap.histograms[0].count, bucket_total);
  }
  writer.join();
  EXPECT_DOUBLE_EQ(registry.Snapshot().samples[0].value, 50000.0);
}

// --- rendering --------------------------------------------------------------

TEST(RenderTest, PrometheusExposesCumulativeBucketsAndHeaders) {
  MetricsRegistry registry;
  registry.GetCounter("reqs", "kind=\"a\"", "request count")->Increment(2);
  Histogram* h = registry.GetHistogram("lat", "", "latency", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP reqs request count"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs counter"), std::string::npos);
  EXPECT_NE(text.find("reqs{kind=\"a\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  // Cumulative le buckets: 1 at le=1, 2 at le=2, 3 at +Inf.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

TEST(RenderTest, JsonSnapshotParsesAndCarriesQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("c", "")->Increment(7);
  registry.GetHistogram("h", "", "", {1.0})->Observe(0.5);
  auto parsed = JsonValue::Parse(RenderJson(registry.Snapshot()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue& root = parsed.value();
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array().size(), 1u);
  EXPECT_EQ(counters->array()[0].GetInt("value"), 7);
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->array().size(), 1u);
  EXPECT_DOUBLE_EQ(histograms->array()[0].GetNumber("p50"), 0.5);
}

// --- service integration ----------------------------------------------------

TEST(ServiceMetricsTest, SubmitsLandInRegistryInstruments) {
  data::GermanOptions options;
  options.rows = 400;
  options.seed = 11;
  auto ds = data::MakeGermanSyn(options);
  ASSERT_TRUE(ds.ok()) << ds.status();

  MetricsRegistry registry;
  service::ServiceOptions service_options;
  service_options.whatif.estimator = learn::EstimatorKind::kFrequency;
  service_options.metrics = &registry;
  service::ScenarioService service(std::move(ds->db), std::move(ds->graph),
                                   service_options);

  const std::string query =
      "Use German When Status = 1 Update(Status) = 2 "
      "Output Count(Credit = 1)";
  ASSERT_TRUE(service.Submit({"main", query, {}}).ok());
  ASSERT_TRUE(service.Submit({"main", query, {}}).ok());

  EXPECT_EQ(
      registry.GetCounter("hyper_requests_total",
                          "kind=\"whatif\",outcome=\"ok\"")->value(),
      2u);
  EXPECT_EQ(registry.GetCounter("hyper_plan_cache_requests_total",
                                "result=\"hit\"")->value(),
            1u);
  EXPECT_EQ(registry.GetCounter("hyper_plan_cache_requests_total",
                                "result=\"miss\"")->value(),
            1u);
  EXPECT_EQ(registry.GetHistogram("hyper_request_seconds", "kind=\"whatif\"")
                ->count(),
            2u);

  // The appended service series carry the admission outcome of the same
  // two requests.
  MetricsSnapshot snap = registry.Snapshot();
  service::AppendServiceSeries(service, &snap);
  bool found = false;
  for (const MetricSample& s : snap.samples) {
    if (s.name == "hyper_admission_total" &&
        s.labels == "outcome=\"admitted\"") {
      EXPECT_DOUBLE_EQ(s.value, 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The /statusz document is valid JSON and reflects the cache sections.
  auto statusz = JsonValue::Parse(service::StatuszJson(service, &registry));
  ASSERT_TRUE(statusz.ok()) << statusz.status();
  const JsonValue* cache = statusz.value().Find("cache");
  ASSERT_NE(cache, nullptr);
  const JsonValue* plan = cache->Find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->GetInt("hits"), 1);
  EXPECT_EQ(plan->GetInt("misses"), 1);
}

}  // namespace
}  // namespace hyper::obs
