#include <gtest/gtest.h>

#include "relational/eval.h"
#include "relational/select.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace hyper::relational {
namespace {

using sql::ParseSql;
using sql::ParseSqlExpr;

/// Builds the Figure 1 Amazon database from the paper.
Database PaperDatabase() {
  Database db;
  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Category", ValueType::kString, Mutability::kImmutable},
                        {"Price", ValueType::kDouble, Mutability::kMutable},
                        {"Brand", ValueType::kString, Mutability::kImmutable},
                        {"Color", ValueType::kString, Mutability::kMutable},
                        {"Quality", ValueType::kDouble, Mutability::kMutable}},
                       {"PID"}));
  auto P = [&](int pid, const char* cat, double price, const char* brand,
               const char* color, double quality) {
    ASSERT_TRUE(product
                    .Append({Value::Int(pid), Value::String(cat),
                             Value::Double(price), Value::String(brand),
                             Value::String(color), Value::Double(quality)})
                    .ok());
  };
  P(1, "Laptop", 999, "Vaio", "Silver", 0.7);
  P(2, "Laptop", 529, "Asus", "Black", 0.65);
  P(3, "Laptop", 599, "HP", "Silver", 0.5);
  P(4, "DSLR Camera", 549, "Canon", "Black", 0.75);
  P(5, "Sci Fi eBooks", 15.99, "Fantasy Press", "Blue", 0.4);

  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"ReviewID", ValueType::kInt, Mutability::kImmutable},
                       {"Sentiment", ValueType::kDouble, Mutability::kMutable},
                       {"Rating", ValueType::kDouble, Mutability::kMutable}},
                      {"PID", "ReviewID"}));
  auto R = [&](int pid, int rid, double senti, double rating) {
    ASSERT_TRUE(review
                    .Append({Value::Int(pid), Value::Int(rid),
                             Value::Double(senti), Value::Double(rating)})
                    .ok());
  };
  R(1, 1, -0.95, 2);
  R(2, 2, 0.7, 4);
  R(2, 3, -0.2, 1);
  R(3, 3, 0.23, 3);
  R(3, 5, 0.95, 5);
  R(4, 5, 0.7, 4);

  EXPECT_TRUE(db.AddTable(std::move(product)).ok());
  EXPECT_TRUE(db.AddTable(std::move(review)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// Env / EvalExpr
// ---------------------------------------------------------------------------

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : db_(PaperDatabase()) {
    product_ = db_.GetTable("Product").value();
  }

  Env EnvFor(size_t tid, const Row* post = nullptr) {
    Env env;
    env.Bind("Product", &product_->schema(), &product_->row(tid), post);
    return env;
  }

  Value Eval(const std::string& expr_text, const Env& env) {
    auto expr = ParseSqlExpr(expr_text).value();
    auto v = EvalExpr(*expr, env);
    EXPECT_TRUE(v.ok()) << expr_text << ": " << v.status();
    return v.ok() ? *v : Value::Null();
  }

  Database db_;
  const Table* product_ = nullptr;
};

TEST_F(EvalTest, ColumnLookup) {
  Env env = EnvFor(1);  // Asus laptop
  EXPECT_TRUE(Eval("Brand", env).Equals(Value::String("Asus")));
  EXPECT_DOUBLE_EQ(Eval("Price", env).AsDouble().value(), 529);
}

TEST_F(EvalTest, QualifiedLookup) {
  Env env = EnvFor(0);
  EXPECT_TRUE(Eval("Product.Brand", env).Equals(Value::String("Vaio")));
}

TEST_F(EvalTest, UnresolvedColumnFails) {
  Env env = EnvFor(0);
  auto expr = ParseSqlExpr("Nope").value();
  EXPECT_EQ(EvalExpr(*expr, env).status().code(), StatusCode::kNotFound);
}

TEST_F(EvalTest, ComparisonAndLogic) {
  Env env = EnvFor(1);
  EXPECT_TRUE(Eval("Price < 600 And Brand = 'Asus'", env).bool_value());
  EXPECT_FALSE(Eval("Price < 500 Or Brand = 'HP'", env).bool_value());
  EXPECT_TRUE(Eval("Not (Brand = 'HP')", env).bool_value());
  EXPECT_TRUE(Eval("Price != 530", env).bool_value());
}

TEST_F(EvalTest, Arithmetic) {
  Env env = EnvFor(1);
  EXPECT_DOUBLE_EQ(Eval("Price * 1.1", env).AsDouble().value(), 529 * 1.1);
  EXPECT_DOUBLE_EQ(Eval("Price + 100 - 29", env).AsDouble().value(), 600);
  EXPECT_DOUBLE_EQ(Eval("(Price + 71) / 2", env).AsDouble().value(), 300);
}

TEST_F(EvalTest, IntegerArithmeticStaysInt) {
  Env env = EnvFor(1);
  Value v = Eval("2 + 3 * 4", env);
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.int_value(), 14);
}

TEST_F(EvalTest, DivisionByZeroFails) {
  Env env = EnvFor(0);
  auto expr = ParseSqlExpr("Price / 0").value();
  EXPECT_FALSE(EvalExpr(*expr, env).ok());
}

TEST_F(EvalTest, InListEval) {
  Env env = EnvFor(1);
  EXPECT_TRUE(Eval("Brand In ('Asus', 'HP')", env).bool_value());
  EXPECT_FALSE(Eval("Brand In ('Vaio', 'HP')", env).bool_value());
}

TEST_F(EvalTest, PrePostAgainstHypotheticalRow) {
  Row post = product_->row(1);
  post[2] = Value::Double(581.9);  // price updated
  Env env = EnvFor(1, &post);
  EXPECT_DOUBLE_EQ(Eval("Pre(Price)", env).AsDouble().value(), 529);
  EXPECT_DOUBLE_EQ(Eval("Post(Price)", env).AsDouble().value(), 581.9);
  // Bare reference defaults to pre.
  EXPECT_DOUBLE_EQ(Eval("Price", env).AsDouble().value(), 529);
  // Immutable attributes agree pre and post.
  EXPECT_TRUE(Eval("Post(Brand) = Pre(Brand)", env).bool_value());
}

TEST_F(EvalTest, PostWithoutPostRowReadsPre) {
  Env env = EnvFor(1);
  EXPECT_DOUBLE_EQ(Eval("Post(Price)", env).AsDouble().value(), 529);
}

TEST_F(EvalTest, L1AndAbs) {
  Row post = product_->row(1);
  post[2] = Value::Double(629);
  Env env = EnvFor(1, &post);
  EXPECT_DOUBLE_EQ(Eval("L1(Pre(Price), Post(Price))", env).AsDouble().value(),
                   100);
  EXPECT_DOUBLE_EQ(Eval("Abs(0 - 3.5)", env).AsDouble().value(), 3.5);
}

TEST_F(EvalTest, AggregateInRowContextFails) {
  Env env = EnvFor(0);
  auto expr = ParseSqlExpr("Avg(Price)").value();
  EXPECT_FALSE(EvalExpr(*expr, env).ok());
}

// ---------------------------------------------------------------------------
// ExecuteSelect
// ---------------------------------------------------------------------------

class SelectTest : public ::testing::Test {
 protected:
  SelectTest() : db_(PaperDatabase()) {}

  Table Run(const std::string& text) {
    auto stmt = ParseSql(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto table = ExecuteSelect(db_, *stmt->select);
    EXPECT_TRUE(table.ok()) << table.status();
    return std::move(table).value();
  }

  Database db_;
};

TEST_F(SelectTest, ProjectionAndFilter) {
  Table t = Run("Select PID, Price From Product Where Brand = 'Asus'");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.At(0, 0).Equals(Value::Int(2)));
  EXPECT_DOUBLE_EQ(t.At(0, 1).double_value(), 529);
}

TEST_F(SelectTest, OutputColumnNames) {
  Table t = Run("Select PID, Price * 2 As Dbl From Product");
  EXPECT_EQ(t.schema().attribute(0).name, "PID");
  EXPECT_EQ(t.schema().attribute(1).name, "Dbl");
}

TEST_F(SelectTest, HashJoinMatchesPaper) {
  Table t = Run(
      "Select T1.PID, T2.Rating From Product As T1, Review As T2 "
      "Where T1.PID = T2.PID");
  EXPECT_EQ(t.num_rows(), 6u);  // every review joins its product
}

TEST_F(SelectTest, JoinWithResidualFilter) {
  Table t = Run(
      "Select T1.PID, T2.Rating From Product As T1, Review As T2 "
      "Where T1.PID = T2.PID And T1.Brand = 'Asus'");
  ASSERT_EQ(t.num_rows(), 2u);  // reviews r2 and r3
}

TEST_F(SelectTest, GroupByWithAverages) {
  // The paper's Example 5: per-product average rating; p2 averages 4 and 1.
  Table t = Run(
      "Select T1.PID, Avg(T2.Rating) As Rtng "
      "From Product As T1, Review As T2 Where T1.PID = T2.PID "
      "Group By T1.PID");
  ASSERT_EQ(t.num_rows(), 4u);  // products 1-4 have reviews
  bool found_p2 = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.At(r, 0).Equals(Value::Int(2))) {
      EXPECT_DOUBLE_EQ(t.At(r, 1).double_value(), 2.5);  // (4+1)/2
      found_p2 = true;
    }
  }
  EXPECT_TRUE(found_p2);
}

TEST_F(SelectTest, RelevantViewOfFigure4) {
  Table t = Run(
      "Select T1.PID, T1.Category, T1.Price, T1.Brand, "
      "Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
      "From Product As T1, Review As T2 Where T1.PID = T2.PID "
      "Group By T1.PID, T1.Category, T1.Price, T1.Brand");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.schema().num_attributes(), 6u);
  EXPECT_EQ(t.schema().attribute(4).name, "Senti");
  EXPECT_EQ(t.schema().attribute(5).name, "Rtng");
}

TEST_F(SelectTest, CountStarAndCountPredicate) {
  Table all = Run("Select Count(*) From Review");
  EXPECT_TRUE(all.At(0, 0).Equals(Value::Int(6)));
  Table good = Run("Select Count(Rating >= 4) From Review");
  EXPECT_TRUE(good.At(0, 0).Equals(Value::Int(3)));
}

TEST_F(SelectTest, SumAggregate) {
  Table t = Run("Select Sum(Rating) From Review");
  EXPECT_DOUBLE_EQ(t.At(0, 0).double_value(), 2 + 4 + 1 + 3 + 5 + 4);
}

TEST_F(SelectTest, AggregatesOverEmptyInput) {
  Table t = Run("Select Count(*), Sum(Rating), Avg(Rating) From Review "
                "Where Rating > 100");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.At(0, 0).Equals(Value::Int(0)));
  EXPECT_DOUBLE_EQ(t.At(0, 1).double_value(), 0.0);
  EXPECT_TRUE(t.At(0, 2).is_null());
}

TEST_F(SelectTest, GroupByCategoryCounts) {
  Table t = Run(
      "Select Category, Count(*) As N From Product Group By Category");
  ASSERT_EQ(t.num_rows(), 3u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.At(r, 0).Equals(Value::String("Laptop"))) {
      EXPECT_TRUE(t.At(r, 1).Equals(Value::Int(3)));
    }
  }
}

TEST_F(SelectTest, CartesianWhenNoJoinCondition) {
  Table t = Run("Select T1.PID From Product As T1, Review As T2");
  EXPECT_EQ(t.num_rows(), 30u);  // 5 x 6
}

TEST_F(SelectTest, MutabilityPropagatesThroughProjection) {
  Table t = Run("Select Brand, Price From Product");
  EXPECT_EQ(t.schema().attribute(0).mutability, Mutability::kImmutable);
  EXPECT_EQ(t.schema().attribute(1).mutability, Mutability::kMutable);
}

TEST_F(SelectTest, UnknownTableFails) {
  auto stmt = ParseSql("Select a From Nope").value();
  EXPECT_EQ(ExecuteSelect(db_, *stmt.select).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SelectTest, UnknownColumnFails) {
  auto stmt = ParseSql("Select Nope From Product").value();
  EXPECT_FALSE(ExecuteSelect(db_, *stmt.select).ok());
}

}  // namespace
}  // namespace hyper::relational
