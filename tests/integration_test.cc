// End-to-end integration tests: SQL text -> parser -> compiler -> engine,
// validated against exact SCM ground truth across parameter sweeps, plus
// the cross-tuple (psi) propagation path that no unit suite covers.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/ground_truth.h"
#include "common/strings.h"
#include "causal/scm.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/engine.h"
#include "whatif/naive.h"

namespace hyper {
namespace {

// ---------------------------------------------------------------------------
// Sweep: engine vs ground truth over every (update attribute, value,
// aggregate) combination on German-Syn.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* attribute;
  int value;
  const char* output;  // Output clause text
};

class GermanSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const data::Dataset& Dataset() {
    static const data::Dataset* ds = [] {
      data::GermanOptions opt;
      opt.rows = 20000;
      opt.seed = 7;
      return new data::Dataset(std::move(data::MakeGermanSyn(opt).value()));
    }();
    return *ds;
  }
};

TEST_P(GermanSweep, EngineTracksGroundTruth) {
  const SweepCase& c = GetParam();
  const data::Dataset& ds = Dataset();
  const std::string query = StrFormat("Use German Update(%s) = %d Output %s",
                                      c.attribute, c.value, c.output);
  auto stmt = sql::ParseSql(query).value();

  const double truth =
      baselines::GroundTruthWhatIf(ds.flat, ds.scm, *stmt.whatif).value();

  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  auto result = whatif::WhatIfEngine(&ds.db, &ds.graph, options)
                    .Run(*stmt.whatif)
                    .value();
  // Tolerance: finite-sample estimation over 20k rows.
  const double n = static_cast<double>(ds.db.TotalRows());
  const double scale = std::string(c.output).find("Avg") == 0 ? 1.0 : n;
  EXPECT_NEAR(result.value / scale, truth / scale, 0.03) << query;
}

INSTANTIATE_TEST_SUITE_P(
    UpdatesAndAggregates, GermanSweep,
    ::testing::Values(
        SweepCase{"Status", 0, "Avg(Post(Credit))"},
        SweepCase{"Status", 1, "Avg(Post(Credit))"},
        SweepCase{"Status", 2, "Avg(Post(Credit))"},
        SweepCase{"Status", 3, "Avg(Post(Credit))"},
        SweepCase{"Savings", 0, "Avg(Post(Credit))"},
        SweepCase{"Savings", 2, "Avg(Post(Credit))"},
        SweepCase{"Housing", 2, "Avg(Post(Credit))"},
        SweepCase{"CreditHistory", 0, "Avg(Post(Credit))"},
        SweepCase{"CreditHistory", 2, "Avg(Post(Credit))"},
        SweepCase{"Status", 3, "Count(Credit = 1)"},
        SweepCase{"Status", 0, "Count(Credit = 1)"},
        SweepCase{"Savings", 2, "Sum(Post(Credit))"}),
    [](const auto& info) {
      return std::string(info.param.attribute) + "_" +
             std::to_string(info.param.value) + "_" +
             (std::string(info.param.output).substr(0, 3));
    });

// ---------------------------------------------------------------------------
// Monotonicity property: the causal effect of Status on credit is monotone
// in the SCM; the engine's answers must preserve the ordering.
// ---------------------------------------------------------------------------

TEST(GermanMonotonicity, StatusEffectIsMonotone) {
  data::GermanOptions opt;
  opt.rows = 15000;
  auto ds = data::MakeGermanSyn(opt).value();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
  double prev = -1;
  for (int v = 0; v <= 3; ++v) {
    auto result = engine.RunSql(StrFormat(
        "Use German Update(Status) = %d Output Avg(Post(Credit))", v));
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->value, prev) << "status " << v;
    prev = result->value;
  }
}

// ---------------------------------------------------------------------------
// Cross-tuple propagation (psi): a market where competitor prices affect
// ratings through the category group. Updating ONLY Asus products must move
// the expected rating of non-updated products in the same category, and the
// direction must match the oracle.
// ---------------------------------------------------------------------------

class CrossTupleFixture : public ::testing::Test {
 protected:
  static constexpr int kMarkets = 40;
  static constexpr int kProductsPerMarket = 12;

  CrossTupleFixture() {
    // Products in many market segments (categories). Ratings respond to the
    // *market mean price* — the cross-tuple dashed edge of Figure 2. The
    // markets span a range of price levels so the observational data
    // identifies the psi (group-mean) effect.
    Table product(Schema("Product",
                         {{"PID", ValueType::kInt, Mutability::kImmutable},
                          {"Category", ValueType::kString,
                           Mutability::kImmutable},
                          {"Brand", ValueType::kString, Mutability::kImmutable},
                          {"Price", ValueType::kInt, Mutability::kMutable},
                          {"Rating", ValueType::kInt, Mutability::kMutable}},
                         {"PID"}));
    Rng rng(3);
    int pid = 0;
    for (int m = 0; m < kMarkets; ++m) {
      // Market price level sweeps 0.1 .. 0.9 across markets.
      const double level = 0.1 + 0.8 * m / (kMarkets - 1);
      std::vector<int> prices;
      double mean = 0;
      for (int i = 0; i < kProductsPerMarket; ++i) {
        prices.push_back(rng.Bernoulli(level) ? 1 : 0);
        mean += prices.back();
      }
      mean /= kProductsPerMarket;
      for (int i = 0; i < kProductsPerMarket; ++i) {
        // Ratings like cheap markets: p(high) = 0.85 - 0.55 * market mean.
        const int rating = rng.Bernoulli(0.85 - 0.55 * mean) ? 1 : 0;
        product.AppendUnchecked({Value::Int(pid++),
                                 Value::String("M" + std::to_string(m)),
                                 Value::String(i % 2 ? "Asus" : "Vaio"),
                                 Value::Int(prices[i]), Value::Int(rating)});
      }
    }
    HYPER_CHECK(db_.AddTable(std::move(product)).ok());
    graph_.AddEdge("Price", "Rating", "Category");  // cross-tuple market
  }

  Database db_;
  causal::CausalGraph graph_;
};

TEST_F(CrossTupleFixture, UpdatingAsusMovesVaio) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kForest;
  options.forest.num_trees = 16;
  whatif::WhatIfEngine engine(&db_, &graph_, options);

  // In the mid-level market M20, reprice ONLY Asus products; measure the
  // ratings of the untouched VAIO products in the same market.
  auto raised = engine.RunSql(
      "Use Product When Brand = 'Asus' And Category = 'M20' "
      "Update(Price) = 1 Output Avg(Post(Rating)) "
      "For Pre(Brand) = 'Vaio' And Pre(Category) = 'M20'");
  ASSERT_TRUE(raised.ok()) << raised.status();
  auto lowered = engine.RunSql(
      "Use Product When Brand = 'Asus' And Category = 'M20' "
      "Update(Price) = 0 Output Avg(Post(Rating)) "
      "For Pre(Brand) = 'Vaio' And Pre(Category) = 'M20'");
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  // The market mean price rises in the first case -> Vaio ratings drop.
  EXPECT_LT(raised->value, lowered->value);
}

TEST_F(CrossTupleFixture, BlocksFollowCategories) {
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto result = engine.RunSql(
      "Use Product When Brand = 'Asus' Update(Price) = 1 "
      "Output Count(Rating = 1)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_blocks, static_cast<size_t>(kMarkets));
}

// ---------------------------------------------------------------------------
// Oracle agreement through the full SQL surface on a multi-relation
// database (joins + aggregation in Use, cross-relation propagation).
// ---------------------------------------------------------------------------

TEST(MultiRelationOracle, JoinedViewMatchesExactEnumeration) {
  // One product with two reviews; intervene on price, measure avg rating.
  Database db;
  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Price", ValueType::kInt, Mutability::kMutable}},
                       {"PID"}));
  product.AppendUnchecked({Value::Int(1), Value::Int(0)});
  product.AppendUnchecked({Value::Int(2), Value::Int(1)});
  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"RID", ValueType::kInt, Mutability::kImmutable},
                       {"Rating", ValueType::kInt, Mutability::kMutable}},
                      {"PID", "RID"}));
  review.AppendUnchecked({Value::Int(1), Value::Int(1), Value::Int(1)});
  review.AppendUnchecked({Value::Int(1), Value::Int(2), Value::Int(0)});
  review.AppendUnchecked({Value::Int(2), Value::Int(3), Value::Int(1)});
  ASSERT_TRUE(db.AddTable(std::move(product)).ok());
  ASSERT_TRUE(db.AddTable(std::move(review)).ok());

  causal::Scm scm;
  ASSERT_TRUE(scm.AddAttribute("Price", {},
                               std::make_unique<causal::DiscreteMechanism>(
                                   std::vector<Value>{Value::Int(0),
                                                      Value::Int(1)},
                                   [](const std::vector<Value>&) {
                                     return std::vector<double>{0.5, 0.5};
                                   }))
                  .ok());
  ASSERT_TRUE(scm.AddAttribute(
                     "Rating", {{"Price", "PID"}},
                     std::make_unique<causal::DiscreteMechanism>(
                         std::vector<Value>{Value::Int(0), Value::Int(1)},
                         [](const std::vector<Value>& ps) {
                           const double p =
                               ps[0].AsDouble().value() > 0.5 ? 0.25 : 0.75;
                           return std::vector<double>{1 - p, p};
                         }))
                  .ok());

  auto stmt = sql::ParseSql(
                  "Use V As (Select P.PID, P.Price, Avg(R.Rating) As Rtng "
                  "From Product As P, Review As R Where P.PID = R.PID "
                  "Group By P.PID, P.Price) "
                  "When PID = 1 Update(Price) = 1 "
                  "Output Avg(Post(Rtng))")
                  .value();
  const double exact = whatif::NaiveWhatIf(db, scm, *stmt.whatif).value();
  // Product 1 updated: its two reviews re-randomize at p=0.25 each ->
  // E[avg] = 0.25. Product 2 untouched: avg stays 1. Expected = 0.625.
  EXPECT_NEAR(exact, (0.25 + 1.0) / 2, 1e-12);
}

// ---------------------------------------------------------------------------
// Parser-to-engine surface: the same statement given as text and as a
// programmatically rebuilt AST must produce identical results.
// ---------------------------------------------------------------------------

TEST(SurfaceStability, PrintedStatementReproducesResult) {
  data::GermanOptions opt;
  opt.rows = 3000;
  auto ds = data::MakeGermanSyn(opt).value();
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);

  const char* query =
      "Use German When Age = 1 Update(Status) = 2 "
      "Output Count(Credit = 1) For Pre(Savings) >= 1";
  auto stmt1 = sql::ParseSql(query).value();
  auto first = engine.Run(*stmt1.whatif).value();
  // Round-trip through the printer.
  auto stmt2 = sql::ParseSql(stmt1.whatif->ToString()).value();
  auto second = engine.Run(*stmt2.whatif).value();
  EXPECT_DOUBLE_EQ(first.value, second.value);
}

}  // namespace
}  // namespace hyper
