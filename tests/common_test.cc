#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace hyper {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad attr");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad attr");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad attr");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  HYPER_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("UPDATE", "update"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, JoinAndAffixes) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("Post(X)", "Post"));
  EXPECT_FALSE(StartsWith("Po", "Post"));
  EXPECT_TRUE(EndsWith("file_test.cc", "_test.cc"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%s", 7, "x"), "7/x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicWithSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    counts[rng.Categorical({0.1, 0.2, 0.7})]++;
  }
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.7, 0.02);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({0.5, 0.0, 0.5}), 1u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(3.0, 2.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(19);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(sample.size(), k);
    EXPECT_EQ(uniq.size(), k);
    for (size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hyper
