#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "data/datasets.h"
#include "howto/engine.h"
#include "service/plan_cache.h"
#include "service/scenario_service.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper::service {
namespace {

// The cache-correctness contract under test: every answer produced through
// the service / prepared-plan / batch machinery must be BIT-FOR-BIT equal
// (==, not NEAR) to a fresh single-query WhatIfEngine::Run.

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    data::GermanOptions options;
    options.rows = 800;
    options.seed = 11;
    auto ds = data::MakeGermanSyn(options);
    EXPECT_TRUE(ds.ok()) << ds.status();
    db_ = std::move(ds->db);
    graph_ = std::move(ds->graph);
  }

  whatif::WhatIfOptions EngineOptions(whatif::BackdoorMode mode,
                                      learn::EstimatorKind estimator) const {
    whatif::WhatIfOptions options;
    options.backdoor = mode;
    options.estimator = estimator;
    options.forest.num_trees = 4;  // keep forest runs quick
    return options;
  }

  std::unique_ptr<ScenarioService> MakeService(
      const whatif::WhatIfOptions& whatif_options, size_t capacity = 64,
      size_t num_threads = 1) const {
    ServiceOptions options;
    options.whatif = whatif_options;
    options.plan_cache_capacity = capacity;
    options.num_threads = num_threads;
    return std::make_unique<ScenarioService>(db_, graph_, options);
  }

  double FreshRun(const std::string& query,
                  const whatif::WhatIfOptions& options) const {
    whatif::WhatIfEngine engine(&db_, &graph_, options);
    auto result = engine.RunSql(query);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->value;
  }

  Database db_;
  causal::CausalGraph graph_;
};

constexpr const char* kQuery =
    "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)";
constexpr const char* kAvgQuery =
    "Use German When Age = 1 Update(Savings) = 2 Output Avg(Post(Credit))";

// --- cached-vs-uncached bit-equality across modes and estimators ----------

TEST_F(ServiceTest, CachedAnswersBitEqualAcrossModesAndEstimators) {
  const whatif::BackdoorMode modes[] = {
      whatif::BackdoorMode::kGraph, whatif::BackdoorMode::kAllAttributes,
      whatif::BackdoorMode::kUpdateOnly};
  const learn::EstimatorKind estimators[] = {learn::EstimatorKind::kFrequency,
                                             learn::EstimatorKind::kForest};
  for (whatif::BackdoorMode mode : modes) {
    for (learn::EstimatorKind estimator : estimators) {
      const whatif::WhatIfOptions options = EngineOptions(mode, estimator);
      const double expected = FreshRun(kQuery, options);

      auto service = MakeService(options);
      Response cold = service->Submit({"main", kQuery, {}});
      ASSERT_TRUE(cold.ok()) << cold.status;
      Response warm = service->Submit({"main", kQuery, {}});
      ASSERT_TRUE(warm.ok()) << warm.status;

      EXPECT_EQ(expected, cold.whatif.value)
          << whatif::BackdoorModeName(mode) << "/"
          << learn::EstimatorKindName(estimator);
      EXPECT_EQ(expected, warm.whatif.value)
          << whatif::BackdoorModeName(mode) << "/"
          << learn::EstimatorKindName(estimator);
      EXPECT_FALSE(cold.whatif.plan_cache_hit);
      EXPECT_TRUE(warm.whatif.plan_cache_hit);
      EXPECT_GT(warm.whatif.pattern_cache_hits, 0u);
      EXPECT_EQ(0.0, warm.whatif.train_seconds);
    }
  }
}

TEST_F(ServiceTest, AvgOutputCachedBitEqual) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  const double expected = FreshRun(kAvgQuery, options);
  auto service = MakeService(options);
  EXPECT_EQ(expected, service->Submit({"main", kAvgQuery, {}}).whatif.value);
  EXPECT_EQ(expected, service->Submit({"main", kAvgQuery, {}}).whatif.value);
}

// --- prepared plans and batched evaluation --------------------------------

TEST_F(ServiceTest, EvaluateBatchMatchesFreshRuns) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  whatif::WhatIfEngine engine(&db_, &graph_, options);

  auto stmt = sql::ParseSql(kQuery);
  ASSERT_TRUE(stmt.ok());
  auto plan = engine.Prepare(*stmt->whatif);
  ASSERT_TRUE(plan.ok()) << plan.status();

  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int v = 0; v <= 3; ++v) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(v);
    interventions.push_back({spec});
  }
  auto batch = engine.EvaluateBatch(**plan, interventions);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(4u, batch->size());

  for (int v = 0; v <= 3; ++v) {
    const double expected = FreshRun(
        "Use German When Status = 1 Update(Status) = " + std::to_string(v) +
            " Output Count(Credit = 1)",
        options);
    EXPECT_EQ(expected, (*batch)[v].value) << "Status <- " << v;
  }
}

TEST_F(ServiceTest, SubmitWhatIfBatchMatchesSingles) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);
  auto service = MakeService(options);

  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int v = 0; v <= 3; ++v) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(v);
    interventions.push_back({spec});
  }
  auto batch = service->SubmitWhatIfBatch("main", kQuery, interventions);
  ASSERT_TRUE(batch.ok()) << batch.status();

  for (int v = 0; v <= 3; ++v) {
    const double expected = FreshRun(
        "Use German When Status = 1 Update(Status) = " + std::to_string(v) +
            " Output Count(Credit = 1)",
        options);
    ASSERT_TRUE((*batch)[v].ok()) << (*batch)[v].status;
    EXPECT_EQ(expected, (*batch)[v].result.value) << "Status <- " << v;
  }
}

// --- scenario branches ----------------------------------------------------

TEST_F(ServiceTest, BranchIsolation) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options);
  const double main_before = service->Submit({"main", kQuery, {}}).whatif.value;

  ASSERT_TRUE(service->CreateScenario("b1", "main").ok());
  auto updated = service->ApplyHypotheticalSql(
      "b1", "Use German When Savings = 0 Update(Credit) = 0 Output Count(*)");
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_GT(*updated, 0u);

  const double b1_value = service->Submit({"b1", kQuery, {}}).whatif.value;
  const double main_after = service->Submit({"main", kQuery, {}}).whatif.value;
  EXPECT_EQ(main_before, main_after);  // updates never leak out of b1
  EXPECT_NE(main_before, b1_value);    // ...and b1 sees its own world

  // A sibling branched from main stays at the pre-update world; a child
  // branched from b1 inherits (chains) its deltas.
  ASSERT_TRUE(service->CreateScenario("b2", "main").ok());
  EXPECT_EQ(main_before, service->Submit({"b2", kQuery, {}}).whatif.value);
  ASSERT_TRUE(service->CreateScenario("b1-child", "b1").ok());
  EXPECT_EQ(b1_value,
            service->Submit({"b1-child", kQuery, {}}).whatif.value);

  // Chained update on the child only.
  auto chained = service->ApplyHypotheticalSql(
      "b1-child",
      "Use German When Savings = 1 Update(Credit) = 0 Output Count(*)");
  ASSERT_TRUE(chained.ok()) << chained.status();
  EXPECT_EQ(b1_value, service->Submit({"b1", kQuery, {}}).whatif.value);
  EXPECT_NE(b1_value,
            service->Submit({"b1-child", kQuery, {}}).whatif.value);
}

TEST_F(ServiceTest, BranchManagementErrors) {
  auto service = MakeService(EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency));
  EXPECT_FALSE(service->DropScenario("main").ok());
  EXPECT_FALSE(service->CreateScenario("x", "nope").ok());
  ASSERT_TRUE(service->CreateScenario("x").ok());
  EXPECT_FALSE(service->CreateScenario("x").ok());
  EXPECT_TRUE(service->DropScenario("x").ok());
  EXPECT_FALSE(service->Submit({"ghost", kQuery, {}}).ok());
  // Immutable attributes reject hypothetical updates.
  auto bad = service->ApplyHypotheticalSql(
      "main", "Use German Update(Age) = 1 Output Count(*)");
  EXPECT_FALSE(bad.ok());
}

TEST_F(ServiceTest, EmptyHypotheticalKeepsCachedPlans) {
  auto service = MakeService(EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency));
  ASSERT_TRUE(service->Submit({"main", kQuery, {}}).ok());
  // When selects nothing: the world is data-identical, so the branch must
  // not invalidate (no version bump, no fingerprint change) and the next
  // submit still hits the cached plan.
  auto updated = service->ApplyHypotheticalSql(
      "main", "Use German When Status = 99 Update(Status) = 2 "
              "Output Count(*)");
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(0u, *updated);
  EXPECT_TRUE(service->Submit({"main", kQuery, {}}).whatif.plan_cache_hit);
}

// --- LRU eviction ---------------------------------------------------------

TEST_F(ServiceTest, LruEvictionUnderSmallCapacity) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options, /*capacity=*/2);

  const std::string queries[] = {
      "Use German When Status = 0 Update(Status) = 2 Output Count(Credit = 1)",
      "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)",
      "Use German When Status = 2 Update(Status) = 3 Output Count(Credit = 1)",
  };
  for (const std::string& q : queries) {
    ASSERT_TRUE(service->Submit({"main", q, {}}).ok());
  }
  PlanCacheStats stats = service->cache_stats();
  EXPECT_EQ(2u, stats.entries);
  EXPECT_EQ(1u, stats.evictions);
  EXPECT_EQ(3u, stats.misses);

  // The oldest entry was evicted: re-submitting it misses (and evicts the
  // next-oldest), and the answer is still bit-identical to a fresh run.
  Response again = service->Submit({"main", queries[0], {}});
  EXPECT_FALSE(again.whatif.plan_cache_hit);
  EXPECT_EQ(FreshRun(queries[0], options), again.whatif.value);
  stats = service->cache_stats();
  EXPECT_EQ(4u, stats.misses);
  EXPECT_EQ(2u, stats.evictions);

  // The most recent entry is still cached.
  EXPECT_TRUE(service->Submit({"main", queries[2], {}}).whatif.plan_cache_hit);
}

TEST_F(ServiceTest, CapacityZeroDisablesCaching) {
  auto service = MakeService(
      EngineOptions(whatif::BackdoorMode::kGraph,
                    learn::EstimatorKind::kFrequency),
      /*capacity=*/0);
  EXPECT_FALSE(service->Submit({"main", kQuery, {}}).whatif.plan_cache_hit);
  EXPECT_FALSE(service->Submit({"main", kQuery, {}}).whatif.plan_cache_hit);
  EXPECT_EQ(0u, service->cache_stats().entries);
}

// --- concurrency ----------------------------------------------------------

TEST_F(ServiceTest, ConcurrentSubmitDeterminism) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);

  // Reference values from fresh single-query runs.
  std::vector<std::string> queries;
  std::vector<double> expected;
  for (int v = 0; v <= 3; ++v) {
    queries.push_back(
        "Use German When Status = 1 Update(Status) = " + std::to_string(v) +
        " Output Count(Credit = 1)");
    expected.push_back(FreshRun(queries.back(), options));
  }

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto service = MakeService(options, 64, threads);
    std::vector<Request> requests;
    for (int rep = 0; rep < 2; ++rep) {
      for (const std::string& q : queries) {
        requests.push_back({"main", q, {}});
      }
    }
    std::vector<Response> responses = service->SubmitBatch(requests);
    ASSERT_EQ(requests.size(), responses.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok()) << responses[i].status;
      EXPECT_EQ(expected[i % queries.size()], responses[i].whatif.value)
          << "threads=" << threads << " request=" << i;
    }
  }
}

TEST_F(ServiceTest, ConcurrentExplicitThreadsDeterminism) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  const double expected = FreshRun(kQuery, options);
  auto service = MakeService(options);

  std::vector<double> values(8, 0.0);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < values.size(); ++t) {
    workers.emplace_back([&, t] {
      values[t] = service->Submit({"main", kQuery, {}}).whatif.value;
    });
  }
  for (std::thread& w : workers) w.join();
  for (double v : values) EXPECT_EQ(expected, v);
}

// --- plan-cache single-flight and accounting ------------------------------

TEST_F(ServiceTest, GetOrPrepareSingleFlightsConcurrentMisses) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto stmt = sql::ParseSql(kQuery);
  ASSERT_TRUE(stmt.ok());

  PlanCache cache(8);
  std::atomic<size_t> prepares{0};
  std::atomic<size_t> started{0};
  auto prepare = [&]() -> Result<std::shared_ptr<const whatif::PreparedWhatIf>> {
    ++prepares;
    // Hold the in-flight slot open long enough that every follower arrives
    // while the leader is still preparing, even on one core.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return engine.Prepare(*stmt->whatif);
  };

  constexpr size_t kCallers = 8;
  std::vector<std::shared_ptr<const whatif::PreparedWhatIf>> plans(kCallers);
  // char, not bool: vector<bool> packs bits, and concurrent writes to
  // adjacent bits would themselves be a data race under the TSan gate.
  std::vector<char> hits(kCallers, 0);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kCallers; ++t) {
    workers.emplace_back([&, t] {
      ++started;
      while (started.load() < kCallers) std::this_thread::yield();
      bool hit = false;
      auto plan = cache.GetOrPrepare("key", prepare, &hit);
      ASSERT_TRUE(plan.ok()) << plan.status();
      plans[t] = *plan;
      hits[t] = hit ? 1 : 0;
    });
  }
  for (std::thread& w : workers) w.join();

  // Exactly one caller prepared (and reported the miss); everyone else was
  // served the leader's work as a hit, and all share one plan object.
  EXPECT_EQ(1u, prepares.load());
  EXPECT_EQ(1, std::count(hits.begin(), hits.end(), 0));
  for (size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(plans[0].get(), plans[t].get());
  }

  // Accounting: one miss (the preparer), everyone else coalesced or hit,
  // and the ledger reconciles with both the lookup and the prepare count.
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(prepares.load(), stats.misses);
  EXPECT_GT(stats.coalesced, 0u);
  EXPECT_EQ(kCallers, stats.hits + stats.misses + stats.coalesced);

  // A later lookup is a plain hit.
  bool hit = false;
  ASSERT_TRUE(cache.GetOrPrepare("key", prepare, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(1u, prepares.load());
}

TEST_F(ServiceTest, GetOrPrepareFailurePropagatesToAllWaitersOnce) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto stmt = sql::ParseSql(kQuery);
  ASSERT_TRUE(stmt.ok());

  // The failure half of the single-flight contract: when the one elected
  // builder's factory fails, every coalesced waiter receives that same
  // error (exactly one factory run — the failure is not retried N times),
  // nothing is stored, and the in-flight slot is cleared so a later call
  // rebuilds from scratch.
  PlanCache cache(8);
  std::atomic<size_t> runs{0};
  std::atomic<size_t> started{0};
  auto failing =
      [&]() -> Result<std::shared_ptr<const whatif::PreparedWhatIf>> {
    ++runs;
    // Keep the in-flight slot open so every follower coalesces onto the
    // doomed build instead of racing past it.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return Status::ResourceExhausted("row budget exceeded at test.inject");
  };

  constexpr size_t kCallers = 8;
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kCallers; ++t) {
    workers.emplace_back([&, t] {
      ++started;
      while (started.load() < kCallers) std::this_thread::yield();
      auto plan = cache.GetOrPrepare("key", failing);
      statuses[t] = plan.ok() ? Status::OK() : plan.status();
    });
  }
  for (std::thread& w : workers) w.join();

  // One factory run; every caller saw the same typed error.
  EXPECT_EQ(1u, runs.load());
  for (size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(StatusCode::kResourceExhausted, statuses[t].code())
        << "caller " << t << ": " << statuses[t];
  }

  // The failure stored nothing: no entry, and the miss ledger still
  // reconciles (1 miss for the failed leader, the rest coalesced).
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(0u, stats.entries);
  EXPECT_EQ(nullptr, cache.Get("key"));
  EXPECT_EQ(1u, stats.misses);
  EXPECT_EQ(kCallers - 1, stats.coalesced);

  // The in-flight slot was cleared: a retry runs the factory again, and a
  // now-successful factory populates the cache normally.
  auto rebuild =
      [&]() -> Result<std::shared_ptr<const whatif::PreparedWhatIf>> {
    ++runs;
    return engine.Prepare(*stmt->whatif);
  };
  bool hit = true;
  auto plan = cache.GetOrPrepare("key", rebuild, &hit);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(hit);
  EXPECT_EQ(2u, runs.load());
  EXPECT_EQ(1u, cache.stats().entries);
}

TEST_F(ServiceTest, PutLostRaceCountsCoalesced) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto stmt = sql::ParseSql(kQuery);
  ASSERT_TRUE(stmt.ok());

  // Two manual Get+Prepare+Put racers: both Gets miss, both prepare, the
  // second Put converges on the first entry. The ledger must reconcile:
  // 2 lookups = 2 misses = 2 prepares, and the dropped duplicate prepare is
  // visible as 1 coalesced insert.
  PlanCache cache(8);
  EXPECT_EQ(nullptr, cache.Get("key"));
  EXPECT_EQ(nullptr, cache.Get("key"));
  auto first = engine.Prepare(*stmt->whatif);
  auto second = engine.Prepare(*stmt->whatif);
  ASSERT_TRUE(first.ok() && second.ok());
  auto canonical1 = cache.Put("key", *first);
  auto canonical2 = cache.Put("key", *second);
  EXPECT_EQ(first->get(), canonical1.get());
  EXPECT_EQ(first->get(), canonical2.get());  // second racer lost

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(0u, stats.hits);
  EXPECT_EQ(2u, stats.misses);
  EXPECT_EQ(1u, stats.coalesced);
  EXPECT_EQ(1u, stats.entries);
  EXPECT_EQ(2u, stats.hits + stats.misses);  // reconciles with 2 prepares
}

// --- per-item statuses in batched what-if ---------------------------------

TEST_F(ServiceTest, SubmitWhatIfBatchReportsPerItemFailures) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options);

  // For Post(Status) = 0 with Update(Status) = v: the update attribute's
  // post value is deterministic, so v != 0 disqualifies every updated tuple
  // and the Avg's qualifying set has zero probability — that intervention
  // must fail alone, without aborting its sweep siblings.
  const std::string base =
      "Use German Update(Status) = 0 Output Avg(Post(Credit)) "
      "For Post(Status) = 0";
  std::vector<std::vector<whatif::UpdateSpec>> interventions;
  for (int v : {0, 1}) {
    whatif::UpdateSpec spec;
    spec.attribute = "Status";
    spec.func = sql::UpdateFuncKind::kSet;
    spec.constant = Value::Int(v);
    interventions.push_back({spec});
  }

  auto batch = service->SubmitWhatIfBatch("main", base, interventions);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(2u, batch->size());

  // Item 0 answers, bit-identical to a fresh single run.
  ASSERT_TRUE((*batch)[0].ok()) << (*batch)[0].status;
  EXPECT_EQ(FreshRun("Use German Update(Status) = 0 "
                     "Output Avg(Post(Credit)) For Post(Status) = 0",
                     options),
            (*batch)[0].result.value);

  // Item 1 carries its own error.
  EXPECT_FALSE((*batch)[1].ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, (*batch)[1].status.code());
}

// --- how-to through shared plans ------------------------------------------

TEST_F(ServiceTest, HowToSharedPlansBitEqualToLegacyPath) {
  const std::string stmt_text =
      "Use German HowToUpdate Status ToMaximize Count(Credit = 1)";
  for (learn::EstimatorKind estimator :
       {learn::EstimatorKind::kFrequency, learn::EstimatorKind::kForest}) {
    howto::HowToOptions legacy;
    legacy.whatif = EngineOptions(whatif::BackdoorMode::kGraph, estimator);
    legacy.share_plans = false;
    howto::HowToOptions shared = legacy;
    shared.share_plans = true;

    howto::HowToEngine legacy_engine(&db_, &graph_, legacy);
    howto::HowToEngine shared_engine(&db_, &graph_, shared);
    auto a = legacy_engine.RunSql(stmt_text);
    auto b = shared_engine.RunSql(stmt_text);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();

    EXPECT_EQ(a->baseline_value, b->baseline_value);
    EXPECT_EQ(a->objective_value, b->objective_value);
    EXPECT_EQ(a->PlanToString(), b->PlanToString());
    ASSERT_EQ(a->candidates.size(), b->candidates.size());
    for (size_t i = 0; i < a->candidates.size(); ++i) {
      ASSERT_EQ(a->candidates[i].size(), b->candidates[i].size());
      for (size_t j = 0; j < a->candidates[i].size(); ++j) {
        EXPECT_EQ(a->candidates[i][j].objective_value,
                  b->candidates[i][j].objective_value);
      }
    }
    // The shared path actually shared: estimators were reused across
    // candidates instead of retrained.
    EXPECT_EQ(0u, a->pattern_cache_hits);
    EXPECT_GT(b->pattern_cache_hits, 0u);
  }
}

TEST_F(ServiceTest, HowToThroughServiceReusesCacheAcrossRuns) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options);
  const std::string stmt_text =
      "Use German HowToUpdate Status ToMaximize Count(Credit = 1)";

  Response first = service->Submit({"main", stmt_text, {}});
  ASSERT_TRUE(first.ok()) << first.status;
  Response second = service->Submit({"main", stmt_text, {}});
  ASSERT_TRUE(second.ok()) << second.status;

  EXPECT_EQ(first.howto.objective_value, second.howto.objective_value);
  EXPECT_EQ(first.howto.PlanToString(), second.howto.PlanToString());
  EXPECT_EQ(0u, first.howto.plan_cache_hits);
  EXPECT_GT(second.howto.plan_cache_hits, 0u);
  EXPECT_EQ(0.0, second.howto.train_seconds);
}

// --- concurrent how-to stress ---------------------------------------------

TEST_F(ServiceTest, ConcurrentMixedHowToStressBitEqualAcrossThreads) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto primary = sql::ParseSql(
      "Use German HowToUpdate Status, Savings "
      "ToMaximize Count(Credit = 1)");
  auto secondary = sql::ParseSql(
      "Use German HowToUpdate Status, Savings "
      "ToMinimize Avg(Post(CreditAmount))");
  ASSERT_TRUE(primary.ok() && secondary.ok());

  auto engine_with = [&](PlanCache* cache, size_t threads) {
    howto::HowToOptions ho;
    ho.whatif = options;
    ho.whatif.num_threads = threads;
    ho.plan_cache = cache;
    ho.cache_scope = "stress";
    return howto::HowToEngine(&db_, &graph_, ho);
  };

  // Single-threaded reference results (fresh cache).
  PlanCache ref_cache(64);
  howto::HowToEngine ref_engine = engine_with(&ref_cache, 1);
  auto ref_run = ref_engine.Run(*primary->howto);
  ASSERT_TRUE(ref_run.ok()) << ref_run.status();
  const double target =
      ref_run->baseline_value +
      0.3 * (ref_run->objective_value - ref_run->baseline_value);
  auto ref_min = ref_engine.RunMinCost(*primary->howto, target);
  ASSERT_TRUE(ref_min.ok()) << ref_min.status();
  auto ref_lex = ref_engine.RunLexicographic(
      {primary->howto.get(), secondary->howto.get()});
  ASSERT_TRUE(ref_lex.ok()) << ref_lex.status();

  // Reference what-if values on two scenario branches.
  auto ref_service = MakeService(options);
  ASSERT_TRUE(ref_service->CreateScenario("b1", "main").ok());
  ASSERT_TRUE(ref_service
                  ->ApplyHypotheticalSql(
                      "b1",
                      "Use German When Savings = 0 Update(Credit) = 0 "
                      "Output Count(*)")
                  .ok());
  const double ref_main =
      ref_service->Submit({"main", kQuery, {}}).whatif.value;
  const double ref_b1 = ref_service->Submit({"b1", kQuery, {}}).whatif.value;

  auto check_howto = [](const howto::HowToResult& expect,
                        const howto::HowToResult& got, const char* what) {
    EXPECT_EQ(expect.baseline_value, got.baseline_value) << what;
    EXPECT_EQ(expect.objective_value, got.objective_value) << what;
    EXPECT_EQ(expect.PlanToString(), got.PlanToString()) << what;
    ASSERT_EQ(expect.candidates.size(), got.candidates.size()) << what;
    for (size_t a = 0; a < expect.candidates.size(); ++a) {
      ASSERT_EQ(expect.candidates[a].size(), got.candidates[a].size());
      for (size_t i = 0; i < expect.candidates[a].size(); ++i) {
        EXPECT_EQ(expect.candidates[a][i].objective_value,
                  got.candidates[a][i].objective_value)
            << what << " candidate " << a << "/" << i;
      }
    }
  };

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    PlanCache cache(64);
    howto::HowToEngine engine = engine_with(&cache, threads);
    auto service = MakeService(options, 64, threads);
    ASSERT_TRUE(service->CreateScenario("b1", "main").ok());
    ASSERT_TRUE(service
                    ->ApplyHypotheticalSql(
                        "b1",
                        "Use German When Savings = 0 Update(Credit) = 0 "
                        "Output Count(*)")
                    .ok());

    // `threads` workers race mixed how-to solves against one shared plan
    // cache, interleaved with what-if submissions on both branches.
    std::vector<std::thread> workers;
    std::vector<Status> howto_status(threads);
    std::vector<howto::HowToResult> howto_results(threads);
    std::vector<double> whatif_values(threads, 0.0);
    std::atomic<size_t> started{0};
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        ++started;
        while (started.load() < threads) std::this_thread::yield();
        Result<howto::HowToResult> r = Status::Internal("unset");
        switch (t % 3) {
          case 0:
            r = engine.Run(*primary->howto);
            break;
          case 1:
            r = engine.RunMinCost(*primary->howto, target);
            break;
          default:
            r = engine.RunLexicographic(
                {primary->howto.get(), secondary->howto.get()});
            break;
        }
        if (r.ok()) {
          howto_results[t] = std::move(r).value();
        } else {
          howto_status[t] = r.status();
        }
        whatif_values[t] =
            service->Submit({t % 2 == 0 ? "main" : "b1", kQuery, {}})
                .whatif.value;
      });
    }
    for (std::thread& w : workers) w.join();

    for (size_t t = 0; t < threads; ++t) {
      ASSERT_TRUE(howto_status[t].ok()) << howto_status[t];
      switch (t % 3) {
        case 0:
          check_howto(*ref_run, howto_results[t], "Run");
          break;
        case 1:
          check_howto(*ref_min, howto_results[t], "RunMinCost");
          break;
        default:
          check_howto(*ref_lex, howto_results[t], "RunLexicographic");
          break;
      }
      EXPECT_EQ(t % 2 == 0 ? ref_main : ref_b1, whatif_values[t])
          << "threads=" << threads << " worker=" << t;
    }

    // No duplicate Prepare+train: single-flight guarantees one miss (= one
    // prepare) per distinct plan key, no matter how many workers raced on
    // it. Lexicographic workers (t % 3 == 2) touch 3 extra keys for the
    // secondary objective's baseline + per-attribute plans.
    const size_t distinct_keys = threads >= 3 ? 6u : 3u;
    PlanCacheStats stats = cache.stats();
    EXPECT_EQ(distinct_keys, stats.misses) << "threads=" << threads;
    EXPECT_EQ(0u, stats.evictions);
    // Every lookup is accounted for exactly once.
    size_t lookups = 0;
    for (size_t t = 0; t < threads; ++t) {
      lookups += (t % 3 == 2) ? 6 : 3;  // baseline + one per attribute
    }
    EXPECT_EQ(lookups, stats.hits + stats.misses + stats.coalesced)
        << "threads=" << threads;
  }
}

// --- invalidation ---------------------------------------------------------

TEST_F(ServiceTest, ReloadDatasetInvalidatesCache) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options);
  ASSERT_TRUE(service->Submit({"main", kQuery, {}}).ok());
  EXPECT_EQ(1u, service->cache_stats().entries);

  // Reload with different data: the old plan must not serve the new world.
  data::GermanOptions german;
  german.rows = 500;
  german.seed = 99;
  auto ds = data::MakeGermanSyn(german);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(service->ReloadDataset(std::move(ds->db)).ok());
  EXPECT_EQ(0u, service->cache_stats().entries);

  std::shared_ptr<const Database> reloaded =
      service->EffectiveDatabase("main").value();
  whatif::WhatIfEngine fresh(reloaded.get(), &graph_, options);
  Response after = service->Submit({"main", kQuery, {}});
  ASSERT_TRUE(after.ok()) << after.status;
  EXPECT_FALSE(after.whatif.plan_cache_hit);
  EXPECT_EQ(fresh.RunSql(kQuery)->value, after.whatif.value);
}

// --- staged prepare pipeline ----------------------------------------------

// A branch whose 1-cell delta touches only an attribute outside the plan's
// features / adjustment set / For-Output references reuses the trunk's
// CausalStage and LearnStage (trained estimators included): per-stage miss
// counters prove only Scope and Query rebuilt — and the answer is still
// bit-identical to a fresh engine run over the branch's effective world.
TEST_F(ServiceTest, BranchDeltaOutsideTrainingSetReusesLearnStage) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);
  auto service = MakeService(options);
  ASSERT_TRUE(service->Submit({"main", kQuery, {}}).ok());
  PlanCacheStats stats = service->cache_stats();
  EXPECT_EQ(1u, stats.scope.misses);
  EXPECT_EQ(1u, stats.causal.misses);
  EXPECT_EQ(1u, stats.learn.misses);
  EXPECT_EQ(1u, stats.query.misses);

  // Savings is not in this query's adjustment set ({Age, Housing} for
  // Status -> Credit), not an update attribute, and not referenced by
  // For/Output — so the LearnStage never reads it.
  ASSERT_TRUE(service->CreateScenario("savings").ok());
  auto updated = service->ApplyHypotheticalSql(
      "savings", "Use German When Id = 3 Update(Savings) = 2 Output Count(*)");
  ASSERT_TRUE(updated.ok()) << updated.status();
  ASSERT_EQ(1u, *updated);

  Response branch = service->Submit({"savings", kQuery, {}});
  ASSERT_TRUE(branch.ok()) << branch.status;
  stats = service->cache_stats();
  EXPECT_EQ(2u, stats.scope.misses);   // branch image rebuilt (patched)
  EXPECT_EQ(1u, stats.causal.misses);  // shape-keyed: shared with trunk
  EXPECT_EQ(1u, stats.learn.misses);   // delta misses the training set
  EXPECT_EQ(2u, stats.query.misses);   // per-row constants rebound
  EXPECT_GT(branch.whatif.pattern_cache_hits, 0u);
  EXPECT_EQ(0.0, branch.whatif.train_seconds);

  // Bit-identical to a fresh (monolithic) engine over the effective world.
  std::shared_ptr<const Database> world =
      service->EffectiveDatabase("savings").value();
  whatif::WhatIfEngine fresh(world.get(), &graph_, options);
  EXPECT_EQ(fresh.RunSql(kQuery)->value, branch.whatif.value);
}

// A Housing delta under kAllAttributes — where Housing joins the
// adjustment set — must invalidate the LearnStage (and retrain).
TEST_F(ServiceTest, BranchDeltaOnAdjustmentAttributeInvalidatesLearnStage) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kAllAttributes, learn::EstimatorKind::kFrequency);
  auto service = MakeService(options);
  ASSERT_TRUE(service->Submit({"main", kQuery, {}}).ok());
  ASSERT_EQ(1u, service->cache_stats().learn.misses);

  ASSERT_TRUE(service->CreateScenario("housing").ok());
  auto updated = service->ApplyHypotheticalSql(
      "housing", "Use German When Id = 3 Update(Housing) = 2 Output Count(*)");
  ASSERT_TRUE(updated.ok()) << updated.status();
  ASSERT_EQ(1u, *updated);

  Response branch = service->Submit({"housing", kQuery, {}});
  ASSERT_TRUE(branch.ok()) << branch.status;
  EXPECT_EQ(2u, service->cache_stats().learn.misses);

  std::shared_ptr<const Database> world =
      service->EffectiveDatabase("housing").value();
  whatif::WhatIfEngine fresh(world.get(), &graph_, options);
  EXPECT_EQ(fresh.RunSql(kQuery)->value, branch.whatif.value);

  // A delta on a For-referenced (target) attribute invalidates too.
  ASSERT_TRUE(service->CreateScenario("credit").ok());
  ASSERT_TRUE(service
                  ->ApplyHypotheticalSql("credit",
                                         "Use German When Id = 5 "
                                         "Update(Credit) = 0 Output Count(*)")
                  .ok());
  Response credit = service->Submit({"credit", kQuery, {}});
  ASSERT_TRUE(credit.ok()) << credit.status;
  EXPECT_EQ(3u, service->cache_stats().learn.misses);
}

// Evicting an upstream stage must not invalidate live downstream stages: a
// LearnStage holds its ScopeStage alive through a shared_ptr, keeps serving
// trained estimators, and a later prepare rebuilds only the evicted pieces.
TEST_F(ServiceTest, UpstreamEvictionKeepsDownstreamStagesAlive) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);
  const double expected = FreshRun(kQuery, options);
  auto service = MakeService(options);
  ASSERT_TRUE(service->Submit({"main", kQuery, {}}).ok());

  PlanCacheStats before = service->cache_stats();
  ASSERT_EQ(1u, before.scope.entries);
  ASSERT_EQ(1u, before.learn.entries);

  // DropScenario-style eager eviction by the trunk's scope tag removes the
  // full-fingerprint entries (plan, scope, query); causal + learn survive
  // because their keys use shape / restricted scopes.
  // (Exercised through a throwaway branch so the public API drives it.)
  ASSERT_TRUE(service->CreateScenario("twin").ok());
  ASSERT_TRUE(service->DropScenario("twin").ok());  // identical delta: no-op
  PlanCacheStats after_noop = service->cache_stats();
  EXPECT_EQ(1u, after_noop.entries);  // trunk-shared entries kept

  ASSERT_TRUE(service->CreateScenario("mut").ok());
  ASSERT_TRUE(service
                  ->ApplyHypotheticalSql("mut",
                                         "Use German When Id = 7 "
                                         "Update(Savings) = 1 Output Count(*)")
                  .ok());
  ASSERT_TRUE(service->Submit({"mut", kQuery, {}}).ok());
  PlanCacheStats with_branch = service->cache_stats();
  EXPECT_EQ(2u, with_branch.scope.entries);
  EXPECT_EQ(1u, with_branch.learn.entries);  // shared (delta outside set)
  ASSERT_TRUE(service->DropScenario("mut").ok());

  PlanCacheStats after_drop = service->cache_stats();
  EXPECT_EQ(1u, after_drop.entries) << "branch plan not evicted";
  EXPECT_EQ(1u, after_drop.scope.entries) << "branch scope not evicted";
  EXPECT_EQ(1u, after_drop.learn.entries) << "shared learn wrongly evicted";
  EXPECT_EQ(with_branch.scope.evictions + 1, after_drop.scope.evictions);

  // The ledger still reconciles after eager eviction: the three Submits
  // above each did one plan lookup, the two plan misses each did one lookup
  // per stage section — eviction never double-counts or loses a lookup.
  Response again = service->Submit({"main", kQuery, {}});
  ASSERT_TRUE(again.ok()) << again.status;
  EXPECT_EQ(expected, again.whatif.value);
  EXPECT_EQ(0.0, again.whatif.train_seconds);
  PlanCacheStats final_stats = service->cache_stats();
  EXPECT_EQ(3u,
            final_stats.hits + final_stats.misses + final_stats.coalesced);
  for (const StageStats* s :
       {&final_stats.scope, &final_stats.causal, &final_stats.learn,
        &final_stats.query}) {
    EXPECT_EQ(2u, s->hits + s->misses + s->coalesced);
  }
  EXPECT_EQ(1u, final_stats.learn.misses) << "learn stage was rebuilt";
}

// Upstream eviction, hit directly at the StageCache: evict every ScopeStage
// entry while a plan (and its Learn/Query stages) are live, then re-prepare.
// Only the scope rebuilds — downstream stages hold their upstream alive and
// keep serving — and evaluations stay bit-identical throughout.
TEST_F(ServiceTest, StageCacheUpstreamEvictionKeepsDownstreamServing) {
  const whatif::WhatIfOptions options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);
  StageCache cache(64);
  whatif::StageContext ctx;
  ctx.stages = &cache;
  ctx.data_scope = "d";

  whatif::WhatIfEngine engine(&db_, &graph_, options);
  auto stmt = sql::ParseSql(kQuery);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto first = engine.Prepare(*stmt->whatif, &ctx);
  ASSERT_TRUE(first.ok()) << first.status();
  auto value_of = [&](const whatif::PreparedWhatIf& plan) {
    auto r =
        engine.Evaluate(plan, whatif::SpecsOfStatement(*stmt->whatif));
    EXPECT_TRUE(r.ok()) << r.status();
    return r->value;
  };
  const double expected = value_of(**first);

  // Scope keys are the only ones spelled "scope|d..." (plan keys embed
  // "|scope[...]="), so this evicts exactly the scope section's entry.
  EXPECT_EQ(1u, cache.EvictTagged("scope|d"));
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(0u, stats.scope.entries);
  EXPECT_EQ(1u, stats.learn.entries);

  // The live plan keeps working: its stages hold the evicted scope alive.
  EXPECT_EQ(expected, value_of(**first));

  // Re-preparing rebuilds only the scope; causal/learn/query all hit, so
  // no estimator retrains and the assembled plan answers identically.
  auto second = engine.Prepare(*stmt->whatif, &ctx);
  ASSERT_TRUE(second.ok()) << second.status();
  stats = cache.stats();
  EXPECT_EQ(2u, stats.scope.misses);
  EXPECT_EQ(1u, stats.causal.misses);
  EXPECT_EQ(1u, stats.learn.misses);
  EXPECT_EQ(1u, stats.query.misses);
  EXPECT_EQ(expected, value_of(**second));
}

// Staged (default) vs monolithic (staged_prepare = false) answers are
// bit-identical at 1/2/4/8 threads, across branches and When-variants.
TEST_F(ServiceTest, StagedVsMonolithicBitEqualAcrossThreads) {
  whatif::WhatIfOptions staged_options = EngineOptions(
      whatif::BackdoorMode::kGraph, learn::EstimatorKind::kForest);
  whatif::WhatIfOptions monolithic_options = staged_options;
  monolithic_options.staged_prepare = false;

  const std::string queries[] = {
      kQuery,
      "Use German When Status = 2 Update(Status) = 3 Output Count(Credit = 1)",
      "Use German Update(Savings) = 2 Output Avg(Post(Credit))",
  };

  auto run_all = [&](const whatif::WhatIfOptions& options, size_t threads) {
    whatif::WhatIfOptions with_threads = options;
    with_threads.num_threads = threads;
    auto service = MakeService(with_threads, 64, threads);
    EXPECT_TRUE(service->CreateScenario("b").ok());
    EXPECT_TRUE(service
                    ->ApplyHypotheticalSql("b",
                                           "Use German When Id = 2 "
                                           "Update(Housing) = 0 "
                                           "Output Count(*)")
                    .ok());
    std::vector<Request> requests;
    for (const std::string& q : queries) {
      requests.push_back({"main", q, {}});
      requests.push_back({"b", q, {}});
    }
    std::vector<double> values;
    for (const Response& r : service->SubmitBatch(requests)) {
      EXPECT_TRUE(r.ok()) << r.status;
      values.push_back(r.whatif.value);
    }
    return values;
  };

  const std::vector<double> reference = run_all(monolithic_options, 1);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(reference, run_all(staged_options, threads))
        << "staged answers diverged at " << threads << " thread(s)";
    EXPECT_EQ(reference, run_all(monolithic_options, threads))
        << "monolithic answers diverged at " << threads << " thread(s)";
  }
}

// --- the storage substrate the branches ride on ---------------------------

TEST_F(ServiceTest, DatabaseShallowCopyIsCopyOnWrite) {
  Database shallow = db_.ShallowCopy();
  const Table* original = db_.GetTable("German").value();
  EXPECT_EQ(original, shallow.GetTable("German").value());  // shared storage
  EXPECT_EQ(db_.ContentFingerprint(), shallow.ContentFingerprint());

  const Value before = original->At(0, 2);
  Table* detached = shallow.GetMutableTable("German").value();
  EXPECT_NE(static_cast<const Table*>(detached), original);  // detached
  detached->SetValue(0, 2, Value::Int(before.Equals(Value::Int(3)) ? 2 : 3));
  EXPECT_TRUE(db_.GetTable("German").value()->At(0, 2).Equals(before))
      << "mutation leaked into the base";
  EXPECT_NE(db_.ContentFingerprint(), shallow.ContentFingerprint());

  // Deep Clone stays eagerly independent (the SCM oracle mutates through
  // raw Table pointers taken before the clone).
  Database deep = db_.Clone();
  EXPECT_NE(db_.GetTable("German").value(), deep.GetTable("German").value());
  EXPECT_EQ(db_.ContentFingerprint(), deep.ContentFingerprint());
}

}  // namespace
}  // namespace hyper::service
