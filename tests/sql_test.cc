#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace hyper::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = TokenizeSql("Select Price, 42 3.5 'Asus' (*)").value();
  ASSERT_EQ(tokens.size(), 10u);  // incl. kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "Select");
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 3.5);
  EXPECT_EQ(tokens[5].text, "Asus");
  EXPECT_EQ(tokens[6].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[7].kind, TokenKind::kStar);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = TokenizeSql("= != <> < <= > >=").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kEq);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[5].kind, TokenKind::kGt);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGe);
}

TEST(LexerTest, StringEscape) {
  auto tokens = TokenizeSql("'it''s'").value();
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = TokenizeSql("a -- comment here\n b").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = TokenizeSql("a\n  b").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(TokenizeSql("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, BadCharacterFails) {
  EXPECT_EQ(TokenizeSql("a ; b").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = TokenizeSql("1e3 2.5E-2").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.025);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

TEST(ParserTest, Precedence) {
  auto e = ParseSqlExpr("1 + 2 * 3").value();
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, BinaryOp::kAdd);
  EXPECT_EQ(e->children[1]->op, BinaryOp::kMul);
}

TEST(ParserTest, AndOrPrecedence) {
  auto e = ParseSqlExpr("a = 1 Or b = 2 And c = 3").value();
  EXPECT_EQ(e->op, BinaryOp::kOr);
  EXPECT_EQ(e->children[1]->op, BinaryOp::kAnd);
}

TEST(ParserTest, NotBindsTighterThanAnd) {
  auto e = ParseSqlExpr("Not a = 1 And b = 2").value();
  EXPECT_EQ(e->op, BinaryOp::kAnd);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kNot);
}

TEST(ParserTest, QualifiedColumnRef) {
  auto e = ParseSqlExpr("T1.Price").value();
  EXPECT_EQ(e->kind, ExprKind::kColumnRef);
  EXPECT_EQ(e->qualifier, "T1");
  EXPECT_EQ(e->name, "Price");
}

TEST(ParserTest, PrePostWrappers) {
  auto e = ParseSqlExpr("Post(Senti) > 0.5").value();
  EXPECT_EQ(e->op, BinaryOp::kGt);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kPost);
  auto p = ParseSqlExpr("Pre(Category) = 'Laptop'").value();
  EXPECT_EQ(p->children[0]->kind, ExprKind::kPre);
}

TEST(ParserTest, InList) {
  auto e = ParseSqlExpr("Brand In ('Asus', 'HP')").value();
  EXPECT_EQ(e->kind, ExprKind::kInList);
  EXPECT_EQ(e->children.size(), 3u);
}

TEST(ParserTest, Between) {
  auto e = ParseSqlExpr("Price Between 10 And 20").value();
  EXPECT_EQ(e->op, BinaryOp::kAnd);
  EXPECT_EQ(e->children[0]->op, BinaryOp::kGe);
  EXPECT_EQ(e->children[1]->op, BinaryOp::kLe);
}

TEST(ParserTest, ChainedComparison) {
  auto e = ParseSqlExpr("500 <= Post(Price) <= 800").value();
  EXPECT_EQ(e->op, BinaryOp::kAnd);
  EXPECT_EQ(e->children[0]->op, BinaryOp::kLe);
  EXPECT_EQ(e->children[1]->op, BinaryOp::kLe);
}

TEST(ParserTest, Literals) {
  EXPECT_TRUE(ParseSqlExpr("True").value()->literal.bool_value());
  EXPECT_FALSE(ParseSqlExpr("FALSE").value()->literal.bool_value());
  EXPECT_TRUE(ParseSqlExpr("Null").value()->literal.is_null());
  EXPECT_EQ(ParseSqlExpr("-5").value()->kind, ExprKind::kNeg);
}

TEST(ParserTest, L1FunctionCall) {
  auto e = ParseSqlExpr("L1(Pre(Price), Post(Price)) <= 400").value();
  EXPECT_EQ(e->op, BinaryOp::kLe);
  EXPECT_EQ(e->children[0]->kind, ExprKind::kFuncCall);
  EXPECT_EQ(e->children[0]->name, "L1");
}

TEST(ParserTest, AggregateCanonicalized) {
  auto e = ParseSqlExpr("average(Rating)").value();
  EXPECT_EQ(e->kind, ExprKind::kFuncCall);
  EXPECT_EQ(e->name, "Avg");
}

TEST(ParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseSqlExpr("1 + 2 extra junk(").ok());
}

TEST(ParserTest, ExprRoundTripThroughPrinter) {
  const char* exprs[] = {
      "Price > 100 And Brand = 'Asus'",
      "Post(Senti) > 0.5",
      "a In (1, 2, 3)",
      "Not (x = 1)",
      "1 + 2 * 3 - 4 / 5",
  };
  for (const char* text : exprs) {
    auto e1 = ParseSqlExpr(text).value();
    auto e2 = ParseSqlExpr(e1->ToString()).value();
    EXPECT_EQ(e1->ToString(), e2->ToString()) << text;
  }
}

// ---------------------------------------------------------------------------
// Select statements
// ---------------------------------------------------------------------------

TEST(ParserTest, SelectPaperUseQuery) {
  // The Use-operator query of Figure 4.
  auto stmt = ParseSql(
                  "Select T1.PID, T1.Category, T1.Price, T1.Brand, "
                  "Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
                  "From Product As T1, Review As T2 "
                  "Where T1.PID = T2.PID "
                  "Group By T1.PID, T1.Category, T1.Price, T1.Brand")
                  .value();
  ASSERT_NE(stmt.select, nullptr);
  const SelectStmt& s = *stmt.select;
  ASSERT_EQ(s.items.size(), 6u);
  EXPECT_EQ(s.items[4].alias, "Senti");
  EXPECT_EQ(s.items[4].agg, AggKind::kAvg);
  EXPECT_EQ(s.items[5].agg, AggKind::kAvg);
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].table, "Product");
  EXPECT_EQ(s.from[0].alias, "T1");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 4u);
}

TEST(ParserTest, SelectCountStar) {
  auto stmt = ParseSql("Select Count(*) From R").value();
  EXPECT_EQ(stmt.select->items[0].agg, AggKind::kCount);
  EXPECT_EQ(stmt.select->items[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, SelectMissingFromFails) {
  EXPECT_FALSE(ParseSql("Select a, b").ok());
}

TEST(ParserTest, SelectRoundTrip) {
  auto s1 = ParseSql("Select a, Sum(b) As sb From R Where a > 1 Group By a")
                .value();
  auto s2 = ParseSql(s1.select->ToString()).value();
  EXPECT_EQ(s1.select->ToString(), s2.select->ToString());
}

// ---------------------------------------------------------------------------
// What-if statements
// ---------------------------------------------------------------------------

TEST(ParserTest, WhatIfFigure4) {
  // Figure 4's full what-if query.
  auto stmt = ParseSql(
                  "Use RelevantView As ("
                  "  Select T1.PID, T1.Category, T1.Price, T1.Brand, "
                  "         Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng "
                  "  From Product As T1, Review As T2 "
                  "  Where T1.PID = T2.PID "
                  "  Group By T1.PID, T1.Category, T1.Price, T1.Brand) "
                  "When Brand = 'Asus' "
                  "Update(Price) = 1.1 * Pre(Price) "
                  "Output Avg(Post(Rtng)) "
                  "For Pre(Category) = 'Laptop' And Pre(Brand) = 'Asus' "
                  "    And Post(Senti) > 0.5")
                  .value();
  ASSERT_NE(stmt.whatif, nullptr);
  const WhatIfStmt& w = *stmt.whatif;
  EXPECT_EQ(w.use.view_name, "RelevantView");
  ASSERT_NE(w.use.select, nullptr);
  ASSERT_NE(w.when, nullptr);
  ASSERT_EQ(w.updates.size(), 1u);
  EXPECT_EQ(w.updates[0].attribute, "Price");
  EXPECT_EQ(w.updates[0].func, UpdateFuncKind::kScale);
  EXPECT_DOUBLE_EQ(w.updates[0].constant.AsDouble().value(), 1.1);
  EXPECT_EQ(w.output.agg, AggKind::kAvg);
  ASSERT_NE(w.for_pred, nullptr);
  EXPECT_TRUE(ContainsPost(*w.for_pred));
  EXPECT_TRUE(ContainsPre(*w.for_pred));
}

TEST(ParserTest, WhatIfBareTableUse) {
  auto stmt =
      ParseSql("Use German Update(Status) = 2 Output Count(Credit = 1)")
          .value();
  ASSERT_NE(stmt.whatif, nullptr);
  EXPECT_TRUE(stmt.whatif->use.is_table());
  EXPECT_EQ(stmt.whatif->use.table, "German");
  EXPECT_EQ(stmt.whatif->updates[0].func, UpdateFuncKind::kSet);
  EXPECT_EQ(stmt.whatif->output.agg, AggKind::kCount);
}

TEST(ParserTest, WhatIfUpdateShapes) {
  auto set = ParseSql("Use R Update(A) = 5 Output Count(*)").value();
  EXPECT_EQ(set.whatif->updates[0].func, UpdateFuncKind::kSet);
  auto scale =
      ParseSql("Use R Update(A) = 1.2 * Pre(A) Output Count(*)").value();
  EXPECT_EQ(scale.whatif->updates[0].func, UpdateFuncKind::kScale);
  auto shift =
      ParseSql("Use R Update(A) = 100 + Pre(A) Output Count(*)").value();
  EXPECT_EQ(shift.whatif->updates[0].func, UpdateFuncKind::kShift);
  auto flipped =
      ParseSql("Use R Update(A) = Pre(A) + 100 Output Count(*)").value();
  EXPECT_EQ(flipped.whatif->updates[0].func, UpdateFuncKind::kShift);
  auto str = ParseSql("Use R Update(A) = 'Red' Output Count(*)").value();
  EXPECT_TRUE(str.whatif->updates[0].constant.Equals(Value::String("Red")));
  auto neg = ParseSql("Use R Update(A) = -3 Output Count(*)").value();
  EXPECT_TRUE(neg.whatif->updates[0].constant.Equals(Value::Int(-3)));
}

TEST(ParserTest, WhatIfMultipleUpdates) {
  auto stmt = ParseSql(
                  "Use R Update(Price) = 500 And Update(Color) = 'Red' "
                  "Output Avg(Post(Rating))")
                  .value();
  ASSERT_EQ(stmt.whatif->updates.size(), 2u);
  EXPECT_EQ(stmt.whatif->updates[1].attribute, "Color");
}

TEST(ParserTest, WhatIfUpdateMismatchedPreAttrFails) {
  EXPECT_FALSE(ParseSql("Use R Update(A) = 1.1 * Pre(B) Output Count(*)").ok());
}

TEST(ParserTest, WhatIfCountStarWithForPost) {
  // Figure 7b's template.
  auto stmt = ParseSql(
                  "Use D Update(B) = 1 Output Count(*) "
                  "For Post(Income) > 50 And Pre(A) = 2")
                  .value();
  ASSERT_NE(stmt.whatif, nullptr);
  EXPECT_EQ(stmt.whatif->output.inner, nullptr);
}

TEST(ParserTest, WhatIfRoundTrip) {
  auto s1 = ParseSql(
                "Use R When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) "
                "Output Avg(Post(Rating)) For Pre(Category) = 'Laptop'")
                .value();
  auto s2 = ParseSql(s1.whatif->ToString()).value();
  EXPECT_EQ(s1.whatif->ToString(), s2.whatif->ToString());
}

// ---------------------------------------------------------------------------
// How-to statements
// ---------------------------------------------------------------------------

TEST(ParserTest, HowToFigure5) {
  auto stmt = ParseSql(
                  "Use V As (Select PID, Price, Color, Brand, Category, "
                  "Avg(Rating) As Rtng From Product, Review "
                  "Where Product.PID = Review.PID "
                  "Group By PID, Price, Color, Brand, Category) "
                  "When Brand = 'Asus' And Category = 'Laptop' "
                  "HowToUpdate Price, Color "
                  "Limit 500 <= Post(Price) <= 800 And "
                  "      L1(Pre(Price), Post(Price)) <= 400 "
                  "ToMaximize Avg(Post(Rtng)) "
                  "For (Pre(Category) = 'Laptop' Or "
                  "     Pre(Category) = 'DSLR Camera') And Brand = 'Asus'")
                  .value();
  ASSERT_NE(stmt.howto, nullptr);
  const HowToStmt& h = *stmt.howto;
  ASSERT_EQ(h.update_attributes.size(), 2u);
  EXPECT_EQ(h.update_attributes[0], "Price");
  EXPECT_EQ(h.update_attributes[1], "Color");
  ASSERT_EQ(h.limits.size(), 2u);
  EXPECT_EQ(h.limits[0].kind, LimitKind::kAbsRange);
  EXPECT_DOUBLE_EQ(*h.limits[0].lo, 500);
  EXPECT_DOUBLE_EQ(*h.limits[0].hi, 800);
  EXPECT_EQ(h.limits[1].kind, LimitKind::kL1);
  EXPECT_DOUBLE_EQ(*h.limits[1].hi, 400);
  EXPECT_TRUE(h.maximize);
  EXPECT_EQ(h.objective_agg, AggKind::kAvg);
  ASSERT_NE(h.for_pred, nullptr);
}

TEST(ParserTest, HowToMinimizeAndInSet) {
  auto stmt = ParseSql(
                  "Use R HowToUpdate Color "
                  "Limit Post(Color) In ('Red', 'Blue') "
                  "ToMinimize Sum(Post(Cost))")
                  .value();
  ASSERT_NE(stmt.howto, nullptr);
  EXPECT_FALSE(stmt.howto->maximize);
  ASSERT_EQ(stmt.howto->limits.size(), 1u);
  EXPECT_EQ(stmt.howto->limits[0].kind, LimitKind::kInSet);
  EXPECT_EQ(stmt.howto->limits[0].values.size(), 2u);
}

TEST(ParserTest, HowToRelativeLimits) {
  auto stmt = ParseSql(
                  "Use R HowToUpdate A "
                  "Limit Post(A) <= Pre(A) + 100 And Post(A) >= Pre(A) * 0.5 "
                  "ToMaximize Avg(Post(Y))")
                  .value();
  ASSERT_EQ(stmt.howto->limits.size(), 2u);
  EXPECT_EQ(stmt.howto->limits[0].kind, LimitKind::kRelShift);
  EXPECT_TRUE(stmt.howto->limits[0].upper_is_bound);
  EXPECT_EQ(stmt.howto->limits[1].kind, LimitKind::kRelScale);
  EXPECT_FALSE(stmt.howto->limits[1].upper_is_bound);
}

TEST(ParserTest, HowToOneSidedLimits) {
  auto stmt = ParseSql(
                  "Use R HowToUpdate A Limit Post(A) <= 10 And Post(A) >= 2 "
                  "ToMaximize Avg(Post(Y))")
                  .value();
  ASSERT_EQ(stmt.howto->limits.size(), 2u);
  EXPECT_DOUBLE_EQ(*stmt.howto->limits[0].hi, 10);
  EXPECT_FALSE(stmt.howto->limits[0].lo.has_value());
  EXPECT_DOUBLE_EQ(*stmt.howto->limits[1].lo, 2);
}

TEST(ParserTest, HowToMissingObjectiveFails) {
  EXPECT_FALSE(ParseSql("Use R HowToUpdate A Limit Post(A) <= 10").ok());
}

TEST(ParserTest, HowToRoundTrip) {
  auto s1 = ParseSql(
                "Use R When Brand = 'Asus' HowToUpdate Price, Color "
                "Limit 500 <= Post(Price) <= 800 "
                "ToMaximize Avg(Post(Rtng)) For Pre(Category) = 'Laptop'")
                .value();
  auto s2 = ParseSql(s1.howto->ToString()).value();
  EXPECT_EQ(s1.howto->ToString(), s2.howto->ToString());
}

// ---------------------------------------------------------------------------
// AST utilities
// ---------------------------------------------------------------------------

TEST(AstTest, SplitConjunction) {
  auto e = ParseSqlExpr("a = 1 And b = 2 And c = 3").value();
  auto terms = SplitConjunction(*e);
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0]->ToString(), "a = 1");
  EXPECT_EQ(terms[2]->ToString(), "c = 3");
}

TEST(AstTest, SplitConjunctionDoesNotCrossOr) {
  auto e = ParseSqlExpr("(a = 1 Or b = 2) And c = 3").value();
  auto terms = SplitConjunction(*e);
  ASSERT_EQ(terms.size(), 2u);
}

TEST(AstTest, SplitDisjunction) {
  auto e = ParseSqlExpr("a = 1 Or b = 2 Or c = 3").value();
  auto terms = SplitDisjunction(*e);
  ASSERT_EQ(terms.size(), 3u);
}

TEST(AstTest, CollectColumnRefsDedup) {
  auto e = ParseSqlExpr("Price > 10 And Price < 20 And Brand = 'A'").value();
  std::vector<std::string> cols;
  CollectColumnRefs(*e, &cols);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "Price");
  EXPECT_EQ(cols[1], "Brand");
}

TEST(AstTest, CloneIsDeep) {
  auto e1 = ParseSqlExpr("a + b * 2").value();
  auto e2 = e1->Clone();
  e1->children[0]->name = "zzz";
  EXPECT_EQ(e2->children[0]->name, "a");
}

TEST(AstTest, MakeConjunction) {
  std::vector<ExprPtr> terms;
  EXPECT_EQ(MakeConjunction(std::move(terms)), nullptr);
  std::vector<ExprPtr> one;
  one.push_back(ParseSqlExpr("a = 1").value());
  EXPECT_EQ(MakeConjunction(std::move(one))->ToString(), "a = 1");
  std::vector<ExprPtr> two;
  two.push_back(ParseSqlExpr("a = 1").value());
  two.push_back(ParseSqlExpr("b = 2").value());
  auto conj = MakeConjunction(std::move(two));
  EXPECT_EQ(conj->op, BinaryOp::kAnd);
}

}  // namespace
}  // namespace hyper::sql
