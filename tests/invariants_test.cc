// Engine invariants that must hold for every query and configuration:
// probability bounds, determinism, sampling consistency, and semantic
// relations between query variants (sub-additivity of Count under For
// strengthening, When-subset monotonicity of deviation from baseline).

#include <gtest/gtest.h>

#include "common/strings.h"
#include "data/datasets.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

struct Config {
  learn::EstimatorKind estimator;
  whatif::BackdoorMode mode;
  size_t sample;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  std::string name = learn::EstimatorKindName(info.param.estimator);
  name += info.param.mode == whatif::BackdoorMode::kGraph       ? "Graph"
          : info.param.mode == whatif::BackdoorMode::kUpdateOnly ? "Indep"
                                                                 : "Nb";
  name += info.param.sample > 0 ? "Sampled" : "Full";
  return name;
}

class EngineInvariants : public ::testing::TestWithParam<Config> {
 protected:
  static const data::Dataset& Dataset() {
    static const data::Dataset* ds = [] {
      data::GermanOptions opt;
      opt.rows = 6000;
      opt.seed = 77;
      return new data::Dataset(std::move(data::MakeGermanSyn(opt).value()));
    }();
    return *ds;
  }

  whatif::WhatIfEngine Engine() const {
    whatif::WhatIfOptions options;
    options.estimator = GetParam().estimator;
    options.forest.num_trees = 8;
    options.backdoor = GetParam().mode;
    options.sample_size = GetParam().sample;
    return whatif::WhatIfEngine(&Dataset().db, &Dataset().graph, options);
  }
};

TEST_P(EngineInvariants, CountBoundedByQualifyingRows) {
  auto result =
      Engine().RunSql("Use German Update(Status) = 3 Output Count(Credit = 1)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->value, 0.0);
  EXPECT_LE(result->value, static_cast<double>(result->view_rows));
}

TEST_P(EngineInvariants, AvgOfBinaryStaysInUnitInterval) {
  auto result =
      Engine().RunSql("Use German Update(Savings) = 2 Output Avg(Post(Credit))");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->value, 0.0);
  EXPECT_LE(result->value, 1.0);
}

TEST_P(EngineInvariants, DeterministicAcrossRuns) {
  const char* query =
      "Use German When Age = 1 Update(Status) = 2 Output Count(Credit = 1)";
  auto a = Engine().RunSql(query);
  auto b = Engine().RunSql(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->value, b->value);
}

TEST_P(EngineInvariants, StrongerForNeverIncreasesCount) {
  // Count over (A and B) <= Count over A: the qualifying set shrinks.
  auto weak = Engine().RunSql(
      "Use German Update(Status) = 3 Output Count(*) For Post(Credit) = 1");
  auto strong = Engine().RunSql(
      "Use German Update(Status) = 3 Output Count(*) "
      "For Post(Credit) = 1 And Pre(Age) = 2");
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_LE(strong->value, weak->value + 1e-9);
}

TEST_P(EngineInvariants, DisjunctionAtLeastEachDisjunct) {
  auto disj = Engine().RunSql(
      "Use German Update(Status) = 3 Output Count(*) "
      "For Pre(Age) = 0 Or Post(Credit) = 1");
  auto left = Engine().RunSql(
      "Use German Update(Status) = 3 Output Count(*) For Pre(Age) = 0");
  ASSERT_TRUE(disj.ok());
  ASSERT_TRUE(left.ok());
  EXPECT_GE(disj->value, left->value - 1e-9);
}

TEST_P(EngineInvariants, WhenSubsetMovesLessThanFullUpdate) {
  // Updating a subset of tuples moves the aggregate at most as far from the
  // observational baseline as updating everyone (monotone effects here).
  auto baseline = Engine().RunSql(
      "Use German When Age = 99 Update(Status) = 3 Output Count(Credit = 1)");
  auto subset = Engine().RunSql(
      "Use German When Age = 0 Update(Status) = 3 Output Count(Credit = 1)");
  auto full = Engine().RunSql(
      "Use German Update(Status) = 3 Output Count(Credit = 1)");
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(subset.ok());
  ASSERT_TRUE(full.ok());
  const double subset_shift = std::abs(subset->value - baseline->value);
  const double full_shift = std::abs(full->value - baseline->value);
  EXPECT_LE(subset_shift, full_shift + 1e-6);
}

TEST_P(EngineInvariants, UpdatedRowsMatchesWhenSelectivity) {
  auto result = Engine().RunSql(
      "Use German When Age = 1 Update(Status) = 2 Output Count(*)");
  ASSERT_TRUE(result.ok());
  // Count the Age=1 rows directly.
  const Table& t = *Dataset().db.GetTable("German").value();
  size_t expected = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.At(r, 1).Equals(Value::Int(1))) ++expected;
  }
  EXPECT_EQ(result->updated_rows, expected);
  // Count(*) with no For is deterministic regardless of estimator.
  EXPECT_DOUBLE_EQ(result->value, static_cast<double>(t.num_rows()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineInvariants,
    ::testing::Values(
        Config{learn::EstimatorKind::kFrequency,
               whatif::BackdoorMode::kGraph, 0},
        Config{learn::EstimatorKind::kFrequency,
               whatif::BackdoorMode::kAllAttributes, 0},
        Config{learn::EstimatorKind::kFrequency,
               whatif::BackdoorMode::kUpdateOnly, 0},
        Config{learn::EstimatorKind::kForest, whatif::BackdoorMode::kGraph,
               0},
        Config{learn::EstimatorKind::kFrequency,
               whatif::BackdoorMode::kGraph, 2000},
        Config{learn::EstimatorKind::kForest, whatif::BackdoorMode::kGraph,
               2000}),
    ConfigName);

// ---------------------------------------------------------------------------
// Seed sensitivity: different sampling seeds give close (not wild) results.
// ---------------------------------------------------------------------------

TEST(SamplingStability, SeedsAgreeWithinTolerance) {
  data::GermanOptions opt;
  opt.rows = 12000;
  auto ds = data::MakeGermanSyn(opt).value();
  const char* query =
      "Use German Update(Status) = 3 Output Avg(Post(Credit))";
  double min_v = 1e18, max_v = -1e18;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    options.sample_size = 4000;
    options.seed = seed;
    auto result = whatif::WhatIfEngine(&ds.db, &ds.graph, options)
                      .RunSql(query)
                      .value();
    min_v = std::min(min_v, result.value);
    max_v = std::max(max_v, result.value);
  }
  EXPECT_LT(max_v - min_v, 0.05);  // spread across seeds stays tight
}

}  // namespace
}  // namespace hyper
