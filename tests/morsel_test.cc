#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "data/datasets.h"
#include "sql/parser.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

/// RAII: restores the process-wide scheduling mode (tests toggle it).
class ScopedSchedulingMode {
 public:
  explicit ScopedSchedulingMode(SchedulingMode mode)
      : saved_(CurrentSchedulingMode()) {
    SetSchedulingMode(mode);
  }
  ~ScopedSchedulingMode() { SetSchedulingMode(saved_); }

 private:
  SchedulingMode saved_;
};

const std::vector<size_t>& PoolSizes() {
  static const std::vector<size_t> kSizes = {1, 2, 4, 8};
  return kSizes;
}

// ---------------------------------------------------------------------------
// Coverage: ParallelForRange must hand every index to fn exactly once —
// morsels popped from a participant's own shard and ranges stolen from a
// victim's back half must tile [0, n) with no gap and no overlap, at every
// pool size, grain, and scheduling mode.
// ---------------------------------------------------------------------------

TEST(MorselTest, RangeCoversEveryIndexExactlyOnce) {
  for (SchedulingMode mode : {SchedulingMode::kMorsel, SchedulingMode::kStatic}) {
    ScopedSchedulingMode scoped(mode);
    for (size_t threads : PoolSizes()) {
      ThreadPool pool(threads);
      for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{65}, size_t{10007}}) {
        for (size_t grain : {size_t{1}, size_t{64}, size_t{4096}}) {
          std::vector<std::atomic<uint32_t>> hits(n);
          for (auto& h : hits) h.store(0, std::memory_order_relaxed);
          pool.ParallelForRange(n, grain, [&](size_t begin, size_t end) {
            ASSERT_LE(begin, end);
            ASSERT_LE(end, n);
            for (size_t i = begin; i < end; ++i) {
              hits[i].fetch_add(1, std::memory_order_relaxed);
            }
          });
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u)
                << "mode=" << static_cast<int>(mode) << " threads=" << threads
                << " n=" << n << " grain=" << grain << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(MorselTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const size_t n = 5000;
  std::vector<std::atomic<uint32_t>> hits(n);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.ParallelFor(n, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << i;
  }
}

// ---------------------------------------------------------------------------
// Work stealing under skew: one contiguous run of indices is orders of
// magnitude more expensive than the rest. Per-index outputs land in fixed
// slots, so any thread count and either scheduling mode must produce the
// byte-identical result vector — the determinism contract the engine's
// ordered block merge builds on.
// ---------------------------------------------------------------------------

TEST(MorselTest, SkewedWorkIsDeterministicAcrossThreadCounts) {
  constexpr size_t n = 4096;
  auto heavy = [](size_t i) {
    // Front-loaded skew: the first 5% of indices carry ~1000x the work.
    uint64_t h = i * 0x9e3779b97f4a7c15ULL + 1;
    const int spins = i < n / 20 ? 2000 : 2;
    for (int s = 0; s < spins; ++s) h = h * 6364136223846793005ULL + i;
    return h;
  };
  std::vector<uint64_t> reference(n);
  for (size_t i = 0; i < n; ++i) reference[i] = heavy(i);

  for (SchedulingMode mode : {SchedulingMode::kMorsel, SchedulingMode::kStatic}) {
    ScopedSchedulingMode scoped(mode);
    for (size_t threads : PoolSizes()) {
      ThreadPool pool(threads);
      std::vector<uint64_t> out(n, 0);
      pool.ParallelForRange(n, /*grain=*/16, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = heavy(i);
      });
      ASSERT_EQ(std::memcmp(out.data(), reference.data(), n * sizeof(uint64_t)),
                0)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

TEST(MorselTest, MaxParallelismCapsParticipants) {
  ThreadPool pool(8);
  std::atomic<size_t> live{0};
  std::atomic<size_t> peak{0};
  pool.ParallelForRange(
      512, /*grain=*/1,
      [&](size_t begin, size_t end) {
        const size_t now = live.fetch_add(1, std::memory_order_acq_rel) + 1;
        size_t seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        for (int s = 0; s < 50; ++s) {
          std::atomic_signal_fence(std::memory_order_seq_cst);
        }
        (void)begin;
        (void)end;
        live.fetch_sub(1, std::memory_order_acq_rel);
      },
      /*max_parallelism=*/2);
  EXPECT_LE(peak.load(std::memory_order_relaxed), 2u);
}

TEST(MorselTest, SchedulingModeFlagRoundTrips) {
  ScopedSchedulingMode scoped(SchedulingMode::kStatic);
  EXPECT_EQ(CurrentSchedulingMode(), SchedulingMode::kStatic);
  SetSchedulingMode(SchedulingMode::kMorsel);
  EXPECT_EQ(CurrentSchedulingMode(), SchedulingMode::kMorsel);
}

// ---------------------------------------------------------------------------
// End to end: a what-if evaluation over skewed ground blocks must be
// bit-for-bit identical at every thread budget and under both scheduling
// modes (ordered block merge). german-syn's blocks are singletons — the
// skew here comes from the morsel grain interacting with uneven per-row
// work — which is exactly the production shape of the block loop.
// ---------------------------------------------------------------------------

TEST(MorselTest, WhatIfBitIdenticalAcrossThreadsAndModes) {
  data::GermanOptions gopt;
  gopt.rows = 20000;
  auto ds = data::MakeGermanSyn(gopt);
  ASSERT_TRUE(ds.ok()) << ds.status();
  auto stmt = sql::ParseSql(
      "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE(stmt->whatif, nullptr);

  double reference = 0.0;
  bool have_reference = false;
  for (SchedulingMode mode : {SchedulingMode::kMorsel, SchedulingMode::kStatic}) {
    ScopedSchedulingMode scoped(mode);
    for (size_t threads : PoolSizes()) {
      whatif::WhatIfOptions options;
      options.estimator = learn::EstimatorKind::kFrequency;
      options.num_threads = threads;
      whatif::WhatIfEngine engine(&ds->db, &ds->graph, options);
      auto result = engine.Run(*stmt->whatif);
      ASSERT_TRUE(result.ok()) << result.status();
      if (!have_reference) {
        reference = result->value;
        have_reference = true;
        continue;
      }
      uint64_t got = 0, want = 0;
      std::memcpy(&got, &result->value, sizeof(got));
      std::memcpy(&want, &reference, sizeof(want));
      ASSERT_EQ(got, want)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace hyper
