#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "data/datasets.h"
#include "relational/compiled.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "storage/column.h"
#include "whatif/engine.h"

namespace hyper {
namespace {

// ---------------------------------------------------------------------------
// 100k-row perf-smoke gates. These are the scaled-down ctest mirror of the
// bench_micro scale sweep: they run the same 100k configuration check.sh
// times, but assert only the bit-equality contracts (timing assertions would
// flake under sanitizers and loaded CI hosts). 100k rows spans two 64k
// column segments, so the kernel paths cross a segment boundary and the
// what-if paths exercise the segment-partitioned override/patch machinery.
// ---------------------------------------------------------------------------

constexpr size_t kRows = 100000;

/// Restores the process-wide execution knobs (SIMD force-scalar flag and
/// scheduling mode) that the legacy arm flips.
class ScopedExecutionKnobs {
 public:
  ScopedExecutionKnobs()
      : saved_scalar_(simd::ForceScalar()),
        saved_mode_(CurrentSchedulingMode()) {}
  ~ScopedExecutionKnobs() {
    simd::SetForceScalar(saved_scalar_);
    SetSchedulingMode(saved_mode_);
  }

 private:
  bool saved_scalar_;
  SchedulingMode saved_mode_;
};

data::Dataset MakeGerman() {
  data::GermanOptions gopt;
  gopt.rows = kRows;
  auto ds = data::MakeGermanSyn(gopt);
  EXPECT_TRUE(ds.ok()) << ds.status();
  return std::move(ds).value();
}

// The pre-PR execution configuration: per-row expression loops, scalar SIMD
// level, static shards. Any divergence from the vectorized default is a
// correctness bug, not a perf regression.
TEST(ScalePerfTest, WhatIfLegacyVsVectorizedBitEqualAt100k) {
  ScopedExecutionKnobs knobs;
  auto ds = MakeGerman();
  auto stmt = sql::ParseSql(
      "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE(stmt->whatif, nullptr);

  const auto run = [&](bool vectorized, size_t threads) {
    whatif::WhatIfOptions options;
    options.estimator = learn::EstimatorKind::kFrequency;
    options.num_threads = threads;
    options.vectorized_exec = vectorized;
    if (!vectorized) {
      simd::SetForceScalar(true);
      SetSchedulingMode(SchedulingMode::kStatic);
    } else {
      simd::SetForceScalar(false);
      SetSchedulingMode(SchedulingMode::kMorsel);
    }
    whatif::WhatIfEngine engine(&ds.db, &ds.graph, options);
    auto result = engine.Run(*stmt->whatif);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->value : 0.0;
  };

  const double legacy = run(/*vectorized=*/false, /*threads=*/1);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const double vectorized = run(/*vectorized=*/true, threads);
    uint64_t got = 0, want = 0;
    std::memcpy(&got, &vectorized, sizeof(got));
    std::memcpy(&want, &legacy, sizeof(want));
    ASSERT_EQ(got, want) << "threads=" << threads;
  }
}

// Kernel-vs-per-row equality for the two expression kernels the engine leans
// on (When-mask and double projection), across a >1-segment table.
TEST(ScalePerfTest, ExpressionKernelsMatchPerRowAt100k) {
  ScopedExecutionKnobs knobs;
  auto ds = MakeGerman();
  const Table& t = *ds.db.GetTable("German").value();
  auto ct_or = ColumnTable::FromTable(t);
  ASSERT_TRUE(ct_or.ok()) << ct_or.status();
  const ColumnTable& ct = *ct_or;
  ASSERT_GT(ct.num_segments(), 1u);

  const Schema& schema = t.schema();
  const std::vector<relational::ScopedTuple> scope{
      relational::ScopedTuple{schema.relation_name(), &schema}};

  {
    auto pred = sql::MakeBinary(
        sql::BinaryOp::kAnd,
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "Status"),
                        sql::MakeLiteral(Value::Int(1))),
        sql::MakeBinary(sql::BinaryOp::kGe, sql::MakeColumnRef("", "Age"),
                        sql::MakeLiteral(Value::Int(1))));
    auto compiled = relational::CompiledExpr::Compile(*pred, scope);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    auto bound = relational::ColumnBoundExpr::Bind(*compiled, ct);
    ASSERT_TRUE(bound.ok()) << bound.status();

    std::vector<uint8_t> per_row(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      auto b = bound->EvalBool(r);
      ASSERT_TRUE(b.ok()) << b.status();
      per_row[r] = *b ? 1 : 0;
    }
    for (bool force : {true, false}) {
      simd::SetForceScalar(force);
      std::vector<uint8_t> mask;
      ASSERT_TRUE(bound->TryMaskKernel(&mask)) << "force=" << force;
      ASSERT_EQ(mask.size(), kRows);
      ASSERT_EQ(std::memcmp(mask.data(), per_row.data(), kRows), 0)
          << "force=" << force;
    }
  }

  {
    auto expr = sql::MakeBinary(
        sql::BinaryOp::kAdd, sql::MakeColumnRef("", "CreditAmount"),
        sql::MakeBinary(sql::BinaryOp::kMul, sql::MakeLiteral(Value::Int(2)),
                        sql::MakeColumnRef("", "Age")));
    auto compiled = relational::CompiledExpr::Compile(*expr, scope);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    auto bound = relational::ColumnBoundExpr::Bind(*compiled, ct);
    ASSERT_TRUE(bound.ok()) << bound.status();

    std::vector<double> per_row(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      auto v = bound->Eval(r);
      ASSERT_TRUE(v.ok()) << v.status();
      auto d = v->AsDouble();
      ASSERT_TRUE(d.ok()) << d.status();
      per_row[r] = *d;
    }
    for (bool force : {true, false}) {
      simd::SetForceScalar(force);
      std::vector<double> vals;
      std::vector<uint8_t> err;
      ASSERT_TRUE(bound->TryEvalDoubleKernel(&vals, &err)) << "force=" << force;
      ASSERT_EQ(vals.size(), kRows);
      for (size_t r = 0; r < kRows; ++r) ASSERT_EQ(err[r], 0) << r;
      ASSERT_EQ(std::memcmp(vals.data(), per_row.data(),
                            kRows * sizeof(double)),
                0)
          << "force=" << force;
    }
  }
}

}  // namespace
}  // namespace hyper
