#!/usr/bin/env bash
# Negative-compile test for the Clang Thread Safety gate.
#
#   1. thread_safety_ok.cc  (locked accesses)   must COMPILE under
#      -Werror=thread-safety — the annotations are well-formed.
#   2. thread_safety_bad.cc (unlocked accesses) must FAIL to compile —
#      the gate actually rejects a guarded access without the lock.
#
# Requires clang++ (the analysis does not exist in gcc); exits 77 so ctest
# reports SKIP (SKIP_RETURN_CODE) on toolchains without it.
#
# Usage: thread_safety_compile_test.sh <repo_src_dir>
set -u

SRC_DIR="${1:?usage: $0 <repo_src_dir>}"
FIXTURES="$(cd "$(dirname "$0")" && pwd)/static_analysis"

CLANGXX="${CLANGXX:-}"
if [ -z "$CLANGXX" ]; then
  for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANGXX="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANGXX" ]; then
  echo "SKIP: no clang++ on PATH (thread-safety analysis is clang-only)"
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
       -I "$SRC_DIR")

echo "using $CLANGXX"

if ! "$CLANGXX" "${FLAGS[@]}" "$FIXTURES/thread_safety_ok.cc"; then
  echo "FAIL: locked fixture should compile cleanly under -Werror=thread-safety"
  exit 1
fi
echo "ok: locked fixture compiles"

if "$CLANGXX" "${FLAGS[@]}" "$FIXTURES/thread_safety_bad.cc" 2>/dev/null; then
  echo "FAIL: unlocked fixture compiled — the thread-safety gate is not rejecting guarded accesses"
  exit 1
fi
echo "ok: unlocked fixture rejected"
exit 0
