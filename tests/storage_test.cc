#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace hyper {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(7).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).double_value(), 1.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble().value(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value::Null().AsDouble().ok());
  EXPECT_FALSE(Value::String("a").AsDouble().ok());
}

TEST(ValueTest, BoolCoercion) {
  EXPECT_TRUE(Value::Int(5).AsBool().value());
  EXPECT_FALSE(Value::Int(0).AsBool().value());
  EXPECT_TRUE(Value::Double(0.1).AsBool().value());
  EXPECT_FALSE(Value::String("t").AsBool().ok());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_TRUE(Value::Bool(true).Equals(Value::Int(1)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::String("3")));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
}

TEST(ValueTest, CompareNumbersAndStrings) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(2.0)).value(), -1);
  EXPECT_EQ(Value::Double(2.0).Compare(Value::Int(1)).value(), 1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")).value(), -1);
  EXPECT_FALSE(Value::String("a").Compare(Value::Int(1)).ok());
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_EQ(Value::Null().Compare(Value::Int(-100)).value(), -1);
  EXPECT_EQ(Value::Int(-100).Compare(Value::Null()).value(), 1);
  EXPECT_EQ(Value::Null().Compare(Value::Null()).value(), 0);
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Bool(true).Hash(), Value::Int(1).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("Asus").ToString(), "'Asus'");
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

Schema ProductSchema() {
  return Schema("Product",
                {{"PID", ValueType::kInt, Mutability::kImmutable},
                 {"Category", ValueType::kString, Mutability::kImmutable},
                 {"Price", ValueType::kDouble, Mutability::kMutable},
                 {"Brand", ValueType::kString, Mutability::kImmutable},
                 {"Quality", ValueType::kDouble, Mutability::kMutable}},
                {"PID"});
}

TEST(SchemaTest, LookupByName) {
  Schema s = ProductSchema();
  EXPECT_EQ(s.IndexOf("Price").value(), 2u);
  EXPECT_FALSE(s.IndexOf("Nope").ok());
  EXPECT_TRUE(s.Contains("Brand"));
  EXPECT_FALSE(s.Contains("brand"));  // case-sensitive attribute names
}

TEST(SchemaTest, KeyHandling) {
  Schema s = ProductSchema();
  ASSERT_EQ(s.key_indices().size(), 1u);
  EXPECT_EQ(s.key_indices()[0], 0u);
  EXPECT_TRUE(s.IsKeyAttribute(0));
  EXPECT_FALSE(s.IsKeyAttribute(2));
}

TEST(SchemaTest, KeysForcedImmutable) {
  Schema s("R", {{"K", ValueType::kInt, Mutability::kMutable},
                 {"A", ValueType::kDouble, Mutability::kMutable}},
           {"K"});
  EXPECT_EQ(s.attribute(0).mutability, Mutability::kImmutable);
  EXPECT_EQ(s.attribute(1).mutability, Mutability::kMutable);
}

TEST(SchemaTest, MutableIndices) {
  Schema s = ProductSchema();
  auto idx = s.MutableIndices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 2u);  // Price
  EXPECT_EQ(idx[1], 4u);  // Quality
}

TEST(SchemaTest, CompositeKey) {
  Schema s("Review",
           {{"PID", ValueType::kInt, Mutability::kImmutable},
            {"ReviewID", ValueType::kInt, Mutability::kImmutable},
            {"Rating", ValueType::kDouble, Mutability::kMutable}},
           {"PID", "ReviewID"});
  EXPECT_EQ(s.key_indices().size(), 2u);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, AppendAndAccess) {
  Table t(ProductSchema());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("Laptop"),
                        Value::Double(999), Value::String("Vaio"),
                        Value::Double(0.7)})
                  .ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.At(0, 3).Equals(Value::String("Vaio")));
}

TEST(TableTest, AppendRejectsWrongArity) {
  Table t(ProductSchema());
  EXPECT_EQ(t.Append({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendRejectsWrongType) {
  Table t(ProductSchema());
  Status s = t.Append({Value::Int(1), Value::String("Laptop"),
                       Value::String("not-a-price"), Value::String("V"),
                       Value::Double(0.7)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendWidensIntToDouble) {
  Table t(ProductSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::String("Laptop"),
                        Value::Int(999), Value::String("V"),
                        Value::Double(0.7)})
                  .ok());
}

TEST(TableTest, AppendAllowsNull) {
  Table t(ProductSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::Null(), Value::Null(),
                        Value::Null(), Value::Null()})
                  .ok());
}

TEST(TableTest, SetValueMutates) {
  Table t(ProductSchema());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("Laptop"),
                        Value::Double(999), Value::String("Vaio"),
                        Value::Double(0.7)})
                  .ok());
  t.SetValue(0, 2, Value::Double(1099));
  EXPECT_DOUBLE_EQ(t.At(0, 2).double_value(), 1099);
}

TEST(TableTest, ColumnExtraction) {
  Table t(ProductSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(i), Value::String("C"),
                          Value::Double(i * 10.0), Value::String("B"),
                          Value::Double(0.5)})
                    .ok());
  }
  auto col = t.Column("Price");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)[2].double_value(), 20.0);
  EXPECT_FALSE(t.Column("Missing").ok());
}

TEST(TableTest, KeyOf) {
  Table t(ProductSchema());
  ASSERT_TRUE(t.Append({Value::Int(42), Value::String("C"),
                        Value::Double(1), Value::String("B"),
                        Value::Double(0.5)})
                  .ok());
  Row key = t.KeyOf(0);
  ASSERT_EQ(key.size(), 1u);
  EXPECT_TRUE(key[0].Equals(Value::Int(42)));
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, AddAndGet) {
  Database db;
  ASSERT_TRUE(db.AddTable(ProductSchema()).ok());
  EXPECT_TRUE(db.HasTable("Product"));
  EXPECT_TRUE(db.GetTable("Product").ok());
  EXPECT_FALSE(db.GetTable("Review").ok());
  EXPECT_EQ(db.num_tables(), 1u);
}

TEST(DatabaseTest, DuplicateRejected) {
  Database db;
  ASSERT_TRUE(db.AddTable(ProductSchema()).ok());
  EXPECT_EQ(db.AddTable(ProductSchema()).code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, RelationOfAttribute) {
  Database db;
  ASSERT_TRUE(db.AddTable(ProductSchema()).ok());
  ASSERT_TRUE(db.AddTable(Schema("Review",
                                 {{"PID", ValueType::kInt},
                                  {"Rating", ValueType::kDouble}},
                                 {"PID"}))
                  .ok());
  EXPECT_EQ(db.RelationOfAttribute("Price").value(), "Product");
  EXPECT_EQ(db.RelationOfAttribute("Rating").value(), "Review");
  // PID appears in both relations.
  EXPECT_EQ(db.RelationOfAttribute("PID").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.RelationOfAttribute("Zzz").status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  ASSERT_TRUE(db.AddTable(ProductSchema()).ok());
  Table* t = db.GetMutableTable("Product").value();
  ASSERT_TRUE(t->Append({Value::Int(1), Value::String("Laptop"),
                         Value::Double(999), Value::String("Vaio"),
                         Value::Double(0.7)})
                  .ok());
  Database copy = db.Clone();
  copy.GetMutableTable("Product").value()->SetValue(0, 2, Value::Double(1));
  EXPECT_DOUBLE_EQ(db.GetTable("Product").value()->At(0, 2).double_value(),
                   999);
}

TEST(DatabaseTest, TotalRowsAndNames) {
  Database db;
  ASSERT_TRUE(db.AddTable(ProductSchema()).ok());
  Table* t = db.GetMutableTable("Product").value();
  t->AppendUnchecked({Value::Int(1), Value::String("L"), Value::Double(1),
                      Value::String("B"), Value::Double(0.5)});
  t->AppendUnchecked({Value::Int(2), Value::String("L"), Value::Double(2),
                      Value::String("B"), Value::Double(0.5)});
  EXPECT_EQ(db.TotalRows(), 2u);
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"Product"});
}

}  // namespace
}  // namespace hyper
