#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.h"
#include "data/datasets.h"
#include "learn/dataset.h"
#include "relational/compiled.h"
#include "relational/eval.h"
#include "storage/column.h"

namespace hyper {
namespace {

using relational::BoundRow;
using relational::ColumnBoundExpr;
using relational::CompiledExpr;
using relational::Env;
using relational::EvalPredicateMask;
using relational::Scalar;
using relational::ScopedTuple;

// ---------------------------------------------------------------------------
// Dictionary
// ---------------------------------------------------------------------------

TEST(DictionaryTest, InternRoundTrip) {
  Dictionary dict;
  const int32_t a = dict.Intern("Laptop");
  const int32_t b = dict.Intern("Phone");
  const int32_t a2 = dict.Intern("Laptop");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.at(a), "Laptop");
  EXPECT_EQ(dict.at(b), "Phone");
  EXPECT_EQ(dict.Find("Laptop"), a);
  EXPECT_EQ(dict.Find("Tablet"), Dictionary::kNullCode);
}

TEST(DictionaryTest, CodesAreFirstSeenDense) {
  Dictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern("s" + std::to_string(i)), i);
  }
  // Re-interning is stable.
  EXPECT_EQ(dict.Intern("s42"), 42);
  EXPECT_EQ(dict.size(), 100u);
}

TEST(DictionaryTest, SharedAcrossTablesAgreesOnCodes) {
  Table t1(Schema("A", {{"S", ValueType::kString, Mutability::kMutable}}, {}));
  t1.AppendUnchecked({Value::String("x")});
  t1.AppendUnchecked({Value::String("y")});
  Table t2(Schema("B", {{"S", ValueType::kString, Mutability::kMutable}}, {}));
  t2.AppendUnchecked({Value::String("y")});
  t2.AppendUnchecked({Value::String("z")});

  auto dict = std::make_shared<Dictionary>();
  auto c1 = ColumnTable::FromTable(t1, dict);
  auto c2 = ColumnTable::FromTable(t2, dict);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // "y" has the same code through both tables.
  EXPECT_EQ(c1->col(0).codes[1], c2->col(0).codes[0]);
  EXPECT_EQ(dict->size(), 3u);
}

// ---------------------------------------------------------------------------
// ColumnTable round trip + equivalence on the synthetic datasets
// ---------------------------------------------------------------------------

void ExpectTableEquivalent(const Table& table) {
  auto ct = ColumnTable::FromTable(table);
  ASSERT_TRUE(ct.ok());
  ASSERT_EQ(ct->num_rows(), table.num_rows());
  ASSERT_EQ(ct->num_columns(), table.schema().num_attributes());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < table.schema().num_attributes(); ++a) {
      EXPECT_TRUE(ct->GetValue(r, a).Equals(table.At(r, a)))
          << "mismatch at (" << r << ", " << a << "): "
          << ct->GetValue(r, a).ToString() << " vs "
          << table.At(r, a).ToString();
    }
  }
  const Table round = ct->ToTable();
  ASSERT_EQ(round.num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < table.schema().num_attributes(); ++a) {
      EXPECT_TRUE(round.At(r, a).Equals(table.At(r, a)));
    }
  }
}

TEST(ColumnTableTest, EquivalentToRowStoreOnSyntheticDatasets) {
  data::AmazonOptions amazon;
  amazon.products = 100;
  amazon.reviews_per_product = 4;
  auto ds = data::MakeAmazonSyn(amazon);
  ASSERT_TRUE(ds.ok());
  for (const std::string& name : ds->db.TableNames()) {
    ExpectTableEquivalent(*ds->db.GetTable(name).value());
  }

  data::GermanOptions german;
  german.rows = 500;
  auto gds = data::MakeGermanSyn(german);
  ASSERT_TRUE(gds.ok());
  ExpectTableEquivalent(*gds->db.GetTable("German").value());
}

TEST(ColumnTableTest, NullsAndKinds) {
  Table t(Schema("T",
                 {{"I", ValueType::kInt, Mutability::kMutable},
                  {"D", ValueType::kDouble, Mutability::kMutable},
                  {"S", ValueType::kString, Mutability::kMutable}},
                 {}));
  t.AppendUnchecked({Value::Int(1), Value::Double(1.5), Value::String("a")});
  t.AppendUnchecked({Value::Null(), Value::Null(), Value::Null()});
  t.AppendUnchecked({Value::Int(3), Value::Double(2.5), Value::String("a")});

  auto ct = ColumnTable::FromTable(t);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->col(0).kind, ColumnKind::kInt64);
  EXPECT_EQ(ct->col(1).kind, ColumnKind::kDouble);
  EXPECT_EQ(ct->col(2).kind, ColumnKind::kCode);
  EXPECT_TRUE(ct->col(0).is_null(1));
  EXPECT_TRUE(ct->GetValue(1, 2).is_null());
  EXPECT_EQ(ct->col(2).codes[0], ct->col(2).codes[2]);
  EXPECT_EQ(ct->dict().size(), 1u);
  // ColumnAsDoubles rejects NULL-bearing and string columns.
  EXPECT_FALSE(ct->ColumnAsDoubles(0).ok());
  EXPECT_FALSE(ct->ColumnAsDoubles(2).ok());
}

TEST(ColumnTableTest, MixedIntDoublePromotesToDouble) {
  Table t(Schema("T", {{"X", ValueType::kDouble, Mutability::kMutable}}, {}));
  t.AppendUnchecked({Value::Int(2)});
  t.AppendUnchecked({Value::Double(2.5)});
  auto ct = ColumnTable::FromTable(t);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->col(0).kind, ColumnKind::kDouble);
  EXPECT_TRUE(ct->GetValue(0, 0).Equals(Value::Int(2)));
  auto doubles = ct->ColumnAsDoubles(0);
  ASSERT_TRUE(doubles.ok());
  EXPECT_DOUBLE_EQ((*doubles)[0], 2.0);
  EXPECT_DOUBLE_EQ((*doubles)[1], 2.5);
}

TEST(ColumnTableTest, MixedStringNumericIsRejected) {
  Table t(Schema("T", {{"X", ValueType::kString, Mutability::kMutable}}, {}));
  t.AppendUnchecked({Value::String("a")});
  t.AppendUnchecked({Value::Int(1)});
  EXPECT_FALSE(ColumnTable::FromTable(t).ok());
}

// ---------------------------------------------------------------------------
// ApplyOverrides: patching a cached image must be value-for-value identical
// to re-encoding the patched table (the delta-aware ScopeStage contract).
// ---------------------------------------------------------------------------

TEST(ColumnTableTest, ApplyOverridesMatchesRebuild) {
  Table t(Schema("T",
                 {{"I", ValueType::kInt, Mutability::kMutable},
                  {"D", ValueType::kDouble, Mutability::kMutable},
                  {"B", ValueType::kBool, Mutability::kMutable},
                  {"S", ValueType::kString, Mutability::kMutable}},
                 {}));
  t.AppendUnchecked({Value::Int(1), Value::Double(1.5), Value::Bool(true),
                     Value::String("a")});
  t.AppendUnchecked({Value::Int(2), Value::Double(2.5), Value::Bool(false),
                     Value::String("b")});
  t.AppendUnchecked({Value::Null(), Value::Int(3), Value::Bool(true),
                     Value::Null()});
  auto base = ColumnTable::FromTable(t);
  ASSERT_TRUE(base.ok());

  // Overrides touching every kind, including NULL-in, NULL-out, a new
  // dictionary string, and an int into a promoted double column.
  TableCellOverrides overrides;
  overrides[0][0] = Value::Int(7);           // int -> kInt64
  overrides[0][2] = Value::Int(9);           // fills the NULL
  overrides[1][1] = Value::Int(4);           // int -> promoted kDouble
  overrides[1][0] = Value::Null();           // introduces a NULL
  overrides[2][1] = Value::Bool(true);       // bool -> kBool
  overrides[3][2] = Value::String("fresh");  // new category
  overrides[3][0] = Value::String("b");      // existing category
  overrides[9][0] = Value::Int(1);           // stale attr: skipped
  overrides[0][99] = Value::Int(1);          // stale row: skipped

  ColumnTable patched = *base;  // shares the dictionary with `base`
  ASSERT_TRUE(patched.ApplyOverrides(overrides).ok());

  // Reference: patch the row table, re-encode from scratch.
  Table patched_rows = t;
  for (const auto& [attr, cells] : overrides) {
    for (const auto& [row, value] : cells) {
      if (attr >= patched_rows.schema().num_attributes() ||
          row >= patched_rows.num_rows()) {
        continue;
      }
      patched_rows.SetValue(row, attr, value);
    }
  }
  auto rebuilt = ColumnTable::FromTable(patched_rows);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ(rebuilt->num_rows(), patched.num_rows());
  for (size_t a = 0; a < patched.num_columns(); ++a) {
    for (size_t r = 0; r < patched.num_rows(); ++r) {
      EXPECT_TRUE(rebuilt->GetValue(r, a).Equals(patched.GetValue(r, a)))
          << "cell (" << r << ", " << a << ")";
    }
  }
  // Column D lost its only genuine double to the NULL override, so a
  // rebuild infers kInt64 while the patched image lawfully keeps the wider
  // kDouble — Equals/Compare/Hash semantics are identical either way (the
  // PR-1 mixed-column contract), which the value loop above just verified.
  EXPECT_EQ(rebuilt->col(1).kind, ColumnKind::kInt64);
  EXPECT_EQ(patched.col(1).kind, ColumnKind::kDouble);

  // The new string was interned into a private dictionary: the patch source
  // still resolves its own codes and never saw "fresh".
  EXPECT_EQ(base->dict().Find("fresh"), Dictionary::kNullCode);
  EXPECT_TRUE(base->GetValue(0, 3).Equals(Value::String("a")));
  EXPECT_NE(patched.dict().Find("fresh"), Dictionary::kNullCode);
}

TEST(ColumnTableTest, ApplyOverridesRejectsKindChangingValues) {
  Table t(Schema("T",
                 {{"I", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kBool, Mutability::kMutable}},
                 {}));
  t.AppendUnchecked({Value::Int(1), Value::Bool(true)});
  auto base = ColumnTable::FromTable(t);
  ASSERT_TRUE(base.ok());

  // A double landing in an all-int column would change the inferred kind
  // (FromTable promotes to kDouble): the patch must refuse so the caller
  // rebuilds instead of serving a kind-mismatched image.
  {
    ColumnTable patched = *base;
    TableCellOverrides overrides;
    overrides[0][0] = Value::Double(1.5);
    EXPECT_FALSE(patched.ApplyOverrides(overrides).ok());
  }
  // Same for a non-bool landing in a bool column, and a string in numeric.
  {
    ColumnTable patched = *base;
    TableCellOverrides overrides;
    overrides[1][0] = Value::Int(1);
    EXPECT_FALSE(patched.ApplyOverrides(overrides).ok());
  }
  {
    ColumnTable patched = *base;
    TableCellOverrides overrides;
    overrides[0][0] = Value::String("oops");
    EXPECT_FALSE(patched.ApplyOverrides(overrides).ok());
  }
}

// ---------------------------------------------------------------------------
// Segment partitioning: DirtySegments must name exactly the 64k-row
// segments an override set touches (the what-if engine repatches only
// those), and a patch landing on the first row of a segment — the exact
// 64k boundary — must not leak into the neighbouring segment.
// ---------------------------------------------------------------------------

TEST(ColumnTableTest, ApplyOverridesAtSegmentBoundary) {
  const size_t rows = ColumnTable::kSegmentRows + 10;
  Table t(Schema("T", {{"I", ValueType::kInt, Mutability::kMutable}}, {}));
  for (size_t r = 0; r < rows; ++r) {
    t.AppendUnchecked({Value::Int(static_cast<int64_t>(r % 97))});
  }
  auto base = ColumnTable::FromTable(t);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->num_segments(), 2u);
  EXPECT_EQ(base->SegmentBounds(0).second, ColumnTable::kSegmentRows);
  EXPECT_EQ(base->SegmentBounds(1).first, ColumnTable::kSegmentRows);
  EXPECT_EQ(base->SegmentBounds(1).second, rows);

  // Patch the last row of segment 0, the first row of segment 1 (the cell
  // exactly on the 64k boundary), and the table's two end rows.
  const size_t last0 = ColumnTable::kSegmentRows - 1;
  const size_t first1 = ColumnTable::kSegmentRows;
  TableCellOverrides overrides;
  overrides[0][last0] = Value::Int(-1);
  overrides[0][first1] = Value::Int(-2);
  overrides[0][0] = Value::Int(-3);
  overrides[0][rows - 1] = Value::Int(-4);

  ColumnTable patched = *base;
  ASSERT_TRUE(patched.ApplyOverrides(overrides).ok());
  EXPECT_TRUE(patched.GetValue(last0, 0).Equals(Value::Int(-1)));
  EXPECT_TRUE(patched.GetValue(first1, 0).Equals(Value::Int(-2)));
  EXPECT_TRUE(patched.GetValue(0, 0).Equals(Value::Int(-3)));
  EXPECT_TRUE(patched.GetValue(rows - 1, 0).Equals(Value::Int(-4)));
  // Neighbours of the boundary cells are untouched.
  EXPECT_TRUE(patched.GetValue(last0 - 1, 0).Equals(base->GetValue(last0 - 1, 0)));
  EXPECT_TRUE(
      patched.GetValue(first1 + 1, 0).Equals(base->GetValue(first1 + 1, 0)));
}

TEST(ColumnTableTest, DirtySegmentsAreSortedAndIgnoreStaleCells) {
  const size_t rows = 2 * ColumnTable::kSegmentRows + 5;
  Table t(Schema("T", {{"I", ValueType::kInt, Mutability::kMutable}}, {}));
  for (size_t r = 0; r < rows; ++r) {
    t.AppendUnchecked({Value::Int(1)});
  }
  auto ct = ColumnTable::FromTable(t);
  ASSERT_TRUE(ct.ok());
  ASSERT_EQ(ct->num_segments(), 3u);

  EXPECT_TRUE(ct->DirtySegments({}).empty());

  TableCellOverrides overrides;
  overrides[0][2 * ColumnTable::kSegmentRows] = Value::Int(5);  // segment 2
  overrides[0][3] = Value::Int(5);                              // segment 0
  overrides[0][ColumnTable::kSegmentRows - 1] = Value::Int(5);  // segment 0
  overrides[0][rows + 100] = Value::Int(5);   // stale row: ignored
  overrides[7][10] = Value::Int(5);           // stale attr: ignored
  const std::vector<size_t> dirty = ct->DirtySegments(overrides);
  EXPECT_EQ(dirty, (std::vector<size_t>{0, 2}));
}

// ---------------------------------------------------------------------------
// Compiled expressions: row mode, columnar mode, and the mask kernel all
// agree with the interpreting evaluator.
// ---------------------------------------------------------------------------

std::vector<sql::ExprPtr> TestPredicates() {
  using sql::BinaryOp;
  using sql::MakeBinary;
  using sql::MakeColumnRef;
  using sql::MakeInList;
  using sql::MakeLiteral;
  using sql::MakeNot;
  std::vector<sql::ExprPtr> preds;
  preds.push_back(MakeBinary(BinaryOp::kEq, MakeColumnRef("", "Brand"),
                             MakeLiteral(Value::String("Asus"))));
  preds.push_back(MakeBinary(BinaryOp::kGt, MakeColumnRef("", "Price"),
                             MakeLiteral(Value::Double(500.0))));
  preds.push_back(MakeBinary(
      BinaryOp::kAnd,
      MakeBinary(BinaryOp::kEq, MakeColumnRef("", "Category"),
                 MakeLiteral(Value::String("Laptop"))),
      MakeBinary(BinaryOp::kLe, MakeColumnRef("", "Price"),
                 MakeLiteral(Value::Double(800.0)))));
  preds.push_back(MakeNot(MakeBinary(BinaryOp::kEq,
                                     MakeColumnRef("", "Brand"),
                                     MakeLiteral(Value::String("Apple")))));
  {
    std::vector<sql::ExprPtr> items;
    items.push_back(MakeLiteral(Value::String("Asus")));
    items.push_back(MakeLiteral(Value::String("Vaio")));
    preds.push_back(MakeInList(MakeColumnRef("", "Brand"), std::move(items)));
  }
  // Arithmetic + comparison: Price * 1.1 > Quality + 600.
  preds.push_back(MakeBinary(
      BinaryOp::kGt,
      MakeBinary(BinaryOp::kMul, MakeColumnRef("", "Price"),
                 MakeLiteral(Value::Double(1.1))),
      MakeBinary(BinaryOp::kAdd, MakeColumnRef("", "Quality"),
                 MakeLiteral(Value::Double(600.0)))));
  // Or of string equality and numeric comparison.
  preds.push_back(MakeBinary(
      BinaryOp::kOr,
      MakeBinary(BinaryOp::kEq, MakeColumnRef("", "Category"),
                 MakeLiteral(Value::String("Phone"))),
      MakeBinary(BinaryOp::kLt, MakeColumnRef("", "Price"),
                 MakeLiteral(Value::Double(100.0)))));
  return preds;
}

TEST(CompiledExprTest, AgreesWithInterpreterOnAmazonProducts) {
  data::AmazonOptions opt;
  opt.products = 200;
  opt.reviews_per_product = 2;
  auto ds = data::MakeAmazonSyn(opt);
  ASSERT_TRUE(ds.ok());
  const Table& products = *ds->db.GetTable("Product").value();
  auto ct = ColumnTable::FromTable(products);
  ASSERT_TRUE(ct.ok());
  const std::vector<ScopedTuple> scope{
      ScopedTuple{products.schema().relation_name(), &products.schema()}};

  for (const sql::ExprPtr& pred : TestPredicates()) {
    auto compiled = CompiledExpr::Compile(*pred, scope);
    ASSERT_TRUE(compiled.ok()) << pred->ToString();
    auto bound = ColumnBoundExpr::Bind(*compiled, *ct);
    ASSERT_TRUE(bound.ok());
    auto mask = bound->EvalMask();
    ASSERT_TRUE(mask.ok());

    for (size_t r = 0; r < products.num_rows(); ++r) {
      Env env;
      env.Bind(products.schema().relation_name(), &products.schema(),
               &products.row(r));
      auto expected = relational::EvalPredicate(*pred, env);
      ASSERT_TRUE(expected.ok()) << pred->ToString();

      const BoundRow frame{&products.row(r), nullptr};
      auto row_mode = compiled->EvalRowBool(&frame);
      ASSERT_TRUE(row_mode.ok());
      EXPECT_EQ(*row_mode, *expected) << pred->ToString() << " row " << r;

      auto col_mode = bound->EvalBool(r);
      ASSERT_TRUE(col_mode.ok());
      EXPECT_EQ(*col_mode, *expected) << pred->ToString() << " row " << r;

      EXPECT_EQ((*mask)[r] != 0, *expected) << pred->ToString() << " row "
                                            << r;
    }
  }
}

TEST(CompiledExprTest, ValueSemanticsMatchInterpreter) {
  // Integer arithmetic stays integral; division promotes; Neg preserves int.
  Table t(Schema("T",
                 {{"A", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kInt, Mutability::kMutable}},
                 {}));
  t.AppendUnchecked({Value::Int(7), Value::Int(2)});
  const std::vector<ScopedTuple> scope{ScopedTuple{"T", &t.schema()}};

  auto check = [&](sql::ExprPtr expr) {
    Env env;
    env.Bind("T", &t.schema(), &t.row(0));
    auto expected = relational::EvalExpr(*expr, env);
    auto compiled = CompiledExpr::Compile(*expr, scope);
    ASSERT_TRUE(compiled.ok());
    const BoundRow frame{&t.row(0), nullptr};
    auto got = compiled->EvalRowValue(&frame);
    ASSERT_EQ(got.ok(), expected.ok()) << expr->ToString();
    if (expected.ok()) {
      EXPECT_EQ(got->type(), expected->type()) << expr->ToString();
      EXPECT_TRUE(got->Equals(*expected)) << expr->ToString();
    }
  };

  using sql::BinaryOp;
  check(sql::MakeBinary(BinaryOp::kAdd, sql::MakeColumnRef("", "A"),
                        sql::MakeColumnRef("", "B")));
  check(sql::MakeBinary(BinaryOp::kMul, sql::MakeColumnRef("", "A"),
                        sql::MakeColumnRef("", "B")));
  check(sql::MakeBinary(BinaryOp::kDiv, sql::MakeColumnRef("", "A"),
                        sql::MakeColumnRef("", "B")));
  check(sql::MakeNeg(sql::MakeColumnRef("", "A")));
  check(sql::MakeBinary(BinaryOp::kDiv, sql::MakeColumnRef("", "A"),
                        sql::MakeLiteral(Value::Int(0))));  // error both ways
}

TEST(CompiledExprTest, MaskFallbackHandlesNullColumns) {
  Table t(Schema("T", {{"X", ValueType::kDouble, Mutability::kMutable}}, {}));
  t.AppendUnchecked({Value::Double(1.0)});
  t.AppendUnchecked({Value::Null()});
  t.AppendUnchecked({Value::Double(3.0)});
  auto ct = ColumnTable::FromTable(t);
  ASSERT_TRUE(ct.ok());
  // X > 2: NULL sorts before everything (no error), so row 1 is false.
  auto pred = sql::MakeBinary(sql::BinaryOp::kGt, sql::MakeColumnRef("", "X"),
                              sql::MakeLiteral(Value::Double(2.0)));
  auto mask = EvalPredicateMask(pred.get(), *ct);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ((*mask)[0], 0);
  EXPECT_EQ((*mask)[1], 0);
  EXPECT_EQ((*mask)[2], 1);
}

// ---------------------------------------------------------------------------
// FeatureEncoder: columnar fit assigns exactly the labels the row fit does.
// ---------------------------------------------------------------------------

TEST(FeatureEncoderTest, ColumnarFitMatchesRowFit) {
  data::AmazonOptions opt;
  opt.products = 150;
  opt.reviews_per_product = 2;
  auto ds = data::MakeAmazonSyn(opt);
  ASSERT_TRUE(ds.ok());
  const Table& products = *ds->db.GetTable("Product").value();
  auto ct = ColumnTable::FromTable(products);
  ASSERT_TRUE(ct.ok());

  const std::vector<std::string> cols = {"Brand", "Price", "Category",
                                         "Quality"};
  auto row_enc = learn::FeatureEncoder::Fit(products, cols);
  auto col_enc = learn::FeatureEncoder::Fit(*ct, cols);
  ASSERT_TRUE(row_enc.ok());
  ASSERT_TRUE(col_enc.ok());

  std::vector<std::vector<double>> encoded(cols.size());
  for (size_t f = 0; f < cols.size(); ++f) {
    auto column = col_enc->EncodeColumn(*ct, f);
    ASSERT_TRUE(column.ok());
    encoded[f] = std::move(*column);
  }
  for (size_t r = 0; r < products.num_rows(); ++r) {
    auto row = row_enc->EncodeRow(products, r);
    ASSERT_TRUE(row.ok());
    for (size_t f = 0; f < cols.size(); ++f) {
      EXPECT_EQ((*row)[f], encoded[f][r]) << "feature " << f << " row " << r;
    }
    // EncodeValue agrees between the two encoders for ad-hoc values too.
    for (size_t f = 0; f < cols.size(); ++f) {
      auto a = row_enc->EncodeValue(f, products.At(r, f == 0 ? 2 : 0));
      auto b = col_enc->EncodeValue(f, products.At(r, f == 0 ? 2 : 0));
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) EXPECT_EQ(*a, *b);
    }
  }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(1000, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, PerStreamRngIsScheduleIndependent) {
  // Each shard draws from its own derived stream; the combined result must
  // not depend on the worker count.
  auto run = [](size_t num_threads) {
    ThreadPool pool(num_threads);
    std::vector<double> out(64);
    pool.ParallelFor(64, [&](size_t i) {
      Rng rng(DeriveStreamSeed(/*base=*/23, /*stream=*/i));
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.Uniform();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> one = run(1);
  const std::vector<double> four = run(4);
  ASSERT_EQ(one.size(), four.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << i;  // bit-for-bit
  }
}

TEST(ThreadPoolTest, DeriveStreamSeedSeparatesStreams) {
  EXPECT_NE(DeriveStreamSeed(7, 0), DeriveStreamSeed(7, 1));
  EXPECT_NE(DeriveStreamSeed(7, 0), DeriveStreamSeed(8, 0));
  EXPECT_EQ(DeriveStreamSeed(7, 3), DeriveStreamSeed(7, 3));
}

}  // namespace
}  // namespace hyper
