#include <gtest/gtest.h>

#include "common/rng.h"
#include "prob/aggregates.h"

namespace hyper::prob {
namespace {

using sql::AggKind;

// ---------------------------------------------------------------------------
// BlockAccumulator semantics
// ---------------------------------------------------------------------------

TEST(BlockAccumulatorTest, CountSumsWeights) {
  BlockAccumulator acc(AggKind::kCount);
  acc.BeginBlock();
  acc.Add(1.0, 0.0);
  acc.Add(0.25, 0.0);
  acc.EndBlock();
  acc.BeginBlock();
  acc.Add(0.75, 0.0);
  acc.EndBlock();
  EXPECT_DOUBLE_EQ(acc.Finish().value(), 2.0);
  EXPECT_EQ(acc.num_blocks(), 2u);
}

TEST(BlockAccumulatorTest, SumUsesWeightedValues) {
  BlockAccumulator acc(AggKind::kSum);
  acc.BeginBlock();
  acc.Add(1.0, 5.0);   // E[Y * 1{for}] = 5
  acc.Add(0.5, 1.25);  // joint expectation already weighted
  acc.EndBlock();
  EXPECT_DOUBLE_EQ(acc.Finish().value(), 6.25);
}

TEST(BlockAccumulatorTest, AvgIsRatioOfExpectations) {
  BlockAccumulator acc(AggKind::kAvg);
  acc.BeginBlock();
  acc.Add(1.0, 4.0);
  acc.Add(1.0, 2.0);
  acc.EndBlock();
  acc.BeginBlock();
  acc.Add(0.5, 3.0);
  acc.EndBlock();
  // (4 + 2 + 3) / (1 + 1 + 0.5)
  EXPECT_DOUBLE_EQ(acc.Finish().value(), 9.0 / 2.5);
}

TEST(BlockAccumulatorTest, AvgOverNothingIsError) {
  BlockAccumulator acc(AggKind::kAvg);
  acc.BeginBlock();
  acc.EndBlock();
  EXPECT_FALSE(acc.Finish().ok());
}

TEST(BlockAccumulatorTest, EmptyBlocksContributeNothing) {
  BlockAccumulator acc(AggKind::kSum);
  for (int i = 0; i < 5; ++i) {
    acc.BeginBlock();
    acc.EndBlock();
  }
  acc.BeginBlock();
  acc.Add(1.0, 7.0);
  acc.EndBlock();
  EXPECT_DOUBLE_EQ(acc.Finish().value(), 7.0);
  EXPECT_EQ(acc.num_blocks(), 6u);
}

// ---------------------------------------------------------------------------
// Definition 6 properties: block partition invariance = decomposability,
// alpha-homogeneity and additivity of the combiner g.
// ---------------------------------------------------------------------------

struct Contribution {
  double weight;
  double weighted_value;
};

double Accumulate(AggKind agg, const std::vector<std::vector<Contribution>>&
                                   blocks) {
  BlockAccumulator acc(agg);
  for (const auto& block : blocks) {
    acc.BeginBlock();
    for (const Contribution& c : block) acc.Add(c.weight, c.weighted_value);
    acc.EndBlock();
  }
  return acc.Finish().value();
}

class DecomposabilitySweep : public ::testing::TestWithParam<AggKind> {};

TEST_P(DecomposabilitySweep, PartitionInvariance) {
  // Any partition of the same tuple contributions yields the same value —
  // the content of Proposition 1 at the accumulator level.
  Rng rng(99);
  std::vector<Contribution> tuples;
  for (int i = 0; i < 40; ++i) {
    const double w = rng.Uniform();
    tuples.push_back({w, w * rng.Uniform(-3, 5)});
  }
  // Partition 1: one big block.
  std::vector<std::vector<Contribution>> one_block{tuples};
  // Partition 2: singletons.
  std::vector<std::vector<Contribution>> singletons;
  for (const Contribution& c : tuples) singletons.push_back({c});
  // Partition 3: random split.
  std::vector<std::vector<Contribution>> random_split(5);
  for (const Contribution& c : tuples) {
    random_split[rng.UniformInt(0, 4)].push_back(c);
  }

  const double a = Accumulate(GetParam(), one_block);
  const double b = Accumulate(GetParam(), singletons);
  const double c = Accumulate(GetParam(), random_split);
  EXPECT_NEAR(a, b, 1e-9);
  EXPECT_NEAR(a, c, 1e-9);
}

TEST_P(DecomposabilitySweep, ScalingHomogeneity) {
  // alpha * g({x_i}) == g({alpha * x_i}) for the Count/Sum numerators
  // (Definition 6, second property). Avg is scale-invariant in weights and
  // values jointly; check that instead.
  Rng rng(7);
  std::vector<Contribution> tuples;
  for (int i = 0; i < 20; ++i) {
    const double w = rng.Uniform();
    tuples.push_back({w, w * rng.Uniform(0, 4)});
  }
  const double alpha = 2.75;
  std::vector<Contribution> scaled;
  for (const Contribution& c : tuples) {
    scaled.push_back({alpha * c.weight, alpha * c.weighted_value});
  }
  const AggKind agg = GetParam();
  const double base = Accumulate(agg, {tuples});
  const double scaled_value = Accumulate(agg, {scaled});
  if (agg == AggKind::kAvg) {
    EXPECT_NEAR(scaled_value, base, 1e-9);  // ratio cancels alpha
  } else {
    EXPECT_NEAR(scaled_value, alpha * base, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Aggregates, DecomposabilitySweep,
                         ::testing::Values(AggKind::kCount, AggKind::kSum,
                                           AggKind::kAvg),
                         [](const auto& info) {
                           return std::string(sql::AggKindName(info.param));
                         });

}  // namespace
}  // namespace hyper::prob
