#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "data/datasets.h"
#include "durability/codec.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"

namespace hyper::durability {
namespace {

// The recovery contract under test: a service rebuilt from WAL + snapshot
// must be BIT-IDENTICAL to the pre-crash one — same branch delta
// fingerprints, same what-if answers (==, not NEAR) — and any storage damage
// must either be provably harmless (torn tail of an unacknowledged append)
// or refuse service with a typed DataLoss instead of serving wrong state.

// --- filesystem helpers -----------------------------------------------------

/// Fresh directory under TMPDIR, removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/hyper_durability_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

void FlipByteAt(const std::string& path, size_t offset) {
  std::string bytes = ReadFile(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0xFF);
  WriteFile(path, bytes);
}

// --- checksum ---------------------------------------------------------------

TEST(Crc32cTest, MatchesStandardCheckValue) {
  // The canonical CRC-32C check value — any table or polynomial slip fails
  // loudly here instead of as undiagnosable "corruption" at recovery time.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const char buf[] = "hello, wal";
  const uint32_t whole = Crc32c(buf, sizeof(buf) - 1);
  const uint32_t first = Crc32c(buf, 5);
  EXPECT_EQ(Crc32c(buf + 5, sizeof(buf) - 1 - 5, first), whole);
  EXPECT_NE(whole, Crc32c(buf, sizeof(buf) - 2));
}

// --- codec ------------------------------------------------------------------

TEST(CodecTest, RoundTripsEveryValueTypeBitExactly) {
  const std::vector<Value> values = {
      Value::Null(),        Value::Bool(true),
      Value::Bool(false),   Value::Int(-7),
      Value::Int(1) ,       Value::Double(0.1),
      Value::Double(-0.0),  Value::Double(1e308),
      Value::String(""),
      Value::String(std::string("München \n\0 bytes", 17)),
  };
  ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(~0ULL);
  w.Str("payload");
  for (const Value& v : values) w.Val(v);
  const std::string bytes = w.Take();

  ByteReader r(bytes);
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), ~0ULL);
  EXPECT_EQ(r.Str().value(), "payload");
  for (const Value& v : values) {
    auto back = r.Val();
    ASSERT_TRUE(back.ok()) << back.status();
    // Hash equality is the contract the fingerprint chain depends on.
    EXPECT_EQ(back.value().Hash(), v.Hash());
    EXPECT_EQ(back.value().type(), v.type());
  }
  EXPECT_TRUE(r.done());
}

TEST(CodecTest, TruncatedBufferIsTypedDataLoss) {
  ByteWriter w;
  w.Str("only half of this string survives");
  const std::string bytes = w.Take();
  ByteReader r(std::string_view(bytes).substr(0, bytes.size() / 2));
  auto s = r.Str();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kDataLoss);
}

// --- WAL framing & damage discrimination ------------------------------------

WalSegmentHeader TestHeader() {
  WalSegmentHeader header;
  header.base_fingerprint = 0x1234;
  header.generation = 1;
  return header;
}

TEST(WalTest, AppendsRoundTripInOrder) {
  TempDir dir;
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 1).ok());
    uint64_t lsn = 0;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.Append(WalRecordType::kApply, "payload-" + std::to_string(i),
                        &lsn)
              .ok());
      EXPECT_EQ(lsn, static_cast<uint64_t>(i + 1));
    }
  }
  auto log = ReadLog(dir.path());
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(log->records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log->records[i].lsn, i + 1);
    EXPECT_EQ(log->records[i].type, WalRecordType::kApply);
    EXPECT_EQ(log->records[i].payload, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(log->first_header.base_fingerprint, 0x1234u);
  EXPECT_FALSE(log->tail_truncated);
  EXPECT_EQ(log->skipped, 0u);
}

TEST(WalTest, TornTailIsTruncatedAndWritableAgain) {
  TempDir dir;
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 1).ok());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "kept", &lsn).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "also kept", &lsn).ok());
  }
  // A crash mid-append leaves a partial frame: fewer bytes than a header.
  const std::string segment = dir.path() + "/" + WalSegmentName(1);
  WriteFile(segment, ReadFile(segment) + std::string("\x07\x13\x42", 3));

  auto log = ReadLog(dir.path());
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->records.size(), 2u);
  EXPECT_TRUE(log->tail_truncated);
  EXPECT_EQ(log->truncated_bytes, 3u);

  // The truncation is physical: the writer appends clean frames after it.
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 3).ok());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "post-crash", &lsn).ok());
    EXPECT_EQ(lsn, 3u);
  }
  log = ReadLog(dir.path());
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(log->records.size(), 3u);
  EXPECT_EQ(log->records[2].payload, "post-crash");
  EXPECT_FALSE(log->tail_truncated);
}

TEST(WalTest, CorruptFinalFrameIsATornTail) {
  TempDir dir;
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 1).ok());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "kept", &lsn).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "damaged", &lsn).ok());
  }
  // Flip one payload byte of the LAST frame — nothing valid follows, so this
  // is indistinguishable from a crash mid-write and must be dropped, not
  // fatal (the append was never acknowledged durable).
  const std::string segment = dir.path() + "/" + WalSegmentName(1);
  FlipByteAt(segment, ReadFile(segment).size() - 2);

  auto log = ReadLog(dir.path());
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].payload, "kept");
  EXPECT_TRUE(log->tail_truncated);
}

TEST(WalTest, FlippedByteMidLogIsDataLossNamingTheOffset) {
  TempDir dir;
  size_t first_record_offset = 0;
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 1).ok());
    first_record_offset = static_cast<size_t>(writer.current_segment_bytes());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "damaged", &lsn).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "valid after", &lsn).ok());
  }
  // Damage an EARLY frame with a valid frame after it: silent bit rot, not a
  // torn append. Recovery must refuse rather than skip the hole.
  const std::string segment = dir.path() + "/" + WalSegmentName(1);
  FlipByteAt(segment, first_record_offset + kWalFrameHeaderBytes + 1);

  auto log = ReadLog(dir.path());
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kDataLoss);
  // The error names the damaged segment and the byte offset of the bad frame.
  EXPECT_NE(log.status().message().find(WalSegmentName(1)), std::string::npos)
      << log.status();
  EXPECT_NE(log.status().message().find(std::to_string(first_record_offset)),
            std::string::npos)
      << log.status();
}

TEST(WalTest, DuplicateLsnsAreSkippedIdempotently) {
  TempDir dir;
  {
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 1).ok());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "one", &lsn).ok());
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "two", &lsn).ok());
  }
  {
    // A writer reopened at an already-used lsn re-appends frame 2 — the
    // reader must treat the duplicate as already applied.
    WalWriter writer(dir.path(), {});
    ASSERT_TRUE(writer.Open(TestHeader(), 2).ok());
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(WalRecordType::kApply, "two again", &lsn).ok());
  }
  auto log = ReadLog(dir.path());
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(log->records.size(), 2u);
  EXPECT_EQ(log->records[1].payload, "two");  // first occurrence wins
  EXPECT_EQ(log->skipped, 1u);
}

// --- snapshots --------------------------------------------------------------

DurableState TestState(uint64_t last_lsn) {
  DurableState state;
  state.generation = 3;
  state.base_fingerprint = 0xFEED;
  state.last_lsn = last_lsn;
  DurableBranch branch;
  branch.name = "b";
  branch.parent = "main";
  branch.overrides["German"][2] = {{7, Value::Int(1)}, {9, Value::Double(0.5)}};
  branch.updates_applied = 4;
  branch.version = 2;
  branch.fnv_state = 0xABCDEF;
  state.branches.push_back(branch);
  return state;
}

TEST(SnapshotTest, RoundTripsState) {
  const DurableState state = TestState(41);
  auto back = DecodeSnapshot(EncodeSnapshot(state));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->generation, 3u);
  EXPECT_EQ(back->base_fingerprint, 0xFEEDu);
  EXPECT_EQ(back->last_lsn, 41u);
  ASSERT_EQ(back->branches.size(), 1u);
  EXPECT_EQ(back->branches[0].name, "b");
  EXPECT_EQ(back->branches[0].fnv_state, 0xABCDEFu);
  EXPECT_EQ(back->branches[0].overrides.at("German").at(2).at(9).Hash(),
            Value::Double(0.5).Hash());
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlder) {
  TempDir dir;
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), TestState(10)).ok());
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), TestState(20)).ok());
  FlipByteAt(dir.path() + "/" + SnapshotName(20), 12);

  auto loaded = LoadLatestSnapshot(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->state.last_lsn, 10u);
  ASSERT_EQ(loaded->corrupt_skipped.size(), 1u);
  EXPECT_NE(loaded->corrupt_skipped[0].find(SnapshotName(20)),
            std::string::npos);
}

// --- service-level crash/recovery -------------------------------------------

constexpr const char* kQuery =
    "Use German When Status = 1 Update(Status) = 2 Output Count(Credit = 1)";
constexpr const char* kApplySql =
    "Use German When Savings = 0 Update(Credit) = 0 Output Count(*)";
constexpr const char* kApplySql2 =
    "Use German When Age = 1 Update(Savings) = 2 Output Count(*)";

class DurableServiceTest : public ::testing::Test {
 protected:
  /// Deterministic dataset: every call with the same seed reconstructs a
  /// bit-identical base, exactly like a server restart reloading its data.
  static data::Dataset MakeData(uint32_t seed = 11) {
    data::GermanOptions options;
    options.rows = 400;
    options.seed = seed;
    auto ds = data::MakeGermanSyn(options);
    EXPECT_TRUE(ds.ok()) << ds.status();
    return std::move(ds).value();
  }

  std::unique_ptr<service::ScenarioService> MakeService(
      const std::string& data_dir, uint32_t seed = 11,
      uint64_t snapshot_every = 0, obs::MetricsRegistry* registry = nullptr) {
    data::Dataset ds = MakeData(seed);
    service::ServiceOptions options;
    options.whatif.estimator = learn::EstimatorKind::kFrequency;
    options.num_threads = 1;
    options.data_dir = data_dir;
    // Deterministic tests never rely on timing: fsync every append.
    options.wal_fsync = FsyncPolicy::kAlways;
    options.snapshot_every_records = snapshot_every;
    options.metrics = registry;
    return std::make_unique<service::ScenarioService>(
        std::move(ds.db), std::move(ds.graph), options);
  }

  static double Answer(service::ScenarioService& service,
                       const std::string& scenario) {
    service::Request request;
    request.scenario = scenario;
    request.sql = kQuery;
    service::Response response = service.Submit(request);
    EXPECT_TRUE(response.ok()) << response.status;
    return response.whatif.value;
  }

  static std::vector<service::ScenarioInfo> SortedScenarios(
      service::ScenarioService& service) {
    auto infos = service.ListScenarios();
    std::sort(infos.begin(), infos.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return infos;
  }
};

TEST_F(DurableServiceTest, RecoveredAnswersAreBitIdentical) {
  TempDir dir;
  std::vector<service::ScenarioInfo> live_infos;
  double live_main = 0.0, live_branch = 0.0;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->recovery_status().ok())
        << service->recovery_status();
    ASSERT_TRUE(service->CreateScenario("austerity").ok());
    auto applied = service->ApplyHypotheticalSql("austerity", kApplySql);
    ASSERT_TRUE(applied.ok()) << applied.status();
    ASSERT_TRUE(service->ApplyHypotheticalSql("austerity", kApplySql2).ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("main", kApplySql2).ok());
    live_infos = SortedScenarios(*service);
    live_main = Answer(*service, "main");
    live_branch = Answer(*service, "austerity");
    // Crash: the service is destroyed without any snapshot or drain — only
    // the WAL survives.
  }
  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  EXPECT_TRUE(recovered->recovery_info().performed);
  EXPECT_FALSE(recovered->recovery_info().snapshot_loaded);
  EXPECT_EQ(recovered->recovery_info().records_replayed, 4u);

  const auto infos = SortedScenarios(*recovered);
  ASSERT_EQ(infos.size(), live_infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, live_infos[i].name);
    EXPECT_EQ(infos[i].parent, live_infos[i].parent);
    EXPECT_EQ(infos[i].updates_applied, live_infos[i].updates_applied);
    EXPECT_EQ(infos[i].overridden_cells, live_infos[i].overridden_cells);
    // The headline invariant: recovered delta fingerprints (order-sensitive
    // FNV mixes) equal the live ones bit for bit.
    EXPECT_EQ(infos[i].delta_fingerprint, live_infos[i].delta_fingerprint)
        << infos[i].name;
  }
  // And therefore so do the answers (== on doubles, deliberately).
  EXPECT_EQ(Answer(*recovered, "main"), live_main);
  EXPECT_EQ(Answer(*recovered, "austerity"), live_branch);

  // A service that never crashed and never journaled agrees too: durability
  // must be invisible to query semantics.
  auto reference = MakeService("");
  ASSERT_TRUE(reference->CreateScenario("austerity").ok());
  ASSERT_TRUE(reference->ApplyHypotheticalSql("austerity", kApplySql).ok());
  ASSERT_TRUE(reference->ApplyHypotheticalSql("austerity", kApplySql2).ok());
  ASSERT_TRUE(reference->ApplyHypotheticalSql("main", kApplySql2).ok());
  EXPECT_EQ(Answer(*reference, "main"), live_main);
  EXPECT_EQ(Answer(*reference, "austerity"), live_branch);
}

TEST_F(DurableServiceTest, SnapshotPlusWalTailReplaysExactly) {
  TempDir dir;
  std::vector<service::ScenarioInfo> live_infos;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("a").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql).ok());
    ASSERT_TRUE(service->SnapshotNow().ok());
    // Tail: records past the snapshot, replayed on top of it.
    ASSERT_TRUE(service->CreateScenario("b", "a").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("b", kApplySql2).ok());
    live_infos = SortedScenarios(*service);
  }
  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  EXPECT_TRUE(recovered->recovery_info().snapshot_loaded);
  EXPECT_EQ(recovered->recovery_info().records_replayed, 2u);

  const auto infos = SortedScenarios(*recovered);
  ASSERT_EQ(infos.size(), live_infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, live_infos[i].name);
    EXPECT_EQ(infos[i].delta_fingerprint, live_infos[i].delta_fingerprint)
        << infos[i].name;
  }
}

TEST_F(DurableServiceTest, AutomaticSnapshotCadenceKeepsRecoveryExact) {
  TempDir dir;
  std::vector<service::ScenarioInfo> live_infos;
  {
    // Snapshot every 2 records: the run below crosses the cadence several
    // times, exercising rotation + pruning mid-traffic.
    auto service = MakeService(dir.path(), 11, /*snapshot_every=*/2);
    ASSERT_TRUE(service->CreateScenario("a").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql).ok());
    ASSERT_TRUE(service->CreateScenario("b", "a").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("b", kApplySql2).ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("main", kApplySql2).ok());
    ASSERT_TRUE(service->DropScenario("a").ok());
    live_infos = SortedScenarios(*service);
    EXPECT_GE(service->wal_stats().snapshots_written, 1u);
  }
  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  const auto infos = SortedScenarios(*recovered);
  ASSERT_EQ(infos.size(), live_infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, live_infos[i].name);
    EXPECT_EQ(infos[i].delta_fingerprint, live_infos[i].delta_fingerprint);
  }
}

TEST_F(DurableServiceTest, DropTombstoneIsNeverResurrected) {
  TempDir dir;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("doomed").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("doomed", kApplySql).ok());
    ASSERT_TRUE(service->DropScenario("doomed").ok());
  }
  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  // The create + apply records replay, then the tombstone erases the branch
  // — it must not outlive its drop, in any order of events.
  EXPECT_FALSE(recovered->HasScenario("doomed"));
  EXPECT_EQ(SortedScenarios(*recovered).size(), 1u);  // just "main"
}

TEST_F(DurableServiceTest, TornWalTailRecoversAndReports) {
  TempDir dir;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("kept").ok());
  }
  // Crash mid-append: half a frame header at the end of the only segment.
  const std::string segment = dir.path() + "/wal/" + WalSegmentName(1);
  WriteFile(segment, ReadFile(segment) + std::string(9, '\x5A'));

  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  EXPECT_TRUE(recovered->recovery_info().tail_truncated);
  EXPECT_EQ(recovered->recovery_info().truncated_bytes, 9u);
  EXPECT_TRUE(recovered->HasScenario("kept"));
}

TEST_F(DurableServiceTest, MidLogCorruptionGatesEveryOperation) {
  TempDir dir;
  size_t damage_offset = 0;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("a").ok());
    damage_offset = ReadFile(dir.path() + "/wal/" + WalSegmentName(1)).size();
    ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql).ok());
    ASSERT_TRUE(service->CreateScenario("b", "a").ok());
  }
  // Flip one byte inside the apply record — valid frames follow, so this is
  // bit rot, not a torn tail.
  FlipByteAt(dir.path() + "/wal/" + WalSegmentName(1),
             damage_offset + kWalFrameHeaderBytes + 3);

  auto gated = MakeService(dir.path());
  const Status& rs = gated->recovery_status();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.code(), StatusCode::kDataLoss);
  EXPECT_NE(rs.message().find(std::to_string(damage_offset)),
            std::string::npos)
      << rs;

  // The gate: every mutation and every submit refuses with exactly the
  // recovery status — the service never serves possibly-wrong state.
  EXPECT_EQ(gated->CreateScenario("c").code(), StatusCode::kDataLoss);
  EXPECT_EQ(gated->DropScenario("a").code(), StatusCode::kDataLoss);
  EXPECT_EQ(gated->ApplyHypotheticalSql("a", kApplySql).status().code(),
            StatusCode::kDataLoss);
  service::Request request;
  request.sql = kQuery;
  EXPECT_EQ(gated->Submit(request).status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(gated->SnapshotNow().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(gated->durable());
}

TEST_F(DurableServiceTest, WrongDatasetIsFailedPreconditionNotDataLoss) {
  TempDir dir;
  {
    auto service = MakeService(dir.path(), /*seed=*/11);
    ASSERT_TRUE(service->CreateScenario("a").ok());
  }
  // An intact data dir opened against a different base: operator error, not
  // storage corruption — the message should say which fingerprints disagree.
  auto mismatched = MakeService(dir.path(), /*seed=*/12);
  const Status& rs = mismatched->recovery_status();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurableServiceTest, CorruptNewestSnapshotFallsBackToOlderPlusWal) {
  TempDir dir;
  std::vector<service::ScenarioInfo> live_infos;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("a").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql).ok());
    ASSERT_TRUE(service->SnapshotNow().ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql2).ok());
    ASSERT_TRUE(service->SnapshotNow().ok());
    live_infos = SortedScenarios(*service);
  }
  // Corrupt the newest snapshot: recovery falls back to the older one and
  // replays the WAL records past it instead of failing.
  auto snapshots = ListSnapshotFiles(dir.path());
  ASSERT_TRUE(snapshots.ok()) << snapshots.status();
  ASSERT_EQ(snapshots->size(), 2u);
  FlipByteAt(snapshots->back().second, 16);

  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  EXPECT_EQ(recovered->recovery_info().corrupt_snapshots_skipped.size(), 1u);
  const auto infos = SortedScenarios(*recovered);
  ASSERT_EQ(infos.size(), live_infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].delta_fingerprint, live_infos[i].delta_fingerprint);
  }
}

TEST_F(DurableServiceTest, ReloadGenerationSurvivesRecovery) {
  TempDir dir;
  std::vector<service::ScenarioInfo> live_infos;
  {
    auto service = MakeService(dir.path());
    ASSERT_TRUE(service->CreateScenario("pre_reload").ok());
    data::Dataset fresh = MakeData();
    ASSERT_TRUE(service->ReloadDataset(std::move(fresh.db)).ok());
    // Post-reload state is what must survive; pre-reload branches are gone.
    ASSERT_TRUE(service->CreateScenario("post_reload").ok());
    ASSERT_TRUE(service->ApplyHypotheticalSql("post_reload", kApplySql).ok());
    live_infos = SortedScenarios(*service);
  }
  auto recovered = MakeService(dir.path());
  ASSERT_TRUE(recovered->recovery_status().ok())
      << recovered->recovery_status();
  EXPECT_EQ(recovered->recovery_info().generation, 2u);
  EXPECT_FALSE(recovered->HasScenario("pre_reload"));
  ASSERT_TRUE(recovered->HasScenario("post_reload"));
  const auto infos = SortedScenarios(*recovered);
  ASSERT_EQ(infos.size(), live_infos.size());
  for (size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, live_infos[i].name);
    EXPECT_EQ(infos[i].delta_fingerprint, live_infos[i].delta_fingerprint);
  }
}

TEST_F(DurableServiceTest, WalMetricsAreRegisteredAndCounted) {
  TempDir dir;
  obs::MetricsRegistry registry;
  auto service = MakeService(dir.path(), 11, /*snapshot_every=*/0, &registry);
  ASSERT_TRUE(service->CreateScenario("a").ok());
  ASSERT_TRUE(service->ApplyHypotheticalSql("a", kApplySql).ok());
  ASSERT_TRUE(service->SnapshotNow().ok());

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  auto value_of = [&](const std::string& name) -> double {
    for (const obs::MetricSample& s : snapshot.samples) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "series not registered: " << name;
    return -1.0;
  };
  EXPECT_GE(value_of("hyper_wal_appends_total"), 2.0);
  EXPECT_GT(value_of("hyper_wal_bytes_total"), 0.0);
  EXPECT_GE(value_of("hyper_snapshots_total"), 1.0);
  EXPECT_GE(value_of("hyper_recovery_seconds"), 0.0);
  bool fsync_histogram = false;
  for (const obs::HistogramSample& h : snapshot.histograms) {
    if (h.name == "hyper_wal_fsync_seconds") {
      fsync_histogram = true;
      EXPECT_GE(h.count, 1u);  // kAlways: every append fsyncs
    }
  }
  EXPECT_TRUE(fsync_histogram);

  const WalStats stats = service->wal_stats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_GE(stats.appends, 2u);
  EXPECT_EQ(stats.snapshots_written, 1u);
  EXPECT_EQ(stats.records_since_snapshot, 0u);
}

}  // namespace
}  // namespace hyper::durability
