#include <gtest/gtest.h>

#include <sstream>

#include "storage/csv.h"

namespace hyper {
namespace {

// ---------------------------------------------------------------------------
// Line splitting
// ---------------------------------------------------------------------------

TEST(CsvLineTest, PlainFields) {
  auto f = SplitCsvLine("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvLineTest, EmptyFieldsPreserved) {
  auto f = SplitCsvLine(",x,", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[2], "");
}

TEST(CsvLineTest, QuotedFieldWithDelimiter) {
  auto f = SplitCsvLine("\"a,b\",c", ',');
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
}

TEST(CsvLineTest, EscapedQuote) {
  auto f = SplitCsvLine("\"it\"\"s\",x", ',');
  EXPECT_EQ(f[0], "it\"s");
}

TEST(CsvLineTest, CarriageReturnStripped) {
  auto f = SplitCsvLine("a,b\r", ',');
  EXPECT_EQ(f[1], "b");
}

TEST(CsvLineTest, AlternateDelimiter) {
  auto f = SplitCsvLine("a;b;c", ';');
  ASSERT_EQ(f.size(), 3u);
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

TEST(CsvReadTest, TypeInference) {
  std::istringstream in(
      "Id,Price,Brand,Score\n"
      "1,9.5,Asus,10\n"
      "2,12,HP,20\n");
  CsvReadOptions options;
  options.key = {"Id"};
  auto table = ReadCsv(in, "Product", options).value();
  EXPECT_EQ(table.schema().attribute(0).type, ValueType::kInt);
  EXPECT_EQ(table.schema().attribute(1).type, ValueType::kDouble);
  EXPECT_EQ(table.schema().attribute(2).type, ValueType::kString);
  EXPECT_EQ(table.schema().attribute(3).type, ValueType::kInt);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(table.At(1, 2).Equals(Value::String("HP")));
}

TEST(CsvReadTest, KeyAndImmutableMarkers) {
  std::istringstream in("Id,Age,Status\n1,30,2\n");
  CsvReadOptions options;
  options.key = {"Id"};
  options.immutable = {"Age"};
  auto table = ReadCsv(in, "R", options).value();
  EXPECT_TRUE(table.schema().IsKeyAttribute(0));
  EXPECT_EQ(table.schema().attribute(1).mutability, Mutability::kImmutable);
  EXPECT_EQ(table.schema().attribute(2).mutability, Mutability::kMutable);
}

TEST(CsvReadTest, EmptyFieldsBecomeNull) {
  std::istringstream in("Id,Score\n1,\n2,5\n");
  auto table = ReadCsv(in, "R", {}).value();
  EXPECT_TRUE(table.At(0, 1).is_null());
  EXPECT_TRUE(table.At(1, 1).Equals(Value::Int(5)));
}

TEST(CsvReadTest, MixedNumericColumnIsDouble) {
  std::istringstream in("A\n1\n2.5\n");
  auto table = ReadCsv(in, "R", {}).value();
  EXPECT_EQ(table.schema().attribute(0).type, ValueType::kDouble);
}

TEST(CsvReadTest, NumericLookingStringsStayStrings) {
  std::istringstream in("A\n1\nx2\n");
  auto table = ReadCsv(in, "R", {}).value();
  EXPECT_EQ(table.schema().attribute(0).type, ValueType::kString);
}

TEST(CsvReadTest, Errors) {
  std::istringstream empty("");
  EXPECT_FALSE(ReadCsv(empty, "R", {}).ok());

  std::istringstream ragged("A,B\n1,2,3\n");
  EXPECT_EQ(ReadCsv(ragged, "R", {}).status().code(),
            StatusCode::kParseError);

  std::istringstream ok("A\n1\n");
  CsvReadOptions bad_key;
  bad_key.key = {"Zzz"};
  EXPECT_FALSE(ReadCsv(ok, "R", bad_key).ok());

  EXPECT_EQ(ReadCsvFile("/nonexistent/path.csv", "R", {}).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvReadTest, NoInferenceLoadsStrings) {
  std::istringstream in("A\n42\n");
  CsvReadOptions options;
  options.infer_types = false;
  auto table = ReadCsv(in, "R", options).value();
  EXPECT_EQ(table.schema().attribute(0).type, ValueType::kString);
}

// ---------------------------------------------------------------------------
// Round trip
// ---------------------------------------------------------------------------

TEST(CsvRoundTripTest, WriteThenReadPreservesData) {
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"Name", ValueType::kString, Mutability::kMutable},
                  {"Price", ValueType::kDouble, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked(
      {Value::Int(1), Value::String("plain"), Value::Double(9.5)});
  t.AppendUnchecked(
      {Value::Int(2), Value::String("with,comma"), Value::Double(-1.25)});
  t.AppendUnchecked({Value::Int(3), Value::String("with\"quote"),
                     Value::Null()});

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  CsvReadOptions options;
  options.key = {"Id"};
  auto back = ReadCsv(in, "R", options).value();

  ASSERT_EQ(back.num_rows(), 3u);
  EXPECT_TRUE(back.At(1, 1).Equals(Value::String("with,comma")));
  EXPECT_TRUE(back.At(2, 1).Equals(Value::String("with\"quote")));
  EXPECT_TRUE(back.At(2, 2).is_null());
  EXPECT_DOUBLE_EQ(back.At(0, 2).double_value(), 9.5);
}

TEST(CsvRoundTripTest, DoublePrecisionSurvives) {
  Table t(Schema("R", {{"X", ValueType::kDouble, Mutability::kMutable}}, {}));
  const double value = 0.1234567890123456789;
  t.AppendUnchecked({Value::Double(value)});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "R", {}).value();
  EXPECT_DOUBLE_EQ(back.At(0, 0).double_value(), value);
}

}  // namespace
}  // namespace hyper
