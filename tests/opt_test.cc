#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "opt/lp.h"
#include "opt/mck.h"
#include "opt/milp.h"

namespace hyper::opt {
namespace {

// ---------------------------------------------------------------------------
// Simplex LP
// ---------------------------------------------------------------------------

TEST(LpTest, TextbookTwoVariable) {
  // max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
  LpProblem p;
  p.objective = {3, 2};
  p.AddRow({1, 1}, 4);
  p.AddRow({1, 3}, 6);
  auto sol = SolveLp(p).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12, 1e-9);
  EXPECT_NEAR(sol.x[0], 4, 1e-9);
  EXPECT_NEAR(sol.x[1], 0, 1e-9);
}

TEST(LpTest, InteriorOptimum) {
  // max x + y st x <= 2, y <= 3 -> (2,3).
  LpProblem p;
  p.objective = {1, 1};
  p.AddRow({1, 0}, 2);
  p.AddRow({0, 1}, 3);
  auto sol = SolveLp(p).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5, 1e-9);
}

TEST(LpTest, UnboundedDetected) {
  LpProblem p;
  p.objective = {1, 0};
  p.AddRow({0, 1}, 1);  // x unconstrained above
  auto sol = SolveLp(p).value();
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(LpTest, InfeasibleByNegativeRhs) {
  // x >= 2 (written as -x <= -2) with x <= 1: infeasible.
  LpProblem p;
  p.objective = {1};
  p.AddRow({-1}, -2);
  p.AddRow({1}, 1);
  auto sol = SolveLp(p).value();
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(LpTest, PhaseOneFindsFeasibleStart) {
  // x >= 1 and x <= 3, max -x -> x = 1.
  LpProblem p;
  p.objective = {-1};
  p.AddRow({-1}, -1);
  p.AddRow({1}, 3);
  auto sol = SolveLp(p).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 1, 1e-9);
  EXPECT_NEAR(sol.objective, -1, 1e-9);
}

TEST(LpTest, EqualityViaTwoInequalities) {
  // x + y == 2 (<= and >=), max x st x <= 1.5 -> x=1.5, y=0.5.
  LpProblem p;
  p.objective = {1, 0};
  p.AddRow({1, 1}, 2);
  p.AddRow({-1, -1}, -2);
  p.AddRow({1, 0}, 1.5);
  auto sol = SolveLp(p).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 1.5, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.5, 1e-9);
}

TEST(LpTest, NoConstraintsZeroOrUnbounded) {
  LpProblem zero;
  zero.objective = {-1, -2};
  auto sol = SolveLp(zero).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0, 1e-12);

  LpProblem unbounded;
  unbounded.objective = {1};
  EXPECT_EQ(SolveLp(unbounded).value().status, LpStatus::kUnbounded);
}

TEST(LpTest, DegenerateVerticesTerminate) {
  // Multiple redundant constraints through one vertex (degeneracy): the
  // Bland rule must still terminate.
  LpProblem p;
  p.objective = {1, 1};
  p.AddRow({1, 1}, 2);
  p.AddRow({1, 1}, 2);
  p.AddRow({2, 2}, 4);
  p.AddRow({1, 0}, 2);
  auto sol = SolveLp(p).value();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2, 1e-9);
}

TEST(LpTest, RowArityValidated) {
  LpProblem p;
  p.objective = {1, 2};
  p.constraints.push_back({1});  // wrong arity, bypassing AddRow
  p.rhs.push_back(1);
  EXPECT_FALSE(SolveLp(p).ok());
}

// ---------------------------------------------------------------------------
// Binary MILP
// ---------------------------------------------------------------------------

TEST(MilpTest, KnapsackInstance) {
  // values {6,10,12}, weights {1,2,3}, capacity 5 -> take items 2,3 = 22.
  LpProblem p;
  p.objective = {6, 10, 12};
  p.AddRow({1, 2, 3}, 5);
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 22, 1e-9);
  EXPECT_EQ(sol.x, (std::vector<int>{0, 1, 1}));
}

TEST(MilpTest, LpRelaxationWouldCheat) {
  // Fractional relaxation of knapsack {value 10, weight 2} cap 1 would take
  // half the item; integral answer is 0.
  LpProblem p;
  p.objective = {10};
  p.AddRow({2}, 1);
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0, 1e-9);
  EXPECT_EQ(sol.x[0], 0);
}

TEST(MilpTest, ChoiceRows) {
  // Two groups, one pick each: max 3a1 + 5a2 + 4b1 + 1b2
  // st a1+a2 <= 1, b1+b2 <= 1 -> a2 + b1 = 9.
  LpProblem p;
  p.objective = {3, 5, 4, 1};
  p.AddRow({1, 1, 0, 0}, 1);
  p.AddRow({0, 0, 1, 1}, 1);
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 9, 1e-9);
  EXPECT_EQ(sol.x, (std::vector<int>{0, 1, 1, 0}));
}

TEST(MilpTest, ChoicePlusBudgetCoupling) {
  // Same groups, but a2 and b1 together bust the budget.
  LpProblem p;
  p.objective = {3, 5, 4, 1};
  p.AddRow({1, 1, 0, 0}, 1);
  p.AddRow({0, 0, 1, 1}, 1);
  p.AddRow({1, 4, 3, 1}, 5);  // costs
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  // Options: a2+b2=6 (cost 5 ok), a1+b1=7 (cost 4 ok) -> 7.
  EXPECT_NEAR(sol.objective, 7, 1e-9);
}

TEST(MilpTest, InfeasibleInstance) {
  // x1 + x2 >= 3 cannot hold for two binaries.
  LpProblem p;
  p.objective = {1, 1};
  p.AddRow({-1, -1}, -3);
  auto sol = SolveBinaryMilp(p).value();
  EXPECT_FALSE(sol.feasible);
}

TEST(MilpTest, NegativeObjectiveCoefficientsStayZero) {
  LpProblem p;
  p.objective = {-2, -3};
  p.AddRow({1, 1}, 2);
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0, 1e-9);
  EXPECT_EQ(sol.x, (std::vector<int>{0, 0}));
}

TEST(MilpTest, TenVariableStress) {
  // max sum x_i with pairwise exclusions forming a matching-like structure.
  LpProblem p;
  p.objective = {5, 4, 3, 7, 6, 2, 8, 1, 9, 10};
  for (int i = 0; i < 5; ++i) {
    std::vector<double> row(10, 0.0);
    row[2 * i] = 1;
    row[2 * i + 1] = 1;
    p.AddRow(std::move(row), 1);
  }
  auto sol = SolveBinaryMilp(p).value();
  ASSERT_TRUE(sol.feasible);
  // Best of each pair: 5, 7, 6, 8, 10 = 36.
  EXPECT_NEAR(sol.objective, 36, 1e-9);
}

// ---------------------------------------------------------------------------
// Multiple-choice knapsack
// ---------------------------------------------------------------------------

TEST(MckTest, UnbudgetedIsPerGroupArgmax) {
  std::vector<MckGroup> groups{{{1, 5, 3}, {0, 0, 0}},
                               {{2, 2.5}, {0, 0}}};
  auto sol = SolveMck(groups, /*budget=*/-1).value();
  EXPECT_NEAR(sol.value, 7.5, 1e-12);
  EXPECT_EQ(sol.choice, (std::vector<int>{1, 1}));
}

TEST(MckTest, SkipsGroupsWithOnlyNegativeValues) {
  std::vector<MckGroup> groups{{{-1, -2}, {0, 0}}, {{4}, {0}}};
  auto sol = SolveMck(groups, -1).value();
  EXPECT_NEAR(sol.value, 4, 1e-12);
  EXPECT_EQ(sol.choice[0], -1);
}

TEST(MckTest, BudgetForcesTradeoff) {
  // Group A: value 10 cost 8, value 6 cost 3. Group B: value 9 cost 6,
  // value 4 cost 1. Budget 9: best = 6+9 (cost 9) = 15.
  std::vector<MckGroup> groups{{{10, 6}, {8, 3}}, {{9, 4}, {6, 1}}};
  auto sol = SolveMck(groups, 9).value();
  EXPECT_NEAR(sol.value, 15, 1e-12);
  EXPECT_NEAR(sol.cost, 9, 1e-12);
  EXPECT_EQ(sol.choice, (std::vector<int>{1, 0}));
}

TEST(MckTest, ZeroBudgetOnlyFreeItems) {
  std::vector<MckGroup> groups{{{5, 1}, {2, 0}}, {{7}, {1}}};
  auto sol = SolveMck(groups, 0).value();
  EXPECT_NEAR(sol.value, 1, 1e-12);
  EXPECT_EQ(sol.choice, (std::vector<int>{1, -1}));
}

TEST(MckTest, MatchesMilpOnRandomInstances) {
  hyper::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t num_groups = 1 + trial % 4;
    std::vector<MckGroup> groups(num_groups);
    LpProblem milp;
    std::vector<double> costs_row;
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t items = 1 + static_cast<size_t>(rng.UniformInt(1, 4));
      for (size_t i = 0; i < items; ++i) {
        groups[g].values.push_back(rng.Uniform(-2, 10));
        groups[g].costs.push_back(rng.Uniform(0, 5));
        milp.objective.push_back(groups[g].values.back());
        costs_row.push_back(groups[g].costs.back());
      }
    }
    // Choice rows.
    size_t offset = 0;
    for (size_t g = 0; g < num_groups; ++g) {
      std::vector<double> row(milp.objective.size(), 0.0);
      for (size_t i = 0; i < groups[g].values.size(); ++i) {
        row[offset + i] = 1.0;
      }
      offset += groups[g].values.size();
      milp.AddRow(std::move(row), 1.0);
    }
    const double budget = rng.Uniform(0, 8);
    milp.AddRow(costs_row, budget);

    auto mck = SolveMck(groups, budget).value();
    auto bnb = SolveBinaryMilp(milp).value();
    ASSERT_TRUE(bnb.feasible);
    EXPECT_NEAR(mck.value, bnb.objective, 1e-6) << "trial " << trial;
  }
}

TEST(MckTest, TiedValuesBreakByLowestIndex) {
  // Deliberately tied groups. SolveMck orders items with an unstable sort;
  // without an explicit (value desc, index asc) tie-break the chosen item
  // among equal values would depend on the STL's sort internals, making
  // how-to plans platform-dependent. The contract: the lowest-index item of
  // a tied set wins.
  std::vector<MckGroup> groups{{{5, 5, 5}, {1, 0, 2}},
                               {{2, 3, 3}, {0, 0, 0}}};
  auto sol = SolveMck(groups, /*budget=*/-1).value();
  EXPECT_NEAR(sol.value, 8, 1e-12);
  EXPECT_EQ(sol.choice, (std::vector<int>{0, 1}));

  // Under a budget, a tied-but-infeasible lower index yields to the next
  // index, not to an arbitrary sort order.
  std::vector<MckGroup> budgeted{{{5, 5}, {2, 1}}};
  auto tight = SolveMck(budgeted, /*budget=*/1).value();
  EXPECT_EQ(tight.choice, (std::vector<int>{1}));
  auto loose = SolveMck(budgeted, /*budget=*/2).value();
  EXPECT_EQ(loose.choice, (std::vector<int>{0}));
}

TEST(MckTest, NegativeCostRejected) {
  std::vector<MckGroup> groups{{{1}, {-0.5}}};
  EXPECT_FALSE(SolveMck(groups, 1).ok());
}

}  // namespace
}  // namespace hyper::opt
