#include <gtest/gtest.h>

#include <cmath>

#include "causal/augment.h"
#include "causal/graph.h"
#include "causal/ground.h"
#include "causal/scm.h"
#include "storage/database.h"

namespace hyper::causal {
namespace {

// ---------------------------------------------------------------------------
// CausalGraph basics
// ---------------------------------------------------------------------------

/// The classic confounder graph: C -> B, C -> Y, B -> Y.
CausalGraph ConfounderGraph() {
  CausalGraph g;
  g.AddEdge("C", "B");
  g.AddEdge("C", "Y");
  g.AddEdge("B", "Y");
  return g;
}

/// A chain B -> M -> Y plus confounders: Age -> B, Age -> Y.
CausalGraph ChainGraph() {
  CausalGraph g;
  g.AddEdge("Age", "B");
  g.AddEdge("Age", "Y");
  g.AddEdge("B", "M");
  g.AddEdge("M", "Y");
  return g;
}

TEST(CausalGraphTest, NodesAndEdges) {
  CausalGraph g = ConfounderGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_TRUE(g.HasNode("C"));
  EXPECT_FALSE(g.HasNode("Z"));
}

TEST(CausalGraphTest, ParentsAndChildren) {
  CausalGraph g = ConfounderGraph();
  auto parents = g.Parents("Y");
  EXPECT_EQ(parents.size(), 2u);
  auto children = g.Children("C");
  EXPECT_EQ(children.size(), 2u);
  EXPECT_TRUE(g.Parents("C").empty());
  EXPECT_TRUE(g.Parents("unknown").empty());
}

TEST(CausalGraphTest, DescendantsAndAncestors) {
  CausalGraph g = ChainGraph();
  auto desc = g.Descendants("B");
  EXPECT_EQ(desc.size(), 2u);
  EXPECT_TRUE(desc.count("M"));
  EXPECT_TRUE(desc.count("Y"));
  auto anc = g.Ancestors("Y");
  EXPECT_EQ(anc.size(), 3u);  // Age, B, M
  EXPECT_TRUE(g.Descendants("Y").empty());
}

TEST(CausalGraphTest, TopologicalOrder) {
  CausalGraph g = ChainGraph();
  auto order = g.TopologicalOrder().value();
  auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("Age"), pos("B"));
  EXPECT_LT(pos("B"), pos("M"));
  EXPECT_LT(pos("M"), pos("Y"));
}

TEST(CausalGraphTest, CycleDetected) {
  CausalGraph g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  g.AddEdge("C", "A");
  EXPECT_FALSE(g.Validate().ok());
  EXPECT_FALSE(g.TopologicalOrder().ok());
}

TEST(CausalGraphTest, CrossTupleDetection) {
  CausalGraph g = ConfounderGraph();
  EXPECT_FALSE(g.HasCrossTupleEdges());
  g.AddEdge("B", "Y", "Category");
  EXPECT_TRUE(g.HasCrossTupleEdges());
}

TEST(CausalGraphTest, DotExport) {
  CausalGraph g;
  g.AddEdge("Quality", "Price");
  g.AddEdge("Price", "Rating", "PID");
  const std::string dot = g.ToDot("fig2");
  EXPECT_NE(dot.find("digraph fig2"), std::string::npos);
  EXPECT_NE(dot.find("\"Quality\" -> \"Price\";"), std::string::npos);
  EXPECT_NE(dot.find("\"Price\" -> \"Rating\" [style=dashed, label=\"PID\"]"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// d-separation
// ---------------------------------------------------------------------------

TEST(DSeparationTest, ChainBlockedByMiddle) {
  CausalGraph g;
  g.AddEdge("A", "B");
  g.AddEdge("B", "C");
  EXPECT_FALSE(DSeparated(g, "A", "C", {}));
  EXPECT_TRUE(DSeparated(g, "A", "C", {"B"}));
}

TEST(DSeparationTest, ForkBlockedByRoot) {
  CausalGraph g;
  g.AddEdge("B", "A");
  g.AddEdge("B", "C");
  EXPECT_FALSE(DSeparated(g, "A", "C", {}));
  EXPECT_TRUE(DSeparated(g, "A", "C", {"B"}));
}

TEST(DSeparationTest, ColliderBlocksByDefault) {
  CausalGraph g;
  g.AddEdge("A", "B");
  g.AddEdge("C", "B");
  EXPECT_TRUE(DSeparated(g, "A", "C", {}));
  // Conditioning on the collider opens the path.
  EXPECT_FALSE(DSeparated(g, "A", "C", {"B"}));
}

TEST(DSeparationTest, ColliderDescendantOpensPath) {
  CausalGraph g;
  g.AddEdge("A", "B");
  g.AddEdge("C", "B");
  g.AddEdge("B", "D");
  EXPECT_TRUE(DSeparated(g, "A", "C", {}));
  EXPECT_FALSE(DSeparated(g, "A", "C", {"D"}));
}

TEST(DSeparationTest, MShapeGraph) {
  // A <- U1 -> M <- U2 -> Y: A and Y d-separated given {} and given M open.
  CausalGraph g;
  g.AddEdge("U1", "A");
  g.AddEdge("U1", "M");
  g.AddEdge("U2", "M");
  g.AddEdge("U2", "Y");
  EXPECT_TRUE(DSeparated(g, "A", "Y", {}));
  EXPECT_FALSE(DSeparated(g, "A", "Y", {"M"}));
  EXPECT_TRUE(DSeparated(g, "A", "Y", {"M", "U1"}));
  EXPECT_TRUE(DSeparated(g, "A", "Y", {"M", "U2"}));
}

TEST(DSeparationTest, DisconnectedNodesSeparated) {
  CausalGraph g;
  g.AddNode("A");
  g.AddNode("B");
  EXPECT_TRUE(DSeparated(g, "A", "B", {}));
}

// ---------------------------------------------------------------------------
// Backdoor criterion
// ---------------------------------------------------------------------------

TEST(BackdoorTest, ConfounderMustBeBlocked) {
  CausalGraph g = ConfounderGraph();
  EXPECT_FALSE(SatisfiesBackdoor(g, "B", "Y", {}));
  EXPECT_TRUE(SatisfiesBackdoor(g, "B", "Y", {"C"}));
}

TEST(BackdoorTest, DescendantOfTreatmentRejected) {
  CausalGraph g = ChainGraph();
  // M is a descendant of B: not allowed in a backdoor set.
  EXPECT_FALSE(SatisfiesBackdoor(g, "B", "Y", {"Age", "M"}));
  EXPECT_TRUE(SatisfiesBackdoor(g, "B", "Y", {"Age"}));
}

TEST(BackdoorTest, TreatmentOrOutcomeNotAllowedInSet) {
  CausalGraph g = ConfounderGraph();
  EXPECT_FALSE(SatisfiesBackdoor(g, "B", "Y", {"B"}));
  EXPECT_FALSE(SatisfiesBackdoor(g, "B", "Y", {"Y"}));
}

TEST(BackdoorTest, NoConfoundingNeedsEmptySet) {
  CausalGraph g;
  g.AddEdge("B", "Y");
  EXPECT_TRUE(SatisfiesBackdoor(g, "B", "Y", {}));
}

TEST(BackdoorTest, MinimalSetOnConfounder) {
  CausalGraph g = ConfounderGraph();
  auto set = MinimalBackdoorSet(g, "B", "Y").value();
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count("C"));
}

TEST(BackdoorTest, MinimalSetEmptyWhenNoConfounding) {
  CausalGraph g;
  g.AddEdge("B", "M");
  g.AddEdge("M", "Y");
  auto set = MinimalBackdoorSet(g, "B", "Y").value();
  EXPECT_TRUE(set.empty());
}

TEST(BackdoorTest, MinimalSetDropsIrrelevantNodes) {
  CausalGraph g = ConfounderGraph();
  g.AddEdge("Noise1", "C");
  g.AddNode("Noise2");
  auto set = MinimalBackdoorSet(g, "B", "Y").value();
  // Conditioning on C suffices; the noise nodes must have been dropped.
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count("C"));
}

TEST(BackdoorTest, MinimalSetWithTwoConfounders) {
  CausalGraph g;
  g.AddEdge("C1", "B");
  g.AddEdge("C1", "Y");
  g.AddEdge("C2", "B");
  g.AddEdge("C2", "Y");
  g.AddEdge("B", "Y");
  auto set = MinimalBackdoorSet(g, "B", "Y").value();
  EXPECT_EQ(set.size(), 2u);
}

TEST(BackdoorTest, UnknownNodeIsError) {
  CausalGraph g = ConfounderGraph();
  EXPECT_FALSE(MinimalBackdoorSet(g, "B", "Nope").ok());
}

// ---------------------------------------------------------------------------
// Ground graph + tuple components (Amazon database, Figures 1-3)
// ---------------------------------------------------------------------------

Database AmazonDb() {
  Database db;
  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Category", ValueType::kString, Mutability::kImmutable},
                        {"Price", ValueType::kDouble, Mutability::kMutable},
                        {"Quality", ValueType::kDouble, Mutability::kMutable}},
                       {"PID"}));
  product.AppendUnchecked({Value::Int(1), Value::String("Laptop"),
                           Value::Double(999), Value::Double(0.7)});
  product.AppendUnchecked({Value::Int(2), Value::String("Laptop"),
                           Value::Double(529), Value::Double(0.65)});
  product.AppendUnchecked({Value::Int(4), Value::String("Camera"),
                           Value::Double(549), Value::Double(0.75)});
  product.AppendUnchecked({Value::Int(5), Value::String("Book"),
                           Value::Double(15.99), Value::Double(0.4)});
  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"ReviewID", ValueType::kInt, Mutability::kImmutable},
                       {"Rating", ValueType::kDouble, Mutability::kMutable}},
                      {"PID", "ReviewID"}));
  review.AppendUnchecked({Value::Int(1), Value::Int(1), Value::Double(2)});
  review.AppendUnchecked({Value::Int(2), Value::Int(2), Value::Double(4)});
  review.AppendUnchecked({Value::Int(2), Value::Int(3), Value::Double(1)});
  review.AppendUnchecked({Value::Int(4), Value::Int(5), Value::Double(4)});
  EXPECT_TRUE(db.AddTable(std::move(product)).ok());
  EXPECT_TRUE(db.AddTable(std::move(review)).ok());
  return db;
}

/// Quality -> Price (same tuple); Price -> Rating (via PID, cross relation).
CausalGraph AmazonGraph() {
  CausalGraph g;
  g.AddEdge("Quality", "Price");
  g.AddEdge("Price", "Rating", "PID");
  return g;
}

TEST(GroundGraphTest, NodesPerTuple) {
  Database db = AmazonDb();
  auto ground = GroundCausalGraph::Build(AmazonGraph(), db).value();
  // Quality and Price ground over 4 products; Rating over 4 reviews.
  EXPECT_EQ(ground.num_nodes(), 4u + 4u + 4u);
}

TEST(GroundGraphTest, IntraTupleEdgesGrounded) {
  Database db = AmazonDb();
  auto ground = GroundCausalGraph::Build(AmazonGraph(), db).value();
  // 4 Quality->Price edges; Price->Rating: p1->r0, p2->{r1,r2}, p4->r3 = 4.
  EXPECT_EQ(ground.edges().size(), 8u);
}

TEST(GroundGraphTest, ParentsOfGroundedReview) {
  Database db = AmazonDb();
  auto ground = GroundCausalGraph::Build(AmazonGraph(), db).value();
  // Review tid=1 (PID 2): parent should be Price of product tid=1.
  size_t node = ground.NodeIndex(TupleId{"Review", 1}, "Rating").value();
  const auto& parents = ground.ParentsOf(node);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(ground.nodes()[parents[0]].tuple.relation, "Product");
  EXPECT_EQ(ground.nodes()[parents[0]].tuple.tid, 1u);
  EXPECT_EQ(ground.nodes()[parents[0]].attribute, "Price");
}

TEST(GroundGraphTest, TupleIndependence) {
  Database db = AmazonDb();
  auto ground = GroundCausalGraph::Build(AmazonGraph(), db).value();
  // A product and its own review are dependent.
  EXPECT_FALSE(
      ground.TuplesIndependent(TupleId{"Product", 1}, TupleId{"Review", 1}));
  // Two unrelated products are independent (no cross-tuple edges here).
  EXPECT_TRUE(
      ground.TuplesIndependent(TupleId{"Product", 0}, TupleId{"Product", 1}));
}

TEST(GroundGraphTest, CrossTupleEdgeViaCategory) {
  Database db = AmazonDb();
  CausalGraph g = AmazonGraph();
  // Competitors' quality affects my price within a category (dashed edge).
  g.AddEdge("Quality", "Price", "Category");
  auto ground = GroundCausalGraph::Build(g, db).value();
  // The two laptops are now dependent; the camera stays independent of them.
  EXPECT_FALSE(
      ground.TuplesIndependent(TupleId{"Product", 0}, TupleId{"Product", 1}));
  EXPECT_TRUE(
      ground.TuplesIndependent(TupleId{"Product", 0}, TupleId{"Product", 2}));
}

TEST(GroundGraphTest, IntraTupleEdgeAcrossRelationsRejected) {
  Database db = AmazonDb();
  CausalGraph g;
  g.AddEdge("Price", "Rating");  // spans relations without a link
  EXPECT_FALSE(GroundCausalGraph::Build(g, db).ok());
}

TEST(TupleComponentsTest, BlocksFollowKeyLinks) {
  Database db = AmazonDb();
  auto blocks = TupleComponents::Build(AmazonGraph(), db).value();
  // Each product forms a block with its reviews: p1+r0, p2+r1+r2, p4+r3,
  // p5 alone -> 4 blocks.
  EXPECT_EQ(blocks.num_blocks(), 4u);
  EXPECT_EQ(blocks.BlockOf(TupleId{"Product", 1}).value(),
            blocks.BlockOf(TupleId{"Review", 1}).value());
  EXPECT_EQ(blocks.BlockOf(TupleId{"Review", 1}).value(),
            blocks.BlockOf(TupleId{"Review", 2}).value());
  EXPECT_NE(blocks.BlockOf(TupleId{"Product", 0}).value(),
            blocks.BlockOf(TupleId{"Product", 1}).value());
}

TEST(TupleComponentsTest, CategoryEdgeMergesLaptops) {
  // Example 7's decomposition: laptops merge into one block.
  Database db = AmazonDb();
  CausalGraph g = AmazonGraph();
  g.AddEdge("Quality", "Price", "Category");
  auto blocks = TupleComponents::Build(g, db).value();
  // Blocks: {laptops + their reviews}, {camera + review}, {book} -> 3.
  EXPECT_EQ(blocks.num_blocks(), 3u);
  EXPECT_EQ(blocks.BlockOf(TupleId{"Product", 0}).value(),
            blocks.BlockOf(TupleId{"Product", 1}).value());
}

TEST(TupleComponentsTest, NoEdgesMeansSingletonBlocks) {
  Database db = AmazonDb();
  CausalGraph g;
  g.AddEdge("Quality", "Price");  // intra-tuple only
  auto blocks = TupleComponents::Build(g, db).value();
  EXPECT_EQ(blocks.num_blocks(), db.TotalRows());
}

// ---------------------------------------------------------------------------
// Augmented graph (§A.3.2)
// ---------------------------------------------------------------------------

TEST(AugmentTest, RewiresChildrenThroughAggregate) {
  // Quality -> Rating -> Helpfulness; aggregate Rtng = Avg(Rating).
  CausalGraph g;
  g.AddEdge("Quality", "Rating", "PID");
  g.AddEdge("Rating", "Helpfulness");
  auto augmented = AugmentGraph(g, {{"Rtng", "Rating"}}).value();
  // Rating -> Rtng added; Rating -> Helpfulness rerouted via Rtng.
  auto rtng_parents = augmented.Parents("Rtng");
  ASSERT_EQ(rtng_parents.size(), 1u);
  EXPECT_EQ(rtng_parents[0], "Rating");
  auto help_parents = augmented.Parents("Helpfulness");
  ASSERT_EQ(help_parents.size(), 1u);
  EXPECT_EQ(help_parents[0], "Rtng");
}

TEST(AugmentTest, BackdoorSoundOnAugmentedGraph) {
  // Price <- Quality -> Rating, view aggregates Rating into Rtng. The
  // backdoor set for (Price, Rtng) must be {Quality}, as for the base pair.
  CausalGraph g;
  g.AddEdge("Quality", "Price");
  g.AddEdge("Quality", "Rating", "PID");
  g.AddEdge("Price", "Rating", "PID");
  auto augmented = AugmentGraph(g, {{"Rtng", "Rating"}}).value();
  auto set = MinimalBackdoorSet(augmented, "Price", "Rtng").value();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count("Quality"));
}

TEST(AugmentTest, IncomingEdgesToSourceAreKept) {
  CausalGraph g;
  g.AddEdge("Quality", "Rating", "PID");
  auto augmented = AugmentGraph(g, {{"Rtng", "Rating"}}).value();
  auto rating_parents = augmented.Parents("Rating");
  ASSERT_EQ(rating_parents.size(), 1u);
  EXPECT_EQ(rating_parents[0], "Quality");
}

TEST(AugmentTest, Errors) {
  CausalGraph g;
  g.AddEdge("A", "B");
  EXPECT_EQ(AugmentGraph(g, {{"X", "Zzz"}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AugmentGraph(g, {{"A", "B"}}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(AugmentGraph(g, {{"X", "B"}, {"Y", "B"}}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Scm
// ---------------------------------------------------------------------------

/// Binary confounder model: C ~ Bern(0.5); B ~ Bern(0.8 if C else 0.2);
/// Y ~ Bern(0.9 if B&&C, 0.6 if B, 0.3 if C, 0.1 else).
Scm BinaryConfounderScm() {
  Scm scm;
  auto bern = [](auto prob_fn) {
    return std::make_unique<DiscreteMechanism>(
        std::vector<Value>{Value::Int(0), Value::Int(1)},
        [prob_fn](const std::vector<Value>& ps) {
          double p = prob_fn(ps);
          return std::vector<double>{1.0 - p, p};
        });
  };
  EXPECT_TRUE(scm.AddAttribute("C", {},
                               bern([](const std::vector<Value>&) {
                                 return 0.5;
                               }))
                  .ok());
  EXPECT_TRUE(scm.AddAttribute("B", {{"C", ""}},
                               bern([](const std::vector<Value>& ps) {
                                 return ps[0].int_value() ? 0.8 : 0.2;
                               }))
                  .ok());
  EXPECT_TRUE(scm.AddAttribute("Y", {{"B", ""}, {"C", ""}},
                               bern([](const std::vector<Value>& ps) {
                                 bool b = ps[0].int_value();
                                 bool c = ps[1].int_value();
                                 if (b && c) return 0.9;
                                 if (b) return 0.6;
                                 if (c) return 0.3;
                                 return 0.1;
                               }))
                  .ok());
  return scm;
}

TEST(ScmTest, ParentsMustBeDeclaredFirst) {
  Scm scm;
  auto mech = std::make_unique<DeterministicMechanism>(
      [](const std::vector<Value>&) { return Value::Int(0); });
  EXPECT_EQ(scm.AddAttribute("Y", {{"X", ""}}, std::move(mech)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ScmTest, DuplicateAttributeRejected) {
  Scm scm = BinaryConfounderScm();
  auto mech = std::make_unique<DeterministicMechanism>(
      [](const std::vector<Value>&) { return Value::Int(0); });
  EXPECT_EQ(scm.AddAttribute("C", {}, std::move(mech)).code(),
            StatusCode::kAlreadyExists);
}

TEST(ScmTest, GraphReflectsParents) {
  Scm scm = BinaryConfounderScm();
  CausalGraph g = scm.Graph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.edges().size(), 3u);
  EXPECT_TRUE(SatisfiesBackdoor(g, "B", "Y", {"C"}));
}

TEST(ScmTest, SampleEntityMatchesMarginals) {
  Scm scm = BinaryConfounderScm();
  Rng rng(5);
  int c1 = 0, b1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Assignment a = scm.SampleEntity(rng).value();
    c1 += a.at("C").int_value();
    b1 += a.at("B").int_value();
  }
  EXPECT_NEAR(c1 / double(n), 0.5, 0.02);
  // P(B=1) = 0.5*0.8 + 0.5*0.2 = 0.5.
  EXPECT_NEAR(b1 / double(n), 0.5, 0.02);
}

TEST(ScmTest, InterventionalWorldsExact) {
  Scm scm = BinaryConfounderScm();
  // Observed entity: C=1, B=0, Y=0. Intervene B:=1.
  Assignment observed{{"C", Value::Int(1)},
                      {"B", Value::Int(0)},
                      {"Y", Value::Int(0)}};
  Assignment update{{"B", Value::Int(1)}};
  auto worlds = scm.InterventionalWorlds(observed, update).value();
  // Y is the only affected attribute: two worlds.
  ASSERT_EQ(worlds.size(), 2u);
  double total = 0, p_y1 = 0;
  for (const auto& [state, prob] : worlds) {
    EXPECT_TRUE(state.at("C").Equals(Value::Int(1)));  // held fixed
    EXPECT_TRUE(state.at("B").Equals(Value::Int(1)));  // intervened
    total += prob;
    if (state.at("Y").int_value() == 1) p_y1 += prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // do(B=1), C=1 -> P(Y=1) = 0.9.
  EXPECT_NEAR(p_y1, 0.9, 1e-12);
}

TEST(ScmTest, InterventionOnRootAffectsWholeChain) {
  Scm scm = BinaryConfounderScm();
  Assignment observed{{"C", Value::Int(0)},
                      {"B", Value::Int(0)},
                      {"Y", Value::Int(0)}};
  auto worlds =
      scm.InterventionalWorlds(observed, {{"C", Value::Int(1)}}).value();
  // B and Y both resample: 4 worlds.
  ASSERT_EQ(worlds.size(), 4u);
  double p_y1 = 0;
  for (const auto& [state, prob] : worlds) {
    if (state.at("Y").int_value() == 1) p_y1 += prob;
  }
  // P(Y=1 | do(C=1)) = 0.8*0.9 + 0.2*0.3 = 0.78.
  EXPECT_NEAR(p_y1, 0.78, 1e-12);
}

TEST(ScmTest, InterventionalMeanMatchesExact) {
  Scm scm = BinaryConfounderScm();
  Assignment observed{{"C", Value::Int(1)},
                      {"B", Value::Int(0)},
                      {"Y", Value::Int(0)}};
  Rng rng(7);
  double mean = scm.InterventionalMean(observed, {{"B", Value::Int(1)}}, "Y",
                                       20000, rng)
                    .value();
  EXPECT_NEAR(mean, 0.9, 0.01);
}

TEST(ScmTest, LinearGaussianSampling) {
  Scm scm;
  ASSERT_TRUE(scm.AddAttribute("X", {},
                               std::make_unique<LinearGaussianMechanism>(
                                   std::vector<double>{}, 2.0, 0.0))
                  .ok());
  ASSERT_TRUE(scm.AddAttribute("Y", {{"X", ""}},
                               std::make_unique<LinearGaussianMechanism>(
                                   std::vector<double>{3.0}, 1.0, 0.0))
                  .ok());
  Rng rng(1);
  Assignment a = scm.SampleEntity(rng).value();
  EXPECT_DOUBLE_EQ(a.at("X").double_value(), 2.0);
  EXPECT_DOUBLE_EQ(a.at("Y").double_value(), 7.0);  // 3*2+1
}

TEST(ScmTest, ExactEnumerationRejectsContinuous) {
  Scm scm;
  ASSERT_TRUE(scm.AddAttribute("X", {},
                               std::make_unique<LinearGaussianMechanism>(
                                   std::vector<double>{}, 0.0, 1.0))
                  .ok());
  ASSERT_TRUE(scm.AddAttribute("Y", {{"X", ""}},
                               std::make_unique<LinearGaussianMechanism>(
                                   std::vector<double>{1.0}, 0.0, 1.0))
                  .ok());
  Assignment observed{{"X", Value::Double(0)}, {"Y", Value::Double(0)}};
  EXPECT_EQ(scm.InterventionalWorlds(observed, {{"X", Value::Double(1)}})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// GroundScm possible-world enumeration
// ---------------------------------------------------------------------------

TEST(GroundScmTest, SingleTupleWorlds) {
  // One-relation database with the binary confounder model, one tuple.
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"C", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked(
      {Value::Int(0), Value::Int(1), Value::Int(0), Value::Int(0)});
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());

  Scm scm = BinaryConfounderScm();
  auto ground = GroundScm::Build(&scm, &db).value();
  auto worlds =
      ground
          .PostUpdateWorlds({{TupleId{"R", 0}, "B", Value::Int(1)}})
          .value();
  ASSERT_EQ(worlds.size(), 2u);
  double p_y1 = 0, total = 0;
  for (const auto& w : worlds) {
    const Table& table = *w.db.GetTable("R").value();
    total += w.prob;
    if (table.At(0, 3).int_value() == 1) p_y1 += w.prob;
    EXPECT_EQ(table.At(0, 2).int_value(), 1);  // B intervened everywhere
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(p_y1, 0.9, 1e-12);
}

TEST(GroundScmTest, UpdatePropagatesAcrossRelations) {
  // Product.Price in {0,1} affects Review.Rating in {0,1} via PID.
  Database db;
  Table product(Schema("Product",
                       {{"PID", ValueType::kInt, Mutability::kImmutable},
                        {"Price", ValueType::kInt, Mutability::kMutable}},
                       {"PID"}));
  product.AppendUnchecked({Value::Int(1), Value::Int(0)});
  Table review(Schema("Review",
                      {{"PID", ValueType::kInt, Mutability::kImmutable},
                       {"RID", ValueType::kInt, Mutability::kImmutable},
                       {"Rating", ValueType::kInt, Mutability::kMutable}},
                      {"PID", "RID"}));
  review.AppendUnchecked({Value::Int(1), Value::Int(1), Value::Int(1)});
  review.AppendUnchecked({Value::Int(1), Value::Int(2), Value::Int(1)});
  ASSERT_TRUE(db.AddTable(std::move(product)).ok());
  ASSERT_TRUE(db.AddTable(std::move(review)).ok());

  Scm scm;
  ASSERT_TRUE(scm.AddAttribute("Price", {},
                               std::make_unique<DiscreteMechanism>(
                                   std::vector<Value>{Value::Int(0),
                                                      Value::Int(1)},
                                   [](const std::vector<Value>&) {
                                     return std::vector<double>{0.5, 0.5};
                                   }))
                  .ok());
  // High price -> rating 1 w.p. 0.25; low price -> w.p. 0.75.
  ASSERT_TRUE(scm.AddAttribute("Rating", {{"Price", "PID"}},
                               std::make_unique<DiscreteMechanism>(
                                   std::vector<Value>{Value::Int(0),
                                                      Value::Int(1)},
                                   [](const std::vector<Value>& ps) {
                                     double p =
                                         ps[0].AsDouble().value() > 0.5
                                             ? 0.25
                                             : 0.75;
                                     return std::vector<double>{1 - p, p};
                                   }))
                  .ok());

  auto ground = GroundScm::Build(&scm, &db).value();
  auto worlds =
      ground
          .PostUpdateWorlds({{TupleId{"Product", 0}, "Price", Value::Int(1)}})
          .value();
  // Two reviews re-randomize: 4 worlds.
  ASSERT_EQ(worlds.size(), 4u);
  double expected_avg = 0;
  for (const auto& w : worlds) {
    const Table& r = *w.db.GetTable("Review").value();
    double avg =
        (r.At(0, 2).AsDouble().value() + r.At(1, 2).AsDouble().value()) / 2;
    expected_avg += avg * w.prob;
  }
  // E[rating] per review after do(Price=1) is 0.25.
  EXPECT_NEAR(expected_avg, 0.25, 1e-12);
}

TEST(GroundScmTest, UnaffectedTuplesKeepValues) {
  Database db;
  Table t(Schema("R",
                 {{"Id", ValueType::kInt, Mutability::kImmutable},
                  {"C", ValueType::kInt, Mutability::kMutable},
                  {"B", ValueType::kInt, Mutability::kMutable},
                  {"Y", ValueType::kInt, Mutability::kMutable}},
                 {"Id"}));
  t.AppendUnchecked(
      {Value::Int(0), Value::Int(1), Value::Int(0), Value::Int(0)});
  t.AppendUnchecked(
      {Value::Int(1), Value::Int(0), Value::Int(1), Value::Int(1)});
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  Scm scm = BinaryConfounderScm();
  auto ground = GroundScm::Build(&scm, &db).value();
  auto worlds =
      ground
          .PostUpdateWorlds({{TupleId{"R", 0}, "B", Value::Int(1)}})
          .value();
  for (const auto& w : worlds) {
    const Table& table = *w.db.GetTable("R").value();
    // Tuple 1 is untouched in every world (tuple independence).
    EXPECT_EQ(table.At(1, 1).int_value(), 0);
    EXPECT_EQ(table.At(1, 2).int_value(), 1);
    EXPECT_EQ(table.At(1, 3).int_value(), 1);
  }
}

}  // namespace
}  // namespace hyper::causal
