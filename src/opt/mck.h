#ifndef HYPER_OPT_MCK_H_
#define HYPER_OPT_MCK_H_

#include <vector>

#include "common/status.h"

namespace hyper::opt {

/// One group of a multiple-choice knapsack: pick at most one item.
struct MckGroup {
  std::vector<double> values;
  std::vector<double> costs;  // nonnegative
};

struct MckSolution {
  /// Chosen item index per group; -1 = none.
  std::vector<int> choice;
  double value = 0.0;
  double cost = 0.0;
  size_t nodes_explored = 0;
};

/// Exact multiple-choice knapsack:
///     maximize   sum of values of chosen items
///     subject to sum of costs <= budget, at most one item per group.
///
/// This is the special structure of the how-to IP (Equations 7-9) when only
/// the L1 budget couples the choice rows — solved by depth-first search
/// with an admissible bound (sum of best remaining group values), orders of
/// magnitude faster than general branch-and-bound on these instances.
/// `budget` < 0 means unconstrained (plain per-group argmax).
Result<MckSolution> SolveMck(const std::vector<MckGroup>& groups,
                             double budget);

}  // namespace hyper::opt

#endif  // HYPER_OPT_MCK_H_
