#ifndef HYPER_OPT_LP_H_
#define HYPER_OPT_LP_H_

#include <vector>

#include "common/status.h"

namespace hyper::opt {

/// A linear program in the form
///     maximize    c^T x
///     subject to  A x <= b,  x >= 0.
/// Coefficients and right-hand sides may be negative (the solver runs a
/// phase-1 when the all-slack basis is infeasible).
struct LpProblem {
  std::vector<double> objective;                 // c
  std::vector<std::vector<double>> constraints;  // rows of A
  std::vector<double> rhs;                       // b

  size_t num_vars() const { return objective.size(); }
  size_t num_rows() const { return constraints.size(); }

  /// Appends a row a^T x <= b.
  void AddRow(std::vector<double> row, double bound);
};

enum class LpStatus {
  kOptimal = 0,
  kInfeasible,
  kUnbounded,
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
};

/// Dense two-phase primal simplex with Bland's anti-cycling rule. Intended
/// for the small/medium IP relaxations the how-to engine emits (hundreds of
/// variables); not a sparse industrial solver.
Result<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace hyper::opt

#endif  // HYPER_OPT_LP_H_
