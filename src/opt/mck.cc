#include "opt/mck.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hyper::opt {

namespace {

struct MckState {
  const std::vector<MckGroup>* groups = nullptr;
  double budget = 0.0;
  bool budgeted = false;
  /// suffix_best[g] = sum over groups >= g of max(0, best value) — an
  /// admissible (budget-ignoring) bound on the remaining gain.
  std::vector<double> suffix_best;
  std::vector<int> choice;
  std::vector<int> best_choice;
  double best_value = 0.0;
  size_t nodes = 0;

  void Dfs(size_t g, double value, double cost) {
    ++nodes;
    if (g == groups->size()) {
      if (value > best_value) {
        best_value = value;
        best_choice = choice;
      }
      return;
    }
    if (value + suffix_best[g] <= best_value + 1e-15) return;  // bound

    const MckGroup& group = (*groups)[g];
    // Try items in descending value so good incumbents appear early. Ties
    // break by ascending index: std::sort is unstable, so ordering by value
    // alone would let equal-value candidates land in a platform/STL-dependent
    // order — and since the DFS keeps the first incumbent it finds (strict >
    // below), the chosen item for a tied group would differ across builds.
    // (value desc, index asc) makes the exploration order, and therefore the
    // solution, a pure function of the input.
    std::vector<size_t> order(group.values.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (group.values[a] != group.values[b]) {
        return group.values[a] > group.values[b];
      }
      return a < b;
    });
    for (size_t i : order) {
      if (budgeted && cost + group.costs[i] > budget + 1e-12) continue;
      if (group.values[i] <= 0.0) break;  // worse than skipping, and sorted
      choice[g] = static_cast<int>(i);
      Dfs(g + 1, value + group.values[i], cost + group.costs[i]);
    }
    choice[g] = -1;  // skip this group
    Dfs(g + 1, value, cost);
  }
};

}  // namespace

Result<MckSolution> SolveMck(const std::vector<MckGroup>& groups,
                             double budget) {
  for (const MckGroup& g : groups) {
    if (g.values.size() != g.costs.size()) {
      return Status::InvalidArgument("group value/cost arity mismatch");
    }
    for (double c : g.costs) {
      if (c < 0.0) {
        return Status::InvalidArgument("MCK costs must be nonnegative");
      }
    }
  }

  MckState state;
  state.groups = &groups;
  state.budgeted = budget >= 0.0;
  state.budget = budget;
  state.choice.assign(groups.size(), -1);
  state.best_choice = state.choice;
  state.suffix_best.assign(groups.size() + 1, 0.0);
  for (size_t g = groups.size(); g > 0; --g) {
    double best = 0.0;
    for (double v : groups[g - 1].values) best = std::max(best, v);
    state.suffix_best[g - 1] = state.suffix_best[g] + best;
  }

  state.Dfs(0, 0.0, 0.0);

  MckSolution sol;
  sol.choice = state.best_choice;
  sol.value = state.best_value;
  sol.nodes_explored = state.nodes;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (sol.choice[g] >= 0) sol.cost += groups[g].costs[sol.choice[g]];
  }
  return sol;
}

}  // namespace hyper::opt
