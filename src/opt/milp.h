#ifndef HYPER_OPT_MILP_H_
#define HYPER_OPT_MILP_H_

#include <vector>

#include "common/status.h"
#include "opt/lp.h"

namespace hyper::opt {

struct MilpSolution {
  bool feasible = false;
  std::vector<int> x;  // 0/1 assignment
  double objective = 0.0;
  size_t nodes_explored = 0;  // branch-and-bound tree size
};

/// Exact 0/1 integer programming by branch-and-bound on the simplex
/// relaxation:
///     maximize    c^T x
///     subject to  A x <= b,  x in {0,1}^n.
/// Branches on the most fractional relaxation variable; prunes by LP bound.
/// This is the "existing IP solver" role of §4.3 — exact on the how-to IPs
/// HypeR emits (Equations 7-9 plus Limit-derived rows).
Result<MilpSolution> SolveBinaryMilp(const LpProblem& problem);

}  // namespace hyper::opt

#endif  // HYPER_OPT_MILP_H_
