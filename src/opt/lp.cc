#include "opt/lp.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace hyper::opt {

namespace {

constexpr double kEps = 1e-9;
constexpr size_t kMaxIterations = 20000;

/// Dense tableau state: equality system A x = b with a current basis.
struct Tableau {
  std::vector<std::vector<double>> a;  // m x cols
  std::vector<double> b;               // m
  std::vector<size_t> basis;           // m basic column indices
  size_t cols = 0;

  void Pivot(size_t row, size_t col) {
    const double pivot = a[row][col];
    HYPER_DCHECK(std::fabs(pivot) > kEps);
    const double inv = 1.0 / pivot;
    for (size_t j = 0; j < cols; ++j) a[row][j] *= inv;
    b[row] *= inv;
    for (size_t i = 0; i < a.size(); ++i) {
      if (i == row) continue;
      const double factor = a[i][col];
      if (std::fabs(factor) < kEps) continue;
      for (size_t j = 0; j < cols; ++j) a[i][j] -= factor * a[row][j];
      b[i] -= factor * b[row];
    }
    basis[row] = col;
  }
};

/// Runs primal simplex maximizing costs^T x over columns < allowed_cols.
/// Returns kOptimal or kUnbounded.
Result<LpStatus> RunSimplex(Tableau* t, const std::vector<double>& costs,
                            size_t allowed_cols) {
  const size_t m = t->a.size();
  for (size_t iter = 0; iter < kMaxIterations; ++iter) {
    // Reduced costs: c_j - c_B^T B^{-1} A_j. The tableau is kept in
    // canonical form, so c_B^T B^{-1} A_j = sum over rows of
    // cost(basis[i]) * a[i][j].
    size_t entering = SIZE_MAX;
    for (size_t j = 0; j < allowed_cols; ++j) {
      double reduced = costs[j];
      for (size_t i = 0; i < m; ++i) {
        if (costs[t->basis[i]] != 0.0) {
          reduced -= costs[t->basis[i]] * t->a[i][j];
        }
      }
      if (reduced > kEps) {  // Bland: first improving column
        entering = j;
        break;
      }
    }
    if (entering == SIZE_MAX) return LpStatus::kOptimal;

    // Ratio test (Bland tie-break on the basic variable index).
    size_t leaving = SIZE_MAX;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (t->a[i][entering] > kEps) {
        const double ratio = t->b[i] / t->a[i][entering];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == SIZE_MAX || t->basis[i] < t->basis[leaving]))) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving == SIZE_MAX) return LpStatus::kUnbounded;
    t->Pivot(leaving, entering);
  }
  return Status::Internal("simplex iteration limit exceeded");
}

}  // namespace

void LpProblem::AddRow(std::vector<double> row, double bound) {
  HYPER_CHECK(row.size() == objective.size());
  constraints.push_back(std::move(row));
  rhs.push_back(bound);
}

Result<LpSolution> SolveLp(const LpProblem& problem) {
  const size_t n = problem.num_vars();
  const size_t m = problem.num_rows();
  for (const auto& row : problem.constraints) {
    if (row.size() != n) {
      return Status::InvalidArgument("constraint row arity mismatch");
    }
  }
  if (problem.rhs.size() != m) {
    return Status::InvalidArgument("rhs size mismatch");
  }

  if (m == 0) {
    // Unconstrained nonnegative maximization: either all costs <= 0 (x = 0)
    // or unbounded.
    LpSolution sol;
    sol.x.assign(n, 0.0);
    for (double c : problem.objective) {
      if (c > kEps) {
        sol.status = LpStatus::kUnbounded;
        return sol;
      }
    }
    sol.status = LpStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }

  // Equality system with slacks; rows with negative rhs are negated and get
  // artificial variables (their slack enters with coefficient -1).
  Tableau t;
  std::vector<bool> needs_artificial(m, false);
  t.a.assign(m, std::vector<double>(n + m, 0.0));
  t.b.resize(m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) t.a[i][j] = problem.constraints[i][j];
    t.a[i][n + i] = 1.0;
    t.b[i] = problem.rhs[i];
    if (t.b[i] < 0.0) {
      for (size_t j = 0; j < n + m; ++j) t.a[i][j] = -t.a[i][j];
      t.b[i] = -t.b[i];
      needs_artificial[i] = true;
    }
  }
  size_t num_artificial = 0;
  for (size_t i = 0; i < m; ++i) {
    if (needs_artificial[i]) ++num_artificial;
  }
  t.cols = n + m + num_artificial;
  t.basis.resize(m);
  {
    size_t next_art = n + m;
    for (size_t i = 0; i < m; ++i) {
      for (auto& row : t.a) row.resize(t.cols, 0.0);
      if (needs_artificial[i]) {
        t.a[i][next_art] = 1.0;
        t.basis[i] = next_art;
        ++next_art;
      } else {
        t.basis[i] = n + i;
      }
    }
  }

  // Phase 1: maximize -(sum of artificials) to 0.
  if (num_artificial > 0) {
    std::vector<double> phase1(t.cols, 0.0);
    for (size_t j = n + m; j < t.cols; ++j) phase1[j] = -1.0;
    HYPER_ASSIGN_OR_RETURN(LpStatus st, RunSimplex(&t, phase1, t.cols));
    if (st == LpStatus::kUnbounded) {
      return Status::Internal("phase-1 cannot be unbounded");
    }
    double infeasibility = 0.0;
    for (size_t i = 0; i < m; ++i) {
      if (t.basis[i] >= n + m) infeasibility += t.b[i];
    }
    if (infeasibility > 1e-7) {
      LpSolution sol;
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Pivot any artificial still basic (at level ~0) out of the basis.
    for (size_t i = 0; i < m; ++i) {
      if (t.basis[i] < n + m) continue;
      size_t col = SIZE_MAX;
      for (size_t j = 0; j < n + m; ++j) {
        if (std::fabs(t.a[i][j]) > kEps) {
          col = j;
          break;
        }
      }
      if (col != SIZE_MAX) t.Pivot(i, col);
      // Otherwise the row is redundant; the artificial stays basic at 0.
    }
  }

  // Phase 2: maximize the real objective over structural + slack columns.
  std::vector<double> costs(t.cols, 0.0);
  for (size_t j = 0; j < n; ++j) costs[j] = problem.objective[j];
  HYPER_ASSIGN_OR_RETURN(LpStatus st, RunSimplex(&t, costs, n + m));
  LpSolution sol;
  sol.status = st;
  if (st != LpStatus::kOptimal) return sol;

  sol.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) sol.x[t.basis[i]] = t.b[i];
  }
  sol.objective = 0.0;
  for (size_t j = 0; j < n; ++j) {
    sol.objective += problem.objective[j] * sol.x[j];
  }
  return sol;
}

}  // namespace hyper::opt
