#include "opt/milp.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hyper::opt {

namespace {

constexpr double kIntTol = 1e-6;

struct BnbState {
  const LpProblem* problem = nullptr;
  std::vector<int8_t> fixed;  // -1 free, 0, 1
  double best_objective = -std::numeric_limits<double>::infinity();
  std::vector<int> best_x;
  bool found = false;
  size_t nodes = 0;
};

/// Builds the LP for the current node: fixed variables are substituted out
/// (their columns removed, rhs adjusted) and x <= 1 rows added for the free
/// ones.
LpProblem ReducedLp(const BnbState& state, std::vector<size_t>* free_vars) {
  const LpProblem& p = *state.problem;
  const size_t n = p.num_vars();
  free_vars->clear();
  for (size_t j = 0; j < n; ++j) {
    if (state.fixed[j] < 0) free_vars->push_back(j);
  }
  LpProblem lp;
  lp.objective.reserve(free_vars->size());
  for (size_t j : *free_vars) lp.objective.push_back(p.objective[j]);
  for (size_t i = 0; i < p.num_rows(); ++i) {
    std::vector<double> row;
    row.reserve(free_vars->size());
    double bound = p.rhs[i];
    for (size_t j = 0; j < n; ++j) {
      if (state.fixed[j] >= 0) {
        bound -= p.constraints[i][j] * state.fixed[j];
      }
    }
    for (size_t j : *free_vars) row.push_back(p.constraints[i][j]);
    lp.AddRow(std::move(row), bound);
  }
  // Binary upper bounds for free variables.
  for (size_t k = 0; k < free_vars->size(); ++k) {
    std::vector<double> row(free_vars->size(), 0.0);
    row[k] = 1.0;
    lp.AddRow(std::move(row), 1.0);
  }
  return lp;
}

Status Branch(BnbState* state) {
  ++state->nodes;
  if (state->nodes > 200000) {
    return Status::Internal("branch-and-bound node limit exceeded");
  }

  std::vector<size_t> free_vars;
  LpProblem lp = ReducedLp(*state, &free_vars);
  HYPER_ASSIGN_OR_RETURN(LpSolution relax, SolveLp(lp));
  if (relax.status == LpStatus::kInfeasible) return Status::OK();
  if (relax.status == LpStatus::kUnbounded) {
    return Status::InvalidArgument(
        "binary MILP relaxation unbounded; check constraint rows");
  }

  double fixed_objective = 0.0;
  const LpProblem& p = *state->problem;
  for (size_t j = 0; j < p.num_vars(); ++j) {
    if (state->fixed[j] > 0) fixed_objective += p.objective[j];
  }
  const double bound = fixed_objective + relax.objective;
  if (state->found && bound <= state->best_objective + 1e-12) {
    return Status::OK();  // pruned
  }

  // Most fractional free variable.
  size_t branch_var = SIZE_MAX;
  double most_fractional = kIntTol;
  for (size_t k = 0; k < free_vars.size(); ++k) {
    const double frac = std::fabs(relax.x[k] - std::round(relax.x[k]));
    if (frac > most_fractional) {
      most_fractional = frac;
      branch_var = free_vars[k];
    }
  }

  if (branch_var == SIZE_MAX) {
    // Integral relaxation: candidate incumbent.
    std::vector<int> x(p.num_vars(), 0);
    for (size_t j = 0; j < p.num_vars(); ++j) {
      if (state->fixed[j] >= 0) x[j] = state->fixed[j];
    }
    for (size_t k = 0; k < free_vars.size(); ++k) {
      x[free_vars[k]] = static_cast<int>(std::round(relax.x[k]));
    }
    double objective = 0.0;
    for (size_t j = 0; j < p.num_vars(); ++j) {
      objective += p.objective[j] * x[j];
    }
    if (!state->found || objective > state->best_objective) {
      state->found = true;
      state->best_objective = objective;
      state->best_x = std::move(x);
    }
    return Status::OK();
  }

  // Branch: try x = 1 first (how-to objectives reward taking an update).
  state->fixed[branch_var] = 1;
  HYPER_RETURN_NOT_OK(Branch(state));
  state->fixed[branch_var] = 0;
  HYPER_RETURN_NOT_OK(Branch(state));
  state->fixed[branch_var] = -1;
  return Status::OK();
}

}  // namespace

Result<MilpSolution> SolveBinaryMilp(const LpProblem& problem) {
  BnbState state;
  state.problem = &problem;
  state.fixed.assign(problem.num_vars(), -1);
  HYPER_RETURN_NOT_OK(Branch(&state));
  MilpSolution sol;
  sol.feasible = state.found;
  sol.nodes_explored = state.nodes;
  if (state.found) {
    sol.x = std::move(state.best_x);
    sol.objective = state.best_objective;
  }
  return sol;
}

}  // namespace hyper::opt
