#ifndef HYPER_HOWTO_ENGINE_H_
#define HYPER_HOWTO_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/status.h"
#include "service/plan_cache.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "whatif/compile.h"
#include "whatif/engine.h"

namespace hyper::howto {

struct HowToOptions {
  /// Estimation options for the candidate what-if evaluations. Its
  /// `num_threads` is also the candidate-scoring thread budget: the
  /// (attribute, candidate) pairs are sharded across the shared worker pool
  /// and merged in candidate order, so scored deltas, chosen plans and every
  /// reported candidate value are bit-for-bit identical at any thread count
  /// (1 = fully sequential; 0 = hardware default).
  ///
  /// Resource governance also rides here: `whatif.budget` /
  /// `whatif.cancel_token` (or a pre-armed `whatif.exec_guard`) bound a
  /// whole how-to run — the engine arms one guard per candidate-scoring
  /// pass, shared by the baseline, every plan prepare and every candidate
  /// evaluation, and additionally checks it before each candidate
  /// ("howto.score"). Aborts surface as kDeadlineExceeded /
  /// kResourceExhausted / kCancelled and never leave partial cache entries.
  whatif::WhatIfOptions whatif = {};
  /// Buckets for discretizing continuous update ranges (§4.3; Figure 9
  /// sweeps this).
  size_t num_buckets = 8;
  /// Optional global L1 budget coupling the chosen updates across
  /// attributes (sum of per-attribute normalized L1 costs). Negative =
  /// disabled; per-attribute L1 limits from the query always apply.
  /// This is the engine-level extension that makes the IP a genuine
  /// multiple-choice knapsack instead of a separable argmax.
  double global_l1_budget = -1.0;
  /// Solve with the exact multiple-choice-knapsack specialisation when the
  /// IP has only choice rows + one budget row; false forces general
  /// branch-and-bound (ablation).
  bool prefer_mck = true;
  /// Share prepared what-if plans across the baseline and every candidate
  /// of a run: the relevant view is built and each (view, adjustment-set)
  /// estimator is trained once instead of once per candidate. Off = the
  /// legacy per-candidate path, kept for A/B benchmarking; answers are
  /// bit-for-bit identical either way.
  bool share_plans = true;
  /// Optional cross-run plan cache (the scenario service passes its own so
  /// repeated how-to runs reuse trained estimators). When null, plans are
  /// shared within a single run only. Not owned.
  service::PlanCache* plan_cache = nullptr;
  /// Data-snapshot scope for plan_cache keys (see WhatIfPlanKey); must
  /// change whenever the database content changes.
  std::string cache_scope;
  /// Optional staged-prepare wiring (see whatif::StageContext): when set,
  /// the baseline plan and every per-attribute candidate plan route through
  /// the same staged pipeline, so they share the ScopeStage (and, per
  /// attribute, everything above the QueryStage) instead of each
  /// re-materializing the view. Not owned; must outlive Run.
  const whatif::StageContext* stage_context = nullptr;
};

/// One candidate update for one attribute (an element of the S_B sets of
/// §4.3), with its estimated single-attribute what-if objective.
struct CandidateUpdate {
  whatif::UpdateSpec spec;
  double objective_value = 0.0;  // estimated what-if value if applied alone
  double delta = 0.0;            // objective_value - baseline_value
  double cost = 0.0;             // normalized L1 over S (0 for categorical)
  /// True when the candidate's what-if evaluation was skipped because its
  /// cost alone already exceeds the global L1 budget: costs are nonnegative,
  /// so no chosen set containing it can be feasible (the admissible-bound
  /// argument of SolveMck's suffix pruning, applied before evaluation).
  /// Pruned candidates carry delta = 0 / objective_value = baseline and are
  /// never selected. Pruning is independent of the thread count, so pruned
  /// runs are still bit-identical across 1..N scoring threads.
  bool pruned = false;
};

/// The chosen action for one HowToUpdate attribute.
struct AttributeChoice {
  std::string attribute;
  bool changed = false;
  whatif::UpdateSpec update;  // valid when changed
  double delta = 0.0;
  double cost = 0.0;

  std::string ToString() const;
};

struct HowToResult {
  std::vector<AttributeChoice> plan;
  double baseline_value = 0.0;   // objective with no update
  double objective_value = 0.0;  // baseline + sum of chosen deltas (linear phi)
  size_t candidates_evaluated = 0;
  /// Candidates skipped without a what-if evaluation because their cost
  /// alone busts the global L1 budget (see CandidateUpdate::pruned).
  size_t candidates_pruned = 0;
  bool used_mck = false;
  size_t solver_nodes = 0;
  double total_seconds = 0.0;
  /// Prepared plans served by the cross-run cache instead of being built.
  size_t plan_cache_hits = 0;
  /// Candidate evaluations that reused an already-trained pattern estimator
  /// (the shared-plan win: without sharing this is always 0 and every
  /// candidate retrains).
  size_t pattern_cache_hits = 0;
  /// Plan construction (view + encode + training matrix) charged to this
  /// run; ~0 when every plan came from the cache.
  double prepare_seconds = 0.0;
  /// Candidate evaluation time (includes lazy estimator training).
  double eval_seconds = 0.0;
  /// Estimator training actually incurred by this run.
  double train_seconds = 0.0;
  /// Full candidate sets, per HowToUpdate attribute (for benches/debugging).
  std::vector<std::vector<CandidateUpdate>> candidates;

  std::string PlanToString() const;
};

/// The HypeR how-to engine (§4): enumerates permissible bucketized updates
/// per attribute, scores each with a candidate what-if query (Definition 7),
/// and solves the resulting integer program (Equations 7-9) — by exact
/// multiple-choice knapsack when the structure allows, else by
/// branch-and-bound over the simplex relaxation.
class HowToEngine {
 public:
  HowToEngine(const Database* db, const causal::CausalGraph* graph,
              HowToOptions options = {});

  Result<HowToResult> Run(const sql::HowToStmt& stmt) const;
  Result<HowToResult> RunSql(const std::string& text) const;

  /// Preferential multi-objective optimization (§4.3, Example 11): solves
  /// the statements in order of priority; each solved objective is locked
  /// (its achieved delta becomes an equality constraint) before optimizing
  /// the next. All statements must share Use/When/HowToUpdate/Limit.
  Result<HowToResult> RunLexicographic(
      const std::vector<const sql::HowToStmt*>& stmts) const;

  /// The paper's alternate formulation (§4.3, footnote 3): minimize the
  /// total normalized-L1 update cost subject to the objective reaching at
  /// least `objective_target` (for ToMaximize statements; at most, for
  /// ToMinimize). Infeasible targets surface as FailedPrecondition.
  Result<HowToResult> RunMinCost(const sql::HowToStmt& stmt,
                                 double objective_target) const;

  /// Generates the candidate update set for each HowToUpdate attribute of
  /// `stmt` without scoring them (exposed for the Opt-HowTo baseline, which
  /// must search the same space).
  Result<std::vector<std::vector<whatif::UpdateSpec>>> EnumerateCandidates(
      const sql::HowToStmt& stmt) const;

  const HowToOptions& options() const { return options_; }

 private:
  struct ScoredCandidates;

  /// Scores every candidate with a single-attribute what-if evaluation,
  /// sharding the (attribute, candidate) pairs across the worker pool under
  /// the `whatif.num_threads` budget with an ordered deterministic merge.
  /// `prune_budget` >= 0 enables cost-infeasibility pruning against that
  /// global L1 budget (callers whose solve has no budget row — RunMinCost —
  /// pass -1, since every candidate stays selectable there).
  Result<ScoredCandidates> ScoreCandidates(const sql::HowToStmt& stmt,
                                           double prune_budget) const;

  const Database* db_;
  const causal::CausalGraph* graph_;  // nullable
  HowToOptions options_;
};

/// The baseline objective value: the what-if machinery run with an empty
/// update set (every tuple unaffected), i.e. the observational aggregate.
Result<double> BaselineObjective(const Database& db,
                                 const sql::HowToStmt& stmt);

/// Builds the candidate what-if statement of Definition 7: same Use / When /
/// For as the how-to statement, the given updates, and the ToMaximize /
/// ToMinimize aggregate as Output. Shared with the Opt-HowTo baseline so
/// both search exactly the same query space.
sql::WhatIfStmt MakeCandidateWhatIf(const sql::HowToStmt& howto,
                                    const std::vector<whatif::UpdateSpec>& updates);

}  // namespace hyper::howto

#endif  // HYPER_HOWTO_ENGINE_H_
