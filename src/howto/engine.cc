#include "howto/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <set>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "learn/discretizer.h"
#include "opt/mck.h"
#include "opt/milp.h"
#include "relational/compiled.h"
#include "relational/eval.h"
#include "sql/parser.h"

namespace hyper::howto {

using relational::Env;
using relational::EvalPredicate;
using sql::LimitItem;
using sql::LimitKind;
using whatif::UpdateSpec;

std::string AttributeChoice::ToString() const {
  if (!changed) return attribute + ": no change";
  switch (update.func) {
    case sql::UpdateFuncKind::kSet:
      return attribute + ": set to " + update.constant.ToString();
    case sql::UpdateFuncKind::kScale:
      return attribute + ": scale by " + update.constant.ToString();
    case sql::UpdateFuncKind::kShift:
      return attribute + ": shift by " + update.constant.ToString();
  }
  return attribute + ": ?";
}

std::string HowToResult::PlanToString() const {
  std::vector<std::string> parts;
  for (const AttributeChoice& c : plan) parts.push_back(c.ToString());
  return "{" + Join(parts, "; ") + "}";
}

sql::WhatIfStmt MakeCandidateWhatIf(const sql::HowToStmt& howto,
                                    const std::vector<UpdateSpec>& updates) {
  sql::WhatIfStmt stmt;
  stmt.use.view_name = howto.use.view_name;
  stmt.use.table = howto.use.table;
  if (howto.use.select != nullptr) {
    stmt.use.select = std::make_unique<sql::SelectStmt>();
    stmt.use.select->items.reserve(howto.use.select->items.size());
    for (const auto& item : howto.use.select->items) {
      sql::SelectItem copy;
      copy.expr = item.expr ? item.expr->Clone() : nullptr;
      copy.alias = item.alias;
      copy.agg = item.agg;
      stmt.use.select->items.push_back(std::move(copy));
    }
    stmt.use.select->from = howto.use.select->from;
    stmt.use.select->where =
        howto.use.select->where ? howto.use.select->where->Clone() : nullptr;
    for (const auto& g : howto.use.select->group_by) {
      stmt.use.select->group_by.push_back(g->Clone());
    }
  }
  stmt.when = howto.when ? howto.when->Clone() : nullptr;
  for (const UpdateSpec& u : updates) {
    sql::UpdateClause clause;
    clause.attribute = u.attribute;
    clause.func = u.func;
    clause.constant = u.constant;
    stmt.updates.push_back(std::move(clause));
  }
  stmt.output.agg = howto.objective_agg;
  stmt.output.inner =
      howto.objective_inner ? howto.objective_inner->Clone() : nullptr;
  stmt.for_pred = howto.for_pred ? howto.for_pred->Clone() : nullptr;
  return stmt;
}

namespace {

/// Replaces When by a never-true predicate so no tuple updates: the engine
/// then evaluates every tuple on its exact observational path.
sql::WhatIfStmt MakeBaselineWhatIf(const sql::HowToStmt& howto,
                                   const std::string& any_attribute,
                                   const Value& any_value) {
  UpdateSpec dummy;
  dummy.attribute = any_attribute;
  dummy.func = sql::UpdateFuncKind::kSet;
  dummy.constant = any_value;
  sql::WhatIfStmt stmt = MakeCandidateWhatIf(howto, {dummy});
  stmt.when = sql::MakeLiteral(Value::Bool(false));
  return stmt;
}

/// Rows of the view selected by `when` (all rows when null), evaluated with
/// a compiled predicate: column references resolve once, not per row.
Result<std::vector<size_t>> SelectWhenRows(const Table& view,
                                           const sql::Expr* when) {
  std::vector<size_t> rows;
  if (when == nullptr) {
    rows.resize(view.num_rows());
    for (size_t r = 0; r < view.num_rows(); ++r) rows[r] = r;
    return rows;
  }
  const std::vector<relational::ScopedTuple> scope{relational::ScopedTuple{
      view.schema().relation_name(), &view.schema()}};
  HYPER_ASSIGN_OR_RETURN(relational::CompiledExpr compiled,
                         relational::CompiledExpr::Compile(*when, scope));
  for (size_t r = 0; r < view.num_rows(); ++r) {
    const relational::BoundRow frame{&view.row(r), nullptr};
    HYPER_ASSIGN_OR_RETURN(bool sel, compiled.EvalRowBool(&frame));
    if (sel) rows.push_back(r);
  }
  return rows;
}

}  // namespace

Result<double> BaselineObjective(const Database& db,
                                 const sql::HowToStmt& stmt) {
  if (stmt.update_attributes.empty()) {
    return Status::InvalidArgument("HowToUpdate needs at least one attribute");
  }
  sql::WhatIfStmt baseline =
      MakeBaselineWhatIf(stmt, stmt.update_attributes[0], Value::Int(0));
  whatif::WhatIfOptions options;
  options.estimator = learn::EstimatorKind::kFrequency;
  whatif::WhatIfEngine engine(&db, nullptr, options);
  HYPER_ASSIGN_OR_RETURN(whatif::WhatIfResult result, engine.Run(baseline));
  return result.value;
}

HowToEngine::HowToEngine(const Database* db, const causal::CausalGraph* graph,
                         HowToOptions options)
    : db_(db), graph_(graph), options_(options) {}

Result<HowToResult> HowToEngine::RunSql(const std::string& text) const {
  HYPER_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(text));
  if (stmt.howto == nullptr) {
    return Status::InvalidArgument("expected a how-to statement");
  }
  return Run(*stmt.howto);
}

Result<std::vector<std::vector<UpdateSpec>>> HowToEngine::EnumerateCandidates(
    const sql::HowToStmt& stmt) const {
  if (stmt.update_attributes.empty()) {
    return Status::InvalidArgument("HowToUpdate needs at least one attribute");
  }
  // Materialize the view once to evaluate When and collect data ranges.
  HYPER_ASSIGN_OR_RETURN(
      whatif::ViewInfo view_info,
      whatif::BuildRelevantView(*db_, stmt.use, stmt.update_attributes[0]));
  const Table& view = *view_info.view;
  const Schema& vschema = view.schema();

  HYPER_ASSIGN_OR_RETURN(std::vector<size_t> s_rows,
                         SelectWhenRows(view, stmt.when.get()));
  if (s_rows.empty()) {
    return Status::InvalidArgument("When selects no tuples to update");
  }

  std::vector<std::vector<UpdateSpec>> out;
  for (const std::string& attr : stmt.update_attributes) {
    HYPER_ASSIGN_OR_RETURN(size_t col, vschema.IndexOf(attr));
    if (vschema.attribute(col).mutability == Mutability::kImmutable) {
      return Status::InvalidArgument("HowToUpdate attribute '" + attr +
                                     "' is immutable");
    }
    const bool is_string = vschema.attribute(col).type == ValueType::kString;

    // Collect this attribute's Limit items.
    std::vector<const LimitItem*> limits;
    for (const LimitItem& item : stmt.limits) {
      if (EqualsIgnoreCase(item.attribute, attr)) limits.push_back(&item);
    }

    // Pre-update values over S (range defaults and relative bounds).
    std::vector<double> pre_values;
    std::set<std::string> distinct_strings;
    for (size_t r : s_rows) {
      const Value& v = view.At(r, col);
      if (is_string) {
        if (!v.is_null()) distinct_strings.insert(v.string_value());
      } else {
        HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
        pre_values.push_back(d);
      }
    }

    // Candidate post-update values.
    std::vector<Value> raw_candidates;
    const LimitItem* in_set = nullptr;
    for (const LimitItem* item : limits) {
      if (item->kind == LimitKind::kInSet) in_set = item;
    }
    if (in_set != nullptr) {
      raw_candidates = in_set->values;
    } else if (is_string) {
      // No explicit set: all observed values of the whole view (capped).
      std::set<std::string> all;
      for (size_t r = 0; r < view.num_rows(); ++r) {
        const Value& v = view.At(r, col);
        if (!v.is_null()) all.insert(v.string_value());
        if (all.size() >= 64) break;
      }
      for (const std::string& s : all) {
        raw_candidates.push_back(Value::String(s));
      }
    } else {
      double lo = *std::min_element(pre_values.begin(), pre_values.end());
      double hi = *std::max_element(pre_values.begin(), pre_values.end());
      for (const LimitItem* item : limits) {
        if (item->kind != LimitKind::kAbsRange) continue;
        if (item->lo.has_value()) lo = std::max(lo, *item->lo);
        if (item->hi.has_value()) hi = std::min(hi, *item->hi);
      }
      if (lo <= hi &&
          vschema.attribute(col).type == ValueType::kInt) {
        // Integer attribute: candidates are the distinct observed values in
        // range (evenly subsampled when there are more than num_buckets).
        std::set<int64_t> distinct;
        for (size_t r = 0; r < view.num_rows(); ++r) {
          const Value& v = view.At(r, col);
          if (v.is_null()) continue;
          HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
          if (d >= lo && d <= hi) {
            distinct.insert(static_cast<int64_t>(std::llround(d)));
          }
        }
        std::vector<int64_t> values(distinct.begin(), distinct.end());
        if (values.size() > options_.num_buckets &&
            options_.num_buckets > 0) {
          std::vector<int64_t> sampled;
          const double stride = static_cast<double>(values.size()) /
                                static_cast<double>(options_.num_buckets);
          for (size_t k = 0; k < options_.num_buckets; ++k) {
            sampled.push_back(values[static_cast<size_t>(k * stride)]);
          }
          values = std::move(sampled);
        }
        for (int64_t v : values) raw_candidates.push_back(Value::Int(v));
      } else if (lo <= hi) {
        HYPER_ASSIGN_OR_RETURN(
            learn::EquiWidthDiscretizer disc,
            learn::EquiWidthDiscretizer::Create(lo, hi,
                                                options_.num_buckets));
        for (double rep : disc.Representatives()) {
          raw_candidates.push_back(Value::Double(rep));
        }
      }
    }

    // Filter by relative and L1 limits (for a Set-update, a per-tuple bound
    // must hold for every tuple of S).
    std::vector<UpdateSpec> specs;
    for (const Value& candidate : raw_candidates) {
      bool feasible = true;
      double cand_num = 0.0;
      const bool numeric = candidate.is_numeric();
      if (numeric) cand_num = candidate.AsDouble().value();

      for (const LimitItem* item : limits) {
        switch (item->kind) {
          case LimitKind::kAbsRange:
            if (!numeric) break;
            if (item->lo.has_value() && cand_num < *item->lo) feasible = false;
            if (item->hi.has_value() && cand_num > *item->hi) feasible = false;
            break;
          case LimitKind::kRelShift:
          case LimitKind::kRelScale: {
            if (!numeric) break;
            for (double pre : pre_values) {
              const double bound = item->kind == LimitKind::kRelShift
                                       ? pre + item->hi.value_or(0)
                                       : pre * item->hi.value_or(1);
              if (item->upper_is_bound ? cand_num > bound
                                       : cand_num < bound) {
                feasible = false;
                break;
              }
            }
            break;
          }
          case LimitKind::kL1: {
            if (!numeric) break;
            double total = 0.0;
            for (double pre : pre_values) total += std::fabs(cand_num - pre);
            if (total / static_cast<double>(pre_values.size()) >
                item->hi.value_or(0)) {
              feasible = false;
            }
            break;
          }
          case LimitKind::kInSet:
            break;  // candidate came from the set
        }
        if (!feasible) break;
      }
      if (!feasible) continue;

      UpdateSpec spec;
      spec.attribute = attr;
      spec.func = sql::UpdateFuncKind::kSet;
      spec.constant = candidate;
      specs.push_back(std::move(spec));
    }
    out.push_back(std::move(specs));
  }
  return out;
}

struct HowToEngine::ScoredCandidates {
  double baseline = 0.0;
  std::vector<std::vector<CandidateUpdate>> per_attribute;
  size_t evaluated = 0;
  size_t pruned = 0;
  size_t plan_cache_hits = 0;
  size_t pattern_cache_hits = 0;
  double prepare_seconds = 0.0;
  double eval_seconds = 0.0;
  double train_seconds = 0.0;
};

Result<HowToEngine::ScoredCandidates> HowToEngine::ScoreCandidates(
    const sql::HowToStmt& stmt, double prune_budget) const {
  ScoredCandidates scored;
  HYPER_ASSIGN_OR_RETURN(std::vector<std::vector<UpdateSpec>> candidates,
                         EnumerateCandidates(stmt));

  // Governance rides in the what-if options: arm one guard here (unless the
  // caller pre-armed one) and inject it, so the baseline, every plan prepare
  // and every candidate evaluation of this run share a single deadline and
  // one pair of meters instead of each arming their own.
  whatif::WhatIfOptions whatif_options = options_.whatif;
  const governance::ExecGuardPtr guard =
      whatif_options.exec_guard != nullptr
          ? whatif_options.exec_guard
          : governance::ExecGuard::Arm(whatif_options.budget,
                                       whatif_options.cancel_token);
  whatif_options.exec_guard = guard;

  whatif::WhatIfEngine engine(db_, graph_, whatif_options);

  // Prepared-plan sharing: one plan serves the baseline, and one plan per
  // HowToUpdate attribute serves every candidate of that attribute — the
  // relevant view is compiled and each (view, adjustment-set) estimator is
  // trained once, not once per candidate. Prepare ignores update constants,
  // so Evaluate(plan, {spec}) is bit-for-bit identical to a fresh
  // Run(MakeCandidateWhatIf(stmt, {spec})).
  const bool shared = options_.share_plans;
  // Staged pipeline (when the caller wired a StageContext): the baseline
  // and every per-attribute plan share the ScopeStage, and candidates of
  // one attribute share everything above the QueryStage.
  const whatif::StageContext* stage_ctx = options_.stage_context;
  auto prepare_shared = [&](const sql::WhatIfStmt& ws)
      -> Result<std::shared_ptr<const whatif::PreparedWhatIf>> {
    if (options_.plan_cache != nullptr) {
      bool hit = false;
      auto plan = options_.plan_cache->GetOrPrepare(
          service::WhatIfPlanKey(options_.cache_scope, ws, options_.whatif),
          [&] { return engine.Prepare(ws, stage_ctx); }, &hit);
      if (plan.ok()) {
        if (hit) {
          ++scored.plan_cache_hits;
        } else {
          scored.prepare_seconds += (*plan)->prepare_seconds();
        }
      }
      return plan;
    }
    auto plan = engine.Prepare(ws, stage_ctx);
    if (plan.ok()) scored.prepare_seconds += (*plan)->prepare_seconds();
    return plan;
  };
  auto record_eval = [&](const whatif::WhatIfResult& result) {
    scored.eval_seconds += result.eval_seconds;
    scored.train_seconds += result.train_seconds;
    scored.pattern_cache_hits += result.pattern_cache_hits;
  };
  // Baseline via the no-op what-if (every tuple on its exact path).
  {
    sql::WhatIfStmt baseline =
        MakeBaselineWhatIf(stmt, stmt.update_attributes[0],
                           candidates[0].empty() ? Value::Int(0)
                                                 : candidates[0][0].constant);
    bool ran = false;
    if (shared) {
      auto plan = prepare_shared(baseline);
      if (plan.ok()) {
        HYPER_ASSIGN_OR_RETURN(
            whatif::WhatIfResult result,
            engine.Evaluate(**plan, whatif::SpecsOfStatement(baseline)));
        scored.baseline = result.value;
        record_eval(result);
        ran = true;
      } else if (plan.status().code() != StatusCode::kUnimplemented) {
        return plan.status();
      }
    }
    if (!ran) {
      HYPER_ASSIGN_OR_RETURN(whatif::WhatIfResult result,
                             engine.Run(baseline));
      scored.baseline = result.value;
    }
  }

  // Per-tuple pre values for L1 costs.
  HYPER_ASSIGN_OR_RETURN(
      whatif::ViewInfo view_info,
      whatif::BuildRelevantView(*db_, stmt.use, stmt.update_attributes[0]));
  const Table& view = *view_info.view;
  const Schema& vschema = view.schema();
  HYPER_ASSIGN_OR_RETURN(std::vector<size_t> s_rows,
                         SelectWhenRows(view, stmt.when.get()));

  // Per-candidate L1 cost over S, with the per-row pre-value pass hoisted
  // out of the candidate loop: the O(|S|) view.At + AsDouble work runs once
  // per attribute, not once per (attribute, candidate). The per-candidate
  // summation still walks S in row order, so costs are bit-identical to the
  // un-hoisted loop.
  struct PreValue {
    bool numeric = false;
    double dbl = 0.0;
    const Value* value = nullptr;
  };
  scored.per_attribute.resize(candidates.size());
  for (size_t a = 0; a < candidates.size(); ++a) {
    HYPER_ASSIGN_OR_RETURN(
        size_t col, vschema.IndexOf(stmt.update_attributes[a]));
    std::vector<PreValue> pre(s_rows.size());
    for (size_t k = 0; k < s_rows.size(); ++k) {
      const Value& v = view.At(s_rows[k], col);
      pre[k].value = &v;
      pre[k].numeric = v.is_numeric();
      if (pre[k].numeric) pre[k].dbl = v.AsDouble().value();
    }
    scored.per_attribute[a].reserve(candidates[a].size());
    for (const UpdateSpec& spec : candidates[a]) {
      CandidateUpdate cu;
      cu.spec = spec;
      const bool cand_numeric = spec.constant.is_numeric();
      const double cand_dbl =
          cand_numeric ? spec.constant.AsDouble().value() : 0.0;
      // Normalized L1 cost over S (fraction-changed for categoricals).
      double total = 0.0;
      for (const PreValue& p : pre) {
        if (cand_numeric && p.numeric) {
          total += std::fabs(cand_dbl - p.dbl);
        } else if (!spec.constant.Equals(*p.value)) {
          total += 1.0;
        }
      }
      cu.cost = s_rows.empty() ? 0.0
                               : total / static_cast<double>(s_rows.size());
      // Cost-infeasibility pruning (the admissible-bound idea of SolveMck's
      // suffix_best, applied before evaluation): costs are nonnegative, so
      // a candidate whose own cost exceeds the global L1 budget can never
      // be part of a feasible chosen set — skip its what-if evaluation
      // entirely. Same budget epsilon as the MCK DFS, and a pure function
      // of (candidate, budget), so pruning never depends on thread count.
      if (prune_budget >= 0.0 && cu.cost > prune_budget + 1e-12) {
        cu.pruned = true;
        cu.objective_value = scored.baseline;
        cu.delta = 0.0;
        ++scored.pruned;
      }
      scored.per_attribute[a].push_back(std::move(cu));
    }
  }

  // Evaluate the surviving (attribute, candidate) pairs: one flat worklist
  // sharded across the worker pool under the whatif.num_threads budget,
  // results merged back in worklist order. Each parallel evaluation runs
  // its own block loop single-threaded (the pool is already busy with whole
  // candidates); Evaluate answers are invariant to the block-thread count,
  // so the merge is bit-identical to the sequential loop.
  struct WorkItem {
    size_t a = 0;
    size_t i = 0;
  };
  std::vector<WorkItem> work;
  for (size_t a = 0; a < candidates.size(); ++a) {
    for (size_t i = 0; i < candidates[a].size(); ++i) {
      if (!scored.per_attribute[a][i].pruned) work.push_back({a, i});
    }
  }

  // One prepared plan per attribute with surviving candidates, built up
  // front so the parallel evaluation below never prepares (the plan cache
  // single-flights concurrent runs racing on the same key). Prepared after
  // pruning: an attribute whose whole candidate set is cost-infeasible
  // skips plan construction and estimator training entirely.
  std::vector<std::shared_ptr<const whatif::PreparedWhatIf>> plans(
      candidates.size());
  std::vector<bool> prepare_attempted(candidates.size(), false);
  for (const WorkItem& w : work) {
    if (!shared || prepare_attempted[w.a]) continue;
    prepare_attempted[w.a] = true;
    sql::WhatIfStmt tmpl = MakeCandidateWhatIf(stmt, {candidates[w.a][w.i]});
    auto prepared = prepare_shared(tmpl);
    if (prepared.ok()) {
      plans[w.a] = *prepared;
    } else if (prepared.status().code() != StatusCode::kUnimplemented) {
      return prepared.status();
    }
  }

  auto eval_candidate = [&](const whatif::WhatIfEngine& eng,
                            const WorkItem& w) -> Result<whatif::WhatIfResult> {
    const UpdateSpec& spec = candidates[w.a][w.i];
    if (plans[w.a] != nullptr) return eng.Evaluate(*plans[w.a], {spec});
    return eng.Run(MakeCandidateWhatIf(stmt, {spec}));
  };

  const size_t threads = ThreadPool::ResolveBudget(options_.whatif.num_threads);
  std::vector<std::optional<whatif::WhatIfResult>> results(work.size());
  std::vector<Status> statuses(work.size());
  if (threads <= 1 || work.size() <= 1) {
    for (size_t w = 0; w < work.size(); ++w) {
      if (guard != nullptr) {
        Status gs = guard->Check("howto.score");
        if (!gs.ok()) {
          statuses[w] = std::move(gs);
          break;
        }
      }
      auto r = eval_candidate(engine, work[w]);
      if (!r.ok()) {
        statuses[w] = r.status();
        break;  // the merge below reports the first error; stop paying
      }
      results[w] = std::move(r).value();
    }
  } else {
    // The workers evaluate concurrently against the shared prepared plans;
    // pattern estimators train exactly once under the plan's internal lock
    // (see the PreparedWhatIf concurrency contract), and trained estimators
    // are pure functions of the plan, so every candidate's value is
    // bit-identical to the sequential path.
    whatif::WhatIfOptions worker_options = whatif_options;
    worker_options.num_threads = 1;
    whatif::WhatIfEngine worker_engine(db_, graph_, worker_options);
    std::atomic<bool> failed{false};
    ThreadPool::Shared().ParallelFor(
        work.size(),
        [&](size_t w) {
          // Once any candidate has failed the run's outcome is fixed, so
          // remaining items are skipped (status OK, result empty); the
          // error pass below never reaches a skipped slot without first
          // returning the genuine failure that tripped the flag.
          if (failed.load(std::memory_order_relaxed)) return;
          if (guard != nullptr) {
            Status gs = guard->Check("howto.score");
            if (!gs.ok()) {
              statuses[w] = std::move(gs);
              failed.store(true, std::memory_order_relaxed);
              return;
            }
          }
          auto r = eval_candidate(worker_engine, work[w]);
          if (r.ok()) {
            results[w] = std::move(r).value();
          } else {
            statuses[w] = r.status();
            failed.store(true, std::memory_order_relaxed);
          }
        },
        /*max_parallelism=*/threads);
  }

  // Errors first: statuses only ever hold genuine evaluation failures
  // (early-skipped items keep an OK status and an empty result, and exist
  // only when some item genuinely failed). Whether the call fails is
  // deterministic; with several concurrently-failing candidates, which
  // one's status is reported may depend on scheduling.
  for (size_t w = 0; w < work.size(); ++w) {
    HYPER_RETURN_NOT_OK(statuses[w]);
  }

  // Ordered deterministic merge (same pattern as the what-if block loop):
  // counters, timings and candidate fields fold in worklist order —
  // independent of which worker finished first.
  for (size_t w = 0; w < work.size(); ++w) {
    const whatif::WhatIfResult& result = *results[w];
    if (plans[work[w].a] != nullptr) record_eval(result);
    ++scored.evaluated;
    CandidateUpdate& cu = scored.per_attribute[work[w].a][work[w].i];
    cu.objective_value = result.value;
    cu.delta = result.value - scored.baseline;
  }
  return scored;
}

Result<HowToResult> HowToEngine::Run(const sql::HowToStmt& stmt) const {
  Stopwatch timer;

  // Soundness (§4.1): updated attributes must be causally unrelated.
  if (graph_ != nullptr && stmt.update_attributes.size() > 1) {
    for (const std::string& a : stmt.update_attributes) {
      if (!graph_->HasNode(a)) continue;
      const auto desc = graph_->Descendants(a);
      for (const std::string& b : stmt.update_attributes) {
        if (a != b && desc.count(b) > 0) {
          return Status::InvalidArgument(
              "HowToUpdate attributes must be causally unrelated: '" + a +
              "' affects '" + b + "'");
        }
      }
    }
  }

  // The Run solve couples choices through the global L1 budget (when set),
  // so cost-infeasible candidates can be pruned before evaluation.
  HYPER_ASSIGN_OR_RETURN(ScoredCandidates scored,
                         ScoreCandidates(stmt, options_.global_l1_budget));

  // IP objective: maximize sum of chosen deltas (negated for ToMinimize).
  const double sign = stmt.maximize ? 1.0 : -1.0;

  HowToResult result;
  result.baseline_value = scored.baseline;
  result.candidates_evaluated = scored.evaluated;
  result.candidates_pruned = scored.pruned;
  result.candidates = scored.per_attribute;
  result.plan_cache_hits = scored.plan_cache_hits;
  result.pattern_cache_hits = scored.pattern_cache_hits;
  result.prepare_seconds = scored.prepare_seconds;
  result.eval_seconds = scored.eval_seconds;
  result.train_seconds = scored.train_seconds;

  const bool mck_applicable = options_.prefer_mck;
  std::vector<int> choice(scored.per_attribute.size(), -1);
  if (mck_applicable) {
    std::vector<opt::MckGroup> groups(scored.per_attribute.size());
    for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
      for (const CandidateUpdate& cu : scored.per_attribute[a]) {
        groups[a].values.push_back(sign * cu.delta);
        groups[a].costs.push_back(cu.cost);
      }
    }
    HYPER_ASSIGN_OR_RETURN(opt::MckSolution sol,
                           opt::SolveMck(groups, options_.global_l1_budget));
    choice = sol.choice;
    result.used_mck = true;
    result.solver_nodes = sol.nodes_explored;
  } else {
    // General IP path (Equations 7-9).
    opt::LpProblem ip;
    std::vector<std::pair<size_t, size_t>> var_index;  // (attr, candidate)
    for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
      for (size_t i = 0; i < scored.per_attribute[a].size(); ++i) {
        ip.objective.push_back(sign * scored.per_attribute[a][i].delta);
        var_index.emplace_back(a, i);
      }
    }
    for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
      std::vector<double> row(ip.objective.size(), 0.0);
      for (size_t v = 0; v < var_index.size(); ++v) {
        if (var_index[v].first == a) row[v] = 1.0;
      }
      ip.AddRow(std::move(row), 1.0);  // Equation (8)
    }
    if (options_.global_l1_budget >= 0.0) {
      std::vector<double> row;
      for (const auto& [a, i] : var_index) {
        row.push_back(scored.per_attribute[a][i].cost);
      }
      ip.AddRow(std::move(row), options_.global_l1_budget);
    }
    HYPER_ASSIGN_OR_RETURN(opt::MilpSolution sol, opt::SolveBinaryMilp(ip));
    if (!sol.feasible) {
      return Status::Internal("how-to IP infeasible (unexpected)");
    }
    result.solver_nodes = sol.nodes_explored;
    for (size_t v = 0; v < var_index.size(); ++v) {
      if (sol.x[v] == 1) {
        choice[var_index[v].first] = static_cast<int>(var_index[v].second);
      }
    }
  }

  // Assemble the plan.
  result.objective_value = scored.baseline;
  for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
    AttributeChoice ac;
    ac.attribute = stmt.update_attributes[a];
    if (choice[a] >= 0) {
      const CandidateUpdate& cu = scored.per_attribute[a][choice[a]];
      ac.changed = true;
      ac.update = cu.spec;
      ac.delta = cu.delta;
      ac.cost = cu.cost;
      result.objective_value += cu.delta;
    }
    result.plan.push_back(std::move(ac));
  }
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<HowToResult> HowToEngine::RunMinCost(const sql::HowToStmt& stmt,
                                            double objective_target) const {
  Stopwatch timer;
  // No budget row in the min-cost IP: any candidate may be selected, so no
  // cost-based pruning applies here.
  HYPER_ASSIGN_OR_RETURN(ScoredCandidates scored,
                         ScoreCandidates(stmt, /*prune_budget=*/-1.0));
  const double sign = stmt.maximize ? 1.0 : -1.0;
  // Required signed improvement over the baseline.
  const double required = sign * (objective_target - scored.baseline);

  // IP: minimize sum(cost * delta-vars)  ==  maximize -cost, subject to
  // choice rows and  sum(signed_delta * delta-vars) >= required.
  opt::LpProblem ip;
  std::vector<std::pair<size_t, size_t>> var_index;
  for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
    for (size_t i = 0; i < scored.per_attribute[a].size(); ++i) {
      ip.objective.push_back(-scored.per_attribute[a][i].cost);
      var_index.emplace_back(a, i);
    }
  }
  for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
    std::vector<double> row(var_index.size(), 0.0);
    for (size_t v = 0; v < var_index.size(); ++v) {
      if (var_index[v].first == a) row[v] = 1.0;
    }
    ip.AddRow(std::move(row), 1.0);
  }
  {
    // -sum(signed_delta) <= -required.
    std::vector<double> row;
    for (const auto& [a, i] : var_index) {
      row.push_back(-sign * scored.per_attribute[a][i].delta);
    }
    ip.AddRow(std::move(row), -required);
  }
  HYPER_ASSIGN_OR_RETURN(opt::MilpSolution sol, opt::SolveBinaryMilp(ip));
  if (!sol.feasible) {
    return Status::FailedPrecondition(
        "no feasible plan reaches the objective target " +
        StrFormat("%g", objective_target) +
        " (baseline " + StrFormat("%g", scored.baseline) + ")");
  }

  HowToResult result;
  result.baseline_value = scored.baseline;
  result.candidates_evaluated = scored.evaluated;
  result.candidates_pruned = scored.pruned;
  result.candidates = scored.per_attribute;
  result.plan_cache_hits = scored.plan_cache_hits;
  result.pattern_cache_hits = scored.pattern_cache_hits;
  result.prepare_seconds = scored.prepare_seconds;
  result.eval_seconds = scored.eval_seconds;
  result.train_seconds = scored.train_seconds;
  result.solver_nodes = sol.nodes_explored;
  result.objective_value = scored.baseline;
  std::vector<int> choice(scored.per_attribute.size(), -1);
  for (size_t v = 0; v < var_index.size(); ++v) {
    if (sol.x[v] == 1) {
      choice[var_index[v].first] = static_cast<int>(var_index[v].second);
    }
  }
  for (size_t a = 0; a < scored.per_attribute.size(); ++a) {
    AttributeChoice ac;
    ac.attribute = stmt.update_attributes[a];
    if (choice[a] >= 0) {
      const CandidateUpdate& cu = scored.per_attribute[a][choice[a]];
      ac.changed = true;
      ac.update = cu.spec;
      ac.delta = cu.delta;
      ac.cost = cu.cost;
      result.objective_value += cu.delta;
    }
    result.plan.push_back(std::move(ac));
  }
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

Result<HowToResult> HowToEngine::RunLexicographic(
    const std::vector<const sql::HowToStmt*>& stmts) const {
  if (stmts.empty()) {
    return Status::InvalidArgument("need at least one objective");
  }
  // Budget pruning is sound only when every objective scores candidates
  // over one Use/When (the documented contract): different Whens give each
  // objective its own S, hence its own costs — a candidate pruned (delta
  // zeroed) under one objective's costs could still be selectable under
  // another's budget row, corrupting the lock rows below. Statements that
  // stray from the contract keep the pre-pruning behavior: every candidate
  // is evaluated.
  bool shared_scope = true;
  auto when_text = [](const sql::HowToStmt* s) {
    return s->when != nullptr ? s->when->ToString() : std::string();
  };
  for (const sql::HowToStmt* s : stmts) {
    if (s->update_attributes != stmts[0]->update_attributes) {
      return Status::InvalidArgument(
          "lexicographic objectives must share the HowToUpdate list");
    }
    if (s->use.ToString() != stmts[0]->use.ToString() ||
        when_text(s) != when_text(stmts[0])) {
      shared_scope = false;
    }
  }
  const double lex_prune_budget =
      shared_scope ? options_.global_l1_budget : -1.0;

  // Score every objective over the shared candidate space. Each solve below
  // carries the global-L1 budget row, so cost-infeasible candidates prune
  // exactly as in Run (identically across objectives: the cost depends only
  // on the candidate and the shared Use/When, never on the objective).
  std::vector<ScoredCandidates> scored;
  for (const sql::HowToStmt* s : stmts) {
    HYPER_ASSIGN_OR_RETURN(ScoredCandidates sc,
                           ScoreCandidates(*s, lex_prune_budget));
    scored.push_back(std::move(sc));
  }
  // Candidate sets must align (same Limit structure).
  for (size_t k = 1; k < scored.size(); ++k) {
    if (scored[k].per_attribute.size() != scored[0].per_attribute.size()) {
      return Status::InvalidArgument("objectives disagree on candidates");
    }
    for (size_t a = 0; a < scored[0].per_attribute.size(); ++a) {
      if (scored[k].per_attribute[a].size() !=
          scored[0].per_attribute[a].size()) {
        return Status::InvalidArgument("objectives disagree on candidates");
      }
    }
  }

  std::vector<std::pair<size_t, size_t>> var_index;
  for (size_t a = 0; a < scored[0].per_attribute.size(); ++a) {
    for (size_t i = 0; i < scored[0].per_attribute[a].size(); ++i) {
      var_index.emplace_back(a, i);
    }
  }

  std::vector<double> locked_values;  // achieved signed deltas per objective
  std::vector<int> final_x;
  for (size_t k = 0; k < stmts.size(); ++k) {
    const double sign = stmts[k]->maximize ? 1.0 : -1.0;
    opt::LpProblem ip;
    for (const auto& [a, i] : var_index) {
      ip.objective.push_back(sign * scored[k].per_attribute[a][i].delta);
    }
    for (size_t a = 0; a < scored[0].per_attribute.size(); ++a) {
      std::vector<double> row(var_index.size(), 0.0);
      for (size_t v = 0; v < var_index.size(); ++v) {
        if (var_index[v].first == a) row[v] = 1.0;
      }
      ip.AddRow(std::move(row), 1.0);
    }
    if (options_.global_l1_budget >= 0.0) {
      std::vector<double> row;
      for (const auto& [a, i] : var_index) {
        row.push_back(scored[k].per_attribute[a][i].cost);
      }
      ip.AddRow(std::move(row), options_.global_l1_budget);
    }
    // Lock previously solved objectives to their achieved values
    // (Example 11): equality as a <= / >= pair with a small tolerance.
    for (size_t j = 0; j < locked_values.size(); ++j) {
      const double sj = stmts[j]->maximize ? 1.0 : -1.0;
      std::vector<double> row;
      for (const auto& [a, i] : var_index) {
        row.push_back(sj * scored[j].per_attribute[a][i].delta);
      }
      const double eps = 1e-6 * (1.0 + std::fabs(locked_values[j]));
      std::vector<double> neg(row.size());
      for (size_t v = 0; v < row.size(); ++v) neg[v] = -row[v];
      ip.AddRow(std::move(row), locked_values[j] + eps);
      ip.AddRow(std::move(neg), -(locked_values[j] - eps));
    }
    HYPER_ASSIGN_OR_RETURN(opt::MilpSolution sol, opt::SolveBinaryMilp(ip));
    if (!sol.feasible) {
      return Status::Internal("lexicographic IP infeasible");
    }
    locked_values.push_back(sol.objective);
    final_x = sol.x;
  }

  // Assemble from the last solve; report the primary objective's metrics.
  HowToResult result;
  result.baseline_value = scored[0].baseline;
  result.candidates_evaluated = 0;
  for (const ScoredCandidates& sc : scored) {
    result.candidates_evaluated += sc.evaluated;
    result.candidates_pruned += sc.pruned;
    result.plan_cache_hits += sc.plan_cache_hits;
    result.pattern_cache_hits += sc.pattern_cache_hits;
    result.prepare_seconds += sc.prepare_seconds;
    result.eval_seconds += sc.eval_seconds;
    result.train_seconds += sc.train_seconds;
  }
  result.candidates = scored[0].per_attribute;
  result.objective_value = scored[0].baseline;
  std::vector<int> choice(scored[0].per_attribute.size(), -1);
  for (size_t v = 0; v < var_index.size(); ++v) {
    if (final_x[v] == 1) {
      choice[var_index[v].first] = static_cast<int>(var_index[v].second);
    }
  }
  for (size_t a = 0; a < scored[0].per_attribute.size(); ++a) {
    AttributeChoice ac;
    ac.attribute = stmts[0]->update_attributes[a];
    if (choice[a] >= 0) {
      const CandidateUpdate& cu = scored[0].per_attribute[a][choice[a]];
      ac.changed = true;
      ac.update = cu.spec;
      ac.delta = cu.delta;
      ac.cost = cu.cost;
      result.objective_value += cu.delta;
    }
    result.plan.push_back(std::move(ac));
  }
  return result;
}

}  // namespace hyper::howto
