#include "baselines/opt_howto.h"

#include "baselines/ground_truth.h"
#include "common/stopwatch.h"

namespace hyper::baselines {

Result<OptHowToResult> OptHowTo(
    const sql::HowToStmt& stmt,
    const std::vector<std::vector<whatif::UpdateSpec>>& candidates,
    const JointScorer& scorer) {
  Stopwatch timer;
  if (candidates.size() != stmt.update_attributes.size()) {
    return Status::InvalidArgument(
        "candidate groups must match HowToUpdate attributes");
  }

  OptHowToResult result;
  const double sign = stmt.maximize ? 1.0 : -1.0;
  double best_signed = 0.0;
  std::vector<int> best_choice(candidates.size(), -1);
  bool have_best = false;

  // Odometer over the cross product; index -1 per attribute = no change.
  std::vector<int> choice(candidates.size(), -1);
  while (true) {
    std::vector<std::optional<whatif::UpdateSpec>> assignment;
    assignment.reserve(candidates.size());
    for (size_t a = 0; a < candidates.size(); ++a) {
      if (choice[a] >= 0) {
        assignment.emplace_back(candidates[a][choice[a]]);
      } else {
        assignment.emplace_back(std::nullopt);
      }
    }
    HYPER_ASSIGN_OR_RETURN(double value, scorer(assignment));
    ++result.combinations_evaluated;
    if (!have_best || sign * value > best_signed) {
      have_best = true;
      best_signed = sign * value;
      best_choice = choice;
      result.objective_value = value;
    }

    // Advance the odometer.
    size_t a = 0;
    while (a < candidates.size()) {
      ++choice[a];
      if (choice[a] < static_cast<int>(candidates[a].size())) break;
      choice[a] = -1;
      ++a;
    }
    if (a == candidates.size()) break;  // wrapped around
  }

  for (size_t a = 0; a < candidates.size(); ++a) {
    howto::AttributeChoice ac;
    ac.attribute = stmt.update_attributes[a];
    if (best_choice[a] >= 0) {
      ac.changed = true;
      ac.update = candidates[a][best_choice[a]];
    }
    result.plan.push_back(std::move(ac));
  }
  result.total_seconds = timer.ElapsedSeconds();
  return result;
}

JointScorer MakeEngineScorer(const Database* db,
                             const causal::CausalGraph* graph,
                             const whatif::WhatIfOptions& options,
                             const sql::HowToStmt* stmt) {
  return [db, graph, options, stmt](
             const std::vector<std::optional<whatif::UpdateSpec>>& assignment)
             -> Result<double> {
    std::vector<whatif::UpdateSpec> updates;
    for (const auto& u : assignment) {
      if (u.has_value()) updates.push_back(*u);
    }
    if (updates.empty()) {
      return howto::BaselineObjective(*db, *stmt);
    }
    sql::WhatIfStmt whatif_stmt = howto::MakeCandidateWhatIf(*stmt, updates);
    whatif::WhatIfEngine engine(db, graph, options);
    HYPER_ASSIGN_OR_RETURN(whatif::WhatIfResult result,
                           engine.Run(whatif_stmt));
    return result.value;
  };
}

JointScorer MakeGroundTruthScorer(const Database* db, const causal::Scm* scm,
                                  const sql::HowToStmt* stmt) {
  return [db, scm, stmt](
             const std::vector<std::optional<whatif::UpdateSpec>>& assignment)
             -> Result<double> {
    std::vector<whatif::UpdateSpec> updates;
    for (const auto& u : assignment) {
      if (u.has_value()) updates.push_back(*u);
    }
    if (updates.empty()) {
      return howto::BaselineObjective(*db, *stmt);
    }
    sql::WhatIfStmt whatif_stmt = howto::MakeCandidateWhatIf(*stmt, updates);
    return GroundTruthWhatIf(*db, *scm, whatif_stmt);
  };
}

}  // namespace hyper::baselines
