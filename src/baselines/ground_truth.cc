#include "baselines/ground_truth.h"

#include "relational/eval.h"
#include "whatif/compile.h"

namespace hyper::baselines {

using relational::Env;
using relational::EvalExpr;
using relational::EvalPredicate;
using sql::AggKind;

Result<double> GroundTruthWhatIf(const Database& db, const causal::Scm& scm,
                                 const sql::WhatIfStmt& stmt) {
  HYPER_ASSIGN_OR_RETURN(whatif::CompiledWhatIf q,
                         whatif::CompileWhatIf(db, stmt));
  const Table& view = *q.view_info->view;
  const Schema& vschema = view.schema();
  const size_t n = view.num_rows();

  // Columns that participate in the SCM (the rest ride along unchanged).
  std::vector<std::pair<std::string, size_t>> scm_columns;
  for (const std::string& attr : scm.attributes()) {
    if (vschema.Contains(attr)) {
      scm_columns.emplace_back(attr, vschema.IndexOf(attr).value());
    }
  }

  std::vector<size_t> update_cols;
  for (const whatif::UpdateSpec& u : q.updates) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, vschema.IndexOf(u.attribute));
    update_cols.push_back(idx);
  }

  double numerator = 0.0;
  double denominator = 0.0;
  for (size_t r = 0; r < n; ++r) {
    bool selected = true;
    if (q.when != nullptr) {
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r));
      HYPER_ASSIGN_OR_RETURN(selected, EvalPredicate(*q.when, env));
    }

    // Per-world evaluation helper shared by both branches.
    auto evaluate_world = [&](const Row& post_row, double prob) -> Status {
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r), &post_row);
      if (q.for_pred != nullptr) {
        HYPER_ASSIGN_OR_RETURN(bool qualifies,
                               EvalPredicate(*q.for_pred, env));
        if (!qualifies) return Status::OK();
      }
      denominator += prob;
      if (q.output_value != nullptr) {
        HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(*q.output_value, env));
        HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
        numerator += prob * d;
      } else {
        numerator += prob;  // Count
      }
      return Status::OK();
    };

    if (!selected) {
      // Unaffected tuple: one deterministic world.
      HYPER_RETURN_NOT_OK(evaluate_world(view.row(r), 1.0));
      continue;
    }

    // Build the observed assignment over SCM attributes and intervene.
    causal::Assignment observed;
    for (const auto& [attr, col] : scm_columns) {
      observed.emplace(attr, view.At(r, col));
    }
    causal::Assignment interventions;
    for (size_t j = 0; j < q.updates.size(); ++j) {
      HYPER_ASSIGN_OR_RETURN(Value post,
                             q.updates[j].Apply(view.At(r, update_cols[j])));
      interventions.emplace(q.updates[j].attribute, std::move(post));
    }
    HYPER_ASSIGN_OR_RETURN(auto worlds,
                           scm.InterventionalWorlds(observed, interventions));
    for (const auto& [assignment, prob] : worlds) {
      Row post_row = view.row(r);
      for (const auto& [attr, col] : scm_columns) {
        post_row[col] = assignment.at(attr);
      }
      HYPER_RETURN_NOT_OK(evaluate_world(post_row, prob));
    }
  }

  switch (q.output_agg) {
    case AggKind::kCount:
    case AggKind::kSum:
      return numerator;
    case AggKind::kAvg:
      if (denominator <= 0.0) {
        return Status::InvalidArgument("Avg over an empty qualifying set");
      }
      return numerator / denominator;
    default:
      return Status::InvalidArgument("unsupported aggregate");
  }
}

}  // namespace hyper::baselines
