#ifndef HYPER_BASELINES_OPT_HOWTO_H_
#define HYPER_BASELINES_OPT_HOWTO_H_

#include <functional>
#include <optional>
#include <vector>

#include "causal/scm.h"
#include "common/status.h"
#include "howto/engine.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "whatif/engine.h"

namespace hyper::baselines {

/// Scores one joint update assignment (one optional update per HowToUpdate
/// attribute; nullopt = leave unchanged). Returns the objective value.
using JointScorer = std::function<Result<double>(
    const std::vector<std::optional<whatif::UpdateSpec>>&)>;

struct OptHowToResult {
  std::vector<howto::AttributeChoice> plan;
  double objective_value = 0.0;
  size_t combinations_evaluated = 0;
  double total_seconds = 0.0;
};

/// The Opt-HowTo baseline (§5.1): exhaustively enumerates the cross product
/// of candidate updates (including "no change" per attribute) and scores
/// every combination — exponential in the number of HowToUpdate attributes,
/// versus HypeR's IP which is linear in the number of candidates (§5.5,
/// Figure 11b).
Result<OptHowToResult> OptHowTo(
    const sql::HowToStmt& stmt,
    const std::vector<std::vector<whatif::UpdateSpec>>& candidates,
    const JointScorer& scorer);

/// Scorer that runs the HypeR what-if engine on the joint update (used for
/// the runtime comparisons; same estimator as the engine under test).
JointScorer MakeEngineScorer(const Database* db,
                             const causal::CausalGraph* graph,
                             const whatif::WhatIfOptions& options,
                             const sql::HowToStmt* stmt);

/// Scorer that evaluates the joint update exactly against the generating
/// SCM (used for the solution-quality comparisons: Figures 9/10, §5.4).
JointScorer MakeGroundTruthScorer(const Database* db, const causal::Scm* scm,
                                  const sql::HowToStmt* stmt);

}  // namespace hyper::baselines

#endif  // HYPER_BASELINES_OPT_HOWTO_H_
