#include "causal/augment.h"

#include <unordered_map>
#include <unordered_set>

namespace hyper::causal {

Result<CausalGraph> AugmentGraph(
    const CausalGraph& graph, const std::vector<AggregateNode>& aggregates) {
  std::unordered_map<std::string, std::string> aggregate_of_source;
  std::unordered_set<std::string> fresh_names;
  for (const AggregateNode& agg : aggregates) {
    if (!graph.HasNode(agg.source)) {
      return Status::NotFound("aggregate source '" + agg.source +
                              "' not in causal graph");
    }
    if (graph.HasNode(agg.name) || fresh_names.count(agg.name) > 0) {
      return Status::AlreadyExists("aggregate name '" + agg.name +
                                   "' collides with an existing node");
    }
    if (!aggregate_of_source.emplace(agg.source, agg.name).second) {
      return Status::InvalidArgument("source '" + agg.source +
                                     "' aggregated twice");
    }
    fresh_names.insert(agg.name);
  }

  CausalGraph out;
  for (const std::string& node : graph.nodes()) out.AddNode(node);
  for (const AggregateNode& agg : aggregates) out.AddNode(agg.name);

  for (const CausalEdge& edge : graph.edges()) {
    auto it = aggregate_of_source.find(edge.from);
    if (it != aggregate_of_source.end()) {
      // Downstream influence of an aggregated attribute is rerouted through
      // the aggregate node; the aggregate-to-child edge is view-level
      // (same row), so it carries no link attribute.
      out.AddEdge(it->second, edge.to);
    } else {
      out.AddEdge(edge.from, edge.to, edge.link_attribute);
    }
  }
  // The grounded instances feed the aggregate.
  for (const AggregateNode& agg : aggregates) {
    out.AddEdge(agg.source, agg.name);
  }

  HYPER_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace hyper::causal
