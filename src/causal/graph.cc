#include "causal/graph.h"

#include <algorithm>
#include <array>
#include <deque>

#include "common/logging.h"

namespace hyper::causal {

void CausalGraph::AddNode(const std::string& attribute) {
  if (index_.count(attribute) > 0) return;
  index_.emplace(attribute, nodes_.size());
  nodes_.push_back(attribute);
  children_.emplace_back();
  parents_.emplace_back();
}

void CausalGraph::AddEdge(const std::string& from, const std::string& to,
                          const std::string& link_attribute) {
  AddNode(from);
  AddNode(to);
  edges_.push_back(CausalEdge{from, to, link_attribute});
  children_[IndexOf(from)].push_back(IndexOf(to));
  parents_[IndexOf(to)].push_back(IndexOf(from));
}

size_t CausalGraph::IndexOf(const std::string& attribute) const {
  auto it = index_.find(attribute);
  HYPER_CHECK(it != index_.end());
  return it->second;
}

std::vector<std::string> CausalGraph::Parents(
    const std::string& attribute) const {
  std::vector<std::string> out;
  auto it = index_.find(attribute);
  if (it == index_.end()) return out;
  for (size_t p : parents_[it->second]) out.push_back(nodes_[p]);
  return out;
}

std::vector<std::string> CausalGraph::Children(
    const std::string& attribute) const {
  std::vector<std::string> out;
  auto it = index_.find(attribute);
  if (it == index_.end()) return out;
  for (size_t c : children_[it->second]) out.push_back(nodes_[c]);
  return out;
}

namespace {

void Reach(const std::vector<std::vector<size_t>>& adjacency, size_t start,
           std::vector<bool>* seen) {
  std::deque<size_t> frontier{start};
  while (!frontier.empty()) {
    size_t node = frontier.front();
    frontier.pop_front();
    for (size_t next : adjacency[node]) {
      if (!(*seen)[next]) {
        (*seen)[next] = true;
        frontier.push_back(next);
      }
    }
  }
}

}  // namespace

std::unordered_set<std::string> CausalGraph::Descendants(
    const std::string& attr) const {
  std::unordered_set<std::string> out;
  auto it = index_.find(attr);
  if (it == index_.end()) return out;
  std::vector<bool> seen(nodes_.size(), false);
  Reach(children_, it->second, &seen);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (seen[i] && i != it->second) out.insert(nodes_[i]);
  }
  return out;
}

std::unordered_set<std::string> CausalGraph::Ancestors(
    const std::string& attr) const {
  std::unordered_set<std::string> out;
  auto it = index_.find(attr);
  if (it == index_.end()) return out;
  std::vector<bool> seen(nodes_.size(), false);
  Reach(parents_, it->second, &seen);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (seen[i] && i != it->second) out.insert(nodes_[i]);
  }
  return out;
}

Status CausalGraph::Validate() const {
  return TopologicalOrder().ok()
             ? Status::OK()
             : Status::InvalidArgument("causal graph contains a cycle");
}

Result<std::vector<std::string>> CausalGraph::TopologicalOrder() const {
  // Kahn's algorithm.
  std::vector<size_t> in_degree(nodes_.size(), 0);
  for (size_t n = 0; n < nodes_.size(); ++n) {
    in_degree[n] = parents_[n].size();
  }
  std::deque<size_t> ready;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (in_degree[n] == 0) ready.push_back(n);
  }
  std::vector<std::string> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    size_t node = ready.front();
    ready.pop_front();
    order.push_back(nodes_[node]);
    for (size_t child : children_[node]) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("causal graph contains a cycle");
  }
  return order;
}

bool CausalGraph::HasCrossTupleEdges() const {
  for (const CausalEdge& e : edges_) {
    if (e.is_cross_tuple()) return true;
  }
  return false;
}

std::string CausalGraph::ToString() const {
  std::string out = "CausalGraph{";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += edges_[i].from + "->" + edges_[i].to;
    if (edges_[i].is_cross_tuple()) {
      out += "[" + edges_[i].link_attribute + "]";
    }
  }
  out += "}";
  return out;
}

std::string CausalGraph::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=LR;\n  node [shape=ellipse, fontsize=11];\n";
  for (const std::string& node : nodes_) {
    out += "  \"" + node + "\";\n";
  }
  for (const CausalEdge& e : edges_) {
    out += "  \"" + e.from + "\" -> \"" + e.to + "\"";
    if (e.is_cross_tuple()) {
      out += " [style=dashed, label=\"" + e.link_attribute + "\"]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// d-separation (reachability / Bayes-ball algorithm)
// ---------------------------------------------------------------------------

namespace {

/// Internal view of the graph as index-based adjacency used by DSeparatedIdx.
struct IndexedGraph {
  std::vector<std::vector<size_t>> children;
  std::vector<std::vector<size_t>> parents;
};

IndexedGraph BuildIndexed(const CausalGraph& graph,
                          const std::unordered_set<std::string>& drop_out_of) {
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < graph.nodes().size(); ++i) {
    index.emplace(graph.nodes()[i], i);
  }
  IndexedGraph ig;
  ig.children.resize(graph.num_nodes());
  ig.parents.resize(graph.num_nodes());
  for (const CausalEdge& e : graph.edges()) {
    if (drop_out_of.count(e.from) > 0) continue;  // remove outgoing edges
    size_t u = index.at(e.from);
    size_t v = index.at(e.to);
    ig.children[u].push_back(v);
    ig.parents[v].push_back(u);
  }
  return ig;
}

bool DSeparatedImpl(const CausalGraph& graph, const IndexedGraph& ig,
                    const std::string& x, const std::string& y,
                    const std::unordered_set<std::string>& z) {
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < graph.nodes().size(); ++i) {
    index.emplace(graph.nodes()[i], i);
  }
  auto itx = index.find(x);
  auto ity = index.find(y);
  if (itx == index.end() || ity == index.end()) return true;
  const size_t src = itx->second;
  const size_t dst = ity->second;

  const size_t n = graph.num_nodes();
  std::vector<bool> in_z(n, false);
  for (const std::string& name : z) {
    auto it = index.find(name);
    if (it != index.end()) in_z[it->second] = true;
  }
  if (in_z[src] || in_z[dst]) {
    // Conditioning on an endpoint blocks everything trivially; callers
    // should not do this, treat as separated.
    return true;
  }

  // Ancestors of Z (needed for collider activation).
  std::vector<bool> anc_z(n, false);
  {
    std::deque<size_t> frontier;
    for (size_t i = 0; i < n; ++i) {
      if (in_z[i]) {
        anc_z[i] = true;
        frontier.push_back(i);
      }
    }
    while (!frontier.empty()) {
      size_t node = frontier.front();
      frontier.pop_front();
      for (size_t p : ig.parents[node]) {
        if (!anc_z[p]) {
          anc_z[p] = true;
          frontier.push_back(p);
        }
      }
    }
  }

  // Reachability over (node, direction) states. Direction encodes how we
  // arrived: kUp = via an edge child->parent (moving against arrows),
  // kDown = via an edge parent->child (moving along arrows).
  enum Direction { kUp = 0, kDown = 1 };
  std::vector<std::array<bool, 2>> visited(n, {false, false});
  std::deque<std::pair<size_t, Direction>> frontier;
  frontier.emplace_back(src, kUp);  // leaving the source in any direction
  visited[src][kUp] = true;

  while (!frontier.empty()) {
    auto [node, dir] = frontier.front();
    frontier.pop_front();
    if (node == dst) return false;  // active path found

    if (dir == kUp) {
      // Arrived against an arrow (or at the source): if not conditioned on,
      // may continue up to parents and down to children.
      if (!in_z[node]) {
        for (size_t p : ig.parents[node]) {
          if (!visited[p][kUp]) {
            visited[p][kUp] = true;
            frontier.emplace_back(p, kUp);
          }
        }
        for (size_t c : ig.children[node]) {
          if (!visited[c][kDown]) {
            visited[c][kDown] = true;
            frontier.emplace_back(c, kDown);
          }
        }
      }
    } else {
      // Arrived along an arrow: chain continues to children unless blocked;
      // collider opens toward parents iff node is an ancestor of Z (or in Z).
      if (!in_z[node]) {
        for (size_t c : ig.children[node]) {
          if (!visited[c][kDown]) {
            visited[c][kDown] = true;
            frontier.emplace_back(c, kDown);
          }
        }
      }
      if (anc_z[node]) {
        for (size_t p : ig.parents[node]) {
          if (!visited[p][kUp]) {
            visited[p][kUp] = true;
            frontier.emplace_back(p, kUp);
          }
        }
      }
    }
  }
  return true;
}

}  // namespace

bool DSeparated(const CausalGraph& graph, const std::string& x,
                const std::string& y,
                const std::unordered_set<std::string>& z) {
  IndexedGraph ig = BuildIndexed(graph, /*drop_out_of=*/{});
  return DSeparatedImpl(graph, ig, x, y, z);
}

bool SatisfiesBackdoor(const CausalGraph& graph, const std::string& b,
                       const std::string& y,
                       const std::unordered_set<std::string>& c) {
  // Condition (i): no member of C is a descendant of b or of y.
  const auto desc_b = graph.Descendants(b);
  const auto desc_y = graph.Descendants(y);
  for (const std::string& node : c) {
    if (node == b || node == y) return false;
    if (desc_b.count(node) > 0 || desc_y.count(node) > 0) return false;
  }
  // Condition (ii): with edges out of b removed, C d-separates b from y.
  IndexedGraph ig = BuildIndexed(graph, /*drop_out_of=*/{b});
  return DSeparatedImpl(graph, ig, b, y, c);
}

Result<std::unordered_set<std::string>> MinimalBackdoorSet(
    const CausalGraph& graph, const std::string& b, const std::string& y) {
  if (!graph.HasNode(b) || !graph.HasNode(y)) {
    return Status::NotFound("treatment or outcome attribute not in graph");
  }
  const auto desc_b = graph.Descendants(b);
  const auto desc_y = graph.Descendants(y);
  std::unordered_set<std::string> candidate;
  for (const std::string& node : graph.nodes()) {
    if (node == b || node == y) continue;
    if (desc_b.count(node) > 0 || desc_y.count(node) > 0) continue;
    candidate.insert(node);
  }
  if (!SatisfiesBackdoor(graph, b, y, candidate)) {
    return Status::NotFound(
        "no observed backdoor set exists for the given treatment/outcome");
  }
  // Greedy minimization in deterministic (node list) order.
  for (const std::string& node : graph.nodes()) {
    if (candidate.count(node) == 0) continue;
    candidate.erase(node);
    if (!SatisfiesBackdoor(graph, b, y, candidate)) {
      candidate.insert(node);  // needed, keep it
    }
  }
  return candidate;
}

}  // namespace hyper::causal
