#include "causal/ground.h"

#include <deque>

#include "common/logging.h"
#include "common/strings.h"

namespace hyper::causal {

namespace {

std::string NodeKey(const std::string& relation, size_t tid,
                    const std::string& attr) {
  return relation + "#" + std::to_string(tid) + "#" + attr;
}

std::string TupleKey(const TupleId& t) {
  return t.relation + "#" + std::to_string(t.tid);
}

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Groups tuple indices of one relation by the value of `attr`.
Result<std::unordered_map<Value, std::vector<size_t>, ValueHash>>
GroupByAttribute(const Table& table, const std::string& attr) {
  HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(attr));
  std::unordered_map<Value, std::vector<size_t>, ValueHash> groups;
  for (size_t t = 0; t < table.num_rows(); ++t) {
    groups[table.At(t, idx)].push_back(t);
  }
  return groups;
}

/// Finds the relation of `attr` restricted to relations that actually exist.
Result<std::string> RelationOf(const Database& db, const std::string& attr) {
  return db.RelationOfAttribute(attr);
}

}  // namespace

Result<GroundCausalGraph> GroundCausalGraph::Build(const CausalGraph& graph,
                                                   const Database& db) {
  HYPER_RETURN_NOT_OK(graph.Validate());
  GroundCausalGraph out;

  // Create ground nodes for every graph attribute of every tuple.
  std::unordered_map<std::string, std::string> relation_of;
  for (const std::string& attr : graph.nodes()) {
    HYPER_ASSIGN_OR_RETURN(std::string rel, RelationOf(db, attr));
    relation_of.emplace(attr, rel);
    const Table& table = *db.GetTable(rel).value();
    for (size_t t = 0; t < table.num_rows(); ++t) {
      out.node_index_.emplace(NodeKey(rel, t, attr), out.nodes_.size());
      out.nodes_.push_back(GroundNode{TupleId{rel, t}, attr});
    }
  }
  out.parents_.resize(out.nodes_.size());
  out.children_.resize(out.nodes_.size());

  auto add_edge = [&](size_t from, size_t to) {
    out.edges_.emplace_back(from, to);
    out.children_[from].push_back(to);
    out.parents_[to].push_back(from);
  };

  for (const CausalEdge& edge : graph.edges()) {
    const std::string& from_rel = relation_of.at(edge.from);
    const std::string& to_rel = relation_of.at(edge.to);
    const Table& from_table = *db.GetTable(from_rel).value();
    const Table& to_table = *db.GetTable(to_rel).value();

    if (!edge.is_cross_tuple()) {
      if (from_rel != to_rel) {
        return Status::InvalidArgument(
            "intra-tuple causal edge " + edge.from + "->" + edge.to +
            " spans relations '" + from_rel + "' and '" + to_rel +
            "'; give it a link attribute (e.g. the shared key)");
      }
      for (size_t t = 0; t < from_table.num_rows(); ++t) {
        add_edge(out.node_index_.at(NodeKey(from_rel, t, edge.from)),
                 out.node_index_.at(NodeKey(to_rel, t, edge.to)));
      }
      continue;
    }

    // Cross-tuple (or cross-relation) edge: pair tuples agreeing on the link
    // attribute. Same-relation pairs exclude the identical tuple — the solid
    // intra-tuple edge covers that case.
    HYPER_ASSIGN_OR_RETURN(auto from_groups,
                           GroupByAttribute(from_table, edge.link_attribute));
    HYPER_ASSIGN_OR_RETURN(auto to_groups,
                           GroupByAttribute(to_table, edge.link_attribute));
    for (const auto& [value, from_tids] : from_groups) {
      auto it = to_groups.find(value);
      if (it == to_groups.end()) continue;
      for (size_t ft : from_tids) {
        for (size_t tt : it->second) {
          if (from_rel == to_rel && ft == tt) continue;
          add_edge(out.node_index_.at(NodeKey(from_rel, ft, edge.from)),
                   out.node_index_.at(NodeKey(to_rel, tt, edge.to)));
        }
      }
    }
  }

  // Undirected connected components for tuple-independence queries.
  out.component_.assign(out.nodes_.size(), SIZE_MAX);
  size_t next_component = 0;
  for (size_t start = 0; start < out.nodes_.size(); ++start) {
    if (out.component_[start] != SIZE_MAX) continue;
    std::deque<size_t> frontier{start};
    out.component_[start] = next_component;
    while (!frontier.empty()) {
      size_t node = frontier.front();
      frontier.pop_front();
      for (size_t next : out.children_[node]) {
        if (out.component_[next] == SIZE_MAX) {
          out.component_[next] = next_component;
          frontier.push_back(next);
        }
      }
      for (size_t next : out.parents_[node]) {
        if (out.component_[next] == SIZE_MAX) {
          out.component_[next] = next_component;
          frontier.push_back(next);
        }
      }
    }
    ++next_component;
  }
  return out;
}

Result<size_t> GroundCausalGraph::NodeIndex(const TupleId& tuple,
                                            const std::string& attr) const {
  auto it = node_index_.find(NodeKey(tuple.relation, tuple.tid, attr));
  if (it == node_index_.end()) {
    return Status::NotFound("no ground node for " + tuple.relation + "[" +
                            std::to_string(tuple.tid) + "]." + attr);
  }
  return it->second;
}

bool GroundCausalGraph::TuplesIndependent(const TupleId& a,
                                          const TupleId& b) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!(nodes_[i].tuple == a)) continue;
    for (size_t j = 0; j < nodes_.size(); ++j) {
      if (!(nodes_[j].tuple == b)) continue;
      if (component_[i] == component_[j]) return false;
    }
  }
  return true;
}

Result<TupleComponents> TupleComponents::Build(const CausalGraph& graph,
                                               const Database& db) {
  HYPER_RETURN_NOT_OK(graph.Validate());
  TupleComponents out;

  // Index all tuples of relations that carry causal attributes (relations
  // outside the model form singleton blocks and are indexed too).
  std::vector<TupleId> tuples;
  for (const std::string& rel : db.TableNames()) {
    const Table& table = *db.GetTable(rel).value();
    for (size_t t = 0; t < table.num_rows(); ++t) {
      out.tuple_index_.emplace(TupleKey(TupleId{rel, t}), tuples.size());
      tuples.push_back(TupleId{rel, t});
    }
  }

  UnionFind uf(tuples.size());

  // For every edge that relates different tuples, union the tuples that
  // agree on the link attribute. A per-(attribute, value) representative
  // keeps this linear: every matching tuple unions with the representative
  // instead of with every other member.
  std::unordered_map<std::string, std::string> relation_of;
  for (const std::string& attr : graph.nodes()) {
    HYPER_ASSIGN_OR_RETURN(std::string rel, RelationOf(db, attr));
    relation_of.emplace(attr, rel);
  }

  for (const CausalEdge& edge : graph.edges()) {
    const std::string& from_rel = relation_of.at(edge.from);
    const std::string& to_rel = relation_of.at(edge.to);
    if (!edge.is_cross_tuple()) {
      if (from_rel != to_rel) {
        return Status::InvalidArgument(
            "intra-tuple causal edge spans relations; give it a link "
            "attribute");
      }
      continue;  // same tuple: nothing to union
    }
    std::unordered_map<Value, size_t, ValueHash> representative;
    for (const std::string& rel : {from_rel, to_rel}) {
      const Table& table = *db.GetTable(rel).value();
      auto attr_idx = table.schema().IndexOf(edge.link_attribute);
      if (!attr_idx.ok()) {
        return Status::InvalidArgument(
            "link attribute '" + edge.link_attribute +
            "' missing from relation '" + rel + "'");
      }
      for (size_t t = 0; t < table.num_rows(); ++t) {
        const Value& v = table.At(t, *attr_idx);
        const size_t tuple_idx =
            out.tuple_index_.at(TupleKey(TupleId{rel, t}));
        auto [it, inserted] = representative.emplace(v, tuple_idx);
        if (!inserted) uf.Union(tuple_idx, it->second);
      }
      if (from_rel == to_rel) break;  // one pass when both ends share a table
    }
  }

  // Dense block ids by first occurrence.
  out.block_of_.resize(tuples.size());
  std::unordered_map<size_t, size_t> root_to_block;
  for (size_t i = 0; i < tuples.size(); ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] = root_to_block.emplace(root, out.blocks_.size());
    if (inserted) out.blocks_.emplace_back();
    out.block_of_[i] = it->second;
    out.blocks_[it->second].push_back(tuples[i]);
  }
  out.num_blocks_ = out.blocks_.size();
  return out;
}

Result<size_t> TupleComponents::BlockOf(const TupleId& tuple) const {
  auto it = tuple_index_.find(TupleKey(tuple));
  if (it == tuple_index_.end()) {
    return Status::NotFound("tuple not indexed: " + tuple.relation + "[" +
                            std::to_string(tuple.tid) + "]");
  }
  return block_of_[it->second];
}

}  // namespace hyper::causal
