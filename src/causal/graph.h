#ifndef HYPER_CAUSAL_GRAPH_H_
#define HYPER_CAUSAL_GRAPH_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace hyper::causal {

/// How a causal edge grounds out over tuples (paper §2.2, Figure 2/3):
///   - an empty `link_attribute` means the edge connects attributes of the
///     *same tuple* (solid edges in Figure 2), or of tuples in two relations
///     related 1:1;
///   - a non-empty `link_attribute` L grounds the edge between every pair of
///     tuples that agree on L — e.g. Product.Price -> Review.Rating linked by
///     PID (a product's price affects its own reviews), or the dashed
///     cross-tuple Price -> Rating edge linked by Category (Asus prices
///     affect Vaio ratings within the Laptop market).
struct CausalEdge {
  std::string from;
  std::string to;
  std::string link_attribute;  // empty = same tuple

  bool is_cross_tuple() const { return !link_attribute.empty(); }
};

/// Attribute-level causal DAG of a probabilistic relational causal model.
///
/// Nodes are attribute names (the paper assumes non-key attribute names are
/// unambiguous across relations, §2). The DAG must be acyclic; Validate()
/// checks this and topological order is cached for traversals.
class CausalGraph {
 public:
  CausalGraph() = default;

  /// Adds a node; idempotent.
  void AddNode(const std::string& attribute);

  /// Adds an edge (creating endpoints as needed).
  void AddEdge(const std::string& from, const std::string& to,
               const std::string& link_attribute = "");

  bool HasNode(const std::string& attribute) const {
    return index_.count(attribute) > 0;
  }
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }

  /// Direct parents / children of an attribute (empty when unknown).
  std::vector<std::string> Parents(const std::string& attribute) const;
  std::vector<std::string> Children(const std::string& attribute) const;

  /// Transitive closures; the start node is not included.
  std::unordered_set<std::string> Descendants(const std::string& attr) const;
  std::unordered_set<std::string> Ancestors(const std::string& attr) const;

  /// Checks acyclicity. All public algorithms assume Validate() passed.
  Status Validate() const;

  /// Nodes in a topological order (parents before children).
  /// Requires an acyclic graph.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// True when every edge is intra-tuple (no dashed edges): each tuple is
  /// then causally independent of every other, so blocks are single tuples
  /// (plus key-linked tuples from other relations).
  bool HasCrossTupleEdges() const;

  std::string ToString() const;

  /// Graphviz DOT rendering: solid edges for intra-tuple dependencies,
  /// dashed labeled edges for cross-tuple links (matching the paper's
  /// Figure 2 styling). Paste into `dot -Tpng` for documentation/debugging.
  std::string ToDot(const std::string& graph_name = "causal") const;

 private:
  size_t IndexOf(const std::string& attribute) const;

  std::vector<std::string> nodes_;
  std::vector<CausalEdge> edges_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<size_t>> children_;  // adjacency by node index
  std::vector<std::vector<size_t>> parents_;
};

/// d-separation test: is `x` d-separated from `y` given conditioning set `z`
/// in `graph`? Implemented with the reachability ("Bayes ball") algorithm;
/// runs in O(V + E).
bool DSeparated(const CausalGraph& graph, const std::string& x,
                const std::string& y,
                const std::unordered_set<std::string>& z);

/// Backdoor criterion (paper §3.3 / §A.2): `c` satisfies the backdoor
/// criterion w.r.t. treatment `b` and outcome `y` iff (i) no member of `c`
/// is a descendant of `b` or `y`, and (ii) `c` blocks every path between
/// `b` and `y` that enters `b` through an incoming edge (checked by removing
/// the edges out of `b` and testing d-separation).
bool SatisfiesBackdoor(const CausalGraph& graph, const std::string& b,
                       const std::string& y,
                       const std::unordered_set<std::string>& c);

/// Greedy minimal backdoor set (paper §A.2 "Computation of blocking set C"):
/// start from all non-descendants of {b, y} (excluding b, y), verify the
/// criterion, then drop one node at a time while the criterion still holds.
/// Returns NotFound if even the full candidate set fails (latent confounding
/// cannot happen here since all attributes are observed, but the treatment
/// may be disconnected — then the empty set is returned).
Result<std::unordered_set<std::string>> MinimalBackdoorSet(
    const CausalGraph& graph, const std::string& b, const std::string& y);

}  // namespace hyper::causal

#endif  // HYPER_CAUSAL_GRAPH_H_
