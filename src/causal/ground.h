#ifndef HYPER_CAUSAL_GROUND_H_
#define HYPER_CAUSAL_GROUND_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "causal/graph.h"
#include "common/status.h"
#include "storage/database.h"

namespace hyper::causal {

/// Identifies one tuple of the database.
struct TupleId {
  std::string relation;
  size_t tid = 0;

  bool operator==(const TupleId& other) const {
    return tid == other.tid && relation == other.relation;
  }
};

struct TupleIdHash {
  size_t operator()(const TupleId& t) const {
    return std::hash<std::string>()(t.relation) * 1000003u ^ t.tid;
  }
};

/// A node of the ground causal graph: attribute A of tuple t (the paper's
/// ground variables A[t], §2.2).
struct GroundNode {
  TupleId tuple;
  std::string attribute;
};

/// Explicit ground causal graph (Figure 3). Materialized only for small
/// databases — tests, the exact possible-world oracle, and debugging; block
/// decomposition of large databases uses TupleComponents below, which never
/// builds ground edges.
class GroundCausalGraph {
 public:
  /// Grounds `graph` over `db`. Each intra-tuple edge produces one edge per
  /// tuple of the relation holding both attributes (or per key-linked tuple
  /// pair when the endpoints live in different relations); each cross-tuple
  /// edge with link attribute L produces one edge per ordered pair of
  /// distinct tuples agreeing on L.
  static Result<GroundCausalGraph> Build(const CausalGraph& graph,
                                         const Database& db);

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<GroundNode>& nodes() const { return nodes_; }
  const std::vector<std::pair<size_t, size_t>>& edges() const {
    return edges_;
  }

  /// Node index lookup; errors when (tuple, attribute) is not a ground node.
  Result<size_t> NodeIndex(const TupleId& tuple,
                           const std::string& attribute) const;

  /// Parents / children of a ground node, as node indices.
  const std::vector<size_t>& ParentsOf(size_t node) const {
    return parents_[node];
  }
  const std::vector<size_t>& ChildrenOf(size_t node) const {
    return children_[node];
  }

  /// True when no path connects any attribute of `a` to any attribute of `b`
  /// in either direction (the paper's tuple-independence, §3.3).
  bool TuplesIndependent(const TupleId& a, const TupleId& b) const;

 private:
  std::vector<GroundNode> nodes_;
  std::vector<std::pair<size_t, size_t>> edges_;
  std::vector<std::vector<size_t>> parents_;
  std::vector<std::vector<size_t>> children_;
  std::unordered_map<std::string, size_t> node_index_;  // "rel#tid#attr"
  // Undirected connected component id per node (paths ignore direction for
  // tuple independence).
  std::vector<size_t> component_;
};

/// Scalable block decomposition (paper §3.3): assigns every tuple of `db` to
/// a block such that tuples in different blocks are independent under
/// `graph`. Runs in O(#tuples · #edges) with union-find and never grounds
/// edges: tuples that agree on the link attribute of any cross-tuple (or
/// cross-relation) edge are unioned through a per-value representative.
///
/// Returns block ids, dense in [0, num_blocks), keyed by tuple.
class TupleComponents {
 public:
  static Result<TupleComponents> Build(const CausalGraph& graph,
                                       const Database& db);

  size_t num_blocks() const { return num_blocks_; }
  Result<size_t> BlockOf(const TupleId& tuple) const;

  /// Tuples of each block, grouped: block id -> members.
  const std::vector<std::vector<TupleId>>& blocks() const { return blocks_; }

 private:
  std::unordered_map<std::string, size_t> tuple_index_;  // "rel#tid"
  std::vector<size_t> block_of_;
  std::vector<std::vector<TupleId>> blocks_;
  size_t num_blocks_ = 0;
};

}  // namespace hyper::causal

#endif  // HYPER_CAUSAL_GROUND_H_
