#ifndef HYPER_CAUSAL_SCM_H_
#define HYPER_CAUSAL_SCM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "causal/graph.h"
#include "causal/ground.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/database.h"

namespace hyper::causal {

/// A (partial) assignment of attribute values; ordered map for determinism.
using Assignment = std::map<std::string, Value>;

/// A structural mechanism: the conditional distribution of one attribute
/// given its (summarized) parents. The paper's structural equations with
/// unobserved noise (§2.2) reduce, for query evaluation, to the conditional
/// distributions Pr(A | psi(Pa(A))); mechanisms model exactly that.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// True when Distribution() is available (finite outcome set).
  virtual bool is_discrete() const = 0;

  /// The full conditional distribution given parent values. Only valid for
  /// discrete mechanisms. Probabilities sum to 1.
  virtual Result<std::vector<std::pair<Value, double>>> Distribution(
      const std::vector<Value>& parents) const = 0;

  /// Draws one value given parent values.
  virtual Result<Value> Sample(const std::vector<Value>& parents,
                               Rng& rng) const = 0;
};

/// Discrete mechanism: a fixed outcome list whose (unnormalized) weights are
/// an arbitrary function of the parent values. Subsumes CPTs, logistic-style
/// dependencies, and noisy thresholds.
class DiscreteMechanism : public Mechanism {
 public:
  using WeightFn =
      std::function<std::vector<double>(const std::vector<Value>&)>;

  DiscreteMechanism(std::vector<Value> outcomes, WeightFn weights)
      : outcomes_(std::move(outcomes)), weights_(std::move(weights)) {}

  bool is_discrete() const override { return true; }
  Result<std::vector<std::pair<Value, double>>> Distribution(
      const std::vector<Value>& parents) const override;
  Result<Value> Sample(const std::vector<Value>& parents,
                       Rng& rng) const override;

 private:
  std::vector<Value> outcomes_;
  WeightFn weights_;
};

/// Continuous mechanism: value = bias + sum_i weight_i * parent_i + noise,
/// noise ~ N(0, stddev^2). Sampling only (no exact enumeration).
class LinearGaussianMechanism : public Mechanism {
 public:
  LinearGaussianMechanism(std::vector<double> weights, double bias,
                          double noise_stddev)
      : weights_(std::move(weights)), bias_(bias), stddev_(noise_stddev) {}

  bool is_discrete() const override { return false; }
  Result<std::vector<std::pair<Value, double>>> Distribution(
      const std::vector<Value>& parents) const override;
  Result<Value> Sample(const std::vector<Value>& parents,
                       Rng& rng) const override;

 private:
  std::vector<double> weights_;
  double bias_;
  double stddev_;
};

/// Deterministic mechanism: value = fn(parents). Discrete with one outcome.
class DeterministicMechanism : public Mechanism {
 public:
  using Fn = std::function<Value(const std::vector<Value>&)>;
  explicit DeterministicMechanism(Fn fn) : fn_(std::move(fn)) {}

  bool is_discrete() const override { return true; }
  Result<std::vector<std::pair<Value, double>>> Distribution(
      const std::vector<Value>& parents) const override {
    return std::vector<std::pair<Value, double>>{{fn_(parents), 1.0}};
  }
  Result<Value> Sample(const std::vector<Value>& parents, Rng&) const override {
    return fn_(parents);
  }

 private:
  Fn fn_;
};

/// Reference to a parent attribute. An empty link means the parent lives in
/// the same tuple; a non-empty link L means the parent values are gathered
/// from all tuples agreeing on L and summarized by psi (the paper's
/// distribution-preserving summary function, §2.2 — implemented as the mean
/// for numeric parents, identity for a single parent).
struct ParentRef {
  std::string attribute;
  std::string link;  // empty = same tuple
};

/// An attribute-level structural causal model. Serves three roles:
///  1. ground truth for the synthetic datasets (sampling),
///  2. exact interventional distributions for single entities
///     (Opt-HowTo / solution-quality baselines),
///  3. source of the attribute-level CausalGraph handed to HypeR.
class Scm {
 public:
  Scm() = default;

  /// Declares attribute `name` with the given parents and mechanism.
  /// Attributes must be added parents-first (insertion order is taken as the
  /// topological order and validated).
  Status AddAttribute(const std::string& name, std::vector<ParentRef> parents,
                      std::unique_ptr<Mechanism> mechanism);

  const std::vector<std::string>& attributes() const { return order_; }
  bool HasAttribute(const std::string& name) const {
    return nodes_.count(name) > 0;
  }
  const std::vector<ParentRef>& ParentsOf(const std::string& name) const;
  const Mechanism& MechanismOf(const std::string& name) const;

  /// The induced attribute-level causal graph (edges carry parent links).
  CausalGraph Graph() const;

  /// Samples a full entity (all attributes, same-tuple parents only; for
  /// SCMs with cross-tuple links, use GroundScm / the dataset generators).
  Result<Assignment> SampleEntity(Rng& rng) const;

  /// Compiled flat sampler over this SCM's attributes; see EntitySampler.
  /// The Scm must outlive the sampler (it borrows the mechanisms).
  class EntitySampler;
  Result<EntitySampler> CompileEntitySampler() const;

  /// Exact interventional distribution for a single entity: holds the
  /// observed values of non-descendants fixed, sets `interventions`, and
  /// enumerates the joint distribution of all affected attributes (the
  /// descendants of the intervened ones). Requires discrete mechanisms on
  /// the affected attributes. Returned assignments contain the full entity
  /// state (observed + intervened + resampled); probabilities sum to 1.
  Result<std::vector<std::pair<Assignment, double>>> InterventionalWorlds(
      const Assignment& observed, const Assignment& interventions) const;

  /// Monte-Carlo version of InterventionalWorlds for continuous mechanisms:
  /// returns the expected value of `target` after the intervention,
  /// averaging `samples` draws.
  Result<double> InterventionalMean(const Assignment& observed,
                                    const Assignment& interventions,
                                    const std::string& target, size_t samples,
                                    Rng& rng) const;

 private:
  struct Node {
    std::vector<ParentRef> parents;
    std::unique_ptr<Mechanism> mechanism;
  };

  /// Attributes affected by intervening on `targets`: their descendants
  /// (excluding the targets themselves), in topological order.
  std::vector<std::string> AffectedInOrder(
      const std::vector<std::string>& targets) const;

  Result<std::vector<Value>> GatherParents(const std::string& attr,
                                           const Assignment& state) const;

  std::map<std::string, Node> nodes_;
  std::vector<std::string> order_;  // insertion order == topological order
};

/// Flat-entity sampler for the million-row dataset generators: attribute
/// positions and parent indices are resolved once at compile time, so
/// per-entity sampling does no name lookups and builds no Assignment maps.
/// Mechanisms are invoked in the same topological order with the same parent
/// values as SampleEntity, so both paths consume the identical RNG stream
/// and generate identical data.
class Scm::EntitySampler {
 public:
  /// Position of `name` in the sampled vector (the Scm's attributes()
  /// order); num_attributes() when unknown.
  size_t IndexOf(const std::string& name) const;

  size_t num_attributes() const { return steps_.size(); }

  /// Samples one entity into `out`, resized to num_attributes() (slot i is
  /// attributes()[i]); the vector's capacity is reused across calls.
  Status Sample(Rng& rng, std::vector<Value>* out) const;

 private:
  friend class Scm;
  struct Step {
    const Mechanism* mechanism = nullptr;
    std::vector<size_t> parents;  // positions of parent values in `out`
  };
  std::vector<Step> steps_;
  std::vector<std::string> names_;  // parallel to steps_
};

/// One intervention on a ground variable.
struct GroundIntervention {
  TupleId tuple;
  std::string attribute;
  Value value;
};

/// A possible world of the database with its post-update probability
/// (Definitions 1 and 3).
struct PossibleWorld {
  Database db;
  double prob = 1.0;
};

/// The grounded SCM over a concrete database: mechanisms applied per tuple,
/// with cross-tuple parents summarized by psi (mean). This is the machinery
/// behind the *exact* possible-world oracle used to validate the efficient
/// engine (Definition 5) — exponential in the number of affected ground
/// variables, so only for small instances.
class GroundScm {
 public:
  static Result<GroundScm> Build(const Scm* scm, const Database* db);

  /// Enumerates the post-update distribution over possible worlds after the
  /// interventions: non-affected variables keep their observed values,
  /// affected ones (ground descendants of the intervened variables) are
  /// jointly re-randomized per the mechanisms in topological order.
  Result<std::vector<PossibleWorld>> PostUpdateWorlds(
      const std::vector<GroundIntervention>& interventions) const;

  const GroundCausalGraph& ground_graph() const { return ground_; }

 private:
  const Scm* scm_ = nullptr;
  const Database* db_ = nullptr;
  GroundCausalGraph ground_;
  std::vector<size_t> topo_;  // ground node indices in topological order
};

}  // namespace hyper::causal

#endif  // HYPER_CAUSAL_SCM_H_
