#include "causal/scm.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "common/strings.h"

namespace hyper::causal {

// ---------------------------------------------------------------------------
// Mechanisms
// ---------------------------------------------------------------------------

Result<std::vector<std::pair<Value, double>>> DiscreteMechanism::Distribution(
    const std::vector<Value>& parents) const {
  std::vector<double> weights = weights_(parents);
  if (weights.size() != outcomes_.size()) {
    return Status::Internal(StrFormat(
        "mechanism weight function returned %zu weights for %zu outcomes",
        weights.size(), outcomes_.size()));
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::Internal("negative mechanism weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::Internal("mechanism weights sum to zero");
  }
  std::vector<std::pair<Value, double>> out;
  out.reserve(outcomes_.size());
  for (size_t i = 0; i < outcomes_.size(); ++i) {
    out.emplace_back(outcomes_[i], weights[i] / total);
  }
  return out;
}

Result<Value> DiscreteMechanism::Sample(const std::vector<Value>& parents,
                                        Rng& rng) const {
  std::vector<double> weights = weights_(parents);
  if (weights.size() != outcomes_.size()) {
    return Status::Internal("mechanism weight arity mismatch");
  }
  return outcomes_[rng.Categorical(weights)];
}

Result<std::vector<std::pair<Value, double>>>
LinearGaussianMechanism::Distribution(const std::vector<Value>&) const {
  return Status::Unimplemented(
      "linear-Gaussian mechanisms have no finite outcome distribution; use "
      "Sample (or discretize the attribute)");
}

Result<Value> LinearGaussianMechanism::Sample(
    const std::vector<Value>& parents, Rng& rng) const {
  if (parents.size() != weights_.size()) {
    return Status::Internal(
        StrFormat("linear mechanism expects %zu parents, got %zu",
                  weights_.size(), parents.size()));
  }
  double acc = bias_;
  for (size_t i = 0; i < parents.size(); ++i) {
    HYPER_ASSIGN_OR_RETURN(double p, parents[i].AsDouble());
    acc += weights_[i] * p;
  }
  if (stddev_ > 0.0) acc += rng.Gaussian(0.0, stddev_);
  return Value::Double(acc);
}

// ---------------------------------------------------------------------------
// Scm
// ---------------------------------------------------------------------------

Status Scm::AddAttribute(const std::string& name,
                         std::vector<ParentRef> parents,
                         std::unique_ptr<Mechanism> mechanism) {
  if (nodes_.count(name) > 0) {
    return Status::AlreadyExists("SCM attribute '" + name +
                                 "' already declared");
  }
  if (mechanism == nullptr) {
    return Status::InvalidArgument("mechanism must not be null");
  }
  for (const ParentRef& p : parents) {
    if (nodes_.count(p.attribute) == 0) {
      return Status::FailedPrecondition(
          "parent '" + p.attribute + "' of '" + name +
          "' not declared yet; add attributes parents-first");
    }
  }
  nodes_.emplace(name, Node{std::move(parents), std::move(mechanism)});
  order_.push_back(name);
  return Status::OK();
}

const std::vector<ParentRef>& Scm::ParentsOf(const std::string& name) const {
  auto it = nodes_.find(name);
  HYPER_CHECK(it != nodes_.end());
  return it->second.parents;
}

const Mechanism& Scm::MechanismOf(const std::string& name) const {
  auto it = nodes_.find(name);
  HYPER_CHECK(it != nodes_.end());
  return *it->second.mechanism;
}

CausalGraph Scm::Graph() const {
  CausalGraph graph;
  for (const std::string& attr : order_) {
    graph.AddNode(attr);
    for (const ParentRef& p : nodes_.at(attr).parents) {
      graph.AddEdge(p.attribute, attr, p.link);
    }
  }
  return graph;
}

Result<std::vector<Value>> Scm::GatherParents(const std::string& attr,
                                              const Assignment& state) const {
  const Node& node = nodes_.at(attr);
  std::vector<Value> values;
  values.reserve(node.parents.size());
  for (const ParentRef& p : node.parents) {
    auto it = state.find(p.attribute);
    if (it == state.end()) {
      return Status::FailedPrecondition("parent '" + p.attribute +
                                        "' has no value in entity state");
    }
    values.push_back(it->second);
  }
  return values;
}

Result<Assignment> Scm::SampleEntity(Rng& rng) const {
  Assignment state;
  for (const std::string& attr : order_) {
    HYPER_ASSIGN_OR_RETURN(std::vector<Value> parents,
                           GatherParents(attr, state));
    HYPER_ASSIGN_OR_RETURN(Value v,
                           nodes_.at(attr).mechanism->Sample(parents, rng));
    state.emplace(attr, std::move(v));
  }
  return state;
}

Result<Scm::EntitySampler> Scm::CompileEntitySampler() const {
  EntitySampler sampler;
  sampler.names_ = order_;
  sampler.steps_.reserve(order_.size());
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < order_.size(); ++i) pos.emplace(order_[i], i);
  for (const std::string& attr : order_) {
    const Node& node = nodes_.at(attr);
    EntitySampler::Step step;
    step.mechanism = node.mechanism.get();
    step.parents.reserve(node.parents.size());
    for (const ParentRef& p : node.parents) {
      auto it = pos.find(p.attribute);
      if (it == pos.end() || it->second >= sampler.steps_.size()) {
        return Status::FailedPrecondition(
            "parent '" + p.attribute + "' of '" + attr +
            "' is not an earlier attribute; cannot compile a flat sampler");
      }
      step.parents.push_back(it->second);
    }
    sampler.steps_.push_back(std::move(step));
  }
  return sampler;
}

size_t Scm::EntitySampler::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return names_.size();
}

Status Scm::EntitySampler::Sample(Rng& rng, std::vector<Value>* out) const {
  out->resize(steps_.size());
  std::vector<Value> parents;
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    parents.clear();
    for (size_t p : step.parents) parents.push_back((*out)[p]);
    HYPER_ASSIGN_OR_RETURN((*out)[i], step.mechanism->Sample(parents, rng));
  }
  return Status::OK();
}

std::vector<std::string> Scm::AffectedInOrder(
    const std::vector<std::string>& targets) const {
  const CausalGraph graph = Graph();
  std::unordered_set<std::string> affected;
  std::unordered_set<std::string> target_set(targets.begin(), targets.end());
  for (const std::string& t : targets) {
    for (const std::string& d : graph.Descendants(t)) affected.insert(d);
  }
  std::vector<std::string> ordered;
  for (const std::string& attr : order_) {
    if (affected.count(attr) > 0 && target_set.count(attr) == 0) {
      ordered.push_back(attr);
    }
  }
  return ordered;
}

Result<std::vector<std::pair<Assignment, double>>> Scm::InterventionalWorlds(
    const Assignment& observed, const Assignment& interventions) const {
  Assignment state = observed;
  std::vector<std::string> targets;
  for (const auto& [attr, value] : interventions) {
    if (nodes_.count(attr) == 0) {
      return Status::NotFound("intervened attribute '" + attr +
                              "' not in SCM");
    }
    state[attr] = value;
    targets.push_back(attr);
  }
  const std::vector<std::string> affected = AffectedInOrder(targets);
  for (const std::string& attr : affected) {
    if (!nodes_.at(attr).mechanism->is_discrete()) {
      return Status::FailedPrecondition(
          "exact enumeration requires discrete mechanisms; '" + attr +
          "' is continuous (use InterventionalMean)");
    }
  }

  std::vector<std::pair<Assignment, double>> worlds;
  // Depth-first enumeration over the affected attributes in topo order.
  std::function<Status(size_t, double)> recurse = [&](size_t depth,
                                                      double prob) -> Status {
    if (depth == affected.size()) {
      worlds.emplace_back(state, prob);
      return Status::OK();
    }
    const std::string& attr = affected[depth];
    HYPER_ASSIGN_OR_RETURN(std::vector<Value> parents,
                           GatherParents(attr, state));
    HYPER_ASSIGN_OR_RETURN(auto dist,
                           nodes_.at(attr).mechanism->Distribution(parents));
    for (const auto& [value, p] : dist) {
      if (p == 0.0) continue;
      state[attr] = value;
      HYPER_RETURN_NOT_OK(recurse(depth + 1, prob * p));
    }
    state.erase(attr);
    return Status::OK();
  };
  HYPER_RETURN_NOT_OK(recurse(0, 1.0));
  return worlds;
}

Result<double> Scm::InterventionalMean(const Assignment& observed,
                                       const Assignment& interventions,
                                       const std::string& target,
                                       size_t samples, Rng& rng) const {
  if (nodes_.count(target) == 0) {
    return Status::NotFound("target attribute '" + target + "' not in SCM");
  }
  std::vector<std::string> targets;
  for (const auto& [attr, _] : interventions) targets.push_back(attr);
  const std::vector<std::string> affected = AffectedInOrder(targets);

  double total = 0.0;
  for (size_t s = 0; s < samples; ++s) {
    Assignment state = observed;
    for (const auto& [attr, value] : interventions) state[attr] = value;
    for (const std::string& attr : affected) {
      HYPER_ASSIGN_OR_RETURN(std::vector<Value> parents,
                             GatherParents(attr, state));
      HYPER_ASSIGN_OR_RETURN(Value v,
                             nodes_.at(attr).mechanism->Sample(parents, rng));
      state[attr] = std::move(v);
    }
    HYPER_ASSIGN_OR_RETURN(double y, state.at(target).AsDouble());
    total += y;
  }
  return total / static_cast<double>(samples);
}

// ---------------------------------------------------------------------------
// GroundScm
// ---------------------------------------------------------------------------

Result<GroundScm> GroundScm::Build(const Scm* scm, const Database* db) {
  HYPER_CHECK(scm != nullptr && db != nullptr);
  GroundScm out;
  out.scm_ = scm;
  out.db_ = db;
  HYPER_ASSIGN_OR_RETURN(out.ground_,
                         GroundCausalGraph::Build(scm->Graph(), *db));

  // Topological order over ground nodes (Kahn).
  const size_t n = out.ground_.num_nodes();
  std::vector<size_t> in_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    in_degree[i] = out.ground_.ParentsOf(i).size();
  }
  std::deque<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    size_t node = ready.front();
    ready.pop_front();
    out.topo_.push_back(node);
    for (size_t child : out.ground_.ChildrenOf(node)) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  if (out.topo_.size() != n) {
    return Status::InvalidArgument("ground causal graph contains a cycle");
  }
  return out;
}

namespace {

/// psi: summarizes a set of ground parent values into one value (paper §2.2,
/// Example 5 uses averaging). A single value passes through unchanged.
Result<Value> Summarize(const std::vector<Value>& values) {
  if (values.empty()) return Value::Null();
  if (values.size() == 1) return values[0];
  double sum = 0.0;
  for (const Value& v : values) {
    HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum += d;
  }
  return Value::Double(sum / static_cast<double>(values.size()));
}

}  // namespace

Result<std::vector<PossibleWorld>> GroundScm::PostUpdateWorlds(
    const std::vector<GroundIntervention>& interventions) const {
  constexpr size_t kMaxWorlds = 1u << 20;

  Database working = db_->Clone();

  // Apply interventions and collect their ground node indices.
  std::vector<size_t> intervened_nodes;
  for (const GroundIntervention& iv : interventions) {
    HYPER_ASSIGN_OR_RETURN(Table* table,
                           working.GetMutableTable(iv.tuple.relation));
    HYPER_ASSIGN_OR_RETURN(size_t attr_idx,
                           table->schema().IndexOf(iv.attribute));
    table->SetValue(iv.tuple.tid, attr_idx, iv.value);
    HYPER_ASSIGN_OR_RETURN(size_t node,
                           ground_.NodeIndex(iv.tuple, iv.attribute));
    intervened_nodes.push_back(node);
  }

  // Affected = ground descendants of the intervened nodes.
  std::vector<bool> affected(ground_.num_nodes(), false);
  {
    std::deque<size_t> frontier(intervened_nodes.begin(),
                                intervened_nodes.end());
    std::vector<bool> seen(ground_.num_nodes(), false);
    for (size_t node : intervened_nodes) seen[node] = true;
    while (!frontier.empty()) {
      size_t node = frontier.front();
      frontier.pop_front();
      for (size_t child : ground_.ChildrenOf(node)) {
        if (!seen[child]) {
          seen[child] = true;
          affected[child] = true;
          frontier.push_back(child);
        }
      }
    }
  }

  std::vector<size_t> affected_order;
  for (size_t node : topo_) {
    if (affected[node]) affected_order.push_back(node);
  }

  // Evaluates the summarized parent vector for a ground node against the
  // current working database.
  auto gather = [&](size_t node) -> Result<std::vector<Value>> {
    const GroundNode& gn = ground_.nodes()[node];
    const std::vector<ParentRef>& refs = scm_->ParentsOf(gn.attribute);
    std::vector<Value> out;
    out.reserve(refs.size());
    for (const ParentRef& ref : refs) {
      std::vector<Value> group;
      for (size_t parent : ground_.ParentsOf(node)) {
        const GroundNode& pn = ground_.nodes()[parent];
        if (pn.attribute != ref.attribute) continue;
        const Table& table = *working.GetTable(pn.tuple.relation).value();
        const size_t attr_idx =
            table.schema().IndexOf(pn.attribute).value();
        group.push_back(table.At(pn.tuple.tid, attr_idx));
      }
      HYPER_ASSIGN_OR_RETURN(Value summarized, Summarize(group));
      out.push_back(std::move(summarized));
    }
    return out;
  };

  std::vector<PossibleWorld> worlds;
  std::function<Status(size_t, double)> recurse = [&](size_t depth,
                                                      double prob) -> Status {
    if (depth == affected_order.size()) {
      if (worlds.size() >= kMaxWorlds) {
        return Status::OutOfRange(
            "possible-world enumeration exceeded the safety cap; this oracle "
            "is for small instances only");
      }
      worlds.push_back(PossibleWorld{working.Clone(), prob});
      return Status::OK();
    }
    const size_t node = affected_order[depth];
    const GroundNode& gn = ground_.nodes()[node];
    HYPER_ASSIGN_OR_RETURN(std::vector<Value> parents, gather(node));
    HYPER_ASSIGN_OR_RETURN(
        auto dist, scm_->MechanismOf(gn.attribute).Distribution(parents));
    Table* table = working.GetMutableTable(gn.tuple.relation).value();
    const size_t attr_idx = table->schema().IndexOf(gn.attribute).value();
    const Value saved = table->At(gn.tuple.tid, attr_idx);
    for (const auto& [value, p] : dist) {
      if (p == 0.0) continue;
      table->SetValue(gn.tuple.tid, attr_idx, value);
      HYPER_RETURN_NOT_OK(recurse(depth + 1, prob * p));
    }
    table->SetValue(gn.tuple.tid, attr_idx, saved);
    return Status::OK();
  };
  HYPER_RETURN_NOT_OK(recurse(0, 1.0));
  return worlds;
}

}  // namespace hyper::causal
