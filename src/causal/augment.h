#ifndef HYPER_CAUSAL_AUGMENT_H_
#define HYPER_CAUSAL_AUGMENT_H_

#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/status.h"

namespace hyper::causal {

/// One aggregated attribute of the relevant view: `name` (e.g. "Rtng")
/// summarizes `source` (e.g. "Rating") across the tuples joined into a view
/// row.
struct AggregateNode {
  std::string name;
  std::string source;
};

/// Builds the augmented causal graph of §A.3.2: for each aggregate node A'
/// over source attribute A,
///   - A' is added as a child of A (the grounded instances feed the
///     aggregate),
///   - every child of A becomes a child of A' instead (the aggregate
///     mediates A's downstream influence under the homogeneity assumption),
///   - A's original edges to those children are removed.
///
/// The result is the graph on which backdoor reasoning for view-level
/// queries is sound: adjusting for (or targeting) the aggregate column of
/// the view corresponds to the A' node. Sources must exist in `graph`;
/// aggregate names must be fresh.
Result<CausalGraph> AugmentGraph(const CausalGraph& graph,
                                 const std::vector<AggregateNode>& aggregates);

}  // namespace hyper::causal

#endif  // HYPER_CAUSAL_AUGMENT_H_
