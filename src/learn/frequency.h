#ifndef HYPER_LEARN_FREQUENCY_H_
#define HYPER_LEARN_FREQUENCY_H_

#include <unordered_map>
#include <vector>

#include "learn/estimator.h"

namespace hyper::learn {

/// Exact empirical conditional-mean estimator for discrete feature spaces:
/// E[y | x] = mean of y over training rows with exactly the feature vector
/// x. This is the paper's §A.4 optimization — instead of iterating over the
/// full Dom(C) (exponential), an index over the values with non-zero support
/// is built once (linear in data size) and consulted at query time.
///
/// Unseen feature vectors fall back along a backoff chain: drop the last
/// feature and retry, ending at the global mean. (The last features are the
/// least specific in how the engine orders them: update attribute first,
/// then backdoor attributes.)
class FrequencyEstimator : public ConditionalMeanEstimator {
 public:
  /// `backoff`: when true (default) unseen vectors back off by dropping
  /// trailing features; when false they return the global mean directly.
  ///
  /// `smoothing` (pseudo-count m >= 0): hierarchical shrinkage along the
  /// backoff chain. Each level's estimate is the cell mean blended with the
  /// next-less-specific level's estimate,
  ///     est_k = (sum_k + m * est_{k-1}) / (count_k + m),
  /// anchored at the global mean. m = 0 reproduces the exact empirical
  /// conditional (used by the correctness tests); small m (5-20) trades a
  /// little bias for much lower variance in sparse cells — important when
  /// continuous features are bucketized.
  explicit FrequencyEstimator(bool backoff = true, double smoothing = 0.0)
      : backoff_(backoff), smoothing_(smoothing) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;

  /// Pointer-walking batch prediction: one incremental-hash lookup chain per
  /// row, no per-row virtual dispatch or vector copies. Bit-for-bit
  /// identical to per-row Predict.
  void PredictBatch(const FeatureMatrix& x,
                    std::span<double> out) const override;

  /// Number of distinct feature vectors with support (index size).
  size_t support_size() const {
    return tables_.empty() ? 0 : tables_.back().size();
  }

 private:
  // Support cells are keyed by feature-vector prefixes. Keys cache their
  // FNV hash, and lookups go through a borrowed PrefixView (C++20
  // heterogeneous lookup) so a training row costs one incremental hash per
  // level — O(F) per row instead of the O(F^2) hash-and-copy of hashing
  // every prefix from scratch.
  struct PrefixKey {
    std::vector<double> values;
    size_t hash = 0;
  };
  struct PrefixView {
    const double* data = nullptr;
    size_t len = 0;
    size_t hash = 0;
  };
  struct PrefixHash {
    using is_transparent = void;
    size_t operator()(const PrefixKey& k) const { return k.hash; }
    size_t operator()(const PrefixView& v) const { return v.hash; }
  };
  struct PrefixEq {
    using is_transparent = void;
    static bool Eq(const double* a, size_t an, const double* b, size_t bn) {
      if (an != bn) return false;
      for (size_t i = 0; i < an; ++i) {
        if (a[i] != b[i]) return false;
      }
      return true;
    }
    bool operator()(const PrefixKey& a, const PrefixKey& b) const {
      return Eq(a.values.data(), a.values.size(), b.values.data(),
                b.values.size());
    }
    bool operator()(const PrefixKey& a, const PrefixView& b) const {
      return Eq(a.values.data(), a.values.size(), b.data, b.len);
    }
    bool operator()(const PrefixView& a, const PrefixKey& b) const {
      return Eq(a.data, a.len, b.values.data(), b.values.size());
    }
    bool operator()(const PrefixView& a, const PrefixView& b) const {
      return Eq(a.data, a.len, b.data, b.len);
    }
  };
  struct Cell {
    double sum = 0.0;
    size_t count = 0;
  };
  using SupportTable = std::unordered_map<PrefixKey, Cell, PrefixHash, PrefixEq>;

  static constexpr size_t kFnvOffset = 0xcbf29ce484222325ULL;
  static constexpr size_t kFnvPrime = 0x100000001b3ULL;
  static size_t HashStep(size_t h, double d) {
    return (h ^ std::hash<double>()(d)) * kFnvPrime;
  }

  double PredictPtr(const double* row) const;

  bool backoff_ = true;
  double smoothing_ = 0.0;
  double global_mean_ = 0.0;
  size_t num_features_ = 0;
  /// tables_[k] indexes prefixes of length k+1; tables_.back() is the full
  /// feature vector. Only the full table is built when backoff_ is false.
  std::vector<SupportTable> tables_;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_FREQUENCY_H_
