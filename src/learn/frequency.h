#ifndef HYPER_LEARN_FREQUENCY_H_
#define HYPER_LEARN_FREQUENCY_H_

#include <unordered_map>
#include <vector>

#include "learn/estimator.h"

namespace hyper::learn {

/// Exact empirical conditional-mean estimator for discrete feature spaces:
/// E[y | x] = mean of y over training rows with exactly the feature vector
/// x. This is the paper's §A.4 optimization — instead of iterating over the
/// full Dom(C) (exponential), an index over the values with non-zero support
/// is built once (linear in data size) and consulted at query time.
///
/// Unseen feature vectors fall back along a backoff chain: drop the last
/// feature and retry, ending at the global mean. (The last features are the
/// least specific in how the engine orders them: update attribute first,
/// then backdoor attributes.)
class FrequencyEstimator : public ConditionalMeanEstimator {
 public:
  /// `backoff`: when true (default) unseen vectors back off by dropping
  /// trailing features; when false they return the global mean directly.
  ///
  /// `smoothing` (pseudo-count m >= 0): hierarchical shrinkage along the
  /// backoff chain. Each level's estimate is the cell mean blended with the
  /// next-less-specific level's estimate,
  ///     est_k = (sum_k + m * est_{k-1}) / (count_k + m),
  /// anchored at the global mean. m = 0 reproduces the exact empirical
  /// conditional (used by the correctness tests); small m (5-20) trades a
  /// little bias for much lower variance in sparse cells — important when
  /// continuous features are bucketized.
  explicit FrequencyEstimator(bool backoff = true, double smoothing = 0.0)
      : backoff_(backoff), smoothing_(smoothing) {}

  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;

  /// Number of distinct feature vectors with support (index size).
  size_t support_size() const {
    return tables_.empty() ? 0 : tables_.back().size();
  }

 private:
  struct VecHash {
    size_t operator()(const std::vector<double>& v) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (double d : v) {
        h ^= std::hash<double>()(d);
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };
  struct Cell {
    double sum = 0.0;
    size_t count = 0;
  };
  using SupportTable =
      std::unordered_map<std::vector<double>, Cell, VecHash>;

  bool backoff_ = true;
  double smoothing_ = 0.0;
  double global_mean_ = 0.0;
  size_t num_features_ = 0;
  /// tables_[k] indexes prefixes of length k+1; tables_.back() is the full
  /// feature vector. Only the full table is built when backoff_ is false.
  std::vector<SupportTable> tables_;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_FREQUENCY_H_
