#include "learn/discretizer.h"

#include <algorithm>

#include "common/strings.h"

namespace hyper::learn {

Result<EquiWidthDiscretizer> EquiWidthDiscretizer::Create(double lo, double hi,
                                                          size_t num_buckets) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  if (!(lo <= hi)) {
    return Status::InvalidArgument(
        StrFormat("invalid range [%g, %g]", lo, hi));
  }
  EquiWidthDiscretizer d;
  d.lo_ = lo;
  d.hi_ = hi;
  d.num_buckets_ = num_buckets;
  d.width_ = (hi - lo) / static_cast<double>(num_buckets);
  if (d.width_ <= 0.0) d.width_ = 1.0;  // degenerate range: one cell
  return d;
}

Result<EquiWidthDiscretizer> EquiWidthDiscretizer::FitToData(
    const std::vector<double>& values, size_t num_buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit discretizer to empty data");
  }
  auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  return Create(*lo_it, *hi_it, num_buckets);
}

size_t EquiWidthDiscretizer::BucketOf(double v) const {
  if (v <= lo_) return 0;
  if (v >= hi_) return num_buckets_ - 1;
  size_t b = static_cast<size_t>((v - lo_) / width_);
  return std::min(b, num_buckets_ - 1);
}

double EquiWidthDiscretizer::Representative(size_t b) const {
  b = std::min(b, num_buckets_ - 1);
  return lo_ + (static_cast<double>(b) + 0.5) * width_;
}

std::vector<double> EquiWidthDiscretizer::Representatives() const {
  std::vector<double> out;
  out.reserve(num_buckets_);
  for (size_t b = 0; b < num_buckets_; ++b) out.push_back(Representative(b));
  return out;
}

std::pair<double, double> EquiWidthDiscretizer::Bounds(size_t b) const {
  b = std::min(b, num_buckets_ - 1);
  return {lo_ + static_cast<double>(b) * width_,
          lo_ + static_cast<double>(b + 1) * width_};
}

Result<QuantileDiscretizer> QuantileDiscretizer::FitToData(
    std::vector<double> values, size_t num_buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit discretizer to empty data");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("need at least one bucket");
  }
  std::sort(values.begin(), values.end());

  QuantileDiscretizer d;
  const size_t n = values.size();
  size_t begin = 0;
  for (size_t b = 0; b < num_buckets && begin < n; ++b) {
    size_t end = (b + 1) * n / num_buckets;
    if (end <= begin) end = begin + 1;
    // Extend over ties so equal values never straddle a boundary.
    while (end < n && values[end] == values[end - 1]) ++end;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += values[i];
    d.representatives_.push_back(sum / static_cast<double>(end - begin));
    if (end < n) d.upper_bounds_.push_back(values[end - 1]);
    begin = end;
  }
  return d;
}

size_t QuantileDiscretizer::BucketOf(double v) const {
  // upper_bounds_[b] is the maximum sample of bucket b (inclusive): the
  // first boundary >= v identifies the bucket.
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  return static_cast<size_t>(it - upper_bounds_.begin());
}

double QuantileDiscretizer::Representative(size_t b) const {
  return representatives_[std::min(b, representatives_.size() - 1)];
}

}  // namespace hyper::learn
