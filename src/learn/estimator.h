#ifndef HYPER_LEARN_ESTIMATOR_H_
#define HYPER_LEARN_ESTIMATOR_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "learn/dataset.h"

namespace hyper::learn {

/// Estimates the conditional mean E[y | x] from training data. This is the
/// single abstraction behind all probability estimation in HypeR: with an
/// indicator target it estimates Pr(event | x) (Proposition 2), with a
/// numeric target it estimates E[Y | x] (Proposition 5). The paper's
/// implementation used sklearn's RandomForestRegressor; this library ships
/// a from-scratch forest plus an exact frequency-table estimator for fully
/// discrete data (the §A.4 support index).
class ConditionalMeanEstimator {
 public:
  virtual ~ConditionalMeanEstimator() = default;

  /// Trains on feature matrix X (one row per example) and targets y.
  /// (Matrix literals convert implicitly — see FeatureMatrix.)
  virtual Status Fit(const FeatureMatrix& x, const std::vector<double>& y) = 0;

  /// Predicts E[y | x]. Must be called after a successful Fit.
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Predicts E[y | x] for every row of `x` into `out` (out.size() must be
  /// x.num_rows()). Bit-for-bit identical to calling Predict per row, but
  /// one virtual dispatch per batch instead of per tuple — concrete
  /// estimators override with tree-at-a-time / pointer-walking loops. This
  /// is the inference entry point of the what-if Evaluate hot path.
  virtual void PredictBatch(const FeatureMatrix& x,
                            std::span<double> out) const {
    std::vector<double> row(x.num_cols());
    for (size_t r = 0; r < x.num_rows(); ++r) {
      const double* src = x.row(r);
      row.assign(src, src + x.num_cols());
      out[r] = Predict(row);
    }
  }

  /// DEPRECATED: allocating batch-prediction convenience; prefer
  /// PredictBatch with a caller-owned buffer. Kept for API compatibility;
  /// now reserves up front by delegating to PredictBatch.
  std::vector<double> PredictAll(const FeatureMatrix& x) const {
    std::vector<double> out(x.num_rows());
    PredictBatch(x, out);
    return out;
  }
};

/// Which estimator backs probability computation (engine option; the paper's
/// experiments correspond to kForest).
enum class EstimatorKind {
  kFrequency = 0,  // exact empirical conditionals with a support index
  kForest,         // bagged CART regression forest
};

const char* EstimatorKindName(EstimatorKind kind);

}  // namespace hyper::learn

#endif  // HYPER_LEARN_ESTIMATOR_H_
