#ifndef HYPER_LEARN_ESTIMATOR_H_
#define HYPER_LEARN_ESTIMATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "learn/dataset.h"

namespace hyper::learn {

/// Estimates the conditional mean E[y | x] from training data. This is the
/// single abstraction behind all probability estimation in HypeR: with an
/// indicator target it estimates Pr(event | x) (Proposition 2), with a
/// numeric target it estimates E[Y | x] (Proposition 5). The paper's
/// implementation used sklearn's RandomForestRegressor; this library ships
/// a from-scratch forest plus an exact frequency-table estimator for fully
/// discrete data (the §A.4 support index).
class ConditionalMeanEstimator {
 public:
  virtual ~ConditionalMeanEstimator() = default;

  /// Trains on feature matrix X (one row per example) and targets y.
  virtual Status Fit(const Matrix& x, const std::vector<double>& y) = 0;

  /// Predicts E[y | x]. Must be called after a successful Fit.
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Batch prediction convenience.
  std::vector<double> PredictAll(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.size());
    for (const auto& row : x) out.push_back(Predict(row));
    return out;
  }
};

/// Which estimator backs probability computation (engine option; the paper's
/// experiments correspond to kForest).
enum class EstimatorKind {
  kFrequency = 0,  // exact empirical conditionals with a support index
  kForest,         // bagged CART regression forest
};

const char* EstimatorKindName(EstimatorKind kind);

}  // namespace hyper::learn

#endif  // HYPER_LEARN_ESTIMATOR_H_
