#ifndef HYPER_LEARN_DATASET_H_
#define HYPER_LEARN_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "learn/feature_matrix.h"
#include "storage/column.h"
#include "storage/table.h"

namespace hyper::learn {

/// Maps table columns to numeric features: numeric columns pass through,
/// string columns are label-encoded in first-seen order. The encoder is
/// fitted once on training data and then applied to (possibly hypothetical)
/// values at prediction time; unseen categories map to a fresh code past the
/// fitted range, which regression trees treat as "none of the known ones".
class FeatureEncoder {
 public:
  /// Fits an encoder over `columns` of `table`.
  static Result<FeatureEncoder> Fit(const Table& table,
                                    const std::vector<std::string>& columns);

  /// Columnar fit: identical label assignment (per-column first-seen order)
  /// but string labels are derived from dictionary codes without hashing a
  /// single string. The encoder remembers the dictionary so EncodeValue and
  /// EncodeColumn can translate codes directly.
  static Result<FeatureEncoder> Fit(const ColumnTable& table,
                                    const std::vector<std::string>& columns);

  /// Encodes feature `i` for every row of the fitted columnar table in one
  /// typed pass. `table` must be the table the encoder was fitted on (or one
  /// sharing its dictionary).
  Result<std::vector<double>> EncodeColumn(const ColumnTable& table,
                                           size_t i) const;

  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_features() const { return columns_.size(); }

  /// Encodes a single value for feature `i`.
  Result<double> EncodeValue(size_t i, const Value& v) const;

  /// Encodes one table row (by the fitted column set).
  Result<std::vector<double>> EncodeRow(const Table& table, size_t tid) const;

  /// Encodes every row of `table` (or of the subset `tids`) into a flat
  /// row-major matrix.
  Result<FeatureMatrix> EncodeAll(const Table& table) const;
  Result<FeatureMatrix> EncodeSubset(const Table& table,
                                     const std::vector<size_t>& tids) const;

 private:
  std::vector<std::string> columns_;
  std::vector<size_t> column_indices_;              // into the fitted schema
  std::vector<bool> is_categorical_;                // per feature
  std::vector<std::unordered_map<std::string, double>> codes_;  // per feature
  /// Columnar-fit extras: dictionary-code -> label per feature (empty when
  /// fitted on a row store or for non-categorical features).
  std::shared_ptr<Dictionary> dict_;
  std::vector<std::vector<double>> label_of_code_;  // -1 = unseen
};

/// Extracts a numeric target column; booleans map to 0/1 and NULLs are
/// rejected.
Result<std::vector<double>> ExtractTarget(const Table& table,
                                          const std::string& column);

}  // namespace hyper::learn

#endif  // HYPER_LEARN_DATASET_H_
