#include "learn/estimator.h"

namespace hyper::learn {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kFrequency: return "frequency";
    case EstimatorKind::kForest: return "forest";
  }
  return "?";
}

}  // namespace hyper::learn
