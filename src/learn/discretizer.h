#ifndef HYPER_LEARN_DISCRETIZER_H_
#define HYPER_LEARN_DISCRETIZER_H_

#include <vector>

#include "common/status.h"

namespace hyper::learn {

/// Equi-width bucketization of a continuous range (paper §4.3 / §5.4,
/// "Effect of discretization"): the how-to engine discretizes continuous
/// update domains before building its integer program.
class EquiWidthDiscretizer {
 public:
  EquiWidthDiscretizer() = default;

  /// Buckets [lo, hi] into `num_buckets` equal-width cells.
  static Result<EquiWidthDiscretizer> Create(double lo, double hi,
                                             size_t num_buckets);

  /// Fits the range from data.
  static Result<EquiWidthDiscretizer> FitToData(
      const std::vector<double>& values, size_t num_buckets);

  size_t num_buckets() const { return num_buckets_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bucket index of `v`, clamped to [0, num_buckets).
  size_t BucketOf(double v) const;

  /// Midpoint representative of bucket `b` (the candidate value the how-to
  /// engine substitutes for the whole cell).
  double Representative(size_t b) const;

  /// All bucket representatives, ascending.
  std::vector<double> Representatives() const;

  /// [lower, upper) bounds of bucket `b` (upper inclusive for the last).
  std::pair<double, double> Bounds(size_t b) const;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
  size_t num_buckets_ = 1;
};

/// Quantile (equal-count) bucketization: cell boundaries at data quantiles,
/// so every cell holds roughly the same number of samples. Used by the
/// what-if engine to snap continuous estimator features — unlike equi-width
/// cells, the extreme cells stay densely populated, keeping conditional
/// estimates stable at the tails (where how-to candidates often live).
class QuantileDiscretizer {
 public:
  QuantileDiscretizer() = default;

  /// Fits boundaries from data; adjacent duplicate boundaries collapse, so
  /// the effective bucket count can be smaller than requested.
  static Result<QuantileDiscretizer> FitToData(std::vector<double> values,
                                               size_t num_buckets);

  size_t num_buckets() const { return representatives_.size(); }

  /// Bucket index of `v`; values beyond the data range clamp to the first /
  /// last bucket.
  size_t BucketOf(double v) const;

  /// The mean of the training samples in bucket `b` — the value the engine
  /// substitutes for every member of the cell.
  double Representative(size_t b) const;

 private:
  std::vector<double> upper_bounds_;     // ascending; size = buckets - 1
  std::vector<double> representatives_;  // per bucket
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_DISCRETIZER_H_
