#include "learn/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hyper::learn {

Status DecisionTreeRegressor::Fit(const Matrix& x,
                                  const std::vector<double>& y) {
  std::vector<size_t> rows(x.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return FitSubset(x, y, std::move(rows));
}

Status DecisionTreeRegressor::FitSubset(const Matrix& x,
                                        const std::vector<double>& y,
                                        std::vector<size_t> rows) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  for (size_t r : rows) {
    if (r >= x.size()) return Status::OutOfRange("row index out of range");
  }
  nodes_.clear();
  depth_ = 0;
  order_ = std::move(rows);
  BuildNode(x, y, 0, order_.size(), 0);
  return Status::OK();
}

int DecisionTreeRegressor::BuildNode(const Matrix& x,
                                     const std::vector<double>& y,
                                     size_t begin, size_t end, int depth) {
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;

  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += y[order_[i]];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf) {
    return node_index;
  }

  // Pure nodes stop; impure nodes accept the best valid split even at zero
  // immediate gain (an XOR-style interaction has zero marginal gain at the
  // root yet splits perfectly one level down).
  double sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double d = y[order_[i]] - mean;
    sq += d * d;
  }
  if (sq <= 1e-12) return node_index;

  Split split = FindBestSplit(x, y, begin, end);
  if (split.feature < 0) {
    return node_index;  // no valid candidate (all features constant)
  }

  // Partition order_[begin, end) around the threshold.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (x[order_[i]][split.feature] <= split.threshold) {
      std::swap(order_[i], order_[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {
    return node_index;  // degenerate split (ties): keep as leaf
  }

  nodes_[node_index].feature = split.feature;
  nodes_[node_index].threshold = split.threshold;
  const int left = BuildNode(x, y, begin, mid, depth + 1);
  const int right = BuildNode(x, y, mid, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

DecisionTreeRegressor::Split DecisionTreeRegressor::FindBestSplit(
    const Matrix& x, const std::vector<double>& y, size_t begin, size_t end) {
  const size_t n = end - begin;
  const size_t num_features = x.empty() ? 0 : x[0].size();

  // Candidate features (random subset when max_features is set — forests).
  std::vector<size_t> features;
  if (options_.max_features > 0 && options_.max_features < num_features) {
    features = rng_.SampleWithoutReplacement(num_features,
                                             options_.max_features);
  } else {
    features.resize(num_features);
    for (size_t f = 0; f < num_features; ++f) features[f] = f;
  }

  Split best;
  best.gain = -1.0;  // accept zero-gain splits; see BuildNode
  std::vector<std::pair<double, double>> pairs;  // (feature value, target)
  pairs.reserve(n);

  double total_sum = 0.0, total_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double t = y[order_[i]];
    total_sum += t;
    total_sq += t * t;
  }
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);

  for (size_t f : features) {
    pairs.clear();
    for (size_t i = begin; i < end; ++i) {
      pairs.emplace_back(x[order_[i]][f], y[order_[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.front().first == pairs.back().first) continue;  // constant

    // Scan split positions between distinct consecutive values. With more
    // than max_thresholds distinct boundaries, evaluate a stride subset.
    double left_sum = 0.0, left_sq = 0.0;
    size_t left_n = 0;
    // Collect boundary positions first to apply the stride uniformly.
    std::vector<size_t> boundaries;
    for (size_t i = 0; i + 1 < pairs.size(); ++i) {
      if (pairs[i].first < pairs[i + 1].first) boundaries.push_back(i);
    }
    size_t stride = 1;
    if (boundaries.size() > options_.max_thresholds &&
        options_.max_thresholds > 0) {
      stride = boundaries.size() / options_.max_thresholds;
    }

    size_t next_boundary = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      left_sum += pairs[i].second;
      left_sq += pairs[i].second * pairs[i].second;
      ++left_n;
      if (next_boundary >= boundaries.size() ||
          boundaries[next_boundary] != i) {
        continue;
      }
      next_boundary += stride;
      if (left_n < options_.min_samples_leaf ||
          n - left_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const size_t right_n = n - left_n;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.threshold = (pairs[i].first + pairs[i + 1].first) / 2.0;
        best.gain = gain;
      }
    }
  }
  return best;
}

double DecisionTreeRegressor::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    node = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].value;
}

}  // namespace hyper::learn
