#include "learn/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace hyper::learn {

Status DecisionTreeRegressor::Fit(const FeatureMatrix& x,
                                  const std::vector<double>& y) {
  std::vector<size_t> rows(x.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  if (options_.use_histograms) {
    if (x.num_rows() != y.size()) {
      return Status::InvalidArgument("feature/target row counts differ");
    }
    if (rows.empty()) {
      return Status::InvalidArgument("cannot fit a tree on zero rows");
    }
    HYPER_ASSIGN_OR_RETURN(BinnedMatrix binned,
                           BinnedMatrix::Build(x, options_.max_bins));
    return FitBinned(binned, y, std::move(rows));
  }
  return FitSubset(x, y, std::move(rows));
}

Status DecisionTreeRegressor::FitSubset(const FeatureMatrix& x,
                                        const std::vector<double>& y,
                                        std::vector<size_t> rows) {
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  for (size_t r : rows) {
    if (r >= x.num_rows()) return Status::OutOfRange("row index out of range");
  }
  nodes_.clear();
  depth_ = 0;
  order_ = std::move(rows);
  BuildNode(x, y, 0, order_.size(), 0);
  return Status::OK();
}

Status DecisionTreeRegressor::FitBinned(const BinnedMatrix& binned,
                                        const std::vector<double>& y,
                                        std::vector<size_t> rows) {
  if (binned.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  for (size_t r : rows) {
    if (r >= binned.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
  }
  nodes_.clear();
  depth_ = 0;
  order_ = std::move(rows);
  BuildNodeHist(binned, y, 0, order_.size(), 0, Hist{});
  return Status::OK();
}

int DecisionTreeRegressor::BuildNode(const FeatureMatrix& x,
                                     const std::vector<double>& y,
                                     size_t begin, size_t end, int depth) {
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;

  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += y[order_[i]];
  const double mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf) {
    return node_index;
  }

  // Pure nodes stop; impure nodes accept the best valid split even at zero
  // immediate gain (an XOR-style interaction has zero marginal gain at the
  // root yet splits perfectly one level down).
  double sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double d = y[order_[i]] - mean;
    sq += d * d;
  }
  if (sq <= 1e-12) return node_index;

  Split split = FindBestSplit(x, y, begin, end);
  if (split.feature < 0) {
    return node_index;  // no valid candidate (all features constant)
  }

  // Partition order_[begin, end) around the threshold.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (x.At(order_[i], split.feature) <= split.threshold) {
      std::swap(order_[i], order_[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {
    return node_index;  // degenerate split (ties): keep as leaf
  }

  nodes_[node_index].feature = split.feature;
  nodes_[node_index].threshold = split.threshold;
  const int left = BuildNode(x, y, begin, mid, depth + 1);
  const int right = BuildNode(x, y, mid, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

DecisionTreeRegressor::Split DecisionTreeRegressor::FindBestSplit(
    const FeatureMatrix& x, const std::vector<double>& y, size_t begin,
    size_t end) {
  const size_t n = end - begin;
  const size_t num_features = x.num_cols();

  // Candidate features (random subset when max_features is set — forests).
  std::vector<size_t> features;
  if (options_.max_features > 0 && options_.max_features < num_features) {
    features = rng_.SampleWithoutReplacement(num_features,
                                             options_.max_features);
  } else {
    features.resize(num_features);
    for (size_t f = 0; f < num_features; ++f) features[f] = f;
  }

  Split best;
  best.gain = -1.0;  // accept zero-gain splits; see BuildNode
  std::vector<std::pair<double, double>> pairs;  // (feature value, target)
  pairs.reserve(n);

  double total_sum = 0.0, total_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double t = y[order_[i]];
    total_sum += t;
    total_sq += t * t;
  }
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);

  for (size_t f : features) {
    pairs.clear();
    for (size_t i = begin; i < end; ++i) {
      pairs.emplace_back(x.At(order_[i], f), y[order_[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.front().first == pairs.back().first) continue;  // constant

    // Scan split positions between distinct consecutive values. With more
    // than max_thresholds distinct boundaries, evaluate a stride subset.
    double left_sum = 0.0, left_sq = 0.0;
    size_t left_n = 0;
    // Collect boundary positions first to apply the stride uniformly.
    std::vector<size_t> boundaries;
    for (size_t i = 0; i + 1 < pairs.size(); ++i) {
      if (pairs[i].first < pairs[i + 1].first) boundaries.push_back(i);
    }
    size_t stride = 1;
    if (boundaries.size() > options_.max_thresholds &&
        options_.max_thresholds > 0) {
      stride = boundaries.size() / options_.max_thresholds;
    }

    size_t next_boundary = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      left_sum += pairs[i].second;
      left_sq += pairs[i].second * pairs[i].second;
      ++left_n;
      if (next_boundary >= boundaries.size() ||
          boundaries[next_boundary] != i) {
        continue;
      }
      next_boundary += stride;
      if (left_n < options_.min_samples_leaf ||
          n - left_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const size_t right_n = n - left_n;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.threshold = (pairs[i].first + pairs[i + 1].first) / 2.0;
        best.gain = gain;
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Histogram training. The recursion mirrors BuildNode step for step (same
// leaf conditions, same partition loop, same candidate ordering and
// strictly-greater gain acceptance) so that with one bin per distinct value
// the two paths emit identical trees; only the per-node split search
// changes, from sort-per-feature to one O(n*F) histogram accumulation —
// and a child histogram comes from subtracting the smaller sibling's.
// ---------------------------------------------------------------------------

DecisionTreeRegressor::Hist DecisionTreeRegressor::AccumulateHist(
    const BinnedMatrix& binned, const std::vector<double>& y, size_t begin,
    size_t end) const {
  Hist h;
  h.Reset(binned.total_bins());
  const size_t num_features = binned.num_features();
  double* sums = h.sum.data();
  double* sqs = h.sum_sq.data();
  uint32_t* counts = h.count.data();
  for (size_t i = begin; i < end; ++i) {
    const size_t row = order_[i];
    const uint8_t* codes = binned.row_codes(row);
    const double t = y[row];
    const double tt = t * t;
    for (size_t f = 0; f < num_features; ++f) {
      const size_t b = binned.bin_offset(f) + codes[f];
      sums[b] += t;
      sqs[b] += tt;
      ++counts[b];
    }
  }
  return h;
}

int DecisionTreeRegressor::BuildNodeHist(const BinnedMatrix& binned,
                                         const std::vector<double>& y,
                                         size_t begin, size_t end, int depth,
                                         Hist hist) {
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;

  // Node totals with the exact splitter's accumulation order (row order),
  // so the mean and the split gains agree bit-for-bit on parity fixtures.
  double total_sum = 0.0, total_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double t = y[order_[i]];
    total_sum += t;
    total_sq += t * t;
  }
  const double mean = total_sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = mean;

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf) {
    return node_index;
  }

  // Same two-pass purity check as BuildNode (the centered form differs from
  // total_sq - n*mean^2 in the last ulp, and parity needs identical bits).
  double sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double d = y[order_[i]] - mean;
    sq += d * d;
  }
  if (sq <= 1e-12) return node_index;

  if (hist.empty()) hist = AccumulateHist(binned, y, begin, end);
  Split split = FindBestSplitHist(binned, begin, end, hist, total_sum,
                                  total_sq);
  if (split.feature < 0) {
    return node_index;
  }

  // Partition order_[begin, end) by bin code — the same permutation the
  // exact path produces, since the threshold separates exactly the codes
  // <= split.bin.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (binned.code(order_[i], split.feature) <=
        static_cast<uint8_t>(split.bin)) {
      std::swap(order_[i], order_[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) {
    return node_index;
  }

  nodes_[node_index].feature = split.feature;
  nodes_[node_index].threshold = split.threshold;

  // Child histograms: accumulate the smaller side, subtract for the larger
  // (half the accumulation work per level). Skip children that cannot split
  // anyway — they never read their histogram.
  const size_t left_n = mid - begin;
  const size_t right_n = end - mid;
  const bool need_left = depth + 1 < options_.max_depth &&
                         left_n >= 2 * options_.min_samples_leaf;
  const bool need_right = depth + 1 < options_.max_depth &&
                          right_n >= 2 * options_.min_samples_leaf;
  Hist left_hist, right_hist;
  const bool left_is_small = left_n <= right_n;
  const bool need_small = left_is_small ? need_left : need_right;
  const bool need_large = left_is_small ? need_right : need_left;
  if (need_small || need_large) {
    Hist small = left_is_small ? AccumulateHist(binned, y, begin, mid)
                               : AccumulateHist(binned, y, mid, end);
    if (need_large) {
      // Sibling subtraction over the SoA spans: three independent
      // contiguous loops the compiler turns into packed subtracts.
      Hist large = std::move(hist);
      const size_t bins = large.size();
      for (size_t b = 0; b < bins; ++b) large.sum[b] -= small.sum[b];
      for (size_t b = 0; b < bins; ++b) large.sum_sq[b] -= small.sum_sq[b];
      for (size_t b = 0; b < bins; ++b) large.count[b] -= small.count[b];
      (left_is_small ? right_hist : left_hist) = std::move(large);
    }
    if (need_small) {
      (left_is_small ? left_hist : right_hist) = std::move(small);
    }
  }

  const int left =
      BuildNodeHist(binned, y, begin, mid, depth + 1, std::move(left_hist));
  const int right =
      BuildNodeHist(binned, y, mid, end, depth + 1, std::move(right_hist));
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

DecisionTreeRegressor::Split DecisionTreeRegressor::FindBestSplitHist(
    const BinnedMatrix& binned, size_t begin, size_t end, const Hist& hist,
    double total_sum, double total_sq) {
  const size_t n = end - begin;
  const size_t num_features = binned.num_features();

  std::vector<size_t> features;
  if (options_.max_features > 0 && options_.max_features < num_features) {
    features = rng_.SampleWithoutReplacement(num_features,
                                             options_.max_features);
  } else {
    features.resize(num_features);
    for (size_t f = 0; f < num_features; ++f) features[f] = f;
  }

  Split best;
  best.gain = -1.0;
  const double parent_sse =
      total_sq - total_sum * total_sum / static_cast<double>(n);

  std::vector<uint32_t> present;  // non-empty bins of the current feature
  for (size_t f : features) {
    const size_t num_bins = binned.num_bins(f);
    const size_t off = binned.bin_offset(f);
    const double* sums = hist.sum.data() + off;
    const double* sqs = hist.sum_sq.data() + off;
    const uint32_t* counts = hist.count.data() + off;
    present.clear();
    for (size_t b = 0; b < num_bins; ++b) {
      if (counts[b] > 0) present.push_back(static_cast<uint32_t>(b));
    }
    if (present.size() < 2) continue;  // constant in this node

    // Candidate boundaries sit between consecutive non-empty bins — the
    // same positions the exact path finds between distinct sorted values —
    // and the same stride subsetting applies.
    const size_t num_boundaries = present.size() - 1;
    size_t stride = 1;
    if (num_boundaries > options_.max_thresholds &&
        options_.max_thresholds > 0) {
      stride = num_boundaries / options_.max_thresholds;
    }

    double left_sum = 0.0, left_sq = 0.0;
    size_t left_n = 0;
    size_t next_boundary = 0;
    for (size_t p = 0; p < present.size(); ++p) {
      const uint32_t pb = present[p];
      left_sum += sums[pb];
      left_sq += sqs[pb];
      left_n += counts[pb];
      if (p >= num_boundaries || next_boundary != p) continue;
      next_boundary += stride;
      if (left_n < options_.min_samples_leaf ||
          n - left_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const size_t right_n = n - left_n;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        best.bin = static_cast<int>(present[p]);
        // Halfway between the left bin's largest and the right bin's
        // smallest raw value — identical to the exact midpoint when every
        // bin holds one distinct value. If the midpoint rounds onto an
        // endpoint (adjacent representable doubles), fall back to the left
        // bin's max so `x <= threshold` agrees with the code partition.
        const double lo = binned.bin_max(f, present[p]);
        const double hi = binned.bin_min(f, present[p + 1]);
        double threshold = (lo + hi) / 2.0;
        if (!(threshold > lo && threshold < hi)) threshold = lo;
        best.threshold = threshold;
        best.gain = gain;
      }
    }
  }
  return best;
}

double DecisionTreeRegressor::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(!nodes_.empty());
  return PredictRow(x.data());
}

void DecisionTreeRegressor::PredictBatch(const FeatureMatrix& x,
                                         std::span<double> out) const {
  HYPER_DCHECK(!nodes_.empty());
  HYPER_DCHECK(out.size() == x.num_rows());
  for (size_t r = 0; r < x.num_rows(); ++r) out[r] = PredictRow(x.row(r));
}

void DecisionTreeRegressor::PredictBatchAdd(const FeatureMatrix& x,
                                            double* out) const {
  HYPER_DCHECK(!nodes_.empty());
  for (size_t r = 0; r < x.num_rows(); ++r) out[r] += PredictRow(x.row(r));
}

std::string DecisionTreeRegressor::StructureDigest() const {
  std::string out;
  // Pre-order walk without recursion; nodes_ is already in DFS left-first
  // order but the digest spells out the shape explicitly.
  std::vector<int> stack;
  if (!nodes_.empty()) stack.push_back(0);
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    const Node& node = nodes_[i];
    if (node.feature < 0) {
      out += StrFormat("=%.17g;", node.value);
      continue;
    }
    out += StrFormat("(%d:%.17g;", node.feature, node.threshold);
    stack.push_back(node.right);
    stack.push_back(node.left);
  }
  return out;
}

}  // namespace hyper::learn
