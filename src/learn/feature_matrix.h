#ifndef HYPER_LEARN_FEATURE_MATRIX_H_
#define HYPER_LEARN_FEATURE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hyper::learn {

/// Legacy row-of-rows feature matrix. Kept as a construction convenience
/// (tests build literals with nested braces); everything on the training and
/// inference hot path takes a FeatureMatrix.
using Matrix = std::vector<std::vector<double>>;

/// Flat, contiguous row-major feature matrix: one allocation, rows at stride
/// num_cols. This replaces Matrix = vector<vector<double>> on the estimator
/// hot path — tree training walks columns of many rows per node and batched
/// inference walks rows, and both want cache-line locality instead of a
/// pointer chase per row.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;

  /// Zero-initialized matrix with the given shape.
  FeatureMatrix(size_t num_rows, size_t num_cols)
      : num_rows_(num_rows), num_cols_(num_cols), data_(num_rows * num_cols) {}

  /// Adopts a flat row-major buffer of `num_cols`-wide rows (buffer size
  /// must be a multiple of num_cols; for num_cols == 0 the matrix is empty).
  FeatureMatrix(size_t num_cols, std::vector<double> data)
      : num_rows_(num_cols == 0 ? 0 : data.size() / num_cols),
        num_cols_(num_cols),
        data_(std::move(data)) {}

  /// Converting constructor from the legacy row-of-rows shape (implicit on
  /// purpose: call sites migrate by recompiling). Ragged inputs are squared
  /// off to the first row's width; rows beyond it are truncated, short rows
  /// zero-padded — in practice every producer emits rectangular data.
  FeatureMatrix(const Matrix& rows) {  // NOLINT(google-explicit-constructor)
    num_rows_ = rows.size();
    num_cols_ = rows.empty() ? 0 : rows.front().size();
    data_.resize(num_rows_ * num_cols_);
    for (size_t r = 0; r < num_rows_; ++r) {
      const size_t copy = rows[r].size() < num_cols_ ? rows[r].size()
                                                     : num_cols_;
      for (size_t c = 0; c < copy; ++c) data_[r * num_cols_ + c] = rows[r][c];
    }
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return num_cols_; }
  bool empty() const { return num_rows_ == 0; }

  const double* row(size_t r) const { return data_.data() + r * num_cols_; }
  double* mutable_row(size_t r) { return data_.data() + r * num_cols_; }

  double At(size_t r, size_t c) const { return data_[r * num_cols_ + c]; }
  void Set(size_t r, size_t c, double v) { data_[r * num_cols_ + c] = v; }

  const std::vector<double>& data() const { return data_; }

 private:
  size_t num_rows_ = 0;
  size_t num_cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_FEATURE_MATRIX_H_
