#ifndef HYPER_LEARN_TREE_H_
#define HYPER_LEARN_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "learn/estimator.h"

namespace hyper::learn {

struct TreeOptions {
  int max_depth = 12;
  size_t min_samples_leaf = 5;
  /// Features considered per split; 0 = all (single trees), forests pass
  /// ~sqrt(#features).
  size_t max_features = 0;
  /// Cap on candidate thresholds per feature per node; larger = finer splits
  /// but slower training.
  size_t max_thresholds = 64;
};

/// CART regression tree: axis-aligned splits chosen by variance reduction,
/// leaves predict the mean target of their training rows.
class DecisionTreeRegressor : public ConditionalMeanEstimator {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {},
                                 uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  Status Fit(const Matrix& x, const std::vector<double>& y) override;

  /// Trains on the subset of rows `rows` of (x, y) — used by forests for
  /// bootstrap samples without copying the matrix.
  Status FitSubset(const Matrix& x, const std::vector<double>& y,
                   std::vector<size_t> rows);

  double Predict(const std::vector<double>& x) const override;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf prediction
  };

  /// Builds the subtree over x/y rows [begin, end) of `order_` at `depth`;
  /// returns the node index.
  int BuildNode(const Matrix& x, const std::vector<double>& y, size_t begin,
                size_t end, int depth);

  struct Split {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };
  Split FindBestSplit(const Matrix& x, const std::vector<double>& y,
                      size_t begin, size_t end);

  TreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<size_t> order_;  // row indices, partitioned during building
  int depth_ = 0;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_TREE_H_
