#ifndef HYPER_LEARN_TREE_H_
#define HYPER_LEARN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "learn/binning.h"
#include "learn/estimator.h"

namespace hyper::learn {

struct TreeOptions {
  int max_depth = 12;
  size_t min_samples_leaf = 5;
  /// Features considered per split; 0 = all (single trees), forests pass
  /// ~sqrt(#features).
  size_t max_features = 0;
  /// Cap on candidate thresholds per feature per node; larger = finer splits
  /// but slower training.
  size_t max_thresholds = 64;
  /// Histogram training (default): features are pre-binned to <= max_bins
  /// uint8_t codes and each node scans per-feature (count, sum_y, sum_y^2)
  /// histograms — O(n*f) per node with the sibling-subtraction trick —
  /// instead of re-sorting (value, target) pairs per feature per node.
  /// Off = the exact sort-based splitter, kept for A/B benchmarking; with
  /// bins >= distinct values the two produce identical trees.
  bool use_histograms = true;
  /// Bin budget per feature for histogram training (clamped to 256).
  size_t max_bins = 256;
};

/// CART regression tree: axis-aligned splits chosen by variance reduction,
/// leaves predict the mean target of their training rows.
class DecisionTreeRegressor : public ConditionalMeanEstimator {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {},
                                 uint64_t seed = 42)
      : options_(options), rng_(seed) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;

  /// Trains on the subset of rows `rows` of (x, y) with the exact sort-based
  /// splitter — used by forests for bootstrap samples without copying the
  /// matrix.
  Status FitSubset(const FeatureMatrix& x, const std::vector<double>& y,
                   std::vector<size_t> rows);

  /// Histogram training against a pre-binned matrix (built once by the
  /// caller and shared across trees/estimators). Only the codes and bin
  /// metadata are read — the raw matrix is not needed.
  Status FitBinned(const BinnedMatrix& binned, const std::vector<double>& y,
                   std::vector<size_t> rows);

  double Predict(const std::vector<double>& x) const override;

  /// Non-virtual single-row traversal over a contiguous feature row.
  double PredictRow(const double* x) const {
    int node = 0;
    while (nodes_[node].feature >= 0) {
      const Node& n = nodes_[node];
      node = x[n.feature] <= n.threshold ? n.left : n.right;
    }
    return nodes_[node].value;
  }

  void PredictBatch(const FeatureMatrix& x,
                    std::span<double> out) const override;

  /// out[r] += Predict(row r) for every row — the forest's tree-at-a-time
  /// accumulation kernel.
  void PredictBatchAdd(const FeatureMatrix& x, double* out) const;

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

  /// Pre-order structural fingerprint ("feature:threshold" per split,
  /// "=value" per leaf) — lets tests assert two trees are identical without
  /// exposing the node layout.
  std::string StructureDigest() const;

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;      // leaf prediction
  };

  /// Per-bin target statistics for histogram split finding, in
  /// structure-of-arrays layout (flattened to the BinnedMatrix bin order):
  /// sibling subtraction and the per-feature split scans then run over
  /// contiguous double spans the compiler vectorizes, instead of striding
  /// through 24-byte structs.
  struct Hist {
    std::vector<double> sum;
    std::vector<double> sum_sq;
    std::vector<uint32_t> count;

    bool empty() const { return sum.empty(); }
    size_t size() const { return sum.size(); }
    void Reset(size_t bins) {
      sum.assign(bins, 0.0);
      sum_sq.assign(bins, 0.0);
      count.assign(bins, 0);
    }
  };

  /// Builds the subtree over x/y rows [begin, end) of `order_` at `depth`
  /// with the exact splitter; returns the node index.
  int BuildNode(const FeatureMatrix& x, const std::vector<double>& y,
                size_t begin, size_t end, int depth);

  /// Histogram twin of BuildNode. `hist` is this node's histogram when the
  /// parent already derived it (sibling subtraction), empty otherwise.
  int BuildNodeHist(const BinnedMatrix& binned, const std::vector<double>& y,
                    size_t begin, size_t end, int depth, Hist hist);

  struct Split {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
    int bin = -1;  // histogram mode: go left when code <= bin
  };
  Split FindBestSplit(const FeatureMatrix& x, const std::vector<double>& y,
                      size_t begin, size_t end);
  Split FindBestSplitHist(const BinnedMatrix& binned, size_t begin, size_t end,
                          const Hist& hist, double total_sum, double total_sq);

  Hist AccumulateHist(const BinnedMatrix& binned, const std::vector<double>& y,
                      size_t begin, size_t end) const;

  TreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<size_t> order_;  // row indices, partitioned during building
  int depth_ = 0;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_TREE_H_
