#ifndef HYPER_LEARN_BINNING_H_
#define HYPER_LEARN_BINNING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "learn/feature_matrix.h"

namespace hyper::learn {

/// Pre-binned image of a FeatureMatrix for histogram tree training
/// (LightGBM-style): every feature is quantile-binned to at most 256
/// uint8_t codes, computed ONCE per training matrix and shared across all
/// pattern estimators and all trees of a forest. Codes are stored row-major
/// so a node's histogram accumulation reads one contiguous byte row per
/// training tuple.
///
/// Per-bin metadata keeps the raw-value extrema observed at build time:
/// split thresholds are placed halfway between the left bin's max and the
/// right bin's min, so when every distinct value gets its own bin (<= 256
/// distinct values) histogram splits evaluate the same candidate set at the
/// same thresholds as the exact sort-based splitter. Split *gains* sum the
/// targets per bin rather than per sorted row, so the two paths produce
/// identical trees whenever target partial sums are exact in double
/// (indicator 0/1 targets — every weight estimator — and integer-valued
/// outputs); fractional targets can differ in the last ulp and flip a
/// near-tied split.
class BinnedMatrix {
 public:
  /// Bins `x` with at most `max_bins` (clamped to 256) codes per feature.
  /// Features with <= max_bins distinct values get one bin per value;
  /// denser features get equal-count (quantile) bins.
  static Result<BinnedMatrix> Build(const FeatureMatrix& x,
                                    size_t max_bins = 256);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return num_features_; }

  /// Codes of one row, contiguous, one byte per feature.
  const uint8_t* row_codes(size_t r) const {
    return codes_.data() + r * num_features_;
  }
  uint8_t code(size_t r, size_t f) const {
    return codes_[r * num_features_ + f];
  }

  /// Bin count of feature `f`.
  size_t num_bins(size_t f) const { return offsets_[f + 1] - offsets_[f]; }
  /// Offset of feature `f`'s bins in the flattened histogram layout.
  size_t bin_offset(size_t f) const { return offsets_[f]; }
  /// Total bins across all features — the flattened histogram length.
  size_t total_bins() const { return offsets_.back(); }

  /// Smallest / largest raw value binned into (f, b) at build time.
  double bin_min(size_t f, size_t b) const { return bin_min_[offsets_[f] + b]; }
  double bin_max(size_t f, size_t b) const { return bin_max_[offsets_[f] + b]; }

 private:
  size_t num_rows_ = 0;
  size_t num_features_ = 0;
  std::vector<uint8_t> codes_;     // row-major, num_rows x num_features
  std::vector<size_t> offsets_;    // per-feature bin offsets, size F+1
  std::vector<double> bin_min_;    // flattened per-bin minima
  std::vector<double> bin_max_;    // flattened per-bin maxima
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_BINNING_H_
