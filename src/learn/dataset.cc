#include "learn/dataset.h"

#include "common/strings.h"

namespace hyper::learn {

Result<FeatureEncoder> FeatureEncoder::Fit(
    const Table& table, const std::vector<std::string>& columns) {
  FeatureEncoder enc;
  enc.columns_ = columns;
  for (const std::string& col : columns) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(col));
    enc.column_indices_.push_back(idx);
    enc.is_categorical_.push_back(table.schema().attribute(idx).type ==
                                  ValueType::kString);
    enc.codes_.emplace_back();
  }
  // Label-encode string columns in first-seen order.
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (size_t f = 0; f < enc.columns_.size(); ++f) {
      if (!enc.is_categorical_[f]) continue;
      const Value& v = table.At(t, enc.column_indices_[f]);
      if (v.is_null()) continue;
      auto& codes = enc.codes_[f];
      codes.emplace(v.string_value(), static_cast<double>(codes.size()));
    }
  }
  return enc;
}

Result<double> FeatureEncoder::EncodeValue(size_t i, const Value& v) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("feature index out of range");
  }
  if (v.is_null()) {
    // NULLs encode as a sentinel below every real value; trees can separate
    // them from genuine data.
    return -1e30;
  }
  if (is_categorical_[i]) {
    if (v.type() != ValueType::kString) {
      // Numeric value for a categorical feature (e.g. pre-encoded): accept.
      return v.AsDouble();
    }
    auto it = codes_[i].find(v.string_value());
    if (it == codes_[i].end()) {
      return static_cast<double>(codes_[i].size());  // unseen category
    }
    return it->second;
  }
  return v.AsDouble();
}

Result<std::vector<double>> FeatureEncoder::EncodeRow(const Table& table,
                                                      size_t tid) const {
  std::vector<double> out(columns_.size());
  for (size_t f = 0; f < columns_.size(); ++f) {
    HYPER_ASSIGN_OR_RETURN(out[f],
                           EncodeValue(f, table.At(tid, column_indices_[f])));
  }
  return out;
}

Result<Matrix> FeatureEncoder::EncodeAll(const Table& table) const {
  Matrix out;
  out.reserve(table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    HYPER_ASSIGN_OR_RETURN(std::vector<double> row, EncodeRow(table, t));
    out.push_back(std::move(row));
  }
  return out;
}

Result<Matrix> FeatureEncoder::EncodeSubset(
    const Table& table, const std::vector<size_t>& tids) const {
  Matrix out;
  out.reserve(tids.size());
  for (size_t t : tids) {
    HYPER_ASSIGN_OR_RETURN(std::vector<double> row, EncodeRow(table, t));
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<double>> ExtractTarget(const Table& table,
                                          const std::string& column) {
  HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(column));
  std::vector<double> out;
  out.reserve(table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    const Value& v = table.At(t, idx);
    if (v.is_null()) {
      return Status::InvalidArgument(
          StrFormat("NULL target in column '%s' at row %zu", column.c_str(),
                    t));
    }
    HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
    out.push_back(d);
  }
  return out;
}

}  // namespace hyper::learn
