#include "learn/dataset.h"

#include "common/strings.h"

namespace hyper::learn {

Result<FeatureEncoder> FeatureEncoder::Fit(
    const Table& table, const std::vector<std::string>& columns) {
  FeatureEncoder enc;
  enc.columns_ = columns;
  for (const std::string& col : columns) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(col));
    enc.column_indices_.push_back(idx);
    enc.is_categorical_.push_back(table.schema().attribute(idx).type ==
                                  ValueType::kString);
    enc.codes_.emplace_back();
  }
  // Label-encode string columns in first-seen order.
  for (size_t t = 0; t < table.num_rows(); ++t) {
    for (size_t f = 0; f < enc.columns_.size(); ++f) {
      if (!enc.is_categorical_[f]) continue;
      const Value& v = table.At(t, enc.column_indices_[f]);
      if (v.is_null()) continue;
      auto& codes = enc.codes_[f];
      codes.emplace(v.string_value(), static_cast<double>(codes.size()));
    }
  }
  return enc;
}

Result<FeatureEncoder> FeatureEncoder::Fit(
    const ColumnTable& table, const std::vector<std::string>& columns) {
  FeatureEncoder enc;
  enc.columns_ = columns;
  enc.dict_ = table.shared_dict();
  enc.label_of_code_.resize(columns.size());
  for (const std::string& col : columns) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(col));
    enc.column_indices_.push_back(idx);
    enc.is_categorical_.push_back(table.schema().attribute(idx).type ==
                                  ValueType::kString);
    enc.codes_.emplace_back();
  }
  // Label-encode string columns in first-seen row order — the same labels
  // the row-store Fit assigns, derived from dictionary codes.
  for (size_t f = 0; f < enc.columns_.size(); ++f) {
    if (!enc.is_categorical_[f]) continue;
    const Column& col = table.col(enc.column_indices_[f]);
    if (col.kind != ColumnKind::kCode) continue;  // e.g. all-NULL column
    std::vector<double>& remap = enc.label_of_code_[f];
    remap.assign(table.dict().size(), -1.0);
    double next = 0.0;
    for (size_t r = 0; r < col.codes.size(); ++r) {
      const int32_t code = col.codes[r];
      if (code == Dictionary::kNullCode) continue;
      if (remap[code] < 0.0) {
        remap[code] = next;
        next += 1.0;
      }
    }
    // Mirror into the string map so EncodeValue works for ad-hoc values.
    for (size_t code = 0; code < remap.size(); ++code) {
      if (remap[code] >= 0.0) {
        enc.codes_[f].emplace(table.dict().at(static_cast<int32_t>(code)),
                              remap[code]);
      }
    }
  }
  return enc;
}

Result<std::vector<double>> FeatureEncoder::EncodeColumn(
    const ColumnTable& table, size_t i) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("feature index out of range");
  }
  if (table.shared_dict() != dict_) {
    return Status::InvalidArgument(
        "EncodeColumn requires the table the encoder was fitted on");
  }
  const Column& col = table.col(column_indices_[i]);
  const size_t n = table.num_rows();
  std::vector<double> out(n);
  if (col.kind == ColumnKind::kCode) {
    if (!is_categorical_[i]) {
      return Status::InvalidArgument("cannot coerce string column '" +
                                     columns_[i] + "' to a number");
    }
    const std::vector<double>& remap = label_of_code_[i];
    const double unseen = static_cast<double>(codes_[i].size());
    for (size_t r = 0; r < n; ++r) {
      const int32_t code = col.codes[r];
      if (code == Dictionary::kNullCode) {
        out[r] = -1e30;  // NULL sentinel, as in EncodeValue
      } else if (static_cast<size_t>(code) < remap.size() &&
                 remap[code] >= 0.0) {
        out[r] = remap[code];
      } else {
        out[r] = unseen;
      }
    }
    return out;
  }
  // Numeric columns (also numeric data under a categorical declaration —
  // EncodeValue passes those through AsDouble).
  switch (col.kind) {
    case ColumnKind::kInt64:
      for (size_t r = 0; r < n; ++r) {
        out[r] = col.is_null(r) ? -1e30 : static_cast<double>(col.i64[r]);
      }
      break;
    case ColumnKind::kDouble:
      for (size_t r = 0; r < n; ++r) {
        out[r] = col.is_null(r) ? -1e30 : col.f64[r];
      }
      break;
    case ColumnKind::kBool:
      for (size_t r = 0; r < n; ++r) {
        out[r] = col.is_null(r) ? -1e30 : (col.b8[r] != 0 ? 1.0 : 0.0);
      }
      break;
    case ColumnKind::kCode:
      break;  // handled above
  }
  return out;
}

Result<double> FeatureEncoder::EncodeValue(size_t i, const Value& v) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("feature index out of range");
  }
  if (v.is_null()) {
    // NULLs encode as a sentinel below every real value; trees can separate
    // them from genuine data.
    return -1e30;
  }
  if (is_categorical_[i]) {
    if (v.type() != ValueType::kString) {
      // Numeric value for a categorical feature (e.g. pre-encoded): accept.
      return v.AsDouble();
    }
    auto it = codes_[i].find(v.string_value());
    if (it == codes_[i].end()) {
      return static_cast<double>(codes_[i].size());  // unseen category
    }
    return it->second;
  }
  return v.AsDouble();
}

Result<std::vector<double>> FeatureEncoder::EncodeRow(const Table& table,
                                                      size_t tid) const {
  std::vector<double> out(columns_.size());
  for (size_t f = 0; f < columns_.size(); ++f) {
    HYPER_ASSIGN_OR_RETURN(out[f],
                           EncodeValue(f, table.At(tid, column_indices_[f])));
  }
  return out;
}

Result<FeatureMatrix> FeatureEncoder::EncodeAll(const Table& table) const {
  FeatureMatrix out(table.num_rows(), columns_.size());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    double* row = out.mutable_row(t);
    for (size_t f = 0; f < columns_.size(); ++f) {
      HYPER_ASSIGN_OR_RETURN(row[f],
                             EncodeValue(f, table.At(t, column_indices_[f])));
    }
  }
  return out;
}

Result<FeatureMatrix> FeatureEncoder::EncodeSubset(
    const Table& table, const std::vector<size_t>& tids) const {
  FeatureMatrix out(tids.size(), columns_.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    double* row = out.mutable_row(i);
    for (size_t f = 0; f < columns_.size(); ++f) {
      HYPER_ASSIGN_OR_RETURN(
          row[f], EncodeValue(f, table.At(tids[i], column_indices_[f])));
    }
  }
  return out;
}

Result<std::vector<double>> ExtractTarget(const Table& table,
                                          const std::string& column) {
  HYPER_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(column));
  std::vector<double> out;
  out.reserve(table.num_rows());
  for (size_t t = 0; t < table.num_rows(); ++t) {
    const Value& v = table.At(t, idx);
    if (v.is_null()) {
      return Status::InvalidArgument(
          StrFormat("NULL target in column '%s' at row %zu", column.c_str(),
                    t));
    }
    HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
    out.push_back(d);
  }
  return out;
}

}  // namespace hyper::learn
