#include "learn/binning.h"

#include <algorithm>
#include <cmath>

namespace hyper::learn {

Result<BinnedMatrix> BinnedMatrix::Build(const FeatureMatrix& x,
                                         size_t max_bins) {
  if (max_bins == 0) {
    return Status::InvalidArgument("max_bins must be positive");
  }
  max_bins = std::min<size_t>(max_bins, 256);  // codes are uint8_t

  BinnedMatrix out;
  out.num_rows_ = x.num_rows();
  out.num_features_ = x.num_cols();
  out.offsets_.assign(out.num_features_ + 1, 0);
  out.codes_.assign(out.num_rows_ * out.num_features_, 0);

  const size_t n = out.num_rows_;
  std::vector<double> sorted(n);
  for (size_t f = 0; f < out.num_features_; ++f) {
    for (size_t r = 0; r < n; ++r) {
      const double v = x.At(r, f);
      if (std::isnan(v)) {
        // Checked before the sort: NaN breaks strict weak ordering, so it
        // must never reach std::sort or the lower_bound code assignment.
        return Status::InvalidArgument("cannot bin NaN feature values");
      }
      sorted[r] = v;
    }
    std::sort(sorted.begin(), sorted.end());

    // Walk the sorted column once, closing a bin when it has reached its
    // equal-count share AND the next value differs (bins never split a tie
    // run, so every raw value maps to exactly one bin). With <= max_bins
    // distinct values every distinct value closes its own bin.
    const size_t feature_offset = out.bin_min_.size();
    out.offsets_[f] = feature_offset;
    if (n == 0) continue;
    size_t distinct = 1;
    for (size_t r = 1; r < n; ++r) {
      if (sorted[r] != sorted[r - 1]) ++distinct;
    }
    const size_t target_bins = std::min(distinct, max_bins);
    size_t bin_start = 0;  // first sorted index of the open bin
    size_t bins_made = 0;
    for (size_t r = 0; r < n; ++r) {
      const bool last = r + 1 == n;
      const bool tie = !last && sorted[r + 1] == sorted[r];
      // Close after index r when we're at the end, or the bin has consumed
      // its share of rows, or one bin per distinct value is wanted.
      const size_t filled = r + 1 - bin_start;
      const size_t remaining_bins = target_bins - bins_made;
      const size_t remaining_rows = n - bin_start;
      const bool quota = filled * remaining_bins >= remaining_rows;
      if (last || (!tie && (quota || target_bins == distinct))) {
        if (!last && remaining_bins == 1) continue;  // rest joins last bin
        out.bin_min_.push_back(sorted[bin_start]);
        out.bin_max_.push_back(sorted[r]);
        ++bins_made;
        bin_start = r + 1;
      }
    }
    const size_t bins = out.bin_min_.size() - feature_offset;
    if (bins > 256) {
      return Status::Internal("binning produced more than 256 bins");
    }

    // Assign codes: first bin whose max covers the value. Values outside the
    // build range clamp into the end bins (only reachable if callers bin one
    // matrix and code another, which the engine never does).
    const double* bmax = out.bin_max_.data() + feature_offset;
    for (size_t r = 0; r < n; ++r) {
      const double v = x.At(r, f);
      const size_t b =
          std::lower_bound(bmax, bmax + bins, v) - bmax;
      out.codes_[r * out.num_features_ + f] =
          static_cast<uint8_t>(b < bins ? b : bins - 1);
    }
  }
  out.offsets_[out.num_features_] = out.bin_min_.size();
  return out;
}

}  // namespace hyper::learn
