#include "learn/frequency.h"

#include "common/logging.h"

namespace hyper::learn {

Status FrequencyEstimator::Fit(const FeatureMatrix& x,
                               const std::vector<double>& y) {
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit estimator on zero rows");
  }
  num_features_ = x.num_cols();
  tables_.clear();
  const size_t levels = backoff_ ? num_features_ : 1;
  tables_.resize(std::max<size_t>(levels, 1));

  double total = 0.0;
  for (size_t i = 0; i < x.num_rows(); ++i) {
    total += y[i];
    if (num_features_ == 0) continue;
    const double* row = x.row(i);
    size_t h = kFnvOffset;
    if (backoff_) {
      for (size_t k = 0; k < num_features_; ++k) {
        h = HashStep(h, row[k]);
        SupportTable& table = tables_[k];
        const PrefixView view{row, k + 1, h};
        auto it = table.find(view);
        if (it == table.end()) {
          it = table
                   .emplace(PrefixKey{std::vector<double>(row, row + k + 1), h},
                            Cell{})
                   .first;
        }
        it->second.sum += y[i];
        ++it->second.count;
      }
    } else {
      for (size_t k = 0; k < num_features_; ++k) h = HashStep(h, row[k]);
      SupportTable& table = tables_[0];
      const PrefixView view{row, num_features_, h};
      auto it = table.find(view);
      if (it == table.end()) {
        it = table
                 .emplace(PrefixKey{std::vector<double>(row, row + num_features_),
                                    h},
                          Cell{})
                 .first;
      }
      it->second.sum += y[i];
      ++it->second.count;
    }
  }
  global_mean_ = total / static_cast<double>(x.num_rows());
  return Status::OK();
}

double FrequencyEstimator::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(x.size() == num_features_);
  return PredictPtr(x.data());
}

void FrequencyEstimator::PredictBatch(const FeatureMatrix& x,
                                      std::span<double> out) const {
  HYPER_DCHECK(x.num_cols() == num_features_);
  HYPER_DCHECK(out.size() == x.num_rows());
  for (size_t r = 0; r < x.num_rows(); ++r) out[r] = PredictPtr(x.row(r));
}

double FrequencyEstimator::PredictPtr(const double* row) const {
  if (num_features_ == 0 || tables_.empty()) return global_mean_;
  if (!backoff_) {
    size_t h = kFnvOffset;
    for (size_t k = 0; k < num_features_; ++k) h = HashStep(h, row[k]);
    auto it = tables_[0].find(PrefixView{row, num_features_, h});
    if (it == tables_[0].end()) return global_mean_;
    return (it->second.sum + smoothing_ * global_mean_) /
           (static_cast<double>(it->second.count) + smoothing_);
  }

  std::vector<size_t> hashes(num_features_);
  {
    size_t h = kFnvOffset;
    for (size_t k = 0; k < num_features_; ++k) {
      h = HashStep(h, row[k]);
      hashes[k] = h;
    }
  }

  if (smoothing_ <= 0.0) {
    // Exact mode: longest-prefix match, most specific first.
    for (size_t k = num_features_; k > 0; --k) {
      const SupportTable& table = tables_[k - 1];
      auto it = table.find(PrefixView{row, k, hashes[k - 1]});
      if (it != table.end()) {
        return it->second.sum / static_cast<double>(it->second.count);
      }
    }
    return global_mean_;
  }

  // Hierarchical shrinkage: fold from the least specific level down,
  // blending each cell with the estimate one level up.
  double estimate = global_mean_;
  for (size_t k = 0; k < num_features_; ++k) {
    auto it = tables_[k].find(PrefixView{row, k + 1, hashes[k]});
    if (it == tables_[k].end()) break;  // deeper levels are unseen too
    estimate = (it->second.sum + smoothing_ * estimate) /
               (static_cast<double>(it->second.count) + smoothing_);
  }
  return estimate;
}

}  // namespace hyper::learn
