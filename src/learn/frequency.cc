#include "learn/frequency.h"

#include "common/logging.h"

namespace hyper::learn {

Status FrequencyEstimator::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit estimator on zero rows");
  }
  num_features_ = x[0].size();
  tables_.clear();
  const size_t levels = backoff_ ? num_features_ : 1;
  tables_.resize(std::max<size_t>(levels, 1));

  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    total += y[i];
    if (num_features_ == 0) continue;
    if (backoff_) {
      std::vector<double> prefix;
      prefix.reserve(num_features_);
      for (size_t k = 0; k < num_features_; ++k) {
        prefix.push_back(x[i][k]);
        Cell& cell = tables_[k][prefix];
        cell.sum += y[i];
        ++cell.count;
      }
    } else {
      Cell& cell = tables_[0][x[i]];
      cell.sum += y[i];
      ++cell.count;
    }
  }
  global_mean_ = total / static_cast<double>(x.size());
  return Status::OK();
}

double FrequencyEstimator::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(x.size() == num_features_);
  if (num_features_ == 0 || tables_.empty()) return global_mean_;

  if (!backoff_) {
    auto it = tables_[0].find(x);
    if (it == tables_[0].end()) return global_mean_;
    return (it->second.sum + smoothing_ * global_mean_) /
           (static_cast<double>(it->second.count) + smoothing_);
  }

  if (smoothing_ <= 0.0) {
    // Exact mode: longest-prefix match, most specific first.
    std::vector<double> prefix = x;
    for (size_t k = num_features_; k > 0; --k) {
      prefix.resize(k);
      const SupportTable& table = tables_[k - 1];
      auto it = table.find(prefix);
      if (it != table.end()) {
        return it->second.sum / static_cast<double>(it->second.count);
      }
    }
    return global_mean_;
  }

  // Hierarchical shrinkage: fold from the least specific level down,
  // blending each cell with the estimate one level up.
  double estimate = global_mean_;
  std::vector<double> prefix;
  prefix.reserve(num_features_);
  for (size_t k = 0; k < num_features_; ++k) {
    prefix.push_back(x[k]);
    auto it = tables_[k].find(prefix);
    if (it == tables_[k].end()) break;  // deeper levels are unseen too
    estimate = (it->second.sum + smoothing_ * estimate) /
               (static_cast<double>(it->second.count) + smoothing_);
  }
  return estimate;
}

}  // namespace hyper::learn
