#include "learn/forest.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace hyper::learn {

Status RandomForestRegressor::Fit(const FeatureMatrix& x,
                                  const std::vector<double>& y) {
  if (options_.tree.use_histograms && !x.empty()) {
    HYPER_ASSIGN_OR_RETURN(BinnedMatrix binned,
                           BinnedMatrix::Build(x, options_.tree.max_bins));
    return FitImpl(x, &binned, y);
  }
  return FitImpl(x, /*binned=*/nullptr, y);
}

Status RandomForestRegressor::FitPreBinned(const FeatureMatrix& x,
                                           const BinnedMatrix& binned,
                                           const std::vector<double>& y) {
  if (!options_.tree.use_histograms) {
    return Status::InvalidArgument(
        "FitPreBinned requires tree.use_histograms");
  }
  if (binned.num_rows() != x.num_rows() ||
      binned.num_features() != x.num_cols()) {
    return Status::InvalidArgument(
        "binned matrix shape does not match the feature matrix");
  }
  return FitImpl(x, &binned, y);
}

Status RandomForestRegressor::FitImpl(const FeatureMatrix& x,
                                      const BinnedMatrix* binned,
                                      const std::vector<double>& y) {
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit a forest on zero rows");
  }
  trees_.clear();
  trees_.reserve(options_.num_trees);

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0 && options_.sqrt_features &&
      x.num_cols() > 0) {
    tree_options.max_features = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(x.num_cols()))));
  }

  // Draw every bootstrap sample up front from one sequential stream so the
  // forest is deterministic regardless of how training is scheduled.
  Rng rng(options_.seed);
  const size_t n = x.num_rows();
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
  std::vector<std::vector<size_t>> bootstraps(options_.num_trees);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    bootstraps[t].resize(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      bootstraps[t][i] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    trees_.emplace_back(tree_options, /*seed=*/options_.seed + 7919 * (t + 1));
  }

  // Worker budget: an explicit num_threads wins; in auto mode (0) small
  // problems stay sequential — thread handoff would dominate the work.
  size_t budget = ThreadPool::ResolveBudget(options_.num_threads);
  if (options_.num_threads == 0 && n * options_.num_trees <= 65536) {
    budget = 1;
  }
  const size_t workers = std::min<size_t>(options_.num_trees, budget);

  auto fit_one = [&](size_t t) -> Status {
    if (binned != nullptr) {
      return trees_[t].FitBinned(*binned, y, std::move(bootstraps[t]));
    }
    return trees_[t].FitSubset(x, y, std::move(bootstraps[t]));
  };

  std::vector<Status> statuses(options_.num_trees);
  if (workers <= 1) {
    for (size_t t = 0; t < options_.num_trees; ++t) {
      statuses[t] = fit_one(t);
    }
  } else {
    // Morsel-claimed trees over the shared pool, capped at `workers` so an
    // explicit budget bounds concurrency even when the process-wide pool is
    // larger. Trees are independent and every tree's result is a function
    // of its (seed, bootstrap) alone, so scheduling never changes the
    // forest — and work stealing keeps slow trees from serializing a shard.
    ThreadPool::Shared().ParallelForRange(
        options_.num_trees, /*grain=*/1,
        [&](size_t begin, size_t end) {
          for (size_t t = begin; t < end; ++t) statuses[t] = fit_one(t);
        },
        /*max_parallelism=*/workers);
  }
  for (const Status& status : statuses) {
    HYPER_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

double RandomForestRegressor::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(!trees_.empty());
  double total = 0.0;
  for (const DecisionTreeRegressor& tree : trees_) {
    total += tree.PredictRow(x.data());
  }
  return total / static_cast<double>(trees_.size());
}

void RandomForestRegressor::PredictBatch(const FeatureMatrix& x,
                                         std::span<double> out) const {
  HYPER_DCHECK(!trees_.empty());
  HYPER_DCHECK(out.size() == x.num_rows());
  std::fill(out.begin(), out.end(), 0.0);
  // Tree-at-a-time accumulation in tree order: every row's sum folds the
  // trees in exactly the order per-row Predict does, so the means match
  // bit for bit.
  for (const DecisionTreeRegressor& tree : trees_) {
    tree.PredictBatchAdd(x, out.data());
  }
  const double scale = static_cast<double>(trees_.size());
  for (double& v : out) v /= scale;
}

}  // namespace hyper::learn
