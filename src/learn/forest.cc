#include "learn/forest.h"

#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"

namespace hyper::learn {

Status RandomForestRegressor::Fit(const Matrix& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("feature/target row counts differ");
  }
  if (x.empty()) {
    return Status::InvalidArgument("cannot fit a forest on zero rows");
  }
  trees_.clear();
  trees_.reserve(options_.num_trees);

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features == 0 && options_.sqrt_features &&
      !x[0].empty()) {
    tree_options.max_features = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(x[0].size()))));
  }

  // Draw every bootstrap sample up front from one sequential stream so the
  // forest is deterministic regardless of how training is scheduled.
  Rng rng(options_.seed);
  const size_t n = x.size();
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
  std::vector<std::vector<size_t>> bootstraps(options_.num_trees);
  for (size_t t = 0; t < options_.num_trees; ++t) {
    bootstraps[t].resize(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      bootstraps[t][i] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    trees_.emplace_back(tree_options, /*seed=*/options_.seed + 7919 * (t + 1));
  }

  // Train trees in parallel when the work is worth the thread overhead.
  const size_t hardware = std::thread::hardware_concurrency();
  const size_t workers = std::min<size_t>(
      options_.num_trees,
      hardware > 1 && n * options_.num_trees > 65536 ? hardware : 1);
  std::vector<Status> statuses(options_.num_trees);
  if (workers <= 1) {
    for (size_t t = 0; t < options_.num_trees; ++t) {
      statuses[t] = trees_[t].FitSubset(x, y, std::move(bootstraps[t]));
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (size_t t = w; t < options_.num_trees; t += workers) {
          statuses[t] = trees_[t].FitSubset(x, y, std::move(bootstraps[t]));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const Status& status : statuses) {
    HYPER_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

double RandomForestRegressor::Predict(const std::vector<double>& x) const {
  HYPER_DCHECK(!trees_.empty());
  double total = 0.0;
  for (const DecisionTreeRegressor& tree : trees_) {
    total += tree.Predict(x);
  }
  return total / static_cast<double>(trees_.size());
}

}  // namespace hyper::learn
