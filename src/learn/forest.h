#ifndef HYPER_LEARN_FOREST_H_
#define HYPER_LEARN_FOREST_H_

#include <cstdint>
#include <vector>

#include "learn/tree.h"

namespace hyper::learn {

struct ForestOptions {
  size_t num_trees = 16;
  TreeOptions tree = {};
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  /// When true and tree.max_features == 0, each tree considers
  /// ceil(sqrt(#features)) features per split (standard RF default).
  bool sqrt_features = true;
  uint64_t seed = 1234;
};

/// Bagged random forest regressor — the estimator the paper uses for
/// conditional probabilities (§5 "random forest regressor").
class RandomForestRegressor : public ConditionalMeanEstimator {
 public:
  explicit RandomForestRegressor(ForestOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_FOREST_H_
