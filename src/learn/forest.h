#ifndef HYPER_LEARN_FOREST_H_
#define HYPER_LEARN_FOREST_H_

#include <cstdint>
#include <vector>

#include "learn/binning.h"
#include "learn/tree.h"

namespace hyper::learn {

struct ForestOptions {
  size_t num_trees = 16;
  TreeOptions tree = {};
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  /// When true and tree.max_features == 0, each tree considers
  /// ceil(sqrt(#features)) features per split (standard RF default).
  bool sqrt_features = true;
  uint64_t seed = 1234;
  /// Worker budget for tree training: 0 = one worker per hardware thread
  /// (floor 1, gated on there being enough work), 1 = sequential, n = at
  /// most n workers on the shared pool. Training results are bit-for-bit
  /// identical for every setting — bootstraps are drawn up front from one
  /// sequential stream and trees are independent.
  size_t num_threads = 0;
};

/// Bagged random forest regressor — the estimator the paper uses for
/// conditional probabilities (§5 "random forest regressor").
class RandomForestRegressor : public ConditionalMeanEstimator {
 public:
  explicit RandomForestRegressor(ForestOptions options = {})
      : options_(options) {}

  /// Trains the forest. In histogram mode (tree.use_histograms, default)
  /// the matrix is quantile-binned once and shared by every tree.
  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;

  /// Histogram training against a caller-provided binned image of `x` —
  /// lets the what-if engine bin a training matrix once per prepared plan
  /// and share it across every pattern estimator. `binned` must cover the
  /// same rows as `x`. Requires tree.use_histograms.
  Status FitPreBinned(const FeatureMatrix& x, const BinnedMatrix& binned,
                      const std::vector<double>& y);

  double Predict(const std::vector<double>& x) const override;

  /// Tree-at-a-time batched inference: every tree walks all rows before the
  /// next tree starts (no virtual call per row, contiguous feature rows).
  /// Bit-for-bit identical to per-row Predict.
  void PredictBatch(const FeatureMatrix& x,
                    std::span<double> out) const override;

  size_t num_trees() const { return trees_.size(); }
  const DecisionTreeRegressor& tree(size_t t) const { return trees_[t]; }

 private:
  Status FitImpl(const FeatureMatrix& x, const BinnedMatrix* binned,
                 const std::vector<double>& y);

  ForestOptions options_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace hyper::learn

#endif  // HYPER_LEARN_FOREST_H_
