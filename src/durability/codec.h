#ifndef HYPER_DURABILITY_CODEC_H_
#define HYPER_DURABILITY_CODEC_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"
#include "storage/value.h"

namespace hyper::durability {

/// Little-endian binary codec for WAL payloads and snapshots. The contract
/// that matters is bit-exactness: a Value must decode to something whose
/// Value::Hash() equals the original's, because branch delta fingerprints
/// are FNV mixes over those hashes and recovery is verified fingerprint by
/// fingerprint. Doubles therefore travel as their raw 8-byte image (never
/// through text), and integers as fixed-width little-endian words.

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  void Val(const Value& v) {
    U8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull: break;
      case ValueType::kBool: U8(v.bool_value() ? 1 : 0); break;
      case ValueType::kInt: U64(static_cast<uint64_t>(v.int_value())); break;
      case ValueType::kDouble: F64(v.double_value()); break;
      case ValueType::kString: Str(v.string_value()); break;
    }
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over an immutable buffer. Every accessor returns a
/// Status-bearing Result so a truncated or garbage payload surfaces as a
/// typed decode error instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> U32() {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<double> F64() {
    HYPER_ASSIGN_OR_RETURN(uint64_t bits, U64());
    return std::bit_cast<double>(bits);
  }

  Result<std::string> Str() {
    HYPER_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (remaining() < len) return Truncated("string body");
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  Result<Value> Val() {
    HYPER_ASSIGN_OR_RETURN(uint8_t tag, U8());
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull:
        return Value::Null();
      case ValueType::kBool: {
        HYPER_ASSIGN_OR_RETURN(uint8_t b, U8());
        return Value::Bool(b != 0);
      }
      case ValueType::kInt: {
        HYPER_ASSIGN_OR_RETURN(uint64_t v, U64());
        return Value::Int(static_cast<int64_t>(v));
      }
      case ValueType::kDouble: {
        HYPER_ASSIGN_OR_RETURN(double v, F64());
        return Value::Double(v);
      }
      case ValueType::kString: {
        HYPER_ASSIGN_OR_RETURN(std::string s, Str());
        return Value::String(std::move(s));
      }
    }
    return Status::DataLoss("unknown value type tag " + std::to_string(tag) +
                            " in durable record");
  }

 private:
  Status Truncated(const char* what) const {
    return Status::DataLoss(std::string("durable record truncated reading ") +
                            what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hyper::durability

#endif  // HYPER_DURABILITY_CODEC_H_
