#include "durability/manager.h"

#include <chrono>
#include <cstdio>

#include "durability/codec.h"

namespace hyper::durability {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

/// --- Record payload codecs -------------------------------------------------

std::string EncodeCreate(const CreateRecord& r) {
  ByteWriter w;
  w.Str(r.name);
  w.Str(r.parent);
  w.U64(r.post_fingerprint);
  return w.Take();
}

Result<CreateRecord> DecodeCreate(const std::string& payload) {
  ByteReader reader(payload);
  CreateRecord r;
  HYPER_ASSIGN_OR_RETURN(r.name, reader.Str());
  HYPER_ASSIGN_OR_RETURN(r.parent, reader.Str());
  HYPER_ASSIGN_OR_RETURN(r.post_fingerprint, reader.U64());
  return r;
}

std::string EncodeApply(const ApplyRecord& r) {
  ByteWriter w;
  w.Str(r.branch);
  w.U64(r.pre_fingerprint);
  w.U64(r.post_fingerprint);
  w.U32(static_cast<uint32_t>(r.batches.size()));
  for (const ApplyBatch& batch : r.batches) {
    w.Str(batch.relation);
    w.U64(batch.attr);
    w.U32(static_cast<uint32_t>(batch.cells.size()));
    for (const auto& [tid, value] : batch.cells) {
      w.U64(tid);
      w.Val(value);
    }
  }
  return w.Take();
}

Result<ApplyRecord> DecodeApply(const std::string& payload) {
  ByteReader reader(payload);
  ApplyRecord r;
  HYPER_ASSIGN_OR_RETURN(r.branch, reader.Str());
  HYPER_ASSIGN_OR_RETURN(r.pre_fingerprint, reader.U64());
  HYPER_ASSIGN_OR_RETURN(r.post_fingerprint, reader.U64());
  HYPER_ASSIGN_OR_RETURN(uint32_t batch_count, reader.U32());
  r.batches.reserve(batch_count);
  for (uint32_t b = 0; b < batch_count; ++b) {
    ApplyBatch batch;
    HYPER_ASSIGN_OR_RETURN(batch.relation, reader.Str());
    HYPER_ASSIGN_OR_RETURN(batch.attr, reader.U64());
    HYPER_ASSIGN_OR_RETURN(uint32_t cell_count, reader.U32());
    batch.cells.reserve(cell_count);
    for (uint32_t c = 0; c < cell_count; ++c) {
      HYPER_ASSIGN_OR_RETURN(uint64_t tid, reader.U64());
      HYPER_ASSIGN_OR_RETURN(Value value, reader.Val());
      batch.cells.emplace_back(tid, std::move(value));
    }
    r.batches.push_back(std::move(batch));
  }
  if (!reader.done()) {
    return Status::DataLoss("apply record has trailing bytes");
  }
  return r;
}

std::string EncodeDrop(const DropRecord& r) {
  ByteWriter w;
  w.Str(r.name);
  return w.Take();
}

Result<DropRecord> DecodeDrop(const std::string& payload) {
  ByteReader reader(payload);
  DropRecord r;
  HYPER_ASSIGN_OR_RETURN(r.name, reader.Str());
  return r;
}

std::string EncodeReload(const ReloadRecord& r) {
  ByteWriter w;
  w.U64(r.generation);
  w.U64(r.base_fingerprint);
  return w.Take();
}

Result<ReloadRecord> DecodeReload(const std::string& payload) {
  ByteReader reader(payload);
  ReloadRecord r;
  HYPER_ASSIGN_OR_RETURN(r.generation, reader.U64());
  HYPER_ASSIGN_OR_RETURN(r.base_fingerprint, reader.U64());
  return r;
}

/// --- Manager ---------------------------------------------------------------

Manager::Manager(DurabilityOptions options, WalSegmentHeader identity)
    : options_(std::move(options)),
      wal_dir_(options_.dir + "/wal"),
      identity_(identity) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    appends_total_ =
        m.GetCounter("hyper_wal_appends_total", "",
                     "WAL records appended (acknowledged mutations)");
    bytes_total_ = m.GetCounter("hyper_wal_bytes_total", "",
                                "Bytes appended to the WAL, framing included");
    fsync_seconds_ = m.GetHistogram("hyper_wal_fsync_seconds", "",
                                    "Latency of WAL fdatasync calls");
    snapshots_total_ = m.GetCounter("hyper_snapshots_total", "",
                                    "Durable branch-state snapshots written");
    recovery_seconds_ =
        m.GetGauge("hyper_recovery_seconds", "",
                   "Wall seconds spent recovering durable state at startup");
    recovery_replayed_ =
        m.GetGauge("hyper_recovery_records_replayed", "",
                   "WAL records replayed during the last recovery");
  }
}

Result<Manager::OpenResult> Manager::Open(DurabilityOptions options,
                                          uint64_t live_base_fingerprint) {
  const auto start = std::chrono::steady_clock::now();
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability data dir must be non-empty");
  }

  OpenResult result;
  HYPER_ASSIGN_OR_RETURN(result.snapshot, LoadLatestSnapshot(options.dir));
  const std::string wal_dir = options.dir + "/wal";
  HYPER_ASSIGN_OR_RETURN(ReadLogResult log, ReadLog(wal_dir));

  RecoveryInfo& info = result.info;
  info.snapshot_loaded = result.snapshot.found;
  info.snapshot_path = result.snapshot.path;
  info.snapshot_lsn = result.snapshot.state.last_lsn;
  info.corrupt_snapshots_skipped = result.snapshot.corrupt_skipped;
  info.tail_truncated = log.tail_truncated;
  info.truncated_segment = log.truncated_segment;
  info.truncated_bytes = log.truncated_bytes;
  info.records_skipped = log.skipped;
  info.performed = result.snapshot.found || log.has_segments;

  // Identity the durable state claims, updated by any reload in the tail.
  uint64_t generation = 1;
  uint64_t base_fingerprint = live_base_fingerprint;
  const uint64_t snapshot_lsn = result.snapshot.state.last_lsn;
  if (result.snapshot.found) {
    generation = result.snapshot.state.generation;
    base_fingerprint = result.snapshot.state.base_fingerprint;
  } else if (log.has_segments) {
    generation = log.first_header.generation;
    base_fingerprint = log.first_header.base_fingerprint;
  }

  if (log.has_segments) {
    // Prefix coverage: the oldest retained segment must reach back to the
    // snapshot (or to lsn 1 when no snapshot could be loaded). A gap means
    // pruned history with nothing standing in for it.
    const uint64_t need_from =
        result.snapshot.found ? snapshot_lsn + 1 : 1;
    if (log.first_header.first_lsn > need_from) {
      return Status::DataLoss(
          "WAL prefix missing: oldest retained segment starts at lsn " +
          std::to_string(log.first_header.first_lsn) + " but recovery needs " +
          std::to_string(need_from) +
          (result.snapshot.found
               ? " (snapshot " + result.snapshot.path + ")"
               : " (no loadable snapshot" +
                     (result.snapshot.corrupt_skipped.empty()
                          ? std::string(")")
                          : "; " +
                                std::to_string(
                                    result.snapshot.corrupt_skipped.size()) +
                                " corrupt snapshot(s) skipped)")));
    }
  } else if (result.snapshot.found && snapshot_lsn > 0) {
    // Snapshot claims journaled history but the log is gone entirely. The
    // snapshot alone IS the state up to its lsn, so this is recoverable —
    // nothing after it could have been acknowledged without a WAL frame.
    // (A deleted-but-needed tail shows up as the coverage gap above.)
  }

  uint64_t max_lsn = snapshot_lsn;
  for (WalRecord& record : log.records) {
    if (record.lsn <= snapshot_lsn) {
      ++info.records_skipped;  // already folded into the snapshot
      continue;
    }
    if (max_lsn > snapshot_lsn && record.lsn != max_lsn + 1) {
      return Status::DataLoss("WAL lsn gap: record " +
                              std::to_string(record.lsn) + " follows " +
                              std::to_string(max_lsn));
    }
    max_lsn = record.lsn;
    RecoveredOp op;
    op.lsn = record.lsn;
    op.type = record.type;
    switch (record.type) {
      case WalRecordType::kCreate: {
        HYPER_ASSIGN_OR_RETURN(CreateRecord r, DecodeCreate(record.payload));
        op.op = std::move(r);
        break;
      }
      case WalRecordType::kApply: {
        HYPER_ASSIGN_OR_RETURN(ApplyRecord r, DecodeApply(record.payload));
        op.op = std::move(r);
        break;
      }
      case WalRecordType::kDrop: {
        HYPER_ASSIGN_OR_RETURN(DropRecord r, DecodeDrop(record.payload));
        op.op = std::move(r);
        break;
      }
      case WalRecordType::kReload: {
        HYPER_ASSIGN_OR_RETURN(ReloadRecord r, DecodeReload(record.payload));
        generation = r.generation;
        base_fingerprint = r.base_fingerprint;
        op.op = std::move(r);
        break;
      }
      case WalRecordType::kHeader:
        return Status::DataLoss("header frame with nonzero lsn " +
                                std::to_string(record.lsn));
    }
    result.ops.push_back(std::move(op));
  }
  info.records_replayed = result.ops.size();
  info.generation = generation;

  if (info.performed && base_fingerprint != live_base_fingerprint) {
    char expect[24], got[24];
    std::snprintf(expect, sizeof(expect), "%016llx",
                  static_cast<unsigned long long>(base_fingerprint));
    std::snprintf(got, sizeof(got), "%016llx",
                  static_cast<unsigned long long>(live_base_fingerprint));
    return Status::FailedPrecondition(
        std::string("data dir ") + options.dir +
        " was recorded against base fingerprint " + expect +
        " but the loaded dataset fingerprints as " + got +
        " — point the server at the matching dataset or a fresh data dir");
  }

  WalSegmentHeader identity;
  identity.base_fingerprint = live_base_fingerprint;
  identity.generation = generation;
  auto manager =
      std::unique_ptr<Manager>(new Manager(std::move(options), identity));

  WalWriter::Options writer_options;
  writer_options.fsync = manager->options_.fsync;
  writer_options.fsync_interval_seconds =
      manager->options_.fsync_interval_seconds;
  writer_options.segment_max_bytes = manager->options_.segment_max_bytes;
  {
    // The manager is not shared yet; the lock exists for the analysis (and
    // costs one uncontended acquire at startup).
    MutexLock lock(&manager->mu_);
    manager->wal_ = std::make_unique<WalWriter>(manager->wal_dir_,
                                                writer_options);
    HYPER_RETURN_NOT_OK(manager->wal_->Open(identity, max_lsn + 1));
    manager->last_snapshot_lsn_ = snapshot_lsn;

    info.seconds = SecondsSince(start);
    manager->recovery_ = info;
  }
  result.manager = std::move(manager);
  return result;
}

Status Manager::AppendLocked(WalRecordType type, const std::string& payload) {
  const uint64_t bytes_before = wal_->appended_bytes();
  const uint64_t fsyncs_before = wal_->fsyncs();
  HYPER_RETURN_NOT_OK(wal_->Append(type, payload, nullptr));
  ++records_since_snapshot_;
  if (appends_total_ != nullptr) appends_total_->Increment();
  if (bytes_total_ != nullptr) {
    bytes_total_->Increment(wal_->appended_bytes() - bytes_before);
  }
  if (fsync_seconds_ != nullptr && wal_->fsyncs() > fsyncs_before) {
    fsync_seconds_->Observe(wal_->last_fsync_seconds());
  }
  return Status::OK();
}

Status Manager::AppendCreate(const CreateRecord& r) {
  MutexLock lock(&mu_);
  return AppendLocked(WalRecordType::kCreate, EncodeCreate(r));
}

Status Manager::AppendApply(const ApplyRecord& r) {
  MutexLock lock(&mu_);
  return AppendLocked(WalRecordType::kApply, EncodeApply(r));
}

Status Manager::AppendDrop(const DropRecord& r) {
  MutexLock lock(&mu_);
  return AppendLocked(WalRecordType::kDrop, EncodeDrop(r));
}

Status Manager::AppendReload(const ReloadRecord& r) {
  MutexLock lock(&mu_);
  HYPER_RETURN_NOT_OK(AppendLocked(WalRecordType::kReload, EncodeReload(r)));
  identity_.generation = r.generation;
  identity_.base_fingerprint = r.base_fingerprint;
  return Status::OK();
}

bool Manager::ShouldSnapshot() const {
  MutexLock lock(&mu_);
  return options_.snapshot_every_records > 0 &&
         records_since_snapshot_ >= options_.snapshot_every_records;
}

Status Manager::WriteSnapshot(std::vector<DurableBranch> branches) {
  MutexLock lock(&mu_);
  // Records the snapshot claims must be durable before the snapshot is.
  HYPER_RETURN_NOT_OK(wal_->Sync());
  DurableState state;
  state.generation = identity_.generation;
  state.base_fingerprint = identity_.base_fingerprint;
  state.last_lsn = wal_->last_lsn();
  state.branches = std::move(branches);
  HYPER_RETURN_NOT_OK(WriteSnapshotFile(options_.dir, state, /*keep=*/2));
  ++snapshots_written_;
  records_since_snapshot_ = 0;
  last_snapshot_lsn_ = state.last_lsn;
  if (snapshots_total_ != nullptr) snapshots_total_->Increment();
  // Start a fresh segment so everything before it can be reclaimed once no
  // retained snapshot needs it.
  HYPER_RETURN_NOT_OK(wal_->Rotate(identity_));
  HYPER_ASSIGN_OR_RETURN(auto snapshots, ListSnapshotFiles(options_.dir));
  if (!snapshots.empty()) {
    HYPER_RETURN_NOT_OK(wal_->PruneSegmentsBelow(snapshots.front().first + 1));
  }
  return Status::OK();
}

Status Manager::Sync() {
  MutexLock lock(&mu_);
  return wal_->Sync();
}

void Manager::NoteRecoveryComplete(const RecoveryInfo& info) {
  {
    MutexLock lock(&mu_);
    recovery_ = info;
  }
  if (recovery_seconds_ != nullptr) recovery_seconds_->Set(info.seconds);
  if (recovery_replayed_ != nullptr) {
    recovery_replayed_->Set(static_cast<double>(info.records_replayed));
  }
}

WalStats Manager::Stats() const {
  MutexLock lock(&mu_);
  WalStats stats;
  stats.enabled = true;
  stats.dir = options_.dir;
  stats.fsync_policy = FsyncPolicyName(options_.fsync);
  stats.last_lsn = wal_->last_lsn();
  stats.appends = wal_->appended_frames();
  stats.appended_bytes = wal_->appended_bytes();
  stats.fsyncs = wal_->fsyncs();
  stats.last_fsync_seconds = wal_->last_fsync_seconds();
  stats.segments = wal_->segment_count();
  stats.snapshots_written = snapshots_written_;
  stats.last_snapshot_lsn = last_snapshot_lsn_;
  stats.records_since_snapshot = records_since_snapshot_;
  stats.recovery = recovery_;
  return stats;
}

}  // namespace hyper::durability
