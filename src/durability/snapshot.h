#ifndef HYPER_DURABILITY_SNAPSHOT_H_
#define HYPER_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace hyper::durability {

/// Point-in-time image of every scenario branch's durable state, written as
/// `snapshot-<%016x last_lsn>.snap`. A snapshot plus the WAL records with
/// lsn > last_lsn reconstructs the exact service state.
///
/// The branch delta fingerprint is an order-sensitive FNV mix, so each
/// branch carries its raw `fnv_state` — recomputing from the cell map would
/// lose the mix order and break the bit-identical recovery guarantee
/// (ScenarioBranch::Restore reseeds from this value).

struct DurableBranch {
  std::string name;
  std::string parent;
  /// relation -> attr index -> tid -> value (base-relative), matching
  /// ScenarioBranch::OverrideMap cell for cell.
  std::map<std::string, TableCellOverrides> overrides;
  uint64_t updates_applied = 0;
  uint64_t version = 0;
  uint64_t fnv_state = 0;  // raw Fnv1a hash == delta_fingerprint()
};

struct DurableState {
  uint64_t generation = 1;
  uint64_t base_fingerprint = 0;  // Database::ContentFingerprint of the base
  uint64_t last_lsn = 0;          // every record <= this is reflected here
  std::vector<DurableBranch> branches;  // sorted by name (map iteration)
};

constexpr uint32_t kSnapshotFormatVersion = 1;

/// File body: u32 crc32c over the payload, then the payload.
std::string EncodeSnapshot(const DurableState& state);
Result<DurableState> DecodeSnapshot(std::string_view file_bytes);

std::string SnapshotName(uint64_t last_lsn);

/// Atomically writes `state` into `dir` (tmp file + fdatasync + rename +
/// directory fsync), then prunes to the newest `keep` snapshots.
Status WriteSnapshotFile(const std::string& dir, const DurableState& state,
                         size_t keep = 2);

struct SnapshotLoadResult {
  bool found = false;
  DurableState state;
  std::string path;
  /// Newer snapshot files that failed CRC/decode and were skipped in favor
  /// of an older one (recovery then replays more WAL instead of failing).
  std::vector<std::string> corrupt_skipped;
};

/// Loads the newest snapshot that validates, falling back through older
/// ones. No snapshot at all is not an error (found=false); a directory
/// where every snapshot is corrupt reports them all in corrupt_skipped.
Result<SnapshotLoadResult> LoadLatestSnapshot(const std::string& dir);

/// All snapshot files in `dir`, sorted ascending by last_lsn. The manager
/// prunes WAL segments below the oldest retained snapshot's lsn.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshotFiles(
    const std::string& dir);

}  // namespace hyper::durability

#endif  // HYPER_DURABILITY_SNAPSHOT_H_
