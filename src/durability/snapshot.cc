#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "durability/codec.h"

namespace hyper::durability {

namespace {
namespace fs = std::filesystem;
}  // namespace

Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshotFiles(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) != 0) continue;
    if (name.size() != 9 + 16 + 5 || name.substr(25) != ".snap") continue;
    uint64_t lsn = 0;
    bool ok = true;
    for (char c : name.substr(9, 16)) {
      if (c >= '0' && c <= '9') lsn = (lsn << 4) | uint64_t(c - '0');
      else if (c >= 'a' && c <= 'f') lsn = (lsn << 4) | uint64_t(c - 'a' + 10);
      else { ok = false; break; }
    }
    if (!ok) continue;
    snapshots.emplace_back(lsn, entry.path().string());
  }
  if (ec) {
    return Status::Internal("listing snapshot directory " + dir + ": " +
                            ec.message());
  }
  std::sort(snapshots.begin(), snapshots.end());
  return snapshots;
}

std::string SnapshotName(uint64_t last_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%016llx.snap",
                static_cast<unsigned long long>(last_lsn));
  return buf;
}

std::string EncodeSnapshot(const DurableState& state) {
  ByteWriter w;
  w.U32(kSnapshotFormatVersion);
  w.U64(state.generation);
  w.U64(state.base_fingerprint);
  w.U64(state.last_lsn);
  w.U32(static_cast<uint32_t>(state.branches.size()));
  for (const DurableBranch& branch : state.branches) {
    w.Str(branch.name);
    w.Str(branch.parent);
    w.U64(branch.updates_applied);
    w.U64(branch.version);
    w.U64(branch.fnv_state);
    w.U32(static_cast<uint32_t>(branch.overrides.size()));
    for (const auto& [relation, attrs] : branch.overrides) {
      w.Str(relation);
      w.U32(static_cast<uint32_t>(attrs.size()));
      for (const auto& [attr, cells] : attrs) {
        w.U64(attr);
        w.U32(static_cast<uint32_t>(cells.size()));
        for (const auto& [tid, value] : cells) {
          w.U64(tid);
          w.Val(value);
        }
      }
    }
  }
  const std::string payload = w.Take();
  ByteWriter out;
  out.U32(Crc32c(payload.data(), payload.size()));
  std::string file = out.Take();
  file.append(payload);
  return file;
}

Result<DurableState> DecodeSnapshot(std::string_view file_bytes) {
  if (file_bytes.size() < 4) {
    return Status::DataLoss("snapshot file shorter than its checksum");
  }
  ByteReader crc_reader(file_bytes.substr(0, 4));
  const uint32_t stored_crc = *crc_reader.U32();
  const std::string_view payload = file_bytes.substr(4);
  const uint32_t actual_crc = Crc32c(payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "snapshot checksum mismatch (stored %08x, computed %08x)",
                  stored_crc, actual_crc);
    return Status::DataLoss(buf);
  }
  ByteReader r(payload);
  HYPER_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kSnapshotFormatVersion) {
    return Status::DataLoss("unsupported snapshot format version " +
                            std::to_string(version));
  }
  DurableState state;
  HYPER_ASSIGN_OR_RETURN(state.generation, r.U64());
  HYPER_ASSIGN_OR_RETURN(state.base_fingerprint, r.U64());
  HYPER_ASSIGN_OR_RETURN(state.last_lsn, r.U64());
  HYPER_ASSIGN_OR_RETURN(uint32_t branch_count, r.U32());
  state.branches.reserve(branch_count);
  for (uint32_t b = 0; b < branch_count; ++b) {
    DurableBranch branch;
    HYPER_ASSIGN_OR_RETURN(branch.name, r.Str());
    HYPER_ASSIGN_OR_RETURN(branch.parent, r.Str());
    HYPER_ASSIGN_OR_RETURN(branch.updates_applied, r.U64());
    HYPER_ASSIGN_OR_RETURN(branch.version, r.U64());
    HYPER_ASSIGN_OR_RETURN(branch.fnv_state, r.U64());
    HYPER_ASSIGN_OR_RETURN(uint32_t relation_count, r.U32());
    for (uint32_t rel = 0; rel < relation_count; ++rel) {
      HYPER_ASSIGN_OR_RETURN(std::string relation, r.Str());
      TableCellOverrides& attrs = branch.overrides[relation];
      HYPER_ASSIGN_OR_RETURN(uint32_t attr_count, r.U32());
      for (uint32_t a = 0; a < attr_count; ++a) {
        HYPER_ASSIGN_OR_RETURN(uint64_t attr, r.U64());
        AttributeCellOverrides& cells = attrs[static_cast<size_t>(attr)];
        HYPER_ASSIGN_OR_RETURN(uint32_t cell_count, r.U32());
        for (uint32_t c = 0; c < cell_count; ++c) {
          HYPER_ASSIGN_OR_RETURN(uint64_t tid, r.U64());
          HYPER_ASSIGN_OR_RETURN(Value value, r.Val());
          cells[static_cast<size_t>(tid)] = std::move(value);
        }
      }
    }
    state.branches.push_back(std::move(branch));
  }
  if (!r.done()) {
    return Status::DataLoss("snapshot has " + std::to_string(r.remaining()) +
                            " trailing bytes after decoded state");
  }
  return state;
}

Status WriteSnapshotFile(const std::string& dir, const DurableState& state,
                         size_t keep) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory " + dir + ": " +
                            ec.message());
  }
  const std::string file = EncodeSnapshot(state);
  const std::string final_path = dir + "/" + SnapshotName(state.last_lsn);
  const std::string tmp_path = final_path + ".tmp";

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal("open " + tmp_path + ": " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < file.size()) {
    ssize_t n = ::write(fd, file.data() + written, file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st =
          Status::Internal("write " + tmp_path + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fdatasync(fd) != 0) {
    Status st =
        Status::Internal("fdatasync " + tmp_path + ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Internal("rename " + tmp_path + " -> " + final_path + ": " +
                            std::strerror(errno));
  }
  // The rename only becomes crash-durable once the directory entry is.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Internal("open dir " + dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) {
    return Status::Internal("fsync dir " + dir + ": " + std::strerror(errno));
  }

  HYPER_ASSIGN_OR_RETURN(auto snapshots, ListSnapshotFiles(dir));
  if (snapshots.size() > keep) {
    for (size_t i = 0; i + keep < snapshots.size(); ++i) {
      fs::remove(snapshots[i].second, ec);  // best effort; stale is harmless
    }
  }
  return Status::OK();
}

Result<SnapshotLoadResult> LoadLatestSnapshot(const std::string& dir) {
  SnapshotLoadResult result;
  if (!fs::exists(dir)) return result;
  HYPER_ASSIGN_OR_RETURN(auto snapshots, ListSnapshotFiles(dir));
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::ifstream in(it->second, std::ios::binary);
    if (!in) {
      result.corrupt_skipped.push_back(it->second);
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    Result<DurableState> decoded = DecodeSnapshot(bytes);
    if (!decoded.ok()) {
      result.corrupt_skipped.push_back(it->second);
      continue;
    }
    result.found = true;
    result.state = std::move(*decoded);
    result.path = it->second;
    return result;
  }
  return result;
}

}  // namespace hyper::durability
