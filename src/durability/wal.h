#ifndef HYPER_DURABILITY_WAL_H_
#define HYPER_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hyper::durability {

/// Append-only, checksummed write-ahead log, stored as a directory of
/// segments `wal-<%016x first_lsn>.log`. Every record is framed as
///
///   u32 crc32c   over the 16 header bytes that follow + the payload
///   u64 lsn      0 for segment headers, strictly increasing otherwise
///   u32 type     WalRecordType
///   u32 len      payload byte count
///   payload[len]
///
/// so a reader can detect exactly where a log stops being trustworthy. The
/// recovery contract (enforced by ReadLog + tests/durability_test.cc):
///
///   - A torn tail — fewer bytes than a frame header, or a payload running
///     past end-of-file, or a checksum mismatch on the very last frame of
///     the last segment — is the signature of a crash mid-append. It is
///     truncated back to the last valid record and recovery proceeds; the
///     mutation it carried was never acknowledged, so dropping it is
///     correct.
///   - A checksum mismatch anywhere else (a flipped byte with valid data
///     after it, corruption in a non-final segment) is silent-data-loss
///     territory: ReadLog fails with Status::DataLoss naming the segment
///     and byte offset, and the service refuses to serve rather than serve
///     wrong state.
///   - Record lsns must be strictly increasing; a frame whose lsn is <= the
///     highest already seen is a duplicated append (e.g. a replayed write)
///     and is skipped idempotently, counted in ReadLogResult::skipped.

enum class WalRecordType : uint32_t {
  kHeader = 1,    // first frame of each segment: format/base fp/generation
  kCreate = 2,    // scenario branch created
  kApply = 3,     // hypothetical applied: physical override cells
  kDrop = 4,      // branch drop tombstone
  kReload = 5,    // dataset reload: generation bump + new base fingerprint
};

const char* WalRecordTypeName(WalRecordType type);

constexpr uint32_t kWalFormatVersion = 1;
/// Frame header: crc (4) + lsn (8) + type (4) + len (4).
constexpr size_t kWalFrameHeaderBytes = 20;
/// Sanity cap on a single payload; a len beyond this is treated like any
/// other unreadable frame (torn tail or corruption by position).
constexpr uint32_t kWalMaxPayloadBytes = 256u << 20;

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kHeader;
  std::string payload;
};

/// Decoded kHeader payload.
struct WalSegmentHeader {
  uint32_t format_version = kWalFormatVersion;
  uint64_t base_fingerprint = 0;
  uint64_t generation = 1;
  uint64_t first_lsn = 1;  // lsn the first journaled record will carry
};

std::string EncodeSegmentHeader(const WalSegmentHeader& header);
Result<WalSegmentHeader> DecodeSegmentHeader(const std::string& payload);

/// One full scan of a WAL directory.
struct ReadLogResult {
  /// Journaled records (headers excluded), lsn strictly ascending.
  std::vector<WalRecord> records;
  /// Header of the FIRST segment — the base the log was started against
  /// (later reloads appear as kReload records in `records`).
  WalSegmentHeader first_header;
  bool has_segments = false;
  /// Duplicated frames skipped (lsn <= a previously seen lsn).
  uint64_t skipped = 0;
  /// Torn-tail truncation performed (always in the final segment).
  bool tail_truncated = false;
  std::string truncated_segment;
  uint64_t truncated_at_offset = 0;
  uint64_t truncated_bytes = 0;
};

/// Reads and validates every segment under `wal_dir` (created if absent).
/// Physically truncates a torn tail in the final segment so subsequent
/// appends continue from the last valid frame. Fails with DataLoss on
/// mid-log corruption, naming segment and offset.
Result<ReadLogResult> ReadLog(const std::string& wal_dir);

enum class FsyncPolicy {
  kAlways,    // fdatasync after every append — survives machine power loss
  kInterval,  // fdatasync when the configured interval has elapsed
  kOff,       // never fsync — survives process death (page cache), not power
};

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

/// Appends frames to the current segment of a WAL directory. Not
/// thread-safe — the owner (durability::Manager) serializes access.
class WalWriter {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kInterval;
    double fsync_interval_seconds = 0.05;
    /// Rotate to a fresh segment once the current one exceeds this.
    uint64_t segment_max_bytes = 64ull << 20;
  };

  WalWriter(std::string wal_dir, Options options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the newest existing segment for append (or creates the first
  /// one). `header` stamps any segment this writer creates; first_lsn is
  /// overwritten per segment.
  Status Open(const WalSegmentHeader& header, uint64_t next_lsn);

  /// Frames, checksums and appends one record; assigns and returns its lsn
  /// via `lsn_out`. The frame is written (and fsynced per policy) before
  /// this returns OK — the caller makes the mutation visible only after.
  Status Append(WalRecordType type, const std::string& payload,
                uint64_t* lsn_out);

  /// Closes the current segment and starts a new one (first frame: header
  /// with the given identity and first_lsn = next lsn). Used after a
  /// snapshot so older segments become prunable.
  Status Rotate(const WalSegmentHeader& header);

  /// Deletes segments whose every frame has lsn < `keep_from_lsn`. Never
  /// touches the segment currently open for append.
  Status PruneSegmentsBelow(uint64_t keep_from_lsn);

  /// Forces an fdatasync of the current segment (drain/final snapshot).
  Status Sync();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t last_lsn() const { return next_lsn_ == 0 ? 0 : next_lsn_ - 1; }
  uint64_t appended_frames() const { return appended_frames_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  double last_fsync_seconds() const { return last_fsync_seconds_; }
  uint64_t current_segment_bytes() const { return current_segment_bytes_; }
  size_t segment_count() const;
  const std::string& wal_dir() const { return wal_dir_; }

 private:
  Status OpenSegment(const std::string& path, bool create,
                     const WalSegmentHeader& header);
  Status WriteFrame(uint64_t lsn, WalRecordType type,
                    const std::string& payload);
  Status MaybeFsync(bool force);

  std::string wal_dir_;
  Options options_;
  WalSegmentHeader identity_;  // stamped on rotated segments
  int fd_ = -1;
  std::string current_path_;
  uint64_t next_lsn_ = 1;
  uint64_t current_segment_bytes_ = 0;
  uint64_t appended_frames_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  double last_fsync_seconds_ = 0.0;
  double seconds_since_fsync_ = 0.0;  // accumulated via a monotonic clock
  long long last_fsync_tick_ns_ = 0;
};

/// Segment filename for a first lsn ("wal-%016llx.log").
std::string WalSegmentName(uint64_t first_lsn);

}  // namespace hyper::durability

#endif  // HYPER_DURABILITY_WAL_H_
