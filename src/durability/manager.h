#ifndef HYPER_DURABILITY_MANAGER_H_
#define HYPER_DURABILITY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "storage/value.h"

namespace hyper::durability {

/// Orchestrates one data directory:
///
///   <dir>/wal/wal-<lsn>.log     checksummed record log (wal.h)
///   <dir>/snapshot-<lsn>.snap   periodic branch-state images (snapshot.h)
///
/// The ScenarioService appends one typed record per acknowledged mutation —
/// strictly BEFORE the mutation becomes visible — and on startup replays
/// snapshot + tail through the same ScenarioBranch code path that produced
/// them, which is what makes recovered delta fingerprints (and therefore
/// what-if / how-to answers) bit-identical to the pre-crash run. The manager
/// itself never interprets override semantics; it moves opaque-but-typed
/// payloads and enforces the storage invariants (checksums, ordering,
/// prefix coverage, dataset identity).

struct DurabilityOptions {
  /// Root data directory; empty disables durability entirely.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  double fsync_interval_seconds = 0.05;
  /// Write a snapshot (and rotate the WAL) every N appended records;
  /// 0 disables automatic snapshots (explicit SnapshotNow still works).
  uint64_t snapshot_every_records = 256;
  uint64_t segment_max_bytes = 64ull << 20;
  /// Optional sink for wal/snapshot/recovery series; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// --- Typed record payloads -------------------------------------------------

struct CreateRecord {
  std::string name;
  std::string parent;  // empty: branched from base
  /// delta_fingerprint() of the new branch (inherited from the parent).
  uint64_t post_fingerprint = 0;
};

/// One Override() batch of an applied hypothetical.
struct ApplyBatch {
  std::string relation;
  uint64_t attr = 0;
  /// (tid, value) in apply order — fingerprint mixing is order-sensitive.
  std::vector<std::pair<uint64_t, Value>> cells;
};

struct ApplyRecord {
  std::string branch;
  uint64_t pre_fingerprint = 0;   // branch fingerprint the batches landed on
  uint64_t post_fingerprint = 0;  // fingerprint after every batch applied
  std::vector<ApplyBatch> batches;
};

struct DropRecord {
  std::string name;  // tombstone: this branch must never be resurrected
};

struct ReloadRecord {
  uint64_t generation = 1;        // generation after the reload
  uint64_t base_fingerprint = 0;  // ContentFingerprint of the new base
};

std::string EncodeCreate(const CreateRecord& r);
std::string EncodeApply(const ApplyRecord& r);
std::string EncodeDrop(const DropRecord& r);
std::string EncodeReload(const ReloadRecord& r);
Result<CreateRecord> DecodeCreate(const std::string& payload);
Result<ApplyRecord> DecodeApply(const std::string& payload);
Result<DropRecord> DecodeDrop(const std::string& payload);
Result<ReloadRecord> DecodeReload(const std::string& payload);

/// One decoded log record the service must replay (lsn ascending).
struct RecoveredOp {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kHeader;
  std::variant<CreateRecord, ApplyRecord, DropRecord, ReloadRecord> op;
};

/// What recovery found and did; surfaced via `\wal stats`, /statusz and the
/// server startup log.
struct RecoveryInfo {
  bool performed = false;  // existing durable state was found
  bool snapshot_loaded = false;
  std::string snapshot_path;
  uint64_t snapshot_lsn = 0;
  std::vector<std::string> corrupt_snapshots_skipped;
  uint64_t records_replayed = 0;
  /// Duplicated or snapshot-covered records skipped idempotently.
  uint64_t records_skipped = 0;
  bool tail_truncated = false;
  std::string truncated_segment;
  uint64_t truncated_bytes = 0;
  uint64_t generation = 1;
  /// Wall seconds for load+replay; the service finalizes this after it has
  /// rebuilt branch state (NoteRecoveryComplete).
  double seconds = 0.0;
};

/// Point-in-time counters for `\wal stats` and the durability section of
/// /statusz. Counters are since process start, not since log creation.
struct WalStats {
  bool enabled = false;
  std::string dir;
  const char* fsync_policy = "off";
  uint64_t last_lsn = 0;
  uint64_t appends = 0;
  uint64_t appended_bytes = 0;
  uint64_t fsyncs = 0;
  double last_fsync_seconds = 0.0;
  uint64_t segments = 0;
  uint64_t snapshots_written = 0;
  uint64_t last_snapshot_lsn = 0;
  uint64_t records_since_snapshot = 0;
  RecoveryInfo recovery;
};

class Manager {
 public:
  struct OpenResult {
    std::unique_ptr<Manager> manager;
    /// Snapshot to rehydrate branches from (found=false on a fresh dir).
    SnapshotLoadResult snapshot;
    /// Records with lsn > snapshot.last_lsn, decoded, lsn ascending.
    std::vector<RecoveredOp> ops;
    RecoveryInfo info;
  };

  /// Opens (creating if absent) the data directory and validates the full
  /// chain: newest loadable snapshot, every WAL record after it, prefix
  /// coverage, strictly-ascending lsns, and dataset identity —
  /// `live_base_fingerprint` is the ContentFingerprint of the base the
  /// caller just loaded; an intact dir recorded against a different base
  /// fails with kFailedPrecondition (corruption fails with kDataLoss).
  static Result<OpenResult> Open(DurabilityOptions options,
                                 uint64_t live_base_fingerprint);

  /// Append one record; the frame is on disk (fsynced per policy) when this
  /// returns OK. The caller holds its own state lock, making append order
  /// equal visibility order.
  Status AppendCreate(const CreateRecord& r);
  Status AppendApply(const ApplyRecord& r);
  Status AppendDrop(const DropRecord& r);
  /// Also re-stamps the segment identity (generation, base fingerprint)
  /// used for future rotations.
  Status AppendReload(const ReloadRecord& r);

  /// True once snapshot_every_records appends have landed since the last
  /// snapshot (never true when disabled).
  bool ShouldSnapshot() const;

  /// Persists `state` (branch images supplied by the service; generation /
  /// base fingerprint / last_lsn stamped here), rotates the WAL so the
  /// snapshot starts a fresh segment, and prunes segments and snapshots no
  /// longer needed for recovery.
  Status WriteSnapshot(std::vector<DurableBranch> branches);

  /// Forces an fdatasync of the open segment (drain path).
  Status Sync();

  /// Stores the finalized recovery report and publishes recovery metrics
  /// (hyper_recovery_seconds, replay counters).
  void NoteRecoveryComplete(const RecoveryInfo& info);

  WalStats Stats() const;
  const DurabilityOptions& options() const { return options_; }

 private:
  Manager(DurabilityOptions options, WalSegmentHeader identity);

  Status AppendLocked(WalRecordType type, const std::string& payload)
      REQUIRES(mu_);

  const DurabilityOptions options_;
  const std::string wal_dir_;

  mutable Mutex mu_;
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  /// Current generation + base fingerprint.
  WalSegmentHeader identity_ GUARDED_BY(mu_);
  uint64_t records_since_snapshot_ GUARDED_BY(mu_) = 0;
  uint64_t snapshots_written_ GUARDED_BY(mu_) = 0;
  uint64_t last_snapshot_lsn_ GUARDED_BY(mu_) = 0;
  RecoveryInfo recovery_ GUARDED_BY(mu_);

  // Series are registered once at Open (before the manager is shared) and
  // only dereferenced afterwards — immutable-after-publish, not guarded.
  obs::Counter* appends_total_ = nullptr;
  obs::Counter* bytes_total_ = nullptr;
  obs::Histogram* fsync_seconds_ = nullptr;
  obs::Counter* snapshots_total_ = nullptr;
  obs::Gauge* recovery_seconds_ = nullptr;
  obs::Gauge* recovery_replayed_ = nullptr;
};

}  // namespace hyper::durability

#endif  // HYPER_DURABILITY_MANAGER_H_
