#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "durability/codec.h"

namespace hyper::durability {

namespace {

namespace fs = std::filesystem;

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

long long NowTickNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Lists wal-*.log under `dir`, sorted ascending by first lsn (the hex in
/// the name sorts lexicographically, but parse it anyway so a stray file
/// with a malformed name is rejected loudly instead of reordered quietly).
Result<std::vector<std::pair<uint64_t, std::string>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    if (name.size() != 4 + 16 + 4 || name.substr(20) != ".log") {
      return Status::DataLoss("unrecognized file in WAL directory: " + name);
    }
    uint64_t first_lsn = 0;
    for (char c : name.substr(4, 16)) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else return Status::DataLoss("malformed WAL segment name: " + name);
      first_lsn = (first_lsn << 4) | static_cast<uint64_t>(digit);
    }
    segments.emplace_back(first_lsn, entry.path().string());
  }
  if (ec) {
    return Status::Internal("listing WAL directory " + dir + ": " +
                            ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

/// Outcome of parsing one segment's byte image.
struct SegmentScan {
  std::vector<WalRecord> frames;  // headers included (lsn 0)
  /// Byte offset of the first frame that failed to parse; == size when the
  /// whole segment parsed cleanly.
  uint64_t valid_bytes = 0;
  /// Why parsing stopped, empty if it reached end-of-file cleanly.
  std::string stop_reason;
};

SegmentScan ScanSegment(const std::string& bytes) {
  SegmentScan scan;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kWalFrameHeaderBytes) {
      scan.stop_reason = "partial frame header (" +
                         std::to_string(bytes.size() - pos) + " bytes)";
      break;
    }
    ByteReader header(std::string_view(bytes).substr(pos, kWalFrameHeaderBytes));
    const uint32_t stored_crc = *header.U32();
    const uint64_t lsn = *header.U64();
    const uint32_t type = *header.U32();
    const uint32_t len = *header.U32();
    if (len > kWalMaxPayloadBytes) {
      scan.stop_reason =
          "implausible payload length " + std::to_string(len);
      break;
    }
    if (bytes.size() - pos - kWalFrameHeaderBytes < len) {
      scan.stop_reason = "payload runs past end of segment (want " +
                         std::to_string(len) + " bytes, have " +
                         std::to_string(bytes.size() - pos -
                                        kWalFrameHeaderBytes) +
                         ")";
      break;
    }
    const uint32_t actual_crc =
        Crc32c(bytes.data() + pos + 4, kWalFrameHeaderBytes - 4 + len);
    if (actual_crc != stored_crc) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "checksum mismatch (stored %08x, computed %08x)",
                    stored_crc, actual_crc);
      scan.stop_reason = buf;
      break;
    }
    if (type < static_cast<uint32_t>(WalRecordType::kHeader) ||
        type > static_cast<uint32_t>(WalRecordType::kReload)) {
      // The checksum passed, so this is a format from the future (or a bug),
      // not bit rot — still not safe to interpret.
      scan.stop_reason = "unknown record type " + std::to_string(type);
      break;
    }
    WalRecord record;
    record.lsn = lsn;
    record.type = static_cast<WalRecordType>(type);
    record.payload = bytes.substr(pos + kWalFrameHeaderBytes, len);
    scan.frames.push_back(std::move(record));
    pos += kWalFrameHeaderBytes + len;
    scan.valid_bytes = pos;
  }
  if (scan.stop_reason.empty()) scan.valid_bytes = bytes.size();
  return scan;
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open WAL segment " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("error reading WAL segment " + path);
  *out = std::move(bytes);
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal(Errno("fsync dir", dir));
  return Status::OK();
}

std::string FrameBytes(uint64_t lsn, WalRecordType type,
                       const std::string& payload) {
  ByteWriter body;
  body.U64(lsn);
  body.U32(static_cast<uint32_t>(type));
  body.U32(static_cast<uint32_t>(payload.size()));
  std::string frame = body.Take();
  frame.append(payload);
  ByteWriter crc;
  crc.U32(Crc32c(frame.data(), frame.size()));
  std::string out = crc.Take();
  out.append(frame);
  return out;
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kHeader: return "header";
    case WalRecordType::kCreate: return "create";
    case WalRecordType::kApply: return "apply";
    case WalRecordType::kDrop: return "drop";
    case WalRecordType::kReload: return "reload";
  }
  return "unknown";
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kOff: return "off";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + name +
                                 "' (want always|interval|off)");
}

std::string WalSegmentName(uint64_t first_lsn) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

std::string EncodeSegmentHeader(const WalSegmentHeader& header) {
  ByteWriter w;
  w.U32(header.format_version);
  w.U64(header.base_fingerprint);
  w.U64(header.generation);
  w.U64(header.first_lsn);
  return w.Take();
}

Result<WalSegmentHeader> DecodeSegmentHeader(const std::string& payload) {
  ByteReader r(payload);
  WalSegmentHeader header;
  HYPER_ASSIGN_OR_RETURN(header.format_version, r.U32());
  if (header.format_version != kWalFormatVersion) {
    return Status::DataLoss("unsupported WAL format version " +
                            std::to_string(header.format_version));
  }
  HYPER_ASSIGN_OR_RETURN(header.base_fingerprint, r.U64());
  HYPER_ASSIGN_OR_RETURN(header.generation, r.U64());
  HYPER_ASSIGN_OR_RETURN(header.first_lsn, r.U64());
  return header;
}

Result<ReadLogResult> ReadLog(const std::string& wal_dir) {
  std::error_code ec;
  fs::create_directories(wal_dir, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory " + wal_dir + ": " +
                            ec.message());
  }
  HYPER_ASSIGN_OR_RETURN(auto segments, ListSegments(wal_dir));

  ReadLogResult result;
  if (segments.empty()) return result;
  result.has_segments = true;

  uint64_t max_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& path = segments[i].second;
    const bool is_last_segment = (i + 1 == segments.size());
    std::string bytes;
    HYPER_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
    SegmentScan scan = ScanSegment(bytes);

    if (!scan.stop_reason.empty()) {
      // Only a damaged tail of the FINAL segment can be a torn append; a
      // damaged frame anywhere else means acknowledged history is gone.
      if (!is_last_segment) {
        return Status::DataLoss("WAL corruption in non-final segment " + path +
                                " at offset " +
                                std::to_string(scan.valid_bytes) + ": " +
                                scan.stop_reason);
      }
      // A parse failure with more parseable data after it is bit rot, not a
      // torn append: probe whether any later offset begins a valid frame.
      const size_t resync_from = scan.valid_bytes + 1;
      for (size_t probe = resync_from; probe + kWalFrameHeaderBytes <= bytes.size();
           ++probe) {
        SegmentScan rest = ScanSegment(bytes.substr(probe));
        if (!rest.frames.empty()) {
          return Status::DataLoss(
              "WAL corruption mid-segment in " + path + " at offset " +
              std::to_string(scan.valid_bytes) + " (" + scan.stop_reason +
              "; valid frame follows at offset " + std::to_string(probe) +
              ") — refusing to recover past a hole");
        }
      }
      // Nothing valid after the damage: torn tail. Truncate to the last
      // fully-validated frame so future appends continue cleanly.
      if (::truncate(path.c_str(), static_cast<off_t>(scan.valid_bytes)) != 0) {
        return Status::Internal(Errno("truncate torn WAL tail", path));
      }
      result.tail_truncated = true;
      result.truncated_segment = path;
      result.truncated_at_offset = scan.valid_bytes;
      result.truncated_bytes = bytes.size() - scan.valid_bytes;
    }

    bool saw_header = false;
    for (auto& frame : scan.frames) {
      if (frame.type == WalRecordType::kHeader) {
        HYPER_ASSIGN_OR_RETURN(WalSegmentHeader header,
                               DecodeSegmentHeader(frame.payload));
        if (i == 0 && !saw_header) result.first_header = header;
        saw_header = true;
        continue;
      }
      if (!saw_header) {
        return Status::DataLoss("WAL segment " + path +
                                " does not begin with a header record");
      }
      if (frame.lsn <= max_lsn) {
        ++result.skipped;  // duplicated append; replay is idempotent
        continue;
      }
      max_lsn = frame.lsn;
      result.records.push_back(std::move(frame));
    }
  }
  return result;
}

WalWriter::WalWriter(std::string wal_dir, Options options)
    : wal_dir_(std::move(wal_dir)), options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (options_.fsync != FsyncPolicy::kOff) ::fdatasync(fd_);
    ::close(fd_);
  }
}

Status WalWriter::Open(const WalSegmentHeader& header, uint64_t next_lsn) {
  identity_ = header;
  next_lsn_ = next_lsn;
  last_fsync_tick_ns_ = NowTickNs();
  std::error_code ec;
  fs::create_directories(wal_dir_, ec);
  if (ec) {
    return Status::Internal("cannot create WAL directory " + wal_dir_ + ": " +
                            ec.message());
  }
  HYPER_ASSIGN_OR_RETURN(auto segments, ListSegments(wal_dir_));
  if (segments.empty()) {
    WalSegmentHeader first = identity_;
    first.first_lsn = next_lsn_;
    return OpenSegment(wal_dir_ + "/" + WalSegmentName(next_lsn_),
                       /*create=*/true, first);
  }
  return OpenSegment(segments.back().second, /*create=*/false, identity_);
}

Status WalWriter::OpenSegment(const std::string& path, bool create,
                              const WalSegmentHeader& header) {
  if (fd_ >= 0) {
    if (options_.fsync != FsyncPolicy::kOff) {
      if (::fdatasync(fd_) != 0) {
        return Status::Internal(Errno("fdatasync", current_path_));
      }
    }
    ::close(fd_);
    fd_ = -1;
  }
  int flags = O_WRONLY | O_APPEND | O_CLOEXEC;
  if (create) flags |= O_CREAT | O_EXCL;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::Internal(Errno("open WAL segment", path));
  fd_ = fd;
  current_path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::Internal(Errno("fstat WAL segment", path));
  }
  current_segment_bytes_ = static_cast<uint64_t>(st.st_size);
  if (create) {
    HYPER_RETURN_NOT_OK(
        WriteFrame(0, WalRecordType::kHeader, EncodeSegmentHeader(header)));
    HYPER_RETURN_NOT_OK(MaybeFsync(/*force=*/true));
    // Make the new directory entry itself durable before frames pile in.
    HYPER_RETURN_NOT_OK(FsyncDir(wal_dir_));
  }
  return Status::OK();
}

Status WalWriter::WriteFrame(uint64_t lsn, WalRecordType type,
                             const std::string& payload) {
  const std::string frame = FrameBytes(lsn, type, payload);
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write WAL frame", current_path_));
    }
    written += static_cast<size_t>(n);
  }
  current_segment_bytes_ += frame.size();
  appended_bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::MaybeFsync(bool force) {
  bool should = force;
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      should = true;
      break;
    case FsyncPolicy::kInterval: {
      const long long now = NowTickNs();
      seconds_since_fsync_ =
          static_cast<double>(now - last_fsync_tick_ns_) * 1e-9;
      if (seconds_since_fsync_ >= options_.fsync_interval_seconds) {
        should = true;
      }
      break;
    }
    case FsyncPolicy::kOff:
      break;
  }
  if (!should) return Status::OK();
  const long long start = NowTickNs();
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(Errno("fdatasync", current_path_));
  }
  const long long end = NowTickNs();
  ++fsyncs_;
  last_fsync_seconds_ = static_cast<double>(end - start) * 1e-9;
  last_fsync_tick_ns_ = end;
  return Status::OK();
}

Status WalWriter::Append(WalRecordType type, const std::string& payload,
                         uint64_t* lsn_out) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is not open");
  if (current_segment_bytes_ >= options_.segment_max_bytes) {
    HYPER_RETURN_NOT_OK(Rotate(identity_));
  }
  const uint64_t lsn = next_lsn_;
  HYPER_RETURN_NOT_OK(WriteFrame(lsn, type, payload));
  HYPER_RETURN_NOT_OK(MaybeFsync(/*force=*/false));
  next_lsn_ = lsn + 1;
  ++appended_frames_;
  if (lsn_out != nullptr) *lsn_out = lsn;
  return Status::OK();
}

Status WalWriter::Rotate(const WalSegmentHeader& header) {
  identity_ = header;
  WalSegmentHeader stamped = identity_;
  stamped.first_lsn = next_lsn_;
  return OpenSegment(wal_dir_ + "/" + WalSegmentName(next_lsn_),
                     /*create=*/true, stamped);
}

Status WalWriter::PruneSegmentsBelow(uint64_t keep_from_lsn) {
  HYPER_ASSIGN_OR_RETURN(auto segments, ListSegments(wal_dir_));
  // A segment is prunable when the NEXT segment starts at or below the keep
  // point (then every frame here is < keep_from_lsn) and it is not open.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > keep_from_lsn) break;
    if (segments[i].second == current_path_) break;
    std::error_code ec;
    fs::remove(segments[i].second, ec);
    if (ec) {
      return Status::Internal("cannot prune WAL segment " +
                              segments[i].second + ": " + ec.message());
    }
  }
  return FsyncDir(wal_dir_);
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::OK();
  return MaybeFsync(/*force=*/true);
}

size_t WalWriter::segment_count() const {
  auto segments = ListSegments(wal_dir_);
  return segments.ok() ? segments->size() : 0;
}

}  // namespace hyper::durability
