#include "service/scenario.h"

namespace hyper::service {

size_t ScenarioBranch::overridden_cells() const {
  size_t total = 0;
  for (const auto& [relation, attrs] : overrides_) {
    for (const auto& [attr, cells] : attrs) total += cells.size();
  }
  return total;
}

std::vector<std::string> ScenarioBranch::TouchedRelations() const {
  std::vector<std::string> out;
  out.reserve(overrides_.size());
  for (const auto& [relation, _] : overrides_) out.push_back(relation);
  return out;
}

ScenarioBranch::RelationOverrides ScenarioBranch::OverridesFor(
    const std::string& relation) const {
  auto it = overrides_.find(relation);
  return it == overrides_.end() ? RelationOverrides{} : it->second;
}

uint64_t ScenarioBranch::FingerprintRestricted(
    const std::string& relation, const std::vector<size_t>& attrs) const {
  return FingerprintRestricted(overrides_, relation, attrs);
}

uint64_t ScenarioBranch::FingerprintRestricted(
    const OverrideMap& overrides, const std::string& relation,
    const std::vector<size_t>& attrs) {
  Fnv1a fnv;
  auto rit = overrides.find(relation);
  if (rit == overrides.end()) return fnv.hash();
  for (size_t attr : attrs) {
    auto ait = rit->second.find(attr);
    if (ait == rit->second.end()) continue;
    fnv.Mix(attr);
    for (const auto& [tid, value] : ait->second) {
      fnv.Mix(tid);
      fnv.Mix(value.Hash());
    }
  }
  return fnv.hash();
}

void ScenarioBranch::Override(
    const std::string& relation, size_t attr,
    const std::vector<std::pair<size_t, Value>>& cells) {
  if (cells.empty()) return;
  auto& slot = overrides_[relation][attr];
  fnv_.MixString(relation);
  fnv_.Mix(attr);
  for (const auto& [tid, value] : cells) {
    slot[tid] = value;
    fnv_.Mix(tid);
    fnv_.Mix(value.Hash());
  }
  ++version_;
}

uint64_t ScenarioBranch::PreviewFingerprint(
    const std::string& relation, size_t attr,
    const std::vector<std::pair<size_t, Value>>& cells) const {
  return PreviewFingerprint(fnv_.hash(), relation, attr, cells);
}

uint64_t ScenarioBranch::PreviewFingerprint(
    uint64_t fnv_state, const std::string& relation, size_t attr,
    const std::vector<std::pair<size_t, Value>>& cells) {
  if (cells.empty()) return fnv_state;
  // Mirrors Override()'s mixing exactly; keep the two in lockstep.
  Fnv1a fnv(fnv_state);
  fnv.MixString(relation);
  fnv.Mix(attr);
  for (const auto& [tid, value] : cells) {
    fnv.Mix(tid);
    fnv.Mix(value.Hash());
  }
  return fnv.hash();
}

}  // namespace hyper::service
