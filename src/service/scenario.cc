#include "service/scenario.h"

namespace hyper::service {

size_t ScenarioBranch::overridden_cells() const {
  size_t total = 0;
  for (const auto& [relation, attrs] : overrides_) {
    for (const auto& [attr, cells] : attrs) total += cells.size();
  }
  return total;
}

std::vector<std::string> ScenarioBranch::TouchedRelations() const {
  std::vector<std::string> out;
  out.reserve(overrides_.size());
  for (const auto& [relation, _] : overrides_) out.push_back(relation);
  return out;
}

ScenarioBranch::RelationOverrides ScenarioBranch::OverridesFor(
    const std::string& relation) const {
  auto it = overrides_.find(relation);
  return it == overrides_.end() ? RelationOverrides{} : it->second;
}

void ScenarioBranch::Override(
    const std::string& relation, size_t attr,
    const std::vector<std::pair<size_t, Value>>& cells) {
  if (cells.empty()) return;
  auto& slot = overrides_[relation][attr];
  fnv_.MixString(relation);
  fnv_.Mix(attr);
  for (const auto& [tid, value] : cells) {
    slot[tid] = value;
    fnv_.Mix(tid);
    fnv_.Mix(value.Hash());
  }
  ++version_;
}

}  // namespace hyper::service
