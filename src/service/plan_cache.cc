#include "service/plan_cache.h"

#include "common/strings.h"

namespace hyper::service {

std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options) {
  // Free-form fields (expression text, attribute names) are length-prefixed
  // so the concatenation is injective: a string literal inside a predicate
  // can never forge a neighbouring field and collide two different queries.
  auto field = [](const char* tag, const std::string& text) {
    return StrFormat("|%s[%zu]=", tag, text.size()) + text;
  };
  std::string key = field("scope", scope);
  key += field("use", stmt.use.ToString());
  key += field("when", stmt.when != nullptr ? stmt.when->ToString() : "");
  for (const sql::UpdateClause& u : stmt.updates) {
    key += field("upd", u.attribute);
  }
  key += field("out", stmt.output.ToString());
  key += field("for",
               stmt.for_pred != nullptr ? stmt.for_pred->ToString() : "");
  key += StrFormat("|mode=%d|blocks=%d|cols=%d|staged=%d",
                   static_cast<int>(options.backdoor),
                   options.use_blocks ? 1 : 0, options.use_columnar ? 1 : 0,
                   options.staged_prepare ? 1 : 0);
  key += whatif::EstimatorConfigKey(options);
  return key;
}

StageCache::StageCache(size_t capacity) : capacity_(capacity) {}

// --- generic section machinery ---------------------------------------------

StageCache::EntryPtr StageCache::StoreLocked(Section& section,
                                             const std::string& key,
                                             EntryPtr entry, bool* lost_race) {
  auto it = section.map.find(key);
  if (it != section.map.end()) {
    // A concurrent builder won the race; keep its entry so every caller
    // shares one instance (and its internal lazily-grown caches).
    if (lost_race != nullptr) *lost_race = true;
    section.lru.splice(section.lru.begin(), section.lru, it->second.lru_it);
    return it->second.entry;
  }
  if (lost_race != nullptr) *lost_race = false;
  section.lru.push_front(key);
  section.map.emplace(key, Section::Slot{entry, section.lru.begin()});
  EvictIfNeededLocked(section);
  return entry;
}

void StageCache::EvictIfNeededLocked(Section& section) {
  while (section.map.size() > capacity_) {
    section.map.erase(section.lru.back());
    section.lru.pop_back();
    ++section.evictions;
  }
}

Result<StageCache::EntryPtr> StageCache::GetOrBuildInSection(
    Section& section, const std::string& key, const EntryFactory& build,
    bool* hit) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  size_t epoch = 0;
  {
    MutexLock lock(&section.mu);
    epoch = section.clear_epoch;
    auto it = section.map.find(key);
    if (it != section.map.end()) {
      ++section.hits;
      section.lru.splice(section.lru.begin(), section.lru, it->second.lru_it);
      if (hit != nullptr) *hit = true;
      return it->second.entry;
    }
    auto fit = section.inflight.find(key);
    if (fit != section.inflight.end() && fit->second->epoch == epoch) {
      // Another caller is already building this key: coalesce onto its
      // result instead of duplicating the work.
      flight = fit->second;
      ++section.coalesced;
    } else {
      // No in-flight build — or only a stale one from before a Clear(),
      // which must not serve post-Clear callers: become the (new) leader.
      // The stale leader's waiters keep their own InFlight handle and are
      // still answered by it.
      flight = std::make_shared<InFlight>();
      flight->future = flight->promise.get_future().share();
      flight->epoch = epoch;
      section.inflight[key] = flight;
      leader = true;
      ++section.misses;
    }
  }

  if (!leader) {
    // Served by the leader's build: no work of our own, so report a hit.
    if (hit != nullptr) *hit = true;
    return flight->future.get();
  }

  if (hit != nullptr) *hit = false;
  // The factory runs outside the cache lock (it is the expensive part).
  Result<EntryPtr> entry = build();
  Result<EntryPtr> canonical = entry;
  {
    MutexLock lock(&section.mu);
    if (entry.ok() && capacity_ > 0 && section.clear_epoch == epoch &&
        !flight->cancelled) {
      // Single-flight means no same-key GetOrBuild raced us, but a manual
      // Put may have: StoreLocked keeps whichever entry landed first. A
      // Clear() since we started (epoch moved) or a tag eviction naming our
      // key (cancelled) means the scope may be invalidated — waiters still
      // get the entry, but nothing is stored.
      canonical = StoreLocked(section, key, *entry);
    }
    // Erase only our own slot: a post-Clear leader may have replaced it.
    auto it = section.inflight.find(key);
    if (it != section.inflight.end() && it->second == flight) {
      section.inflight.erase(it);
    }
  }
  // Publish after the slot is cleared: waiters woken here are done, and any
  // later caller finds either the stored entry or a fresh miss.
  flight->promise.set_value(canonical);
  return canonical;
}

StageStats StageCache::SectionStats(const Section& section) const {
  MutexLock lock(&section.mu);
  StageStats s;
  s.hits = section.hits;
  s.misses = section.misses;
  s.coalesced = section.coalesced;
  s.evictions = section.evictions;
  s.entries = section.map.size();
  s.capacity = capacity_;
  return s;
}

// --- whole-plan section ------------------------------------------------------

std::shared_ptr<const whatif::PreparedWhatIf> StageCache::Get(
    const std::string& key) {
  MutexLock lock(&plans_.mu);
  auto it = plans_.map.find(key);
  if (it == plans_.map.end()) {
    ++plans_.misses;
    return nullptr;
  }
  ++plans_.hits;
  plans_.lru.splice(plans_.lru.begin(), plans_.lru, it->second.lru_it);
  return std::static_pointer_cast<const whatif::PreparedWhatIf>(
      it->second.entry);
}

std::shared_ptr<const whatif::PreparedWhatIf> StageCache::Put(
    const std::string& key,
    std::shared_ptr<const whatif::PreparedWhatIf> plan) {
  if (capacity_ == 0) return plan;  // caching disabled
  MutexLock lock(&plans_.mu);
  bool lost_race = false;
  EntryPtr canonical = StoreLocked(plans_, key, std::move(plan), &lost_race);
  // The losing racer's Get counted a miss and its duplicated prepare is
  // dropped here; record the convergence. (On this manual Get+Prepare+Put
  // path misses still equal prepares — coalesced marks the dropped
  // duplicate, unlike single-flight GetOrPrepare where it marks a saved
  // one.)
  if (lost_race) ++plans_.coalesced;
  return std::static_pointer_cast<const whatif::PreparedWhatIf>(canonical);
}

Result<std::shared_ptr<const whatif::PreparedWhatIf>> StageCache::GetOrPrepare(
    const std::string& key,
    const std::function<
        Result<std::shared_ptr<const whatif::PreparedWhatIf>>()>& prepare,
    bool* hit) {
  HYPER_ASSIGN_OR_RETURN(
      EntryPtr entry,
      GetOrBuildInSection(
          plans_, key,
          [&]() -> Result<EntryPtr> {
            HYPER_ASSIGN_OR_RETURN(
                std::shared_ptr<const whatif::PreparedWhatIf> plan, prepare());
            return std::static_pointer_cast<const void>(plan);
          },
          hit));
  return std::static_pointer_cast<const whatif::PreparedWhatIf>(entry);
}

// --- stage sections ----------------------------------------------------------

Result<StageCache::StagePtr> StageCache::GetOrBuild(whatif::StageKind kind,
                                                    const std::string& key,
                                                    const StageFactory& build,
                                                    bool* hit) {
  return GetOrBuildInSection(SectionOf(kind), key, build, hit);
}

StageCache::StagePtr StageCache::Peek(whatif::StageKind kind,
                                      const std::string& key) {
  Section& section = SectionOf(kind);
  MutexLock lock(&section.mu);
  auto it = section.map.find(key);
  return it == section.map.end() ? nullptr : it->second.entry;
}

// --- maintenance -------------------------------------------------------------

size_t StageCache::EvictTagged(const std::string& tag) {
  size_t evicted = 0;
  Section* sections[] = {&plans_, &stages_[0], &stages_[1], &stages_[2],
                         &stages_[3]};
  for (Section* section : sections) {
    MutexLock lock(&section->mu);
    for (auto it = section->map.begin(); it != section->map.end();) {
      if (it->first.find(tag) != std::string::npos) {
        section->lru.erase(it->second.lru_it);
        it = section->map.erase(it);
        ++section->evictions;
        ++evicted;
      } else {
        ++it;
      }
    }
    // In-flight builds racing this eviction must not re-insert evicted
    // scopes after the sweep: a leader whose key matches the tag is
    // cancelled (its waiters are still answered, nothing is stored — the
    // treatment Clear() gives every in-flight build) and its slot dropped
    // so later same-key callers start fresh instead of coalescing.
    for (auto it = section->inflight.begin(); it != section->inflight.end();) {
      if (it->first.find(tag) != std::string::npos) {
        it->second->cancelled = true;
        it = section->inflight.erase(it);
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

void StageCache::Clear() {
  Section* sections[] = {&plans_, &stages_[0], &stages_[1], &stages_[2],
                         &stages_[3]};
  for (Section* section : sections) {
    MutexLock lock(&section->mu);
    // In-flight builds still publish to their waiters, but the epoch bump
    // stops their leaders from inserting a possibly-invalidated key and
    // stops post-Clear callers from coalescing onto the stale work.
    ++section->clear_epoch;
    section->map.clear();
    section->lru.clear();
  }
}

PlanCacheStats StageCache::stats() const {
  PlanCacheStats s;
  const StageStats plan = SectionStats(plans_);
  s.hits = plan.hits;
  s.misses = plan.misses;
  s.coalesced = plan.coalesced;
  s.evictions = plan.evictions;
  s.entries = plan.entries;
  s.capacity = plan.capacity;
  s.scope = SectionStats(stages_[static_cast<size_t>(whatif::StageKind::kScope)]);
  s.causal =
      SectionStats(stages_[static_cast<size_t>(whatif::StageKind::kCausal)]);
  s.learn =
      SectionStats(stages_[static_cast<size_t>(whatif::StageKind::kLearn)]);
  s.query =
      SectionStats(stages_[static_cast<size_t>(whatif::StageKind::kQuery)]);
  return s;
}

}  // namespace hyper::service
