#include "service/plan_cache.h"

#include "common/strings.h"

namespace hyper::service {

std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options) {
  // Free-form fields (expression text, attribute names) are length-prefixed
  // so the concatenation is injective: a string literal inside a predicate
  // can never forge a neighbouring field and collide two different queries.
  auto field = [](const char* tag, const std::string& text) {
    return StrFormat("|%s[%zu]=", tag, text.size()) + text;
  };
  std::string key = field("scope", scope);
  key += field("use", stmt.use.ToString());
  key += field("when", stmt.when != nullptr ? stmt.when->ToString() : "");
  for (const sql::UpdateClause& u : stmt.updates) {
    key += field("upd", u.attribute);
  }
  key += field("out", stmt.output.ToString());
  key += field("for",
               stmt.for_pred != nullptr ? stmt.for_pred->ToString() : "");
  key += StrFormat(
      "|mode=%d|est=%d|smooth=%.17g|sample=%zu|seed=%llu|blocks=%d|cols=%d",
      static_cast<int>(options.backdoor), static_cast<int>(options.estimator),
      options.frequency_smoothing, options.sample_size,
      static_cast<unsigned long long>(options.seed),
      options.use_blocks ? 1 : 0, options.use_columnar ? 1 : 0);
  const learn::ForestOptions& f = options.forest;
  key += StrFormat(
      "|forest=%zu,%.17g,%d,%llu,%d,%zu,%zu,%zu,%d,%zu", f.num_trees,
      f.subsample, f.sqrt_features ? 1 : 0,
      static_cast<unsigned long long>(f.seed), f.tree.max_depth,
      f.tree.min_samples_leaf, f.tree.max_features, f.tree.max_thresholds,
      f.tree.use_histograms ? 1 : 0, f.tree.max_bins);
  return key;
}

std::shared_ptr<const whatif::PreparedWhatIf> PlanCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

PlanCache::PlanPtr PlanCache::StoreLocked(const std::string& key,
                                          PlanPtr plan, bool* lost_race) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // A concurrent preparer won the race; keep its entry so every caller
    // shares one plan (and one pattern-estimator cache).
    if (lost_race != nullptr) *lost_race = true;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.plan;
  }
  if (lost_race != nullptr) *lost_race = false;
  lru_.push_front(key);
  map_.emplace(key, Slot{plan, lru_.begin()});
  EvictIfNeededLocked();
  return plan;
}

std::shared_ptr<const whatif::PreparedWhatIf> PlanCache::Put(
    const std::string& key,
    std::shared_ptr<const whatif::PreparedWhatIf> plan) {
  if (capacity_ == 0) return plan;  // caching disabled
  std::lock_guard<std::mutex> lock(mu_);
  bool lost_race = false;
  PlanPtr canonical = StoreLocked(key, std::move(plan), &lost_race);
  // The losing racer's Get counted a miss and its duplicated prepare is
  // dropped here; record the convergence. (On this manual Get+Prepare+Put
  // path misses still equal prepares — coalesced marks the dropped
  // duplicate, unlike single-flight GetOrPrepare where it marks a saved
  // one.)
  if (lost_race) ++coalesced_;
  return canonical;
}

Result<std::shared_ptr<const whatif::PreparedWhatIf>> PlanCache::GetOrPrepare(
    const std::string& key,
    const std::function<Result<PlanPtr>()>& prepare, bool* hit) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  size_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = clear_epoch_;
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (hit != nullptr) *hit = true;
      return it->second.plan;
    }
    auto fit = inflight_.find(key);
    if (fit != inflight_.end() && fit->second->epoch == epoch) {
      // Another caller is already preparing this key: coalesce onto its
      // result instead of duplicating the Prepare + estimator training.
      flight = fit->second;
      ++coalesced_;
    } else {
      // No in-flight prepare — or only a stale one from before a Clear(),
      // which must not serve post-Clear callers: become the (new) leader.
      // The stale leader's waiters keep their own InFlight handle and are
      // still answered by it.
      flight = std::make_shared<InFlight>();
      flight->future = flight->promise.get_future().share();
      flight->epoch = epoch;
      inflight_[key] = flight;
      leader = true;
      ++misses_;
    }
  }

  if (!leader) {
    // Served by the leader's prepare: no work of our own, so report a hit.
    if (hit != nullptr) *hit = true;
    return flight->future.get();
  }

  if (hit != nullptr) *hit = false;
  // The factory runs outside the cache lock (it is the expensive part).
  Result<PlanPtr> plan = prepare();
  Result<PlanPtr> canonical = plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (plan.ok() && capacity_ > 0 && clear_epoch_ == epoch) {
      // Single-flight means no same-key GetOrPrepare raced us, but a manual
      // Put may have: StoreLocked keeps whichever entry landed first. A
      // Clear() since we started means our key's scope may be invalidated —
      // waiters still get the plan, but nothing is stored.
      canonical = StoreLocked(key, *plan);
    }
    // Erase only our own slot: a post-Clear leader may have replaced it.
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }
  // Publish after the slot is cleared: waiters woken here are done, and any
  // later caller finds either the stored entry or a fresh miss.
  flight->promise.set_value(canonical);
  return canonical;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight prepares still publish to their waiters, but the epoch bump
  // stops their leaders from inserting a possibly-invalidated key and stops
  // post-Clear callers from coalescing onto the stale work.
  ++clear_epoch_;
  map_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.coalesced = coalesced_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::EvictIfNeededLocked() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace hyper::service
