#include "service/plan_cache.h"

#include "common/strings.h"

namespace hyper::service {

std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options) {
  // Free-form fields (expression text, attribute names) are length-prefixed
  // so the concatenation is injective: a string literal inside a predicate
  // can never forge a neighbouring field and collide two different queries.
  auto field = [](const char* tag, const std::string& text) {
    return StrFormat("|%s[%zu]=", tag, text.size()) + text;
  };
  std::string key = field("scope", scope);
  key += field("use", stmt.use.ToString());
  key += field("when", stmt.when != nullptr ? stmt.when->ToString() : "");
  for (const sql::UpdateClause& u : stmt.updates) {
    key += field("upd", u.attribute);
  }
  key += field("out", stmt.output.ToString());
  key += field("for",
               stmt.for_pred != nullptr ? stmt.for_pred->ToString() : "");
  key += StrFormat(
      "|mode=%d|est=%d|smooth=%.17g|sample=%zu|seed=%llu|blocks=%d|cols=%d",
      static_cast<int>(options.backdoor), static_cast<int>(options.estimator),
      options.frequency_smoothing, options.sample_size,
      static_cast<unsigned long long>(options.seed),
      options.use_blocks ? 1 : 0, options.use_columnar ? 1 : 0);
  const learn::ForestOptions& f = options.forest;
  key += StrFormat(
      "|forest=%zu,%.17g,%d,%llu,%d,%zu,%zu,%zu,%d,%zu", f.num_trees,
      f.subsample, f.sqrt_features ? 1 : 0,
      static_cast<unsigned long long>(f.seed), f.tree.max_depth,
      f.tree.min_samples_leaf, f.tree.max_features, f.tree.max_thresholds,
      f.tree.use_histograms ? 1 : 0, f.tree.max_bins);
  return key;
}

std::shared_ptr<const whatif::PreparedWhatIf> PlanCache::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

std::shared_ptr<const whatif::PreparedWhatIf> PlanCache::Put(
    const std::string& key,
    std::shared_ptr<const whatif::PreparedWhatIf> plan) {
  if (capacity_ == 0) return plan;  // caching disabled
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // A concurrent preparer won the race; keep its entry so every caller
    // shares one plan (and one pattern-estimator cache).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.plan;
  }
  lru_.push_front(key);
  map_.emplace(key, Slot{plan, lru_.begin()});
  EvictIfNeededLocked();
  return plan;
}

Result<std::shared_ptr<const whatif::PreparedWhatIf>> PlanCache::GetOrPrepare(
    const std::string& key,
    const std::function<
        Result<std::shared_ptr<const whatif::PreparedWhatIf>>()>& prepare,
    bool* hit) {
  if (auto cached = Get(key)) {
    if (hit != nullptr) *hit = true;
    return cached;
  }
  if (hit != nullptr) *hit = false;
  HYPER_ASSIGN_OR_RETURN(std::shared_ptr<const whatif::PreparedWhatIf> plan,
                         prepare());
  return Put(key, std::move(plan));
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::EvictIfNeededLocked() {
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace hyper::service
