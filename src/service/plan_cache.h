#ifndef HYPER_SERVICE_PLAN_CACHE_H_
#define HYPER_SERVICE_PLAN_CACHE_H_

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "whatif/engine.h"

namespace hyper::service {

/// Counters for one cache section (whole plans, or one prepare stage).
struct StageStats {
  size_t hits = 0;
  size_t misses = 0;
  /// Lookups that neither hit nor built: the caller was coalesced onto a
  /// concurrent builder's in-flight entry (single-flight followers), or a
  /// Put lost the insert race and converged on the already-stored entry.
  /// Accounting invariant (asserted in service_test): for
  /// GetOrPrepare/GetOrBuild-only workloads, `misses` equals the number of
  /// factory invocations and `hits + misses + coalesced` equals the number
  /// of lookups.
  size_t coalesced = 0;
  size_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Stats for every section. The flat fields mirror the plan section (the
/// legacy PlanCacheStats surface); the per-stage sections expose how much of
/// each prepare the staged pipeline reused.
struct PlanCacheStats {
  // Plan section (assembled PreparedWhatIf entries).
  size_t hits = 0;
  size_t misses = 0;
  size_t coalesced = 0;
  size_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
  // Stage sections: misses count actual stage builds ("prepares per stage").
  StageStats scope;
  StageStats causal;
  StageStats learn;
  StageStats query;
};

/// Composes the cache key for an assembled (whole-plan) entry. The key
/// captures everything Prepare() consumes:
///   - `scope`: the data snapshot (ScenarioService uses generation + branch
///     delta fingerprint; standalone callers can use
///     Database::ContentFingerprint()). Plans must never be shared across
///     scopes — that is the invalidation story: mutate data => new scope =>
///     old entries become unreachable and age out of the LRU.
///   - the query shape: Use / When / For / Output text and the ordered
///     update-attribute list. Update *constants and functions* are excluded:
///     a prepared plan answers any intervention over its attributes.
///   - the estimator configuration: backdoor mode, estimator kind, forest
///     hyperparameters, smoothing, sample size and seed, block decomposition
///     — and the staged/monolithic arm, so A/B runs never share entries.
std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options);

/// The serving layer's stage cache: one thread-safe LRU + single-flight
/// section per prepare stage (Scope / Causal / Learn / Query, served to the
/// engine through the whatif::StageProvider interface) plus a fifth section
/// of assembled whole plans (the legacy typed PlanCache API). Entries are
/// shared_ptr and downstream stages hold their upstream stages alive, so
/// evicting any entry never invalidates an in-flight query or a live
/// downstream stage. Capacity 0 disables storage in every section (each
/// lookup misses, nothing is retained), but single-flight still coalesces
/// concurrent builds of one key.
class StageCache : public whatif::StageProvider {
 public:
  explicit StageCache(size_t capacity = 64);

  // --- whole-plan section (legacy typed API) ------------------------------

  /// Returns the cached plan or nullptr; counts a hit/miss.
  std::shared_ptr<const whatif::PreparedWhatIf> Get(const std::string& key);

  /// Inserts `plan` unless the key is already present (first writer wins, so
  /// concurrent preparers converge on one shared plan — and one shared
  /// pattern-estimator cache). Returns the canonical entry. A lost race
  /// counts as `coalesced`, so manual Get+Prepare+Put callers still
  /// reconcile: their Get counted a miss, and the duplicated prepare is
  /// visible as a coalesced insert.
  std::shared_ptr<const whatif::PreparedWhatIf> Put(
      const std::string& key,
      std::shared_ptr<const whatif::PreparedWhatIf> plan);

  /// Get, or run `prepare` and insert on a miss — single-flight: when N
  /// callers miss the same key concurrently, exactly one runs `prepare`
  /// (outside the cache lock) while the other N-1 block on the shared
  /// in-flight result instead of each redundantly preparing and training.
  /// Followers count as `coalesced` in the stats and report *hit = true
  /// (they paid nothing); the one preparer counts the miss and reports
  /// *hit = false. A failed prepare propagates its status to every waiter
  /// and clears the in-flight slot so a later call retries.
  Result<std::shared_ptr<const whatif::PreparedWhatIf>> GetOrPrepare(
      const std::string& key,
      const std::function<
          Result<std::shared_ptr<const whatif::PreparedWhatIf>>()>& prepare,
      bool* hit = nullptr);

  // --- stage sections (whatif::StageProvider) -----------------------------

  /// Per-stage get-or-build with the same LRU + single-flight semantics as
  /// GetOrPrepare, one independent section per StageKind.
  Result<StagePtr> GetOrBuild(whatif::StageKind kind, const std::string& key,
                              const StageFactory& build, bool* hit) override;

  /// Returns the cached stage or nullptr without building. Does not touch
  /// recency or the hit/miss counters (it locates delta-patch bases, it
  /// does not serve queries).
  StagePtr Peek(whatif::StageKind kind, const std::string& key) override;

  // --- maintenance --------------------------------------------------------

  /// Eagerly evicts, from every section, the entries whose key contains
  /// `tag` (e.g. a dropped branch's data-scope fingerprint). Returns the
  /// number of entries evicted; the eviction counters absorb them, so the
  /// hit/miss/coalesced ledger still reconciles with lookups.
  size_t EvictTagged(const std::string& tag);

  void Clear();
  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  using EntryPtr = std::shared_ptr<const void>;
  using EntryFactory = std::function<Result<EntryPtr>()>;

  /// One in-flight build, shared by the builder (who fulfills the promise)
  /// and every coalesced waiter. `epoch` records the clear epoch at
  /// creation: a Clear() invalidates in-flight work too, so later callers
  /// must not coalesce onto a pre-Clear build.
  struct InFlight {
    std::promise<Result<EntryPtr>> promise;
    std::shared_future<Result<EntryPtr>> future;
    size_t epoch = 0;
    /// Set (under the section mutex) by EvictTagged when this build's key
    /// matches the evicted tag: the leader publishes to its waiters but
    /// skips the insert, so a racing build cannot resurrect a dropped
    /// branch's entries.
    bool cancelled = false;
  };

  /// One independent LRU + single-flight cache: plans, or one stage kind.
  /// `InFlight::cancelled` is written under the owning section's mu (see
  /// EvictTagged) and read by the build leader under the same mu — the
  /// analysis cannot express "guarded by the section that owns me" across
  /// the shared_ptr, so the contract lives here in prose.
  struct Section {
    mutable Mutex mu;
    /// Front = most recently used.
    std::list<std::string> lru GUARDED_BY(mu);
    struct Slot {
      EntryPtr entry;
      std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, Slot> map GUARDED_BY(mu);
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight
        GUARDED_BY(mu);
    /// Bumped by Clear(). A builder whose factory straddled a Clear still
    /// publishes its entry to waiters but skips the insert: its key may
    /// embed an invalidated scope and would sit unreachable in the LRU.
    size_t clear_epoch GUARDED_BY(mu) = 0;
    size_t hits GUARDED_BY(mu) = 0;
    size_t misses GUARDED_BY(mu) = 0;
    size_t coalesced GUARDED_BY(mu) = 0;
    size_t evictions GUARDED_BY(mu) = 0;
  };

  /// Inserts into the section LRU (first writer wins) and returns the
  /// canonical entry. Caller holds the section mutex.
  EntryPtr StoreLocked(Section& section, const std::string& key,
                       EntryPtr entry, bool* lost_race = nullptr)
      REQUIRES(section.mu);
  void EvictIfNeededLocked(Section& section) REQUIRES(section.mu);
  /// Runs `build` outside the section lock (EXCLUDES documents that the
  /// factory may re-enter other sections, never this one).
  Result<EntryPtr> GetOrBuildInSection(Section& section,
                                       const std::string& key,
                                       const EntryFactory& build, bool* hit)
      EXCLUDES(section.mu);
  StageStats SectionStats(const Section& section) const EXCLUDES(section.mu);

  Section& SectionOf(whatif::StageKind kind) {
    return stages_[static_cast<size_t>(kind)];
  }

  size_t capacity_;
  Section plans_;
  Section stages_[4];  // indexed by StageKind
};

/// Historical name: the cache predates the staged pipeline. The typed
/// whole-plan API is unchanged.
using PlanCache = StageCache;

}  // namespace hyper::service

#endif  // HYPER_SERVICE_PLAN_CACHE_H_
