#ifndef HYPER_SERVICE_PLAN_CACHE_H_
#define HYPER_SERVICE_PLAN_CACHE_H_

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "whatif/engine.h"

namespace hyper::service {

struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  /// Lookups that neither hit nor prepared: the caller was coalesced onto a
  /// concurrent preparer's in-flight plan (single-flight followers), or a
  /// Put lost the insert race and converged on the already-stored entry.
  /// Accounting invariant (asserted in service_test): for GetOrPrepare-only
  /// workloads, `misses` equals the number of prepare-factory invocations
  /// and `hits + misses + coalesced` equals the number of lookups.
  size_t coalesced = 0;
  size_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Composes the cache key for a prepared what-if plan. The key captures
/// everything Prepare() consumes:
///   - `scope`: the data snapshot (ScenarioService uses generation + branch
///     delta fingerprint; standalone callers can use
///     Database::ContentFingerprint()). Plans must never be shared across
///     scopes — that is the invalidation story: mutate data => new scope =>
///     old entries become unreachable and age out of the LRU.
///   - the query shape: Use / When / For / Output text and the ordered
///     update-attribute list. Update *constants and functions* are excluded:
///     a prepared plan answers any intervention over its attributes.
///   - the estimator configuration: backdoor mode, estimator kind, forest
///     hyperparameters, smoothing, sample size and seed, block decomposition.
std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options);

/// A thread-safe LRU cache of prepared what-if plans (trained estimators +
/// compiled view plans). Entries are shared_ptr, so eviction never
/// invalidates a plan an in-flight query is evaluating against. Capacity 0
/// disables storage (every lookup misses, nothing is retained), but
/// GetOrPrepare still single-flights concurrent misses on one key.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the cached plan or nullptr; counts a hit/miss.
  std::shared_ptr<const whatif::PreparedWhatIf> Get(const std::string& key);

  /// Inserts `plan` unless the key is already present (first writer wins, so
  /// concurrent preparers converge on one shared plan — and one shared
  /// pattern-estimator cache). Returns the canonical entry. A lost race
  /// counts as `coalesced`, so manual Get+Prepare+Put callers still
  /// reconcile: their Get counted a miss, and the duplicated prepare is
  /// visible as a coalesced insert.
  std::shared_ptr<const whatif::PreparedWhatIf> Put(
      const std::string& key,
      std::shared_ptr<const whatif::PreparedWhatIf> plan);

  /// Get, or run `prepare` and insert on a miss — single-flight: when N
  /// callers miss the same key concurrently, exactly one runs `prepare`
  /// (outside the cache lock) while the other N-1 block on the shared
  /// in-flight result instead of each redundantly preparing and training.
  /// Followers count as `coalesced` in the stats and report *hit = true
  /// (they paid nothing); the one preparer counts the miss and reports
  /// *hit = false. A failed prepare propagates its status to every waiter
  /// and clears the in-flight slot so a later call retries.
  Result<std::shared_ptr<const whatif::PreparedWhatIf>> GetOrPrepare(
      const std::string& key,
      const std::function<
          Result<std::shared_ptr<const whatif::PreparedWhatIf>>()>& prepare,
      bool* hit = nullptr);

  void Clear();
  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  using PlanPtr = std::shared_ptr<const whatif::PreparedWhatIf>;

  /// One in-flight Prepare, shared by the preparer (who fulfills the
  /// promise) and every coalesced waiter. `epoch` records the clear epoch
  /// at creation: a Clear() invalidates in-flight work too, so later
  /// callers must not coalesce onto a pre-Clear prepare.
  struct InFlight {
    std::promise<Result<PlanPtr>> promise;
    std::shared_future<Result<PlanPtr>> future;
    size_t epoch = 0;
  };

  /// Inserts into the LRU (first writer wins) and returns the canonical
  /// entry. Caller holds mu_.
  PlanPtr StoreLocked(const std::string& key, PlanPtr plan,
                      bool* lost_race = nullptr);
  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::string> lru_;
  struct Slot {
    PlanPtr plan;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Bumped by Clear(). A leader whose prepare straddled a Clear still
  /// publishes its plan to waiters but skips the insert: its key may embed
  /// an invalidated scope (e.g. the pre-reload generation) and would sit in
  /// the LRU as a permanently unreachable entry.
  size_t clear_epoch_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t coalesced_ = 0;
  size_t evictions_ = 0;
};

}  // namespace hyper::service

#endif  // HYPER_SERVICE_PLAN_CACHE_H_
