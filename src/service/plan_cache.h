#ifndef HYPER_SERVICE_PLAN_CACHE_H_
#define HYPER_SERVICE_PLAN_CACHE_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "whatif/engine.h"

namespace hyper::service {

struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Composes the cache key for a prepared what-if plan. The key captures
/// everything Prepare() consumes:
///   - `scope`: the data snapshot (ScenarioService uses generation + branch
///     delta fingerprint; standalone callers can use
///     Database::ContentFingerprint()). Plans must never be shared across
///     scopes — that is the invalidation story: mutate data => new scope =>
///     old entries become unreachable and age out of the LRU.
///   - the query shape: Use / When / For / Output text and the ordered
///     update-attribute list. Update *constants and functions* are excluded:
///     a prepared plan answers any intervention over its attributes.
///   - the estimator configuration: backdoor mode, estimator kind, forest
///     hyperparameters, smoothing, sample size and seed, block decomposition.
std::string WhatIfPlanKey(const std::string& scope,
                          const sql::WhatIfStmt& stmt,
                          const whatif::WhatIfOptions& options);

/// A thread-safe LRU cache of prepared what-if plans (trained estimators +
/// compiled view plans). Entries are shared_ptr, so eviction never
/// invalidates a plan an in-flight query is evaluating against. Capacity 0
/// disables caching (every lookup misses, nothing is stored).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the cached plan or nullptr; counts a hit/miss.
  std::shared_ptr<const whatif::PreparedWhatIf> Get(const std::string& key);

  /// Inserts `plan` unless the key is already present (first writer wins, so
  /// concurrent preparers converge on one shared plan — and one shared
  /// pattern-estimator cache). Returns the canonical entry.
  std::shared_ptr<const whatif::PreparedWhatIf> Put(
      const std::string& key,
      std::shared_ptr<const whatif::PreparedWhatIf> plan);

  /// Get, or run `prepare` and Put on a miss. `hit` (optional) reports which
  /// happened. The factory runs outside the cache lock.
  Result<std::shared_ptr<const whatif::PreparedWhatIf>> GetOrPrepare(
      const std::string& key,
      const std::function<
          Result<std::shared_ptr<const whatif::PreparedWhatIf>>()>& prepare,
      bool* hit = nullptr);

  void Clear();
  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const whatif::PreparedWhatIf> plan;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Slot> map_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace hyper::service

#endif  // HYPER_SERVICE_PLAN_CACHE_H_
