#ifndef HYPER_SERVICE_SCENARIO_H_
#define HYPER_SERVICE_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/value.h"

namespace hyper::service {

/// One scenario branch: a named chain of hypothetical updates over a base
/// database, held as sparse copy-on-write per-attribute override deltas —
/// never a materialized copy of the data. A branch created from a parent
/// starts with the parent's deltas (chaining); later updates merge cell by
/// cell, later writes winning.
///
/// Overrides are relative to the *base* database. The ScenarioService
/// materializes a touched relation by patching a copy of the base table
/// (once per branch version, outside its lock, cached in its BranchState);
/// untouched relations are shared with the base via Database::ShallowCopy.
class ScenarioBranch {
 public:
  /// tid -> value overrides of one attribute. Aliases the storage-layer
  /// cell-override types so branch deltas feed ColumnTable::ApplyOverrides
  /// (delta-aware columnar materialization) without conversion.
  using AttributeCells = AttributeCellOverrides;
  /// attr index -> cells, for one relation.
  using RelationOverrides = TableCellOverrides;
  /// relation -> overrides: a branch's whole delta, base-relative.
  using OverrideMap = std::map<std::string, RelationOverrides>;

  ScenarioBranch(std::string name, std::string parent)
      : name_(std::move(name)), parent_(std::move(parent)) {}

  /// Chaining: start from another branch's deltas.
  ScenarioBranch(std::string name, const ScenarioBranch& parent)
      : name_(std::move(name)),
        parent_(parent.name_),
        overrides_(parent.overrides_),
        updates_applied_(parent.updates_applied_),
        version_(0),
        fnv_(parent.fnv_) {}

  /// Rehydrates a branch from durable state (src/durability/). The delta
  /// fingerprint mixes in Override() *call order*, so it cannot be
  /// recomputed from the cell map alone — the snapshot carries the raw FNV
  /// state and this factory reseeds it, making post-recovery fingerprints
  /// bit-identical to the pre-crash ones.
  static ScenarioBranch Restore(std::string name, std::string parent,
                                OverrideMap overrides, size_t updates_applied,
                                uint64_t version, uint64_t fnv_state) {
    ScenarioBranch branch(std::move(name), std::move(parent));
    branch.overrides_ = std::move(overrides);
    branch.updates_applied_ = updates_applied;
    branch.version_ = version;
    branch.fnv_ = Fnv1a(fnv_state);
    return branch;
  }

  const std::string& name() const { return name_; }
  const std::string& parent() const { return parent_; }

  /// Bumps on every non-empty Override batch; materialization and plan
  /// scoping key on it.
  uint64_t version() const { return version_; }

  /// Deterministic hash of every override cell (relation, attribute, tid,
  /// value). Two branches with identical deltas fingerprint identically, so
  /// they share plan-cache entries.
  uint64_t delta_fingerprint() const { return fnv_.hash(); }

  size_t updates_applied() const { return updates_applied_; }
  size_t overridden_cells() const;
  bool touches(const std::string& relation) const {
    return overrides_.count(relation) > 0;
  }
  std::vector<std::string> TouchedRelations() const;

  /// Snapshot of one relation's overrides (empty when untouched). The copy
  /// is O(overridden cells), so callers can patch tables outside any lock
  /// guarding the branch.
  RelationOverrides OverridesFor(const std::string& relation) const;

  /// The branch's whole delta (base-relative), by const reference — callers
  /// needing a lock-free snapshot copy it (O(cells)).
  const OverrideMap& overrides() const { return overrides_; }

  /// Deterministic fingerprint of the delta restricted to `attrs` (indices
  /// into `relation`'s base schema): FNV over the current override cells of
  /// those attributes, in map order. Unlike delta_fingerprint() — which
  /// mixes in Override() call order — this is a pure function of the
  /// current cell state, so two branches that reached the same restricted
  /// state through different update sequences fingerprint identically.
  /// A branch whose delta misses `attrs` entirely fingerprints like an
  /// untouched branch — the LearnStage-reuse contract.
  uint64_t FingerprintRestricted(const std::string& relation,
                                 const std::vector<size_t>& attrs) const;

  /// FingerprintRestricted over an arbitrary snapshot (the service hashes
  /// lock-free against a World's override copy).
  static uint64_t FingerprintRestricted(const OverrideMap& overrides,
                                        const std::string& relation,
                                        const std::vector<size_t>& attrs);

  /// Merges one batch of cell overrides for (relation, attr index). Cells
  /// overwrite earlier values at the same coordinates. An empty batch is a
  /// no-op: it must not bump the version, change the fingerprint or mark
  /// the relation touched (a data-identical world keeps its cached plans).
  void Override(const std::string& relation, size_t attr,
                const std::vector<std::pair<size_t, Value>>& cells);

  /// What delta_fingerprint() would become after Override(relation, attr,
  /// cells) — without mutating. The durability layer journals this
  /// post-image so replay can verify each record landed on the exact
  /// fingerprint the live run produced.
  uint64_t PreviewFingerprint(
      const std::string& relation, size_t attr,
      const std::vector<std::pair<size_t, Value>>& cells) const;

  /// Same simulation from an explicit FNV state — chain it across the
  /// batches of one hypothetical (the state IS the fingerprint).
  static uint64_t PreviewFingerprint(
      uint64_t fnv_state, const std::string& relation, size_t attr,
      const std::vector<std::pair<size_t, Value>>& cells);

  /// Counts one applied hypothetical statement (which may Override several
  /// attributes).
  void RecordUpdateApplied() { ++updates_applied_; }

 private:
  std::string name_;
  std::string parent_;
  /// relation -> attr index -> tid -> value. Ordered maps keep the
  /// fingerprint and materialization deterministic.
  OverrideMap overrides_;
  size_t updates_applied_ = 0;
  uint64_t version_ = 0;
  Fnv1a fnv_;
};

}  // namespace hyper::service

#endif  // HYPER_SERVICE_SCENARIO_H_
