#ifndef HYPER_SERVICE_SERVICE_METRICS_H_
#define HYPER_SERVICE_SERVICE_METRICS_H_

#include <string>

#include "common/governance.h"
#include "obs/metrics.h"
#include "service/scenario_service.h"

namespace hyper {
namespace service {

/// The service's handles into a MetricsRegistry, resolved once at
/// construction so the per-request hot path touches only pre-interned
/// instruments (plus one registry lookup for the labeled outcome counter).
/// Created by ScenarioService when ServiceOptions.metrics is set.
struct ServiceInstruments {
  explicit ServiceInstruments(obs::MetricsRegistry* registry);

  /// Folds one dispatched request into the instruments: a latency
  /// observation, an outcome counter, and — for successful what-if /
  /// how-to answers — prepare/eval latencies, plan-cache hit/miss, and the
  /// rows/bytes the request touched (metered exactly by the guard when the
  /// request was governed, approximated by view_rows otherwise).
  void RecordRequest(const Response& response,
                     const governance::ExecGuard* guard, double seconds);

  /// Folds one SubmitWhatIfBatch sweep (admitted as a single request).
  void RecordBatch(const Status& status, size_t num_items, double seconds);

  obs::MetricsRegistry* registry = nullptr;
  /// Indexed by Response::Kind (kNone..kSelect) plus a final "batch" slot.
  obs::Histogram* request_latency[5] = {};
  obs::Histogram* prepare_latency = nullptr;
  obs::Histogram* eval_latency = nullptr;
  obs::Counter* rows_touched = nullptr;
  obs::Counter* bytes_materialized = nullptr;
  obs::Counter* plan_cache_hit_requests = nullptr;
  obs::Counter* plan_cache_miss_requests = nullptr;
};

/// Appends the service's own counters — admission outcomes, governed-abort
/// taxonomy, in-flight/queue/drain gauges, and the plan/stage cache
/// sections — to `snapshot` as Prometheus-ready series. These live in the
/// service (not the registry), so /metrics derives them fresh per scrape.
void AppendServiceSeries(const ScenarioService& service,
                         obs::MetricsSnapshot* snapshot);

/// The /statusz document: drain state, admission counters, cache sections,
/// and (when a registry is wired) the full metrics snapshot with latency
/// quantiles. Also serves `\metrics` in hyper_shell.
std::string StatuszJson(const ScenarioService& service,
                        const obs::MetricsRegistry* registry);

}  // namespace service
}  // namespace hyper

#endif  // HYPER_SERVICE_SERVICE_METRICS_H_
