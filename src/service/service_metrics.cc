#include "service/service_metrics.h"

#include <algorithm>

#include "common/json.h"
#include "common/strings.h"

namespace hyper {
namespace service {

namespace {

constexpr const char* kKindLabels[5] = {"other", "whatif", "howto", "select",
                                        "batch"};

const char* OutcomeLabel(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    default: return "other";
  }
}

void AppendCounter(obs::MetricsSnapshot* snapshot, std::string name,
                   std::string labels, std::string help, double value) {
  obs::MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.type = obs::MetricType::kCounter;
  s.help = std::move(help);
  s.value = value;
  snapshot->samples.push_back(std::move(s));
}

void AppendGauge(obs::MetricsSnapshot* snapshot, std::string name,
                 std::string labels, std::string help, double value) {
  obs::MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.type = obs::MetricType::kGauge;
  s.help = std::move(help);
  s.value = value;
  snapshot->samples.push_back(std::move(s));
}

void AppendCacheSection(obs::MetricsSnapshot* snapshot, const char* section,
                        const StageStats& stats) {
  const std::string base = StrFormat("section=\"%s\"", section);
  AppendCounter(snapshot, "hyper_cache_events_total",
                base + ",event=\"hit\"",
                "Plan/stage cache events by section", double(stats.hits));
  AppendCounter(snapshot, "hyper_cache_events_total",
                base + ",event=\"miss\"", "", double(stats.misses));
  AppendCounter(snapshot, "hyper_cache_events_total",
                base + ",event=\"coalesced\"", "", double(stats.coalesced));
  AppendCounter(snapshot, "hyper_cache_events_total",
                base + ",event=\"eviction\"", "", double(stats.evictions));
  AppendGauge(snapshot, "hyper_cache_entries", base,
              "Live entries per cache section", double(stats.entries));
}

void WriteStageStats(JsonWriter* w, const StageStats& stats) {
  w->BeginObject()
      .Key("hits").UInt(stats.hits)
      .Key("misses").UInt(stats.misses)
      .Key("coalesced").UInt(stats.coalesced)
      .Key("evictions").UInt(stats.evictions)
      .Key("entries").UInt(stats.entries)
      .Key("capacity").UInt(stats.capacity)
      .EndObject();
}

}  // namespace

ServiceInstruments::ServiceInstruments(obs::MetricsRegistry* registry)
    : registry(registry) {
  for (size_t i = 0; i < 5; ++i) {
    request_latency[i] = registry->GetHistogram(
        "hyper_request_seconds",
        StrFormat("kind=\"%s\"", kKindLabels[i]),
        "End-to-end dispatch latency by statement kind");
  }
  prepare_latency = registry->GetHistogram(
      "hyper_prepare_seconds", "",
      "Plan-preparation time charged to successful requests");
  eval_latency = registry->GetHistogram(
      "hyper_eval_seconds", "",
      "Evaluation time of successful what-if/how-to requests");
  rows_touched = registry->GetCounter(
      "hyper_rows_touched_total", "",
      "Rows touched by served requests (guard-metered when governed)");
  bytes_materialized = registry->GetCounter(
      "hyper_bytes_materialized_total", "",
      "Bytes materialized by governed requests (guard-metered)");
  plan_cache_hit_requests = registry->GetCounter(
      "hyper_plan_cache_requests_total", "result=\"hit\"",
      "What-if requests answered from a cached prepared plan");
  plan_cache_miss_requests = registry->GetCounter(
      "hyper_plan_cache_requests_total", "result=\"miss\"", "");
}

void ServiceInstruments::RecordRequest(const Response& response,
                                       const governance::ExecGuard* guard,
                                       double seconds) {
  const size_t kind = static_cast<size_t>(response.kind);
  request_latency[kind]->Observe(seconds);
  registry
      ->GetCounter("hyper_requests_total",
                   StrFormat("kind=\"%s\",outcome=\"%s\"", kKindLabels[kind],
                             OutcomeLabel(response.status.code())),
                   "Dispatched requests by kind and outcome")
      ->Increment();
  if (!response.ok()) return;

  if (response.kind == Response::Kind::kWhatIf) {
    prepare_latency->Observe(response.whatif.prepare_seconds);
    eval_latency->Observe(response.whatif.eval_seconds);
    (response.whatif.plan_cache_hit ? plan_cache_hit_requests
                                    : plan_cache_miss_requests)
        ->Increment();
    rows_touched->Increment(guard != nullptr ? guard->rows_touched()
                                             : response.whatif.view_rows);
  } else if (response.kind == Response::Kind::kHowTo) {
    prepare_latency->Observe(response.howto.prepare_seconds);
    eval_latency->Observe(response.howto.eval_seconds);
    if (guard != nullptr) rows_touched->Increment(guard->rows_touched());
  } else if (response.kind == Response::Kind::kSelect) {
    rows_touched->Increment(guard != nullptr ? guard->rows_touched()
                                             : response.table.num_rows());
  }
  if (guard != nullptr) {
    bytes_materialized->Increment(guard->bytes_materialized());
  }
}

void ServiceInstruments::RecordBatch(const Status& status, size_t num_items,
                                     double seconds) {
  request_latency[4]->Observe(seconds);
  registry
      ->GetCounter("hyper_requests_total",
                   StrFormat("kind=\"batch\",outcome=\"%s\"",
                             OutcomeLabel(status.code())),
                   "Dispatched requests by kind and outcome")
      ->Increment();
  registry
      ->GetCounter("hyper_batch_items_total", "",
                   "Interventions swept by SubmitWhatIfBatch calls")
      ->Increment(num_items);
}

void AppendServiceSeries(const ScenarioService& service,
                         obs::MetricsSnapshot* snapshot) {
  const GovernanceStats gov = service.governance_stats();
  const char* admission_help = "Admission-control outcomes";
  AppendCounter(snapshot, "hyper_admission_total", "outcome=\"admitted\"",
                admission_help, double(gov.admitted));
  AppendCounter(snapshot, "hyper_admission_total", "outcome=\"queued\"", "",
                double(gov.queued));
  AppendCounter(snapshot, "hyper_admission_total", "outcome=\"shed\"", "",
                double(gov.shed));
  AppendCounter(snapshot, "hyper_admission_total",
                "outcome=\"rejected_draining\"", "",
                double(gov.rejected_draining));
  AppendCounter(snapshot, "hyper_completed_requests_total", "",
                "Requests that finished executing (any status)",
                double(gov.completed));
  const char* abort_help = "Governed-request aborts by reason";
  AppendCounter(snapshot, "hyper_governance_aborts_total",
                "reason=\"deadline_exceeded\"", abort_help,
                double(gov.deadline_exceeded));
  AppendCounter(snapshot, "hyper_governance_aborts_total",
                "reason=\"resource_exhausted\"", "",
                double(gov.resource_exhausted));
  AppendCounter(snapshot, "hyper_governance_aborts_total",
                "reason=\"cancelled\"", "", double(gov.cancelled));
  AppendGauge(snapshot, "hyper_in_flight_requests", "",
              "Requests executing right now", double(gov.in_flight));
  AppendGauge(snapshot, "hyper_queued_requests", "",
              "Requests waiting for an execution slot", double(gov.queued_now));
  AppendGauge(snapshot, "hyper_draining", "",
              "1 while the service is draining", gov.draining ? 1.0 : 0.0);

  const PlanCacheStats cache = service.cache_stats();
  StageStats plan;
  plan.hits = cache.hits;
  plan.misses = cache.misses;
  plan.coalesced = cache.coalesced;
  plan.evictions = cache.evictions;
  plan.entries = cache.entries;
  plan.capacity = cache.capacity;
  AppendCacheSection(snapshot, "plan", plan);
  AppendCacheSection(snapshot, "scope", cache.scope);
  AppendCacheSection(snapshot, "causal", cache.causal);
  AppendCacheSection(snapshot, "learn", cache.learn);
  AppendCacheSection(snapshot, "query", cache.query);

  // Durability point-in-time state. The monotone WAL counters
  // (hyper_wal_appends_total, hyper_wal_bytes_total, the fsync histogram,
  // hyper_snapshots_total) live in the registry — the durability manager
  // owns them — so only the derived gauges are appended here.
  const durability::WalStats wal = service.wal_stats();
  AppendGauge(snapshot, "hyper_wal_enabled", "",
              "1 when a durable data dir is wired", wal.enabled ? 1.0 : 0.0);
  if (wal.enabled) {
    AppendGauge(snapshot, "hyper_wal_last_lsn", "",
                "Highest acknowledged WAL sequence number",
                double(wal.last_lsn));
    AppendGauge(snapshot, "hyper_wal_segments", "",
                "Live WAL segment files", double(wal.segments));
    AppendGauge(snapshot, "hyper_wal_records_since_snapshot", "",
                "Records appended since the last snapshot",
                double(wal.records_since_snapshot));
  }

  // Keep the exposition grouped per family after the append.
  std::stable_sort(snapshot->samples.begin(), snapshot->samples.end(),
                   [](const obs::MetricSample& a, const obs::MetricSample& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
}

std::string StatuszJson(const ScenarioService& service,
                        const obs::MetricsRegistry* registry) {
  const GovernanceStats gov = service.governance_stats();
  const PlanCacheStats cache = service.cache_stats();

  JsonWriter w;
  w.BeginObject();
  w.Key("draining").Bool(gov.draining);
  w.Key("admission").BeginObject()
      .Key("admitted").UInt(gov.admitted)
      .Key("queued").UInt(gov.queued)
      .Key("shed").UInt(gov.shed)
      .Key("rejected_draining").UInt(gov.rejected_draining)
      .Key("completed").UInt(gov.completed)
      .Key("deadline_exceeded").UInt(gov.deadline_exceeded)
      .Key("resource_exhausted").UInt(gov.resource_exhausted)
      .Key("cancelled").UInt(gov.cancelled)
      .Key("in_flight").UInt(gov.in_flight)
      .Key("queued_now").UInt(gov.queued_now)
      .EndObject();

  w.Key("cache").BeginObject();
  w.Key("plan");
  StageStats plan;
  plan.hits = cache.hits;
  plan.misses = cache.misses;
  plan.coalesced = cache.coalesced;
  plan.evictions = cache.evictions;
  plan.entries = cache.entries;
  plan.capacity = cache.capacity;
  WriteStageStats(&w, plan);
  w.Key("scope");
  WriteStageStats(&w, cache.scope);
  w.Key("causal");
  WriteStageStats(&w, cache.causal);
  w.Key("learn");
  WriteStageStats(&w, cache.learn);
  w.Key("query");
  WriteStageStats(&w, cache.query);
  w.EndObject();

  const durability::WalStats wal = service.wal_stats();
  w.Key("durability").BeginObject();
  w.Key("enabled").Bool(wal.enabled);
  if (wal.enabled || !wal.dir.empty()) w.Key("dir").String(wal.dir);
  if (wal.enabled) {
    w.Key("fsync").String(wal.fsync_policy)
        .Key("last_lsn").UInt(wal.last_lsn)
        .Key("appends").UInt(wal.appends)
        .Key("appended_bytes").UInt(wal.appended_bytes)
        .Key("fsyncs").UInt(wal.fsyncs)
        .Key("segments").UInt(wal.segments)
        .Key("snapshots_written").UInt(wal.snapshots_written)
        .Key("last_snapshot_lsn").UInt(wal.last_snapshot_lsn)
        .Key("records_since_snapshot").UInt(wal.records_since_snapshot);
  }
  if (!service.recovery_status().ok()) {
    w.Key("recovery_error").String(service.recovery_status().ToString());
  }
  const durability::RecoveryInfo& rec = wal.recovery;
  w.Key("recovery").BeginObject()
      .Key("performed").Bool(rec.performed)
      .Key("snapshot_loaded").Bool(rec.snapshot_loaded)
      .Key("snapshot_lsn").UInt(rec.snapshot_lsn)
      .Key("records_replayed").UInt(rec.records_replayed)
      .Key("records_skipped").UInt(rec.records_skipped)
      .Key("tail_truncated").Bool(rec.tail_truncated)
      .Key("truncated_bytes").UInt(rec.truncated_bytes)
      .Key("corrupt_snapshots_skipped")
      .UInt(rec.corrupt_snapshots_skipped.size())
      .Key("generation").UInt(rec.generation)
      .Key("seconds").Double(rec.seconds)
      .EndObject();
  w.EndObject();

  w.Key("metrics");
  if (registry != nullptr) {
    w.Raw(obs::RenderJson(registry->Snapshot()));
  } else {
    w.Null();
  }
  w.EndObject();
  return w.Take();
}

}  // namespace service
}  // namespace hyper
