#include "service/scenario_service.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "relational/compiled.h"
#include "relational/select.h"
#include "service/service_metrics.h"
#include "sql/parser.h"

namespace hyper::service {

ScenarioService::ScenarioService(Database base, ServiceOptions options)
    : base_(std::move(base)),
      options_(options),
      cache_(options.plan_cache_capacity) {
  branches_.emplace("main", BranchState{ScenarioBranch("main", ""),
                                        next_branch_id_++, ~0ULL, nullptr});
  if (options_.metrics != nullptr) {
    instruments_ = std::make_unique<ServiceInstruments>(options_.metrics);
  }
  InitDurability();
}

ScenarioService::ScenarioService(Database base, causal::CausalGraph graph,
                                 ServiceOptions options)
    : base_(std::move(base)),
      graph_(std::move(graph)),
      has_graph_(true),
      options_(options),
      cache_(options.plan_cache_capacity) {
  branches_.emplace("main", BranchState{ScenarioBranch("main", ""),
                                        next_branch_id_++, ~0ULL, nullptr});
  if (options_.metrics != nullptr) {
    instruments_ = std::make_unique<ServiceInstruments>(options_.metrics);
  }
  InitDurability();
}

void ScenarioService::InitDurability() {
  if (options_.data_dir.empty()) return;
  durability::DurabilityOptions dopts;
  dopts.dir = options_.data_dir;
  dopts.fsync = options_.wal_fsync;
  dopts.fsync_interval_seconds = options_.wal_fsync_interval_seconds;
  dopts.snapshot_every_records = options_.snapshot_every_records;
  dopts.metrics = options_.metrics;
  Stopwatch timer;
  auto opened =
      durability::Manager::Open(std::move(dopts), base_.ContentFingerprint());
  if (!opened.ok()) {
    recovery_status_ = opened.status();
    return;
  }
  recovery_info_ = opened->info;
  Status replayed = ReplayDurable(&*opened);
  if (!replayed.ok()) {
    // Refuse to serve from a half-replayed state: the gate holds the typed
    // status and no manager exists to journal against.
    recovery_status_ = std::move(replayed);
    return;
  }
  recovery_info_.seconds = timer.ElapsedSeconds();
  durable_ = std::move(opened->manager);
  durable_->NoteRecoveryComplete(recovery_info_);
}

Status ScenarioService::ReplayDurable(durability::Manager::OpenResult* opened) {
  // Constructor-only: no concurrent access, mu_ not needed.
  if (opened->snapshot.found) {
    branches_.clear();
    for (durability::DurableBranch& image : opened->snapshot.state.branches) {
      std::string name = image.name;
      ScenarioBranch branch = ScenarioBranch::Restore(
          std::move(image.name), std::move(image.parent),
          std::move(image.overrides), image.updates_applied, image.version,
          image.fnv_state);
      branches_.emplace(std::move(name),
                        BranchState{std::move(branch), next_branch_id_++,
                                    ~0ULL, nullptr});
    }
    if (branches_.count("main") == 0) {
      return Status::DataLoss("snapshot " + opened->snapshot.path +
                              " is missing the trunk scenario 'main'");
    }
  }
  generation_ = opened->info.generation;

  // Replay the tail through the SAME mutation path that produced it
  // (ScenarioBranch::Override), verifying each record lands on the exact
  // fingerprint the live run journaled. Any divergence means the log and
  // the code disagree about history — refuse rather than serve wrong state.
  for (durability::RecoveredOp& op : opened->ops) {
    const std::string at = " (WAL lsn " + std::to_string(op.lsn) + ")";
    switch (op.type) {
      case durability::WalRecordType::kCreate: {
        auto& r = std::get<durability::CreateRecord>(op.op);
        if (branches_.count(r.name) > 0) {
          return Status::DataLoss("replay divergence: scenario '" + r.name +
                                  "' already exists at its create record" +
                                  at);
        }
        auto parent = branches_.find(r.parent);
        if (parent == branches_.end()) {
          return Status::DataLoss("replay divergence: parent scenario '" +
                                  r.parent + "' missing" + at);
        }
        ScenarioBranch branch(r.name, parent->second.branch);
        if (branch.delta_fingerprint() != r.post_fingerprint) {
          return Status::DataLoss(
              "replay divergence: created scenario '" + r.name +
              "' fingerprints differently than journaled" + at);
        }
        branches_.emplace(r.name,
                          BranchState{std::move(branch), next_branch_id_++,
                                      ~0ULL, nullptr});
        break;
      }
      case durability::WalRecordType::kApply: {
        auto& r = std::get<durability::ApplyRecord>(op.op);
        auto it = branches_.find(r.branch);
        if (it == branches_.end()) {
          return Status::DataLoss("replay divergence: scenario '" + r.branch +
                                  "' missing at its apply record" + at);
        }
        ScenarioBranch& branch = it->second.branch;
        if (branch.delta_fingerprint() != r.pre_fingerprint) {
          return Status::DataLoss(
              "replay divergence: scenario '" + r.branch +
              "' does not match the journaled pre-apply fingerprint" + at);
        }
        for (const durability::ApplyBatch& batch : r.batches) {
          std::vector<std::pair<size_t, Value>> cells;
          cells.reserve(batch.cells.size());
          for (const auto& [tid, value] : batch.cells) {
            cells.emplace_back(static_cast<size_t>(tid), value);
          }
          branch.Override(batch.relation, static_cast<size_t>(batch.attr),
                          cells);
        }
        branch.RecordUpdateApplied();
        if (branch.delta_fingerprint() != r.post_fingerprint) {
          return Status::DataLoss(
              "replay divergence: scenario '" + r.branch +
              "' does not match the journaled post-apply fingerprint" + at);
        }
        break;
      }
      case durability::WalRecordType::kDrop: {
        auto& r = std::get<durability::DropRecord>(op.op);
        // Tombstone: the branch must exist here and must not survive. A
        // missing branch means history diverged.
        if (branches_.erase(r.name) == 0) {
          return Status::DataLoss("replay divergence: drop tombstone for "
                                  "unknown scenario '" +
                                  r.name + "'" + at);
        }
        break;
      }
      case durability::WalRecordType::kReload: {
        // The base data itself is never journaled; Manager::Open already
        // verified the final base fingerprint against the live dataset.
        // Override replay is base-independent (journaled physical cells),
        // so everything before this record was exact — and is now wiped,
        // exactly as the live reload wiped it.
        auto& r = std::get<durability::ReloadRecord>(op.op);
        generation_ = r.generation;
        branches_.clear();
        branches_.emplace("main", BranchState{ScenarioBranch("main", ""),
                                              next_branch_id_++, ~0ULL,
                                              nullptr});
        break;
      }
      case durability::WalRecordType::kHeader:
        return Status::DataLoss("unexpected header record in replay" + at);
    }
  }
  return Status::OK();
}

std::vector<durability::DurableBranch> ScenarioService::ImageBranchesLocked()
    const {
  std::vector<durability::DurableBranch> images;
  images.reserve(branches_.size());
  for (const auto& [name, state] : branches_) {
    durability::DurableBranch image;
    image.name = name;
    image.parent = state.branch.parent();
    image.overrides = state.branch.overrides();
    image.updates_applied = state.branch.updates_applied();
    image.version = state.branch.version();
    image.fnv_state = state.branch.delta_fingerprint();
    images.push_back(std::move(image));
  }
  return images;
}

Status ScenarioService::SnapshotLocked() {
  return durable_->WriteSnapshot(ImageBranchesLocked());
}

Status ScenarioService::SnapshotNow() {
  HYPER_RETURN_NOT_OK(recovery_status_);
  MutexLock lock(&mu_);
  if (durable_ == nullptr) return Status::OK();
  return SnapshotLocked();
}

Status ScenarioService::SyncWal() {
  HYPER_RETURN_NOT_OK(recovery_status_);
  if (durable_ == nullptr) return Status::OK();
  return durable_->Sync();
}

durability::WalStats ScenarioService::wal_stats() const {
  if (durable_ == nullptr) {
    durability::WalStats stats;
    stats.enabled = false;
    stats.dir = options_.data_dir;
    stats.recovery = recovery_info_;
    return stats;
  }
  return durable_->Stats();
}

ScenarioService::~ScenarioService() = default;

Status ScenarioService::CreateScenario(const std::string& name,
                                       const std::string& parent) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  if (name.empty()) {
    return Status::InvalidArgument("scenario name must not be empty");
  }
  MutexLock lock(&mu_);
  if (branches_.count(name) > 0) {
    return Status::AlreadyExists("scenario '" + name + "' already exists");
  }
  auto it = branches_.find(parent);
  if (it == branches_.end()) {
    return Status::NotFound("parent scenario '" + parent +
                            "' does not exist");
  }
  ScenarioBranch branch(name, it->second.branch);
  if (durable_ != nullptr) {
    // Journal-before-visible: an append failure leaves the service exactly
    // as it was — the branch object above is simply discarded.
    durability::CreateRecord record;
    record.name = name;
    record.parent = parent;
    record.post_fingerprint = branch.delta_fingerprint();
    HYPER_RETURN_NOT_OK(durable_->AppendCreate(record));
  }
  branches_.emplace(name, BranchState{std::move(branch), next_branch_id_++,
                                      ~0ULL, nullptr});
  if (durable_ != nullptr && durable_->ShouldSnapshot()) {
    // Cadence only: a failed snapshot just leaves more WAL to replay.
    (void)SnapshotLocked();
  }
  return Status::OK();
}

Status ScenarioService::DropScenario(const std::string& name) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  if (name == "main") {
    return Status::InvalidArgument("cannot drop the trunk scenario 'main'");
  }
  std::string scope_tag;
  {
    MutexLock lock(&mu_);
    auto it = branches_.find(name);
    if (it == branches_.end()) {
      return Status::NotFound("scenario '" + name + "' does not exist");
    }
    if (durable_ != nullptr) {
      // Tombstone-before-erase: once acknowledged, recovery must never
      // resurrect this branch.
      durability::DropRecord record;
      record.name = name;
      HYPER_RETURN_NOT_OK(durable_->AppendDrop(record));
    }
    // The branch's materialization and override snapshot die with the
    // BranchState; its data-scope fingerprint tags the cache entries to
    // evict. Skip the eviction when the delta fingerprints like the trunk's
    // (an untouched branch shares every entry with it).
    if (it->second.branch.delta_fingerprint() !=
        branches_.at("main").branch.delta_fingerprint()) {
      scope_tag = ScopeLocked(it->second);
    }
    branches_.erase(it);
    if (durable_ != nullptr && durable_->ShouldSnapshot()) {
      // Cadence only: failure just leaves more WAL to replay.
      (void)SnapshotLocked();
    }
  }
  // Eager eviction outside the service lock (the cache has its own): drop
  // the branch-scoped plan / scope / query entries now instead of letting
  // them squat in the LRU until capacity pressure pushes them out.
  if (!scope_tag.empty()) cache_.EvictTagged(scope_tag);
  return Status::OK();
}

bool ScenarioService::HasScenario(const std::string& name) const {
  MutexLock lock(&mu_);
  return branches_.count(name) > 0;
}

std::vector<ScenarioInfo> ScenarioService::ListScenarios() const {
  MutexLock lock(&mu_);
  std::vector<ScenarioInfo> out;
  out.reserve(branches_.size());
  for (const auto& [name, state] : branches_) {
    ScenarioInfo info;
    info.name = name;
    info.parent = state.branch.parent();
    info.updates_applied = state.branch.updates_applied();
    info.overridden_cells = state.branch.overridden_cells();
    info.delta_fingerprint = state.branch.delta_fingerprint();
    out.push_back(std::move(info));
  }
  return out;
}

Result<ScenarioService::BranchState*> ScenarioService::FindBranchLocked(
    const std::string& name) {
  auto it = branches_.find(name);
  if (it == branches_.end()) {
    return Status::NotFound("scenario '" + name + "' does not exist");
  }
  return &it->second;
}

std::string ScenarioService::ScopeLocked(const BranchState& state) const {
  return StrFormat("g%llu|d%016llx",
                   static_cast<unsigned long long>(generation_),
                   static_cast<unsigned long long>(
                       state.branch.delta_fingerprint()));
}

whatif::StageContext ScenarioService::StageContextFor(const World& world) {
  whatif::StageContext ctx;
  ctx.stages = &cache_;
  ctx.data_scope = world.scope;
  // Shape scope: stable across value-only deltas of one generation (cell
  // overrides never add or remove rows), so shape-keyed stages (CausalStage
  // on table views without cross-tuple edges) are shared by every branch.
  ctx.shape_scope = StrFormat(
      "g%llu", static_cast<unsigned long long>(world.generation));
  // Patch base: the untouched-trunk scope of this generation. Branch
  // overrides are base-relative, so any branch's columnar image is the base
  // image plus its own cells.
  ctx.base_scope = StrFormat(
      "g%llu|d%016llx", static_cast<unsigned long long>(world.generation),
      static_cast<unsigned long long>(Fnv1a().hash()));
  ctx.overrides = world.overrides.get();
  // Restricted delta fingerprint: hashes only the override cells of the
  // attributes a LearnStage actually reads, against this request's
  // immutable snapshot — branches whose deltas miss that set produce the
  // trunk's fingerprint and share its LearnStage.
  ctx.restricted = [db = world.db, overrides = world.overrides,
                    generation = world.generation](
                       const std::string& relation,
                       const std::vector<std::string>& attrs) -> std::string {
    std::vector<size_t> indices;
    auto table = db->GetTable(relation);
    if (table.ok()) {
      indices.reserve(attrs.size());
      for (const std::string& attr : attrs) {
        auto idx = (*table)->schema().IndexOf(attr);
        if (idx.ok()) indices.push_back(*idx);
      }
    }
    return StrFormat(
        "g%llu|r%016llx", static_cast<unsigned long long>(generation),
        static_cast<unsigned long long>(ScenarioBranch::FingerprintRestricted(
            *overrides, relation, indices)));
  };
  return ctx;
}

Result<ScenarioService::World> ScenarioService::SnapshotWorld(
    const std::string& scenario) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    World world;
    Database base_shallow;
    std::vector<std::pair<std::string, ScenarioBranch::RelationOverrides>>
        touched;
    {
      MutexLock lock(&mu_);
      HYPER_ASSIGN_OR_RETURN(BranchState * state, FindBranchLocked(scenario));
      world.scope = ScopeLocked(*state);
      world.branch_id = state->id;
      world.branch_version = state->branch.version();
      world.generation = generation_;
      // Override snapshot for the staged pipeline (O(cells) copy, cached
      // per branch version like the materialization).
      if (state->overrides == nullptr ||
          state->overrides_version != state->branch.version()) {
        state->overrides = std::make_shared<const ScenarioBranch::OverrideMap>(
            state->branch.overrides());
        state->overrides_version = state->branch.version();
      }
      world.overrides = state->overrides;
      if (state->effective != nullptr &&
          state->effective_version == state->branch.version()) {
        world.db = state->effective;
        return world;
      }
      // Snapshot what the rebuild needs: shared base handles (O(#relations))
      // and the override cells (O(cells)) — never O(rows) under the lock.
      base_shallow = base_.ShallowCopy();
      for (const std::string& relation : state->branch.TouchedRelations()) {
        touched.emplace_back(relation, state->branch.OverridesFor(relation));
      }
    }

    // Copy-on-write materialization at relation granularity, outside the
    // lock: touched relations are patched copies, everything else shares
    // the base storage.
    auto effective = std::make_shared<Database>(std::move(base_shallow));
    for (const auto& [relation, overrides] : touched) {
      HYPER_ASSIGN_OR_RETURN(const Table* base_table,
                             effective->GetTable(relation));
      auto patched = std::make_shared<Table>(*base_table);
      for (const auto& [attr, cells] : overrides) {
        for (const auto& [tid, value] : cells) {
          if (tid >= patched->num_rows() ||
              attr >= patched->schema().num_attributes()) {
            continue;  // stale override beyond the base shape
          }
          patched->SetValue(tid, attr, value);
        }
      }
      HYPER_RETURN_NOT_OK(effective->PutTable(std::move(patched)));
    }

    MutexLock lock(&mu_);
    HYPER_ASSIGN_OR_RETURN(BranchState * state, FindBranchLocked(scenario));
    if (state->id != world.branch_id ||
        state->branch.version() != world.branch_version) {
      continue;  // the branch moved (or was recreated) meanwhile; retry
    }
    state->effective = effective;
    state->effective_version = world.branch_version;
    world.db = std::move(effective);
    return world;
  }
  return Status::FailedPrecondition(
      "scenario '" + scenario +
      "' is being updated concurrently; retry the request");
}

Result<std::shared_ptr<const Database>> ScenarioService::EffectiveDatabase(
    const std::string& scenario) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  HYPER_ASSIGN_OR_RETURN(World world, SnapshotWorld(scenario));
  return world.db;
}

Result<size_t> ScenarioService::ApplyHypotheticalSql(
    const std::string& scenario, const std::string& whatif_sql) {
  HYPER_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(whatif_sql));
  if (stmt.whatif == nullptr) {
    return Status::InvalidArgument(
        "ApplyHypothetical expects a what-if statement (its Use / When / "
        "Update clauses define the branch update)");
  }
  return ApplyHypothetical(scenario, *stmt.whatif);
}

namespace {

/// The deterministic delta of a hypothetical update against one world:
/// target relation, attribute indices, and the f(pre) cell batches.
struct HypotheticalDelta {
  std::string relation;
  std::vector<size_t> attr_of_update;
  std::vector<std::vector<std::pair<size_t, Value>>> cells;  // per update
  size_t updated_rows = 0;
};

Result<HypotheticalDelta> ComputeHypotheticalDelta(
    const Database& eff, const sql::WhatIfStmt& stmt) {
  HypotheticalDelta delta;
  // All update attributes must live in one relation (the engine's relevant
  // view has the same contract).
  HYPER_ASSIGN_OR_RETURN(delta.relation,
                         eff.RelationOfAttribute(stmt.updates[0].attribute));
  HYPER_ASSIGN_OR_RETURN(const Table* table, eff.GetTable(delta.relation));
  const Schema& schema = table->schema();
  for (const sql::UpdateClause& u : stmt.updates) {
    if (!schema.Contains(u.attribute)) {
      return Status::InvalidArgument(
          "update attributes span multiple relations: '" + u.attribute +
          "' is not in '" + delta.relation + "'");
    }
    HYPER_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(u.attribute));
    if (schema.attribute(idx).mutability == Mutability::kImmutable) {
      return Status::InvalidArgument("update attribute '" + u.attribute +
                                     "' is immutable");
    }
    delta.attr_of_update.push_back(idx);
  }

  // S from the When predicate, over the *branch-effective* relation so
  // chained updates compose.
  std::vector<size_t> s_rows;
  if (stmt.when == nullptr) {
    s_rows.resize(table->num_rows());
    for (size_t r = 0; r < table->num_rows(); ++r) s_rows[r] = r;
  } else {
    const std::vector<relational::ScopedTuple> scope{
        relational::ScopedTuple{delta.relation, &schema}};
    HYPER_ASSIGN_OR_RETURN(
        relational::CompiledExpr compiled,
        relational::CompiledExpr::Compile(*stmt.when, scope));
    for (size_t r = 0; r < table->num_rows(); ++r) {
      const relational::BoundRow frame{&table->row(r), nullptr};
      HYPER_ASSIGN_OR_RETURN(bool sel, compiled.EvalRowBool(&frame));
      if (sel) s_rows.push_back(r);
    }
  }
  delta.updated_rows = s_rows.size();

  // Deterministic post image f(pre), all updates from the same pre state.
  delta.cells.resize(stmt.updates.size());
  for (size_t j = 0; j < stmt.updates.size(); ++j) {
    whatif::UpdateSpec spec;
    spec.attribute = stmt.updates[j].attribute;
    spec.func = stmt.updates[j].func;
    spec.constant = stmt.updates[j].constant;
    delta.cells[j].reserve(s_rows.size());
    for (size_t r : s_rows) {
      HYPER_ASSIGN_OR_RETURN(
          Value post, spec.Apply(table->At(r, delta.attr_of_update[j])));
      delta.cells[j].emplace_back(r, std::move(post));
    }
  }
  return delta;
}

}  // namespace

Result<size_t> ScenarioService::ApplyHypothetical(
    const std::string& scenario, const sql::WhatIfStmt& stmt) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  if (stmt.updates.empty()) {
    return Status::InvalidArgument("hypothetical update needs an Update "
                                   "clause");
  }
  if (stmt.when != nullptr && sql::ContainsPost(*stmt.when)) {
    return Status::InvalidArgument(
        "the When operator selects tuples by pre-update values only (§3.1); "
        "Post(...) is not allowed");
  }

  // Optimistic concurrency: the O(rows) When scan and post-image build run
  // outside the service lock against an immutable snapshot, so concurrent
  // Submits never stall behind a branch mutation. If another update lands
  // on this branch meanwhile — the (id, version) pair moved; the id guards
  // against a drop-and-recreate under the same name — recompute from the
  // new world.
  for (int attempt = 0; attempt < 8; ++attempt) {
    HYPER_ASSIGN_OR_RETURN(World world, SnapshotWorld(scenario));
    HYPER_ASSIGN_OR_RETURN(HypotheticalDelta delta,
                           ComputeHypotheticalDelta(*world.db, stmt));
    if (delta.updated_rows == 0) return size_t{0};  // nothing to record

    MutexLock lock(&mu_);
    HYPER_ASSIGN_OR_RETURN(BranchState * state, FindBranchLocked(scenario));
    if (state->id != world.branch_id ||
        state->branch.version() != world.branch_version) {
      continue;  // world moved; retry against the new state
    }
    if (durable_ != nullptr) {
      // Journal the PHYSICAL override batches (not the SQL): replay pushes
      // the same cells through the same Override() mixing, which is what
      // makes recovered fingerprints — and therefore answers — bit-identical.
      // Appended before the branch moves; a failed append mutates nothing.
      durability::ApplyRecord record;
      record.branch = scenario;
      record.pre_fingerprint = state->branch.delta_fingerprint();
      uint64_t fp = record.pre_fingerprint;
      record.batches.reserve(stmt.updates.size());
      for (size_t j = 0; j < stmt.updates.size(); ++j) {
        durability::ApplyBatch batch;
        batch.relation = delta.relation;
        batch.attr = delta.attr_of_update[j];
        batch.cells.reserve(delta.cells[j].size());
        for (const auto& [tid, value] : delta.cells[j]) {
          batch.cells.emplace_back(tid, value);
        }
        fp = ScenarioBranch::PreviewFingerprint(
            fp, delta.relation, delta.attr_of_update[j], delta.cells[j]);
        record.batches.push_back(std::move(batch));
      }
      record.post_fingerprint = fp;
      HYPER_RETURN_NOT_OK(durable_->AppendApply(record));
    }
    for (size_t j = 0; j < stmt.updates.size(); ++j) {
      state->branch.Override(delta.relation, delta.attr_of_update[j],
                             delta.cells[j]);
    }
    state->branch.RecordUpdateApplied();
    if (durable_ != nullptr && durable_->ShouldSnapshot()) {
      // Cadence only: failure just leaves more WAL to replay.
      (void)SnapshotLocked();
    }
    return delta.updated_rows;
  }
  return Status::FailedPrecondition(
      "scenario '" + scenario +
      "' is being updated concurrently; retry the hypothetical");
}

Response ScenarioService::Dispatch(const Request& request,
                                   const World& world) {
  Response response;
  Stopwatch timer;

  auto parsed = sql::ParseSql(request.sql);
  if (!parsed.ok()) {
    response.status = parsed.status();
    return response;
  }

  const whatif::WhatIfOptions opts =
      request.whatif_options.has_value() ? *request.whatif_options
                                         : options_.whatif;

  whatif::StageContext stage_context = StageContextFor(world);

  if (parsed->whatif != nullptr) {
    response.kind = Response::Kind::kWhatIf;
    whatif::WhatIfEngine engine(world.db.get(), graph(), opts);
    bool hit = false;
    auto plan = cache_.GetOrPrepare(
        WhatIfPlanKey(world.scope, *parsed->whatif, opts),
        [&] { return engine.Prepare(*parsed->whatif, &stage_context); }, &hit);
    if (plan.ok()) {
      auto result =
          engine.Evaluate(**plan, whatif::SpecsOfStatement(*parsed->whatif));
      if (!result.ok()) {
        response.status = result.status();
        return response;
      }
      response.whatif = std::move(result).value();
      response.whatif.plan_cache_hit = hit;
      if (!hit) {
        response.whatif.prepare_seconds = (*plan)->prepare_seconds();
      }
      response.whatif.total_seconds =
          response.whatif.prepare_seconds + response.whatif.eval_seconds;
    } else if (plan.status().code() == StatusCode::kUnimplemented) {
      // Shapes the columnar substrate cannot serve run uncached on the
      // legacy row path — dispatched there directly, so the failed Prepare
      // is not attempted a second time inside Run.
      whatif::WhatIfOptions row_options = opts;
      row_options.use_columnar = false;
      whatif::WhatIfEngine row_engine(world.db.get(), graph(), row_options);
      auto result = row_engine.Run(*parsed->whatif);
      if (!result.ok()) {
        response.status = result.status();
        return response;
      }
      response.whatif = std::move(result).value();
    } else {
      response.status = plan.status();
      return response;
    }
  } else if (parsed->howto != nullptr) {
    response.kind = Response::Kind::kHowTo;
    howto::HowToOptions ho;
    ho.whatif = opts;
    ho.num_buckets = options_.howto_num_buckets;
    ho.global_l1_budget = options_.howto_global_l1_budget;
    ho.prefer_mck = options_.howto_prefer_mck;
    ho.plan_cache = &cache_;
    ho.cache_scope = world.scope;
    ho.stage_context = &stage_context;
    howto::HowToEngine engine(world.db.get(), graph(), ho);
    auto result = engine.Run(*parsed->howto);
    if (!result.ok()) {
      response.status = result.status();
      return response;
    }
    response.howto = std::move(result).value();
  } else if (parsed->select != nullptr) {
    response.kind = Response::Kind::kSelect;
    auto result = relational::ExecuteSelect(*world.db, *parsed->select);
    if (!result.ok()) {
      response.status = result.status();
      return response;
    }
    response.table = std::move(result).value();
  } else {
    response.status =
        Status::InvalidArgument("statement is neither what-if, how-to nor "
                                "select");
    return response;
  }
  response.seconds = timer.ElapsedSeconds();
  return response;
}

Status ScenarioService::Admit() {
  MutexLock lock(&admission_mu_);
  if (draining_) {
    ++gov_.rejected_draining;
    return Status::Unavailable("service is draining; new requests are "
                               "rejected");
  }
  if (options_.max_concurrent_requests == 0) {
    ++gov_.admitted;
    ++in_flight_;
    return Status::OK();
  }
  if (in_flight_ < options_.max_concurrent_requests) {
    ++gov_.admitted;
    ++in_flight_;
    return Status::OK();
  }
  if (queue_len_ >= options_.max_queued_requests) {
    ++gov_.shed;
    return Status::Unavailable(StrFormat(
        "service overloaded: %zu request(s) in flight and the wait queue "
        "(%zu) is full",
        in_flight_, options_.max_queued_requests));
  }
  ++queue_len_;
  while (!draining_ && in_flight_ >= options_.max_concurrent_requests) {
    admission_cv_.Wait(admission_mu_);
  }
  --queue_len_;
  if (draining_) {
    ++gov_.rejected_draining;
    admission_cv_.NotifyAll();  // AwaitIdle may be waiting on queue_len_
    return Status::Unavailable("service is draining; queued request "
                               "rejected");
  }
  ++gov_.admitted;
  ++gov_.queued;
  ++in_flight_;
  return Status::OK();
}

void ScenarioService::Release(const Status& status) {
  MutexLock lock(&admission_mu_);
  --in_flight_;
  ++gov_.completed;
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      ++gov_.deadline_exceeded;
      break;
    case StatusCode::kResourceExhausted:
      ++gov_.resource_exhausted;
      break;
    case StatusCode::kCancelled:
      ++gov_.cancelled;
      break;
    default:
      break;
  }
  admission_cv_.NotifyAll();
}

void ScenarioService::BeginDrain() {
  MutexLock lock(&admission_mu_);
  draining_ = true;
  admission_cv_.NotifyAll();
}

void ScenarioService::AwaitIdle() {
  MutexLock lock(&admission_mu_);
  while (in_flight_ != 0 || queue_len_ != 0) {
    admission_cv_.Wait(admission_mu_);
  }
}

bool ScenarioService::draining() const {
  MutexLock lock(&admission_mu_);
  return draining_;
}

GovernanceStats ScenarioService::governance_stats() const {
  MutexLock lock(&admission_mu_);
  GovernanceStats stats = gov_;
  stats.in_flight = in_flight_;
  stats.queued_now = queue_len_;
  stats.draining = draining_;
  return stats;
}

Response ScenarioService::GovernedDispatch(const Request& request,
                                           const World& world) {
  governance::ExecGuardPtr guard =
      governance::ExecGuard::Arm(request.budget, request.cancel_token);
  Stopwatch timer;
  Response response;
  if (guard == nullptr) {
    response = Dispatch(request, world);
  } else {
    // Inject the armed guard through the per-request what-if options: the
    // what-if engine, the how-to engine's scoring pass and the row fallback
    // all pick it up instead of arming their own, so one deadline spans the
    // whole request. Plan-cache keys are built from named option fields and
    // never include governance state, so a governed request hits exactly the
    // entries an ungoverned one would.
    Request governed = request;
    whatif::WhatIfOptions opts = request.whatif_options.has_value()
                                     ? *request.whatif_options
                                     : options_.whatif;
    opts.budget = request.budget;
    opts.cancel_token = request.cancel_token;
    opts.exec_guard = guard;
    governed.whatif_options = std::move(opts);
    response = Dispatch(governed, world);
  }
  if (instruments_ != nullptr) {
    instruments_->RecordRequest(response, guard.get(),
                                timer.ElapsedSeconds());
  }
  return response;
}

Response ScenarioService::Submit(const Request& request) {
  Response response;
  if (!recovery_status_.ok()) {
    // A service behind a failed recovery refuses to answer: serving the
    // in-memory default state would silently drop acknowledged history.
    response.status = recovery_status_;
    return response;
  }
  Status admitted = Admit();
  if (!admitted.ok()) {
    response.status = std::move(admitted);
    return response;
  }
  auto world = SnapshotWorld(request.scenario);
  if (!world.ok()) {
    response.status = world.status();
  } else {
    response = GovernedDispatch(request, *world);
  }
  Release(response.status);
  return response;
}

std::vector<Response> ScenarioService::SubmitBatch(
    const std::vector<Request>& requests) {
  std::vector<Response> responses(requests.size());
  if (requests.empty()) return responses;
  if (!recovery_status_.ok()) {
    for (Response& response : responses) response.status = recovery_status_;
    return responses;
  }

  // Snapshot every request's world up front: the whole batch runs against
  // one consistent state per scenario.
  std::vector<Result<World>> worlds;
  worlds.reserve(requests.size());
  for (const Request& request : requests) {
    worlds.push_back(SnapshotWorld(request.scenario));
  }

  // Each batch item is admitted individually: a batch wider than the
  // concurrency limit sheds (or queues) its surplus items exactly like
  // independent Submits would.
  auto run_one = [&](size_t i) {
    Status admitted = Admit();
    if (!admitted.ok()) {
      responses[i].status = std::move(admitted);
      return;
    }
    if (!worlds[i].ok()) {
      responses[i].status = worlds[i].status();
    } else {
      responses[i] = GovernedDispatch(requests[i], *worlds[i]);
    }
    Release(responses[i].status);
  };

  const size_t threads = ThreadPool::ResolveBudget(options_.num_threads);
  if (threads <= 1 || requests.size() == 1) {
    for (size_t i = 0; i < requests.size(); ++i) run_one(i);
  } else {
    ThreadPool::Shared().ParallelFor(requests.size(), run_one,
                                     /*max_parallelism=*/threads);
  }
  return responses;
}

Result<std::vector<WhatIfBatchItem>> ScenarioService::SubmitWhatIfBatch(
    const std::string& scenario, const std::string& base_whatif_sql,
    const std::vector<std::vector<whatif::UpdateSpec>>& interventions) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  // The whole sweep is one admitted request: it shares a plan and runs as
  // one unit of service work, however many interventions it carries.
  HYPER_RETURN_NOT_OK(Admit());
  Stopwatch timer;
  auto result = DoSubmitWhatIfBatch(scenario, base_whatif_sql, interventions);
  Release(result.ok() ? Status::OK() : result.status());
  if (instruments_ != nullptr) {
    instruments_->RecordBatch(result.ok() ? Status::OK() : result.status(),
                              interventions.size(), timer.ElapsedSeconds());
  }
  return result;
}

Result<std::vector<WhatIfBatchItem>> ScenarioService::DoSubmitWhatIfBatch(
    const std::string& scenario, const std::string& base_whatif_sql,
    const std::vector<std::vector<whatif::UpdateSpec>>& interventions) {
  HYPER_ASSIGN_OR_RETURN(World world, SnapshotWorld(scenario));
  HYPER_ASSIGN_OR_RETURN(sql::Statement parsed,
                         sql::ParseSql(base_whatif_sql));
  if (parsed.whatif == nullptr) {
    return Status::InvalidArgument("SubmitWhatIfBatch expects a what-if "
                                   "statement");
  }

  // One guard for the whole sweep (when the service defaults carry a budget
  // or token): Prepare and every intervention draw down the same deadline
  // and meters. The plan-cache key below keeps using the raw options —
  // governance state never enters a key.
  whatif::WhatIfOptions engine_options = options_.whatif;
  if (engine_options.exec_guard == nullptr) {
    engine_options.exec_guard = governance::ExecGuard::Arm(
        engine_options.budget, engine_options.cancel_token);
  }
  whatif::WhatIfEngine engine(world.db.get(), graph(), engine_options);
  whatif::StageContext stage_context = StageContextFor(world);
  bool hit = false;
  auto plan = cache_.GetOrPrepare(
      WhatIfPlanKey(world.scope, *parsed.whatif, options_.whatif),
      [&] { return engine.Prepare(*parsed.whatif, &stage_context); }, &hit);
  if (!plan.ok()) {
    if (plan.status().code() != StatusCode::kUnimplemented) {
      return plan.status();
    }
    // Row-path fallback: run each intervention as a fresh statement, with
    // the same shape contract Evaluate enforces — interventions supply
    // constants and functions, never new attributes. Dispatch straight to
    // the row interpreter so the failed Prepare is not re-attempted N times.
    // Failures (shape mismatches, evaluation errors) stay per item.
    whatif::WhatIfOptions row_options = engine_options;
    row_options.use_columnar = false;
    whatif::WhatIfEngine row_engine(world.db.get(), graph(), row_options);
    std::vector<WhatIfBatchItem> items(interventions.size());
    for (size_t i = 0; i < interventions.size(); ++i) {
      const std::vector<whatif::UpdateSpec>& specs = interventions[i];
      if (specs.size() != parsed.whatif->updates.size()) {
        items[i].status =
            Status::InvalidArgument("intervention arity mismatch");
        continue;
      }
      bool shape_ok = true;
      for (size_t j = 0; j < specs.size(); ++j) {
        if (specs[j].attribute != parsed.whatif->updates[j].attribute) {
          items[i].status = Status::InvalidArgument(
              "intervention update attribute '" + specs[j].attribute +
              "' does not match the base statement's '" +
              parsed.whatif->updates[j].attribute + "'");
          shape_ok = false;
          break;
        }
        parsed.whatif->updates[j].func = specs[j].func;
        parsed.whatif->updates[j].constant = specs[j].constant;
      }
      if (!shape_ok) continue;
      auto result = row_engine.Run(*parsed.whatif);
      if (result.ok()) {
        items[i].result = std::move(result).value();
      } else {
        items[i].status = result.status();
      }
    }
    return items;
  }

  std::vector<Status> statuses;
  HYPER_ASSIGN_OR_RETURN(
      std::vector<whatif::WhatIfResult> results,
      engine.EvaluateBatch(**plan, interventions, &statuses));
  std::vector<WhatIfBatchItem> items(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    items[i].status = statuses[i];
    items[i].result = std::move(results[i]);
    items[i].result.plan_cache_hit = hit;
  }
  if (!hit) {
    // Charge plan construction to the batch's first successful result so
    // the totals stay meaningful (a failed item's result is not consumed).
    for (WhatIfBatchItem& item : items) {
      if (!item.ok()) continue;
      item.result.prepare_seconds = (*plan)->prepare_seconds();
      item.result.total_seconds =
          item.result.prepare_seconds + item.result.eval_seconds;
      break;
    }
  }
  return items;
}

Status ScenarioService::ReloadDataset(Database base) {
  HYPER_RETURN_NOT_OK(recovery_status_);
  MutexLock lock(&mu_);
  if (durable_ != nullptr) {
    // The new base's content is NOT journaled — only its fingerprint, which
    // recovery checks against whatever dataset the operator reloads. The
    // reload record makes the generation bump durable; the snapshot right
    // after re-anchors recovery so pre-reload records become prunable.
    durability::ReloadRecord record;
    record.generation = generation_ + 1;
    record.base_fingerprint = base.ContentFingerprint();
    HYPER_RETURN_NOT_OK(durable_->AppendReload(record));
  }
  base_ = std::move(base);
  ++generation_;
  branches_.clear();
  branches_.emplace("main", BranchState{ScenarioBranch("main", ""),
                                        next_branch_id_++, ~0ULL, nullptr});
  cache_.Clear();
  if (durable_ != nullptr) {
    HYPER_RETURN_NOT_OK(SnapshotLocked());
  }
  return Status::OK();
}

}  // namespace hyper::service
