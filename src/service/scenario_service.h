#ifndef HYPER_SERVICE_SCENARIO_SERVICE_H_
#define HYPER_SERVICE_SCENARIO_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/governance.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "durability/manager.h"
#include "howto/engine.h"
#include "service/plan_cache.h"
#include "service/scenario.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "whatif/engine.h"

namespace hyper::obs {
class MetricsRegistry;
}  // namespace hyper::obs

namespace hyper::service {

/// Pre-resolved instrument handles (defined in service_metrics.h); owned by
/// the service when a registry is wired, absent otherwise.
struct ServiceInstruments;

struct ServiceOptions {
  /// Default estimation options for what-if (and the what-if legs of
  /// how-to) requests; overridable per request.
  whatif::WhatIfOptions whatif;
  /// How-to candidate discretization / solver knobs.
  size_t howto_num_buckets = 8;
  double howto_global_l1_budget = -1.0;
  bool howto_prefer_mck = true;
  /// Prepared plans kept across requests (LRU; 0 disables the cache).
  size_t plan_cache_capacity = 64;
  /// Worker threads for SubmitBatch request sharding: 1 = sequential,
  /// anything else = the process-wide pool (0 = hardware default). Results
  /// are ordered by request index and identical for every setting.
  size_t num_threads = 0;
  /// Admission control: at most this many requests execute concurrently
  /// (0 = unlimited, admission control off). Applies to Submit, each
  /// SubmitBatch item, and SubmitWhatIfBatch as a whole.
  size_t max_concurrent_requests = 0;
  /// With admission control on, at most this many requests wait for a slot;
  /// arrivals beyond that are shed immediately with kUnavailable (0 = no
  /// queue, shed as soon as every slot is busy). Queue wait does not count
  /// against a request's deadline — the budget arms at execution start.
  size_t max_queued_requests = 0;
  /// Observability: when set (not owned; must outlive the service), every
  /// dispatched request is folded into latency histograms and outcome
  /// counters (see service_metrics.h). Null = no instrumentation cost.
  obs::MetricsRegistry* metrics = nullptr;
  /// Durability: when non-empty, every state-changing operation (scenario
  /// create/drop, applied hypothetical, dataset reload) is journaled to a
  /// checksummed WAL under this directory BEFORE it becomes visible, with
  /// periodic branch-state snapshots; on construction the service recovers
  /// the directory's state bit-identically (same delta fingerprints, same
  /// answers). Empty = in-memory only, zero overhead.
  std::string data_dir;
  durability::FsyncPolicy wal_fsync = durability::FsyncPolicy::kInterval;
  double wal_fsync_interval_seconds = 0.05;
  /// Snapshot + WAL rotation every N journaled records (0 = only explicit
  /// SnapshotNow / reload snapshots).
  uint64_t snapshot_every_records = 256;
};

/// One request against a scenario branch. The statement kind (what-if /
/// how-to / select) is detected from the parse.
struct Request {
  std::string scenario = "main";
  std::string sql;
  /// Per-request estimation override (defaults to the service options).
  std::optional<whatif::WhatIfOptions> whatif_options;
  /// Per-request resource limits (zero-valued fields are unlimited). One
  /// guard spans parse + prepare + evaluate; aborts surface as
  /// kDeadlineExceeded / kResourceExhausted in the response status and
  /// never leave partial plan- or stage-cache entries.
  QueryBudget budget;
  /// Cooperative cancellation (detached by default). Trip it from any
  /// thread; the request unwinds with kCancelled at its next checkpoint.
  CancelToken cancel_token;
};

/// Admission-control and governed-outcome counters (monotone over the
/// service lifetime, except the two gauges at the bottom).
struct GovernanceStats {
  uint64_t admitted = 0;           // granted an execution slot
  uint64_t queued = 0;             // of admitted: waited for a slot first
  uint64_t shed = 0;               // rejected, queue full (kUnavailable)
  uint64_t rejected_draining = 0;  // rejected, service draining (kUnavailable)
  uint64_t completed = 0;          // finished with any status
  uint64_t deadline_exceeded = 0;  // completed with kDeadlineExceeded
  uint64_t resource_exhausted = 0;  // completed with kResourceExhausted
  uint64_t cancelled = 0;          // completed with kCancelled
  size_t in_flight = 0;            // gauge: executing right now
  size_t queued_now = 0;           // gauge: waiting for a slot right now
  bool draining = false;           // gauge: BeginDrain was called
};

struct Response {
  Status status = Status::OK();
  enum class Kind { kNone, kWhatIf, kHowTo, kSelect } kind = Kind::kNone;
  whatif::WhatIfResult whatif;
  howto::HowToResult howto;
  Table table;  // select results
  double seconds = 0.0;

  bool ok() const { return status.ok(); }
};

struct ScenarioInfo {
  std::string name;
  std::string parent;
  size_t updates_applied = 0;
  size_t overridden_cells = 0;
  /// delta_fingerprint() of the branch — the recovery acceptance check
  /// compares these across a crash/restart.
  uint64_t delta_fingerprint = 0;
};

/// One intervention's outcome within a SubmitWhatIfBatch sweep. `result` is
/// meaningful iff `status.ok()`: a single failing intervention (e.g. an Avg
/// whose qualifying set has zero probability under that intervention) is
/// reported here per item instead of aborting the rest of the sweep.
struct WhatIfBatchItem {
  Status status = Status::OK();
  whatif::WhatIfResult result;

  bool ok() const { return status.ok(); }
};

/// The HypeR serving layer: owns a base database, a causal graph, named
/// scenario branches (chained hypothetical updates as copy-on-write deltas,
/// see ScenarioBranch) and a shared estimator/plan cache, and serves
/// what-if / how-to / select requests against any branch.
///
/// Sharing model: a prepared what-if plan (relevant view, adjustment set,
/// trained estimators) is keyed by (data scope, query shape, estimator
/// config) and reused across requests, sessions and scenario branches with
/// identical deltas. Cached answers are bit-for-bit identical to fresh
/// single-query runs — the cache only ever skips re-deriving something the
/// fresh run would have derived identically. Mutating data (ApplyHypothetical,
/// ReloadDataset) changes the scope, so stale plans become unreachable and
/// age out of the LRU.
///
/// Thread safety: Submit/SubmitBatch may be called concurrently; branch
/// mutation takes effect atomically between requests (in-flight requests
/// keep the world they started with).
class ScenarioService {
 public:
  explicit ScenarioService(Database base, ServiceOptions options = {});
  ScenarioService(Database base, causal::CausalGraph graph,
                  ServiceOptions options = {});
  ~ScenarioService();  // out-of-line: ServiceInstruments is incomplete here

  // --- scenario branches -------------------------------------------------

  /// Creates a branch chained off `parent` (default: the trunk scenario
  /// "main", which carries no deltas until hypotheticals are applied to it).
  Status CreateScenario(const std::string& name,
                        const std::string& parent = "main");

  /// Drops the branch and eagerly evicts its cached state: the materialized
  /// world and override snapshot go with the BranchState, and every plan /
  /// stage cache entry scoped to the branch's delta fingerprint is evicted
  /// immediately instead of aging out under LRU pressure. Stage entries
  /// keyed by restricted or shape scopes survive — they are shared with
  /// other branches by construction. (A live branch with a bit-identical
  /// delta loses shared entries too; that costs a rebuild, never
  /// correctness.)
  Status DropScenario(const std::string& name);
  bool HasScenario(const std::string& name) const;
  std::vector<ScenarioInfo> ListScenarios() const;

  /// Applies the *deterministic* part of a what-if statement to the branch:
  /// rows selected by When get their update attributes set to f(pre), stored
  /// as per-attribute override deltas. Subsequent queries on the branch see
  /// the post-update world; other branches are untouched. Returns the number
  /// of updated rows.
  Result<size_t> ApplyHypothetical(const std::string& scenario,
                                   const sql::WhatIfStmt& stmt);
  Result<size_t> ApplyHypotheticalSql(const std::string& scenario,
                                      const std::string& whatif_sql);

  // --- serving -----------------------------------------------------------

  Response Submit(const Request& request);

  /// Runs every request (possibly concurrently over the worker pool);
  /// results[i] corresponds to requests[i] and is identical to a sequential
  /// Submit of the same request.
  std::vector<Response> SubmitBatch(const std::vector<Request>& requests);

  /// Evaluates N interventions against ONE prepared plan in a single
  /// sharded pass: `base_whatif_sql` fixes the Use/When/For/Output shape and
  /// the update attributes; interventions[i] supplies the i-th constants.
  /// results[i].result is bit-for-bit identical to submitting the
  /// corresponding single statement. Batch-level failures (unknown scenario,
  /// unparsable base statement, a hard Prepare error) fail the call;
  /// per-intervention failures land in results[i].status and the rest of
  /// the sweep still answers.
  Result<std::vector<WhatIfBatchItem>> SubmitWhatIfBatch(
      const std::string& scenario, const std::string& base_whatif_sql,
      const std::vector<std::vector<whatif::UpdateSpec>>& interventions);

  // --- admission control & drain ------------------------------------------

  /// Stops admitting work: new and queued requests are rejected with
  /// kUnavailable; in-flight requests run to completion (or hit their own
  /// deadlines). Idempotent.
  void BeginDrain();

  /// Blocks until nothing is executing or queued. Call after BeginDrain for
  /// a graceful shutdown.
  void AwaitIdle();

  bool draining() const;
  GovernanceStats governance_stats() const;

  // --- cache & data management -------------------------------------------

  PlanCacheStats cache_stats() const { return cache_.stats(); }
  void ClearCache() { cache_.Clear(); }

  /// Replaces the base database: every branch is dropped back to a clean
  /// trunk and the plan cache scope rolls over (cached plans for the old
  /// data can never serve the new data). With durability on, the reload is
  /// journaled and immediately followed by a fresh snapshot (the base data
  /// itself is not journaled — recovery verifies the operator reloaded the
  /// same dataset via its content fingerprint).
  Status ReloadDataset(Database base);

  // --- durability ----------------------------------------------------------

  /// Non-OK when the service was constructed over a data dir that failed
  /// recovery (corrupt WAL, replay divergence, wrong dataset). A gated
  /// service refuses every mutation and submit with exactly this status —
  /// it never silently serves possibly-wrong state.
  const Status& recovery_status() const { return recovery_status_; }

  /// What startup recovery found and replayed (meaningful when
  /// options().data_dir was set, defaulted otherwise).
  const durability::RecoveryInfo& recovery_info() const {
    return recovery_info_;
  }

  /// Writes a branch-state snapshot now (drain path, `\wal stats` demos).
  /// OK and a no-op when durability is off.
  Status SnapshotNow();

  /// Forces an fdatasync of the open WAL segment. No-op when off.
  Status SyncWal();

  bool durable() const { return durable_ != nullptr; }
  durability::WalStats wal_stats() const;

  /// The branch's current world: base relations shared structurally,
  /// touched relations patched (built lazily, cached per branch version).
  /// The returned snapshot stays valid while queries hold it, even across
  /// later branch mutations.
  Result<std::shared_ptr<const Database>> EffectiveDatabase(
      const std::string& scenario);

  const causal::CausalGraph* graph() const {
    return has_graph_ ? &graph_ : nullptr;
  }
  const ServiceOptions& options() const { return options_; }

 private:
  struct BranchState {
    ScenarioBranch branch;
    /// Unique across the service lifetime: a dropped-and-recreated branch
    /// under the same name gets a fresh id, so optimistic version checks
    /// cannot ABA onto an unrelated branch.
    uint64_t id = 0;
    /// Cached effective world; rebuilt when branch.version() moves on.
    uint64_t effective_version = ~0ULL;
    std::shared_ptr<const Database> effective;
    /// Cached override snapshot handed to requests (stage keys, delta
    /// patching); refreshed alongside effective.
    uint64_t overrides_version = ~0ULL;
    std::shared_ptr<const ScenarioBranch::OverrideMap> overrides;
  };

  Result<BranchState*> FindBranchLocked(const std::string& name)
      REQUIRES(mu_);
  std::string ScopeLocked(const BranchState& state) const REQUIRES(mu_);

  /// Opens the data dir, rehydrates branches from snapshot + WAL tail, and
  /// verifies every replayed record lands on its journaled fingerprint.
  /// Failures park the service behind recovery_status_ instead of throwing.
  /// Constructor-only (the service is unpublished, so no lock is physically
  /// taken); REQUIRES(mu_) states the logical contract — these touch
  /// mu_-guarded state — and the analysis skips constructor bodies.
  void InitDurability() REQUIRES(mu_);
  Status ReplayDurable(durability::Manager::OpenResult* opened)
      REQUIRES(mu_);
  /// Images every branch for a snapshot; caller holds mu_.
  std::vector<durability::DurableBranch> ImageBranchesLocked() const
      REQUIRES(mu_);
  Status SnapshotLocked() REQUIRES(mu_);

  /// Snapshot of everything a request needs. (branch_id, branch_version)
  /// identify the exact world, for optimistic writers.
  struct World {
    std::shared_ptr<const Database> db;
    std::string scope;
    uint64_t branch_id = 0;
    uint64_t branch_version = 0;
    uint64_t generation = 0;
    /// The branch's delta, base-relative (shared, immutable snapshot): the
    /// staged pipeline keys LearnStage reuse and patches columnar images
    /// from it.
    std::shared_ptr<const ScenarioBranch::OverrideMap> overrides;
  };

  /// Returns the branch's current world, materializing touched relations
  /// outside the service lock (O(rows) copies never block other requests);
  /// the result is cached per branch version.
  Result<World> SnapshotWorld(const std::string& scenario) EXCLUDES(mu_);

  Response Dispatch(const Request& request, const World& world);

  /// Dispatch with the request's budget/token armed into one ExecGuard and
  /// injected through the per-request what-if options, so every engine the
  /// request touches shares a single deadline and one pair of meters.
  Response GovernedDispatch(const Request& request, const World& world);

  /// Blocks until the request may execute (or rejects it): kUnavailable
  /// when the service is draining or the wait queue is full. Every Admit()
  /// that returns OK must be paired with exactly one Release().
  Status Admit() EXCLUDES(admission_mu_);
  /// Releases the execution slot and folds the request's outcome into the
  /// governance counters.
  void Release(const Status& status) EXCLUDES(admission_mu_);

  Result<std::vector<WhatIfBatchItem>> DoSubmitWhatIfBatch(
      const std::string& scenario, const std::string& base_whatif_sql,
      const std::vector<std::vector<whatif::UpdateSpec>>& interventions);

  /// Stage-pipeline wiring for one request: stage cache, full / shape /
  /// base scopes, the override snapshot, and the restricted-delta
  /// fingerprint callback (see whatif::StageContext). The context borrows
  /// from `world` and must not outlive it.
  whatif::StageContext StageContextFor(const World& world);

  mutable Mutex mu_;
  Database base_ GUARDED_BY(mu_);
  /// graph_ / has_graph_ / options_ / cache_ / instruments_ are set in the
  /// constructor and immutable afterwards (cache_ is internally locked), so
  /// they are intentionally unguarded.
  causal::CausalGraph graph_;
  bool has_graph_ = false;
  /// Bumped by ReloadDataset; prefixes every plan-cache scope.
  uint64_t generation_ GUARDED_BY(mu_) = 1;
  uint64_t next_branch_id_ GUARDED_BY(mu_) = 1;
  std::map<std::string, BranchState> branches_ GUARDED_BY(mu_);
  ServiceOptions options_;
  PlanCache cache_;
  /// Metrics handles, present iff options_.metrics was set.
  std::unique_ptr<ServiceInstruments> instruments_;
  /// Durability manager, present iff options_.data_dir was set AND recovery
  /// succeeded. The pointer itself is written only during construction
  /// (safe to test without mu_; Manager is internally locked) — but appends
  /// that order against branch mutations happen under mu_, before the
  /// mutation is visible.
  std::unique_ptr<durability::Manager> durable_;
  /// Written once during construction, read-only afterwards (safe to check
  /// without mu_).
  Status recovery_status_ = Status::OK();
  durability::RecoveryInfo recovery_info_;

  /// Admission-control state, on its own lock (never held together with
  /// mu_, and never across a dispatch — only around counter/slot updates
  /// and the bounded queue wait).
  mutable Mutex admission_mu_;
  CondVar admission_cv_;
  size_t in_flight_ GUARDED_BY(admission_mu_) = 0;
  size_t queue_len_ GUARDED_BY(admission_mu_) = 0;
  bool draining_ GUARDED_BY(admission_mu_) = false;
  /// Counters only; gauges are filled by the accessor.
  GovernanceStats gov_ GUARDED_BY(admission_mu_);
};

}  // namespace hyper::service

#endif  // HYPER_SERVICE_SCENARIO_SERVICE_H_
