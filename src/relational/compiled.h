#ifndef HYPER_RELATIONAL_COMPILED_H_
#define HYPER_RELATIONAL_COMPILED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace hyper::relational {

// ---------------------------------------------------------------------------
// Scalar: the compiled evaluator's runtime value. Mirrors Value semantics
// (storage/value.cc) exactly — coercions, NULL ordering, error cases — but
// never owns a string: strings are borrowed pointers, optionally tagged with
// the dictionary code they were read from so equality is an int compare.
// ---------------------------------------------------------------------------

struct Scalar {
  enum class K : uint8_t { kNull = 0, kBool, kInt, kDouble, kStr };

  K kind = K::kNull;
  union {
    bool b;
    int64_t i;
    double d;
  };
  const std::string* s = nullptr;  // kStr: borrowed
  int32_t code = -1;               // kStr: dictionary code when known

  static Scalar Null() { return Scalar(); }
  static Scalar Bool(bool v) { Scalar x; x.kind = K::kBool; x.b = v; return x; }
  static Scalar Int(int64_t v) { Scalar x; x.kind = K::kInt; x.i = v; return x; }
  static Scalar Double(double v) {
    Scalar x; x.kind = K::kDouble; x.d = v; return x;
  }
  static Scalar Str(const std::string* sp, int32_t dict_code = -1) {
    Scalar x; x.kind = K::kStr; x.s = sp; x.code = dict_code; return x;
  }
  /// Borrows from `v`: the Value must outlive the Scalar for strings.
  static Scalar FromValue(const Value& v);
  Value ToValue() const;

  bool is_null() const { return kind == K::kNull; }
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;
  bool Equals(const Scalar& other) const;
  Result<int> Compare(const Scalar& other) const;
};

// ---------------------------------------------------------------------------
// Compilation: resolve column references once per query.
// ---------------------------------------------------------------------------

/// One tuple visible during compilation: alias (or relation name) + schema.
/// The position in the scope vector is the tuple slot used at evaluation.
struct ScopedTuple {
  std::string alias;
  const Schema* schema = nullptr;
};

/// Row-mode evaluation frame entry for one tuple slot: pre image and
/// (optionally) the post-update image. A null `post` makes Post(...) read
/// the pre image — the observational evaluation mode of training harvests.
struct BoundRow {
  const Row* pre = nullptr;
  const Row* post = nullptr;
};

/// An expression with every ColumnRef resolved to (tuple_slot, attr_index)
/// and Pre/Post wrappers folded into a per-reference flag. Compile once per
/// query; evaluation never touches attribute names again.
class CompiledExpr {
 public:
  struct Node {
    enum class Op : uint8_t {
      kLiteral,
      kColumnRef,
      kNot,
      kNeg,
      kAnd,
      kOr,
      kCompare,   // cmp holds the comparison operator
      kArith,     // cmp holds the arithmetic operator
      kInList,
      kAbs,
      kL1,
    };
    Op op = Op::kLiteral;
    sql::BinaryOp cmp = sql::BinaryOp::kEq;
    Value literal;         // kLiteral
    uint16_t slot = 0;     // kColumnRef
    uint32_t attr = 0;     // kColumnRef
    bool post = false;     // kColumnRef: read the post image
    std::vector<uint32_t> children;
  };

  /// Compiles `expr` against the ordered tuple scope. Resolution follows
  /// Env::Lookup: qualified references match aliases case-insensitively,
  /// unqualified references must be unique across the scope. Aggregates and
  /// '*' are compile errors (they are not per-row expressions).
  static Result<CompiledExpr> Compile(const sql::Expr& expr,
                                      const std::vector<ScopedTuple>& scope,
                                      bool post_mode = false);

  /// Row-mode evaluation; `frame[slot]` supplies each tuple's images.
  Result<Scalar> EvalRow(const BoundRow* frame) const { return EvalNode(0, frame); }
  Result<bool> EvalRowBool(const BoundRow* frame) const;
  Result<Value> EvalRowValue(const BoundRow* frame) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  bool references_post() const { return references_post_; }

 private:
  friend class ColumnBoundExpr;
  Result<Scalar> EvalNode(uint32_t idx, const BoundRow* frame) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  bool references_post_ = false;
};

// ---------------------------------------------------------------------------
// Columnar binding: evaluate a single-slot compiled expression directly over
// a ColumnTable's typed vectors.
// ---------------------------------------------------------------------------

/// Deterministic post-update image of a bound ColumnTable, described as
/// per-attribute overrides instead of materialized rows: Post(...) column
/// reads go through the override for *active* rows and fall back to the pre
/// image otherwise. This is how the what-if engine represents "update
/// attributes set to f(b) on S" without copying every row.
class PostImage {
 public:
  /// Post value of `attr` is `v` for every active row (Update(B) = c).
  void SetConst(size_t attr, Value v);
  /// Post value of `attr` is `values[row]` for active rows (scale/shift).
  void SetPerRowDouble(size_t attr, std::vector<double> values);
  /// Rows where `active` is 0 keep their pre image everywhere. A null
  /// active set means every row is updated. The 0/1 byte mask is the same
  /// shape EvalMask produces, so selection masks feed in without conversion
  /// (and the kernels can read it branch-free).
  void set_active(const std::vector<uint8_t>* active) { active_ = active; }

  bool has_override(size_t attr) const {
    return attr < overrides_.size() && overrides_[attr].kind != OvKind::kNone;
  }

 private:
  friend class ColumnBoundExpr;
  enum class OvKind : uint8_t { kNone = 0, kConst, kPerRowDouble };
  struct Override {
    OvKind kind = OvKind::kNone;
    Value constant;
    std::vector<double> per_row;
  };
  std::vector<Override> overrides_;
  const std::vector<uint8_t>* active_ = nullptr;
};

/// A compiled expression bound to one ColumnTable (tuple slot 0): column
/// references carry raw pointers into the typed vectors and string literals
/// are pre-interned against the table's dictionary. `post` may be null, in
/// which case Post(...) reads the pre image.
class ColumnBoundExpr {
 public:
  ColumnBoundExpr() = default;

  static Result<ColumnBoundExpr> Bind(const CompiledExpr& expr,
                                      const ColumnTable& table,
                                      const PostImage* post = nullptr);

  Result<Scalar> Eval(size_t row) const { return EvalNode(0, row); }
  Result<bool> EvalBool(size_t row) const;

  /// Batch predicate evaluation over every row of the bound table. Uses
  /// SIMD-dispatched typed kernels (common/simd.h) for comparisons / logical
  /// connectives over null-free, non-overridden columns — sharded per
  /// ColumnTable segment on large tables — and falls back to per-row
  /// EvalBool for anything else; the produced mask is identical either way
  /// (the kernels are element-wise, so the mask is bit-identical at any
  /// thread count and SIMD level).
  Result<std::vector<uint8_t>> EvalMask() const;

  /// Vectorized boolean evaluation when the whole tree is kernel-eligible:
  /// resizes `mask` and fills mask[r] == (EvalBool(r) ? 1 : 0), returning
  /// true. Returns false (mask unspecified) when any part of the tree needs
  /// the per-row path. Eligibility is row-independent, so a true return
  /// also guarantees EvalBool succeeds on every row.
  bool TryMaskKernel(std::vector<uint8_t>* mask) const;

  /// Vectorized numeric evaluation when the whole tree is numeric-kernel
  /// eligible: resizes the outputs and fills out[r] with exactly
  /// Eval(r).AsDouble() (including the int64-arithmetic-then-widen cases)
  /// and err[r] = 1 where Eval(r) errors — on an eligible tree the only
  /// reachable error is division by zero; out[r] is 0.0 on errored rows.
  /// Returns false (outputs unspecified) when the tree needs the per-row
  /// path.
  bool TryEvalDoubleKernel(std::vector<double>* out,
                           std::vector<uint8_t>* err) const;

 private:
  struct BoundNode {
    const Column* column = nullptr;   // kColumnRef
    const PostImage::Override* override_ = nullptr;  // kColumnRef with post
    int32_t literal_code = -1;        // kLiteral string: code in table dict
    Scalar override_const;            // kConst override, pre-resolved at Bind
  };

  /// Static value type of a numeric-kernel node; valid only on eligible
  /// trees, where every row of a node yields the same Scalar kind.
  enum class NumType : uint8_t { kInt, kDouble, kBool };

  Result<Scalar> EvalNode(uint32_t idx, size_t row) const;
  Result<Scalar> ReadColumn(uint32_t idx, size_t row) const;
  /// Row-independent eligibility for the boolean mask kernel.
  bool MaskEligible(uint32_t idx) const;
  /// Fills out[0 .. end-begin) with the mask of rows [begin, end); the tree
  /// rooted at idx must be MaskEligible.
  void MaskRun(uint32_t idx, size_t begin, size_t end, uint8_t* out) const;
  bool NumEligible(uint32_t idx) const;
  NumType NumNodeType(uint32_t idx) const;
  void EvalNumChunk(uint32_t idx, size_t begin, size_t len,
                    std::vector<int64_t>* out_i, std::vector<double>* out_d,
                    std::vector<uint8_t>* out_m, uint8_t* err) const;

  const ColumnTable* table_ = nullptr;
  const PostImage* post_ = nullptr;
  std::vector<CompiledExpr::Node> nodes_;
  std::vector<BoundNode> bound_;
};

/// Convenience: compiles `pred` against `table` (single tuple named after
/// the table's relation) and returns the selection mask; a null `pred`
/// selects every row.
Result<std::vector<uint8_t>> EvalPredicateMask(const sql::Expr* pred,
                                               const ColumnTable& table);

}  // namespace hyper::relational

#endif  // HYPER_RELATIONAL_COMPILED_H_
