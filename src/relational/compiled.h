#ifndef HYPER_RELATIONAL_COMPILED_H_
#define HYPER_RELATIONAL_COMPILED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace hyper::relational {

// ---------------------------------------------------------------------------
// Scalar: the compiled evaluator's runtime value. Mirrors Value semantics
// (storage/value.cc) exactly — coercions, NULL ordering, error cases — but
// never owns a string: strings are borrowed pointers, optionally tagged with
// the dictionary code they were read from so equality is an int compare.
// ---------------------------------------------------------------------------

struct Scalar {
  enum class K : uint8_t { kNull = 0, kBool, kInt, kDouble, kStr };

  K kind = K::kNull;
  union {
    bool b;
    int64_t i;
    double d;
  };
  const std::string* s = nullptr;  // kStr: borrowed
  int32_t code = -1;               // kStr: dictionary code when known

  static Scalar Null() { return Scalar(); }
  static Scalar Bool(bool v) { Scalar x; x.kind = K::kBool; x.b = v; return x; }
  static Scalar Int(int64_t v) { Scalar x; x.kind = K::kInt; x.i = v; return x; }
  static Scalar Double(double v) {
    Scalar x; x.kind = K::kDouble; x.d = v; return x;
  }
  static Scalar Str(const std::string* sp, int32_t dict_code = -1) {
    Scalar x; x.kind = K::kStr; x.s = sp; x.code = dict_code; return x;
  }
  /// Borrows from `v`: the Value must outlive the Scalar for strings.
  static Scalar FromValue(const Value& v);
  Value ToValue() const;

  bool is_null() const { return kind == K::kNull; }
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;
  bool Equals(const Scalar& other) const;
  Result<int> Compare(const Scalar& other) const;
};

// ---------------------------------------------------------------------------
// Compilation: resolve column references once per query.
// ---------------------------------------------------------------------------

/// One tuple visible during compilation: alias (or relation name) + schema.
/// The position in the scope vector is the tuple slot used at evaluation.
struct ScopedTuple {
  std::string alias;
  const Schema* schema = nullptr;
};

/// Row-mode evaluation frame entry for one tuple slot: pre image and
/// (optionally) the post-update image. A null `post` makes Post(...) read
/// the pre image — the observational evaluation mode of training harvests.
struct BoundRow {
  const Row* pre = nullptr;
  const Row* post = nullptr;
};

/// An expression with every ColumnRef resolved to (tuple_slot, attr_index)
/// and Pre/Post wrappers folded into a per-reference flag. Compile once per
/// query; evaluation never touches attribute names again.
class CompiledExpr {
 public:
  struct Node {
    enum class Op : uint8_t {
      kLiteral,
      kColumnRef,
      kNot,
      kNeg,
      kAnd,
      kOr,
      kCompare,   // cmp holds the comparison operator
      kArith,     // cmp holds the arithmetic operator
      kInList,
      kAbs,
      kL1,
    };
    Op op = Op::kLiteral;
    sql::BinaryOp cmp = sql::BinaryOp::kEq;
    Value literal;         // kLiteral
    uint16_t slot = 0;     // kColumnRef
    uint32_t attr = 0;     // kColumnRef
    bool post = false;     // kColumnRef: read the post image
    std::vector<uint32_t> children;
  };

  /// Compiles `expr` against the ordered tuple scope. Resolution follows
  /// Env::Lookup: qualified references match aliases case-insensitively,
  /// unqualified references must be unique across the scope. Aggregates and
  /// '*' are compile errors (they are not per-row expressions).
  static Result<CompiledExpr> Compile(const sql::Expr& expr,
                                      const std::vector<ScopedTuple>& scope,
                                      bool post_mode = false);

  /// Row-mode evaluation; `frame[slot]` supplies each tuple's images.
  Result<Scalar> EvalRow(const BoundRow* frame) const { return EvalNode(0, frame); }
  Result<bool> EvalRowBool(const BoundRow* frame) const;
  Result<Value> EvalRowValue(const BoundRow* frame) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  bool references_post() const { return references_post_; }

 private:
  friend class ColumnBoundExpr;
  Result<Scalar> EvalNode(uint32_t idx, const BoundRow* frame) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  bool references_post_ = false;
};

// ---------------------------------------------------------------------------
// Columnar binding: evaluate a single-slot compiled expression directly over
// a ColumnTable's typed vectors.
// ---------------------------------------------------------------------------

/// Deterministic post-update image of a bound ColumnTable, described as
/// per-attribute overrides instead of materialized rows: Post(...) column
/// reads go through the override for *active* rows and fall back to the pre
/// image otherwise. This is how the what-if engine represents "update
/// attributes set to f(b) on S" without copying every row.
class PostImage {
 public:
  /// Post value of `attr` is `v` for every active row (Update(B) = c).
  void SetConst(size_t attr, Value v);
  /// Post value of `attr` is `values[row]` for active rows (scale/shift).
  void SetPerRowDouble(size_t attr, std::vector<double> values);
  /// Rows where `active` is false keep their pre image everywhere. A null
  /// active set means every row is updated.
  void set_active(const std::vector<bool>* active) { active_ = active; }

  bool has_override(size_t attr) const {
    return attr < overrides_.size() && overrides_[attr].kind != OvKind::kNone;
  }

 private:
  friend class ColumnBoundExpr;
  enum class OvKind : uint8_t { kNone = 0, kConst, kPerRowDouble };
  struct Override {
    OvKind kind = OvKind::kNone;
    Value constant;
    std::vector<double> per_row;
  };
  std::vector<Override> overrides_;
  const std::vector<bool>* active_ = nullptr;
};

/// A compiled expression bound to one ColumnTable (tuple slot 0): column
/// references carry raw pointers into the typed vectors and string literals
/// are pre-interned against the table's dictionary. `post` may be null, in
/// which case Post(...) reads the pre image.
class ColumnBoundExpr {
 public:
  ColumnBoundExpr() = default;

  static Result<ColumnBoundExpr> Bind(const CompiledExpr& expr,
                                      const ColumnTable& table,
                                      const PostImage* post = nullptr);

  Result<Scalar> Eval(size_t row) const { return EvalNode(0, row); }
  Result<bool> EvalBool(size_t row) const;

  /// Batch predicate evaluation over every row of the bound table. Uses
  /// tight typed loops for comparisons / logical connectives over null-free,
  /// non-overridden columns and falls back to per-row EvalBool for anything
  /// else; the produced mask is identical either way.
  Result<std::vector<uint8_t>> EvalMask() const;

 private:
  struct BoundNode {
    const Column* column = nullptr;   // kColumnRef
    const PostImage::Override* override_ = nullptr;  // kColumnRef with post
    int32_t literal_code = -1;        // kLiteral string: code in table dict
    Scalar override_const;            // kConst override, pre-resolved at Bind
  };

  Result<Scalar> EvalNode(uint32_t idx, size_t row) const;
  Result<Scalar> ReadColumn(uint32_t idx, size_t row) const;
  bool MaskKernel(uint32_t idx, std::vector<uint8_t>* mask) const;

  const ColumnTable* table_ = nullptr;
  const PostImage* post_ = nullptr;
  std::vector<CompiledExpr::Node> nodes_;
  std::vector<BoundNode> bound_;
};

/// Convenience: compiles `pred` against `table` (single tuple named after
/// the table's relation) and returns the selection mask; a null `pred`
/// selects every row.
Result<std::vector<uint8_t>> EvalPredicateMask(const sql::Expr* pred,
                                               const ColumnTable& table);

}  // namespace hyper::relational

#endif  // HYPER_RELATIONAL_COMPILED_H_
