#include "relational/eval.h"

#include <cmath>

#include "common/strings.h"

namespace hyper::relational {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

Result<Value> Env::Lookup(const std::string& qualifier,
                          const std::string& name, bool want_post) const {
  const BoundTuple* found = nullptr;
  size_t found_attr = 0;
  for (const BoundTuple& bt : tuples_) {
    if (!qualifier.empty() && !EqualsIgnoreCase(bt.alias, qualifier)) continue;
    if (!bt.schema->Contains(name)) continue;
    if (found != nullptr) {
      return Status::InvalidArgument("ambiguous column reference '" + name +
                                     "'");
    }
    found = &bt;
    found_attr = bt.schema->IndexOf(name).value();
  }
  if (found == nullptr) {
    return Status::NotFound(
        "unresolved column reference '" +
        (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  if (want_post) {
    const Row* post = found->post_row != nullptr ? found->post_row : found->row;
    return (*post)[found_attr];
  }
  return (*found->row)[found_attr];
}

namespace {

Result<Value> EvalBinary(const Expr& expr, const Env& env, bool post_mode) {
  const BinaryOp op = expr.op;

  // Logical operators short-circuit.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    HYPER_ASSIGN_OR_RETURN(Value lhs_val,
                           EvalExpr(*expr.children[0], env, post_mode));
    HYPER_ASSIGN_OR_RETURN(bool lhs, lhs_val.AsBool());
    if (op == BinaryOp::kAnd && !lhs) return Value::Bool(false);
    if (op == BinaryOp::kOr && lhs) return Value::Bool(true);
    HYPER_ASSIGN_OR_RETURN(Value rhs_val,
                           EvalExpr(*expr.children[1], env, post_mode));
    HYPER_ASSIGN_OR_RETURN(bool rhs, rhs_val.AsBool());
    return Value::Bool(rhs);
  }

  HYPER_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], env, post_mode));
  HYPER_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], env, post_mode));

  if (sql::IsComparisonOp(op)) {
    if (op == BinaryOp::kEq) return Value::Bool(lhs.Equals(rhs));
    if (op == BinaryOp::kNe) return Value::Bool(!lhs.Equals(rhs));
    HYPER_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
    switch (op) {
      case BinaryOp::kLt: return Value::Bool(cmp < 0);
      case BinaryOp::kLe: return Value::Bool(cmp <= 0);
      case BinaryOp::kGt: return Value::Bool(cmp > 0);
      case BinaryOp::kGe: return Value::Bool(cmp >= 0);
      default: break;
    }
  }

  // Arithmetic.
  HYPER_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
  HYPER_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
  const bool both_int = lhs.type() == ValueType::kInt &&
                        rhs.type() == ValueType::kInt;
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Int(lhs.int_value() + rhs.int_value())
                      : Value::Double(a + b);
    case BinaryOp::kSub:
      return both_int ? Value::Int(lhs.int_value() - rhs.int_value())
                      : Value::Double(a - b);
    case BinaryOp::kMul:
      return both_int ? Value::Int(lhs.int_value() * rhs.int_value())
                      : Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      return Value::Double(a / b);
    default:
      return Status::Internal("unhandled binary operator");
  }
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Env& env, bool post_mode) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      return env.Lookup(expr.qualifier, expr.name, post_mode);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid inside Count(*)");
    case ExprKind::kPre:
      return EvalExpr(*expr.children[0], env, /*post_mode=*/false);
    case ExprKind::kPost:
      return EvalExpr(*expr.children[0], env, /*post_mode=*/true);
    case ExprKind::kNot: {
      HYPER_ASSIGN_OR_RETURN(Value inner,
                             EvalExpr(*expr.children[0], env, post_mode));
      HYPER_ASSIGN_OR_RETURN(bool b, inner.AsBool());
      return Value::Bool(!b);
    }
    case ExprKind::kNeg: {
      HYPER_ASSIGN_OR_RETURN(Value inner,
                             EvalExpr(*expr.children[0], env, post_mode));
      if (inner.type() == ValueType::kInt) return Value::Int(-inner.int_value());
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Value::Double(-d);
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, env, post_mode);
    case ExprKind::kInList: {
      HYPER_ASSIGN_OR_RETURN(Value needle,
                             EvalExpr(*expr.children[0], env, post_mode));
      for (size_t i = 1; i < expr.children.size(); ++i) {
        HYPER_ASSIGN_OR_RETURN(Value item,
                               EvalExpr(*expr.children[i], env, post_mode));
        if (needle.Equals(item)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case ExprKind::kFuncCall: {
      if (EqualsIgnoreCase(expr.name, "ABS")) {
        if (expr.children.size() != 1) {
          return Status::InvalidArgument("Abs takes one argument");
        }
        HYPER_ASSIGN_OR_RETURN(Value inner,
                               EvalExpr(*expr.children[0], env, post_mode));
        HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
        return Value::Double(std::fabs(d));
      }
      if (EqualsIgnoreCase(expr.name, "L1")) {
        if (expr.children.size() != 2) {
          return Status::InvalidArgument("L1 takes two arguments");
        }
        HYPER_ASSIGN_OR_RETURN(Value a,
                               EvalExpr(*expr.children[0], env, post_mode));
        HYPER_ASSIGN_OR_RETURN(Value b,
                               EvalExpr(*expr.children[1], env, post_mode));
        HYPER_ASSIGN_OR_RETURN(double da, a.AsDouble());
        HYPER_ASSIGN_OR_RETURN(double db, b.AsDouble());
        return Value::Double(std::fabs(da - db));
      }
      return Status::InvalidArgument(
          "aggregate/function '" + expr.name +
          "' is not valid in a per-row expression");
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Env& env, bool post_mode) {
  HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, env, post_mode));
  return v.AsBool();
}

}  // namespace hyper::relational
