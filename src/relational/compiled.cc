#include "relational/compiled.h"

#include <cmath>

#include "common/strings.h"

namespace hyper::relational {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

// ---------------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------------

Scalar Scalar::FromValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return Null();
    case ValueType::kBool: return Bool(v.bool_value());
    case ValueType::kInt: return Int(v.int_value());
    case ValueType::kDouble: return Double(v.double_value());
    case ValueType::kString: return Str(&v.string_value());
  }
  return Null();
}

Value Scalar::ToValue() const {
  switch (kind) {
    case K::kNull: return Value::Null();
    case K::kBool: return Value::Bool(b);
    case K::kInt: return Value::Int(i);
    case K::kDouble: return Value::Double(d);
    case K::kStr: return Value::String(*s);
  }
  return Value::Null();
}

Result<double> Scalar::AsDouble() const {
  switch (kind) {
    case K::kBool: return b ? 1.0 : 0.0;
    case K::kInt: return static_cast<double>(i);
    case K::kDouble: return d;
    case K::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a number");
    case K::kStr:
      return Status::InvalidArgument("cannot coerce string '" + *s +
                                     "' to a number");
  }
  return Status::Internal("unreachable");
}

Result<bool> Scalar::AsBool() const {
  switch (kind) {
    case K::kBool: return b;
    case K::kInt: return i != 0;
    case K::kDouble: return d != 0.0;
    case K::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a boolean");
    case K::kStr:
      return Status::InvalidArgument("cannot coerce string '" + *s +
                                     "' to a boolean");
  }
  return Status::Internal("unreachable");
}

bool Scalar::Equals(const Scalar& other) const {
  if (kind == K::kNull || other.kind == K::kNull) {
    return kind == other.kind;
  }
  if (kind == K::kStr || other.kind == K::kStr) {
    if (kind != other.kind) return false;
    if (code >= 0 && other.code >= 0) return code == other.code;
    return *s == *other.s;
  }
  return AsDouble().value() == other.AsDouble().value();
}

namespace {

const char* ScalarTypeName(Scalar::K k) {
  switch (k) {
    case Scalar::K::kNull: return "NULL";
    case Scalar::K::kBool: return "BOOL";
    case Scalar::K::kInt: return "INT";
    case Scalar::K::kDouble: return "DOUBLE";
    case Scalar::K::kStr: return "STRING";
  }
  return "UNKNOWN";
}

}  // namespace

Result<int> Scalar::Compare(const Scalar& other) const {
  if (kind == K::kNull && other.kind == K::kNull) return 0;
  if (kind == K::kNull) return -1;
  if (other.kind == K::kNull) return 1;
  if (kind == K::kStr && other.kind == K::kStr) {
    if (code >= 0 && code == other.code) return 0;
    const int c = s->compare(*other.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (kind == K::kStr || other.kind == K::kStr) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(ScalarTypeName(kind)) + " with " +
        std::string(ScalarTypeName(other.kind)));
  }
  const double x = AsDouble().value();
  const double y = other.AsDouble().value();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

struct ResolvedRef {
  uint16_t slot = 0;
  uint32_t attr = 0;
};

/// Mirrors Env::Lookup resolution: qualified references match aliases
/// case-insensitively; unqualified references must be unique in the scope.
Result<ResolvedRef> ResolveRef(const std::vector<ScopedTuple>& scope,
                               const std::string& qualifier,
                               const std::string& name) {
  bool found = false;
  ResolvedRef out;
  for (size_t t = 0; t < scope.size(); ++t) {
    if (!qualifier.empty() && !EqualsIgnoreCase(scope[t].alias, qualifier)) {
      continue;
    }
    if (!scope[t].schema->Contains(name)) continue;
    if (found) {
      return Status::InvalidArgument("ambiguous column reference '" + name +
                                     "'");
    }
    found = true;
    out.slot = static_cast<uint16_t>(t);
    out.attr = static_cast<uint32_t>(scope[t].schema->IndexOf(name).value());
  }
  if (!found) {
    return Status::NotFound(
        "unresolved column reference '" +
        (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  return out;
}

}  // namespace

namespace {

Result<uint32_t> CompileNode(const Expr& expr,
                             const std::vector<ScopedTuple>& scope,
                             bool post_mode,
                             std::vector<CompiledExpr::Node>* nodes,
                             bool* references_post) {
  using Node = CompiledExpr::Node;
  using Op = CompiledExpr::Node::Op;

  // Pre/Post wrappers set the ambient mode and emit no node of their own.
  if (expr.kind == ExprKind::kPre) {
    return CompileNode(*expr.children[0], scope, /*post_mode=*/false, nodes,
                       references_post);
  }
  if (expr.kind == ExprKind::kPost) {
    return CompileNode(*expr.children[0], scope, /*post_mode=*/true, nodes,
                       references_post);
  }

  const uint32_t idx = static_cast<uint32_t>(nodes->size());
  nodes->emplace_back();

  switch (expr.kind) {
    case ExprKind::kLiteral:
      (*nodes)[idx].op = Op::kLiteral;
      (*nodes)[idx].literal = expr.literal;
      return idx;
    case ExprKind::kColumnRef: {
      HYPER_ASSIGN_OR_RETURN(ResolvedRef ref,
                             ResolveRef(scope, expr.qualifier, expr.name));
      Node& n = (*nodes)[idx];
      n.op = Op::kColumnRef;
      n.slot = ref.slot;
      n.attr = ref.attr;
      n.post = post_mode;
      if (post_mode) *references_post = true;
      return idx;
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid inside Count(*)");
    case ExprKind::kNot:
    case ExprKind::kNeg: {
      (*nodes)[idx].op = expr.kind == ExprKind::kNot ? Op::kNot : Op::kNeg;
      HYPER_ASSIGN_OR_RETURN(
          uint32_t child, CompileNode(*expr.children[0], scope, post_mode,
                                      nodes, references_post));
      (*nodes)[idx].children.push_back(child);
      return idx;
    }
    case ExprKind::kBinary: {
      Op op;
      if (expr.op == BinaryOp::kAnd) {
        op = Op::kAnd;
      } else if (expr.op == BinaryOp::kOr) {
        op = Op::kOr;
      } else if (sql::IsComparisonOp(expr.op)) {
        op = Op::kCompare;
      } else {
        op = Op::kArith;
      }
      (*nodes)[idx].op = op;
      (*nodes)[idx].cmp = expr.op;
      HYPER_ASSIGN_OR_RETURN(
          uint32_t lhs, CompileNode(*expr.children[0], scope, post_mode,
                                    nodes, references_post));
      HYPER_ASSIGN_OR_RETURN(
          uint32_t rhs, CompileNode(*expr.children[1], scope, post_mode,
                                    nodes, references_post));
      (*nodes)[idx].children.push_back(lhs);
      (*nodes)[idx].children.push_back(rhs);
      return idx;
    }
    case ExprKind::kInList: {
      (*nodes)[idx].op = Op::kInList;
      for (const auto& child : expr.children) {
        HYPER_ASSIGN_OR_RETURN(uint32_t c,
                               CompileNode(*child, scope, post_mode, nodes,
                                           references_post));
        (*nodes)[idx].children.push_back(c);
      }
      return idx;
    }
    case ExprKind::kFuncCall: {
      if (EqualsIgnoreCase(expr.name, "ABS")) {
        if (expr.children.size() != 1) {
          return Status::InvalidArgument("Abs takes one argument");
        }
        (*nodes)[idx].op = Op::kAbs;
      } else if (EqualsIgnoreCase(expr.name, "L1")) {
        if (expr.children.size() != 2) {
          return Status::InvalidArgument("L1 takes two arguments");
        }
        (*nodes)[idx].op = Op::kL1;
      } else {
        return Status::InvalidArgument(
            "aggregate/function '" + expr.name +
            "' is not valid in a per-row expression");
      }
      for (const auto& child : expr.children) {
        HYPER_ASSIGN_OR_RETURN(uint32_t c,
                               CompileNode(*child, scope, post_mode, nodes,
                                           references_post));
        (*nodes)[idx].children.push_back(c);
      }
      return idx;
    }
    default:
      return Status::Internal("unhandled expression kind in compilation");
  }
}

}  // namespace

Result<CompiledExpr> CompiledExpr::Compile(const Expr& expr,
                                           const std::vector<ScopedTuple>& scope,
                                           bool post_mode) {
  CompiledExpr out;
  HYPER_ASSIGN_OR_RETURN(
      uint32_t root,
      CompileNode(expr, scope, post_mode, &out.nodes_, &out.references_post_));
  if (root != 0) {
    return Status::Internal("compiled expression root is not node 0");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row-mode evaluation (mirrors relational::EvalExpr exactly)
// ---------------------------------------------------------------------------

Result<Scalar> CompiledExpr::EvalNode(uint32_t idx,
                                      const BoundRow* frame) const {
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Node::Op::kLiteral:
      return Scalar::FromValue(n.literal);
    case Node::Op::kColumnRef: {
      const BoundRow& br = frame[n.slot];
      const Row* src = n.post ? (br.post != nullptr ? br.post : br.pre)
                              : br.pre;
      return Scalar::FromValue((*src)[n.attr]);
    }
    case Node::Op::kNot: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(bool b, inner.AsBool());
      return Scalar::Bool(!b);
    }
    case Node::Op::kNeg: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      if (inner.kind == Scalar::K::kInt) return Scalar::Int(-inner.i);
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(-d);
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs_val, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(bool lhs, lhs_val.AsBool());
      if (n.op == Node::Op::kAnd && !lhs) return Scalar::Bool(false);
      if (n.op == Node::Op::kOr && lhs) return Scalar::Bool(true);
      HYPER_ASSIGN_OR_RETURN(Scalar rhs_val, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(bool rhs, rhs_val.AsBool());
      return Scalar::Bool(rhs);
    }
    case Node::Op::kCompare: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], frame));
      if (n.cmp == BinaryOp::kEq) return Scalar::Bool(lhs.Equals(rhs));
      if (n.cmp == BinaryOp::kNe) return Scalar::Bool(!lhs.Equals(rhs));
      HYPER_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (n.cmp) {
        case BinaryOp::kLt: return Scalar::Bool(cmp < 0);
        case BinaryOp::kLe: return Scalar::Bool(cmp <= 0);
        case BinaryOp::kGt: return Scalar::Bool(cmp > 0);
        case BinaryOp::kGe: return Scalar::Bool(cmp >= 0);
        default: return Status::Internal("unhandled comparison");
      }
    }
    case Node::Op::kArith: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      const bool both_int =
          lhs.kind == Scalar::K::kInt && rhs.kind == Scalar::K::kInt;
      switch (n.cmp) {
        case BinaryOp::kAdd:
          return both_int ? Scalar::Int(lhs.i + rhs.i) : Scalar::Double(a + b);
        case BinaryOp::kSub:
          return both_int ? Scalar::Int(lhs.i - rhs.i) : Scalar::Double(a - b);
        case BinaryOp::kMul:
          return both_int ? Scalar::Int(lhs.i * rhs.i) : Scalar::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return Scalar::Double(a / b);
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    case Node::Op::kInList: {
      HYPER_ASSIGN_OR_RETURN(Scalar needle, EvalNode(n.children[0], frame));
      for (size_t c = 1; c < n.children.size(); ++c) {
        HYPER_ASSIGN_OR_RETURN(Scalar item, EvalNode(n.children[c], frame));
        if (needle.Equals(item)) return Scalar::Bool(true);
      }
      return Scalar::Bool(false);
    }
    case Node::Op::kAbs: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(std::fabs(d));
    }
    case Node::Op::kL1: {
      HYPER_ASSIGN_OR_RETURN(Scalar a, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar b, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(double da, a.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double db, b.AsDouble());
      return Scalar::Double(std::fabs(da - db));
    }
  }
  return Status::Internal("unhandled compiled node");
}

Result<bool> CompiledExpr::EvalRowBool(const BoundRow* frame) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, EvalRow(frame));
  return v.AsBool();
}

Result<Value> CompiledExpr::EvalRowValue(const BoundRow* frame) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, EvalRow(frame));
  return v.ToValue();
}

// ---------------------------------------------------------------------------
// PostImage
// ---------------------------------------------------------------------------

void PostImage::SetConst(size_t attr, Value v) {
  if (overrides_.size() <= attr) overrides_.resize(attr + 1);
  overrides_[attr].kind = OvKind::kConst;
  overrides_[attr].constant = std::move(v);
}

void PostImage::SetPerRowDouble(size_t attr, std::vector<double> values) {
  if (overrides_.size() <= attr) overrides_.resize(attr + 1);
  overrides_[attr].kind = OvKind::kPerRowDouble;
  overrides_[attr].per_row = std::move(values);
}

// ---------------------------------------------------------------------------
// Columnar binding
// ---------------------------------------------------------------------------

Result<ColumnBoundExpr> ColumnBoundExpr::Bind(const CompiledExpr& expr,
                                              const ColumnTable& table,
                                              const PostImage* post) {
  ColumnBoundExpr out;
  out.table_ = &table;
  out.post_ = post;
  out.nodes_ = expr.nodes();
  out.bound_.resize(out.nodes_.size());
  for (size_t i = 0; i < out.nodes_.size(); ++i) {
    const CompiledExpr::Node& n = out.nodes_[i];
    BoundNode& b = out.bound_[i];
    if (n.op == CompiledExpr::Node::Op::kColumnRef) {
      if (n.slot != 0) {
        return Status::InvalidArgument(
            "columnar binding requires a single-tuple scope");
      }
      if (n.attr >= table.num_columns()) {
        return Status::OutOfRange("attribute index out of range");
      }
      b.column = &table.col(n.attr);
      if (n.post && post != nullptr && post->has_override(n.attr)) {
        b.override_ = &post->overrides_[n.attr];
        if (b.override_->kind == PostImage::OvKind::kConst) {
          const Value& v = b.override_->constant;
          b.override_const =
              v.type() == ValueType::kString
                  ? Scalar::Str(&v.string_value(),
                                table.dict().Find(v.string_value()))
                  : Scalar::FromValue(v);
        }
      }
    } else if (n.op == CompiledExpr::Node::Op::kLiteral &&
               n.literal.type() == ValueType::kString) {
      b.literal_code = table.dict().Find(n.literal.string_value());
    }
  }
  return out;
}

Result<Scalar> ColumnBoundExpr::ReadColumn(uint32_t idx, size_t row) const {
  const BoundNode& b = bound_[idx];
  if (b.override_ != nullptr) {
    const bool active =
        post_->active_ == nullptr || (*post_->active_)[row];
    if (active) {
      if (b.override_->kind == PostImage::OvKind::kConst) {
        return b.override_const;
      }
      return Scalar::Double(b.override_->per_row[row]);
    }
  }
  const Column& col = *b.column;
  if (col.is_null(row)) return Scalar::Null();
  switch (col.kind) {
    case ColumnKind::kInt64: return Scalar::Int(col.i64[row]);
    case ColumnKind::kDouble: return Scalar::Double(col.f64[row]);
    case ColumnKind::kBool: return Scalar::Bool(col.b8[row] != 0);
    case ColumnKind::kCode: {
      const int32_t code = col.codes[row];
      if (code == Dictionary::kNullCode) return Scalar::Null();
      return Scalar::Str(&table_->dict().at(code), code);
    }
  }
  return Status::Internal("unhandled column kind");
}

Result<Scalar> ColumnBoundExpr::EvalNode(uint32_t idx, size_t row) const {
  const CompiledExpr::Node& n = nodes_[idx];
  using Node = CompiledExpr::Node;
  switch (n.op) {
    case Node::Op::kLiteral: {
      Scalar v = Scalar::FromValue(n.literal);
      if (v.kind == Scalar::K::kStr) v.code = bound_[idx].literal_code;
      return v;
    }
    case Node::Op::kColumnRef:
      return ReadColumn(idx, row);
    case Node::Op::kNot: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(bool b, inner.AsBool());
      return Scalar::Bool(!b);
    }
    case Node::Op::kNeg: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      if (inner.kind == Scalar::K::kInt) return Scalar::Int(-inner.i);
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(-d);
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs_val, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(bool lhs, lhs_val.AsBool());
      if (n.op == Node::Op::kAnd && !lhs) return Scalar::Bool(false);
      if (n.op == Node::Op::kOr && lhs) return Scalar::Bool(true);
      HYPER_ASSIGN_OR_RETURN(Scalar rhs_val, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(bool rhs, rhs_val.AsBool());
      return Scalar::Bool(rhs);
    }
    case Node::Op::kCompare: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], row));
      if (n.cmp == BinaryOp::kEq) return Scalar::Bool(lhs.Equals(rhs));
      if (n.cmp == BinaryOp::kNe) return Scalar::Bool(!lhs.Equals(rhs));
      HYPER_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (n.cmp) {
        case BinaryOp::kLt: return Scalar::Bool(cmp < 0);
        case BinaryOp::kLe: return Scalar::Bool(cmp <= 0);
        case BinaryOp::kGt: return Scalar::Bool(cmp > 0);
        case BinaryOp::kGe: return Scalar::Bool(cmp >= 0);
        default: return Status::Internal("unhandled comparison");
      }
    }
    case Node::Op::kArith: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      const bool both_int =
          lhs.kind == Scalar::K::kInt && rhs.kind == Scalar::K::kInt;
      switch (n.cmp) {
        case BinaryOp::kAdd:
          return both_int ? Scalar::Int(lhs.i + rhs.i) : Scalar::Double(a + b);
        case BinaryOp::kSub:
          return both_int ? Scalar::Int(lhs.i - rhs.i) : Scalar::Double(a - b);
        case BinaryOp::kMul:
          return both_int ? Scalar::Int(lhs.i * rhs.i) : Scalar::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return Scalar::Double(a / b);
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    case Node::Op::kInList: {
      HYPER_ASSIGN_OR_RETURN(Scalar needle, EvalNode(n.children[0], row));
      for (size_t c = 1; c < n.children.size(); ++c) {
        HYPER_ASSIGN_OR_RETURN(Scalar item, EvalNode(n.children[c], row));
        if (needle.Equals(item)) return Scalar::Bool(true);
      }
      return Scalar::Bool(false);
    }
    case Node::Op::kAbs: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(std::fabs(d));
    }
    case Node::Op::kL1: {
      HYPER_ASSIGN_OR_RETURN(Scalar a, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar b, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(double da, a.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double db, b.AsDouble());
      return Scalar::Double(std::fabs(da - db));
    }
  }
  return Status::Internal("unhandled compiled node");
}

Result<bool> ColumnBoundExpr::EvalBool(size_t row) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, Eval(row));
  return v.AsBool();
}

// ---------------------------------------------------------------------------
// Vectorized mask kernel
// ---------------------------------------------------------------------------

namespace {

/// Applies `op` over per-row doubles produced by two getters. Equality uses
/// double comparison — exactly Value::Equals / Value::Compare for numerics.
template <typename GetL, typename GetR>
void CompareLoop(size_t n, BinaryOp op, GetL&& lhs, GetR&& rhs,
                 std::vector<uint8_t>* mask) {
  switch (op) {
    case BinaryOp::kEq:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) == rhs(r);
      break;
    case BinaryOp::kNe:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) != rhs(r);
      break;
    case BinaryOp::kLt:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) < rhs(r);
      break;
    case BinaryOp::kLe:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) <= rhs(r);
      break;
    case BinaryOp::kGt:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) > rhs(r);
      break;
    case BinaryOp::kGe:
      for (size_t r = 0; r < n; ++r) (*mask)[r] = lhs(r) >= rhs(r);
      break;
    default:
      break;
  }
}

/// Per-row numeric view of a null-free column, dispatched once per column.
template <typename Fn>
bool WithNumericGetter(const Column& col, Fn&& fn) {
  switch (col.kind) {
    case ColumnKind::kInt64:
      fn([data = col.i64.data()](size_t r) {
        return static_cast<double>(data[r]);
      });
      return true;
    case ColumnKind::kDouble:
      fn([data = col.f64.data()](size_t r) { return data[r]; });
      return true;
    case ColumnKind::kBool:
      fn([data = col.b8.data()](size_t r) {
        return data[r] != 0 ? 1.0 : 0.0;
      });
      return true;
    case ColumnKind::kCode:
      return false;
  }
  return false;
}

}  // namespace

bool ColumnBoundExpr::MaskKernel(uint32_t idx,
                                 std::vector<uint8_t>* mask) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];
  const size_t num_rows = table_->num_rows();

  // A column reference is kernel-eligible when it reads the pre image
  // directly: no NULLs, no post override.
  auto eligible_col = [&](uint32_t node_idx) -> const Column* {
    const Node& cn = nodes_[node_idx];
    if (cn.op != Node::Op::kColumnRef) return nullptr;
    if (bound_[node_idx].override_ != nullptr) return nullptr;
    const Column* col = bound_[node_idx].column;
    if (col->has_nulls()) return nullptr;
    return col;
  };

  switch (n.op) {
    case Node::Op::kLiteral: {
      auto b = n.literal.AsBool();
      if (!b.ok()) return false;
      std::fill(mask->begin(), mask->end(), *b ? 1 : 0);
      return true;
    }
    case Node::Op::kColumnRef: {
      const Column* col = eligible_col(idx);
      if (col == nullptr || col->kind == ColumnKind::kCode) return false;
      bool ok = WithNumericGetter(*col, [&](auto get) {
        for (size_t r = 0; r < num_rows; ++r) (*mask)[r] = get(r) != 0.0;
      });
      return ok;
    }
    case Node::Op::kNot: {
      if (!MaskKernel(n.children[0], mask)) return false;
      for (size_t r = 0; r < num_rows; ++r) (*mask)[r] = !(*mask)[r];
      return true;
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      // Eager evaluation is safe here: kernel-eligible subtrees cannot error,
      // so the mask matches the short-circuit semantics bit for bit.
      if (!MaskKernel(n.children[0], mask)) return false;
      std::vector<uint8_t> rhs(num_rows);
      if (!MaskKernel(n.children[1], &rhs)) return false;
      if (n.op == Node::Op::kAnd) {
        for (size_t r = 0; r < num_rows; ++r) (*mask)[r] &= rhs[r];
      } else {
        for (size_t r = 0; r < num_rows; ++r) (*mask)[r] |= rhs[r];
      }
      return true;
    }
    case Node::Op::kCompare: {
      const uint32_t li = n.children[0], ri = n.children[1];
      const Node& ln = nodes_[li];
      const Node& rn = nodes_[ri];
      const Column* lcol = eligible_col(li);
      const Column* rcol = eligible_col(ri);

      // column vs column.
      if (lcol != nullptr && rcol != nullptr) {
        if (lcol->kind == ColumnKind::kCode || rcol->kind == ColumnKind::kCode) {
          // Same-dictionary code equality; ordered comparisons need strings.
          if (lcol->kind != rcol->kind) return false;
          if (n.cmp != BinaryOp::kEq && n.cmp != BinaryOp::kNe) return false;
          const int32_t* a = lcol->codes.data();
          const int32_t* b = rcol->codes.data();
          const bool want_eq = n.cmp == BinaryOp::kEq;
          for (size_t r = 0; r < num_rows; ++r) {
            (*mask)[r] = (a[r] == b[r]) == want_eq;
          }
          return true;
        }
        bool handled = false;
        WithNumericGetter(*lcol, [&](auto gl) {
          handled = WithNumericGetter(*rcol, [&](auto gr) {
            CompareLoop(num_rows, n.cmp, gl, gr, mask);
          });
        });
        return handled;
      }

      // column vs literal (either side).
      const Column* col = lcol != nullptr ? lcol : rcol;
      const Node* lit = lcol != nullptr ? &rn : &ln;
      const uint32_t lit_idx = lcol != nullptr ? ri : li;
      const bool col_is_lhs = lcol != nullptr;
      if (col == nullptr || lit->op != Node::Op::kLiteral) return false;
      const Value& lv = lit->literal;
      if (lv.is_null()) return false;  // NULL ordering: leave to fallback

      if (col->kind == ColumnKind::kCode) {
        if (lv.type() != ValueType::kString) {
          // Equals(string, number) is false without error; ordered
          // comparisons error — fallback for those.
          if (n.cmp == BinaryOp::kEq) {
            std::fill(mask->begin(), mask->end(), 0);
            return true;
          }
          if (n.cmp == BinaryOp::kNe) {
            std::fill(mask->begin(), mask->end(), 1);
            return true;
          }
          return false;
        }
        if (n.cmp != BinaryOp::kEq && n.cmp != BinaryOp::kNe) {
          return false;  // lexicographic order: codes are unordered
        }
        const int32_t code = bound_[lit_idx].literal_code;
        const int32_t* data = col->codes.data();
        const bool want_eq = n.cmp == BinaryOp::kEq;
        for (size_t r = 0; r < num_rows; ++r) {
          (*mask)[r] = (data[r] == code) == want_eq;
        }
        return true;
      }

      if (lv.type() == ValueType::kString) {
        if (n.cmp == BinaryOp::kEq) {
          std::fill(mask->begin(), mask->end(), 0);
          return true;
        }
        if (n.cmp == BinaryOp::kNe) {
          std::fill(mask->begin(), mask->end(), 1);
          return true;
        }
        return false;
      }
      const double c = lv.AsDouble().value();
      bool handled = WithNumericGetter(*col, [&](auto get) {
        if (col_is_lhs) {
          CompareLoop(num_rows, n.cmp, get, [c](size_t) { return c; }, mask);
        } else {
          CompareLoop(num_rows, n.cmp, [c](size_t) { return c; }, get, mask);
        }
      });
      return handled;
    }
    case Node::Op::kInList: {
      const Column* col = eligible_col(n.children[0]);
      if (col == nullptr) return false;
      // All items must be literals.
      for (size_t c = 1; c < n.children.size(); ++c) {
        if (nodes_[n.children[c]].op != Node::Op::kLiteral) return false;
        if (nodes_[n.children[c]].literal.is_null()) return false;
      }
      if (col->kind == ColumnKind::kCode) {
        std::vector<int32_t> want;
        for (size_t c = 1; c < n.children.size(); ++c) {
          const Node& item = nodes_[n.children[c]];
          if (item.literal.type() != ValueType::kString) continue;  // never eq
          want.push_back(bound_[n.children[c]].literal_code);
        }
        const int32_t* data = col->codes.data();
        for (size_t r = 0; r < num_rows; ++r) {
          uint8_t hit = 0;
          for (int32_t w : want) hit |= (data[r] == w);
          (*mask)[r] = hit;
        }
        return true;
      }
      std::vector<double> want;
      for (size_t c = 1; c < n.children.size(); ++c) {
        const Node& item = nodes_[n.children[c]];
        if (item.literal.type() == ValueType::kString) continue;  // never eq
        want.push_back(item.literal.AsDouble().value());
      }
      bool handled = WithNumericGetter(*col, [&](auto get) {
        for (size_t r = 0; r < num_rows; ++r) {
          const double v = get(r);
          uint8_t hit = 0;
          for (double w : want) hit |= (v == w);
          (*mask)[r] = hit;
        }
      });
      return handled;
    }
    default:
      return false;
  }
}

Result<std::vector<uint8_t>> ColumnBoundExpr::EvalMask() const {
  const size_t n = table_->num_rows();
  std::vector<uint8_t> mask(n, 0);
  if (MaskKernel(0, &mask)) return mask;
  for (size_t r = 0; r < n; ++r) {
    HYPER_ASSIGN_OR_RETURN(bool b, EvalBool(r));
    mask[r] = b ? 1 : 0;
  }
  return mask;
}

Result<std::vector<uint8_t>> EvalPredicateMask(const sql::Expr* pred,
                                               const ColumnTable& table) {
  if (pred == nullptr) {
    return std::vector<uint8_t>(table.num_rows(), 1);
  }
  std::vector<ScopedTuple> scope{
      ScopedTuple{table.schema().relation_name(), &table.schema()}};
  HYPER_ASSIGN_OR_RETURN(CompiledExpr compiled,
                         CompiledExpr::Compile(*pred, scope));
  HYPER_ASSIGN_OR_RETURN(ColumnBoundExpr bound,
                         ColumnBoundExpr::Bind(compiled, table));
  return bound.EvalMask();
}

}  // namespace hyper::relational
