#include "relational/compiled.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace hyper::relational {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;

// ---------------------------------------------------------------------------
// Scalar
// ---------------------------------------------------------------------------

Scalar Scalar::FromValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return Null();
    case ValueType::kBool: return Bool(v.bool_value());
    case ValueType::kInt: return Int(v.int_value());
    case ValueType::kDouble: return Double(v.double_value());
    case ValueType::kString: return Str(&v.string_value());
  }
  return Null();
}

Value Scalar::ToValue() const {
  switch (kind) {
    case K::kNull: return Value::Null();
    case K::kBool: return Value::Bool(b);
    case K::kInt: return Value::Int(i);
    case K::kDouble: return Value::Double(d);
    case K::kStr: return Value::String(*s);
  }
  return Value::Null();
}

Result<double> Scalar::AsDouble() const {
  switch (kind) {
    case K::kBool: return b ? 1.0 : 0.0;
    case K::kInt: return static_cast<double>(i);
    case K::kDouble: return d;
    case K::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a number");
    case K::kStr:
      return Status::InvalidArgument("cannot coerce string '" + *s +
                                     "' to a number");
  }
  return Status::Internal("unreachable");
}

Result<bool> Scalar::AsBool() const {
  switch (kind) {
    case K::kBool: return b;
    case K::kInt: return i != 0;
    case K::kDouble: return d != 0.0;
    case K::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a boolean");
    case K::kStr:
      return Status::InvalidArgument("cannot coerce string '" + *s +
                                     "' to a boolean");
  }
  return Status::Internal("unreachable");
}

bool Scalar::Equals(const Scalar& other) const {
  if (kind == K::kNull || other.kind == K::kNull) {
    return kind == other.kind;
  }
  if (kind == K::kStr || other.kind == K::kStr) {
    if (kind != other.kind) return false;
    if (code >= 0 && other.code >= 0) return code == other.code;
    return *s == *other.s;
  }
  return AsDouble().value() == other.AsDouble().value();
}

namespace {

const char* ScalarTypeName(Scalar::K k) {
  switch (k) {
    case Scalar::K::kNull: return "NULL";
    case Scalar::K::kBool: return "BOOL";
    case Scalar::K::kInt: return "INT";
    case Scalar::K::kDouble: return "DOUBLE";
    case Scalar::K::kStr: return "STRING";
  }
  return "UNKNOWN";
}

}  // namespace

Result<int> Scalar::Compare(const Scalar& other) const {
  if (kind == K::kNull && other.kind == K::kNull) return 0;
  if (kind == K::kNull) return -1;
  if (other.kind == K::kNull) return 1;
  if (kind == K::kStr && other.kind == K::kStr) {
    if (code >= 0 && code == other.code) return 0;
    const int c = s->compare(*other.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (kind == K::kStr || other.kind == K::kStr) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(ScalarTypeName(kind)) + " with " +
        std::string(ScalarTypeName(other.kind)));
  }
  const double x = AsDouble().value();
  const double y = other.AsDouble().value();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

namespace {

struct ResolvedRef {
  uint16_t slot = 0;
  uint32_t attr = 0;
};

/// Mirrors Env::Lookup resolution: qualified references match aliases
/// case-insensitively; unqualified references must be unique in the scope.
Result<ResolvedRef> ResolveRef(const std::vector<ScopedTuple>& scope,
                               const std::string& qualifier,
                               const std::string& name) {
  bool found = false;
  ResolvedRef out;
  for (size_t t = 0; t < scope.size(); ++t) {
    if (!qualifier.empty() && !EqualsIgnoreCase(scope[t].alias, qualifier)) {
      continue;
    }
    if (!scope[t].schema->Contains(name)) continue;
    if (found) {
      return Status::InvalidArgument("ambiguous column reference '" + name +
                                     "'");
    }
    found = true;
    out.slot = static_cast<uint16_t>(t);
    out.attr = static_cast<uint32_t>(scope[t].schema->IndexOf(name).value());
  }
  if (!found) {
    return Status::NotFound(
        "unresolved column reference '" +
        (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  return out;
}

}  // namespace

namespace {

Result<uint32_t> CompileNode(const Expr& expr,
                             const std::vector<ScopedTuple>& scope,
                             bool post_mode,
                             std::vector<CompiledExpr::Node>* nodes,
                             bool* references_post) {
  using Node = CompiledExpr::Node;
  using Op = CompiledExpr::Node::Op;

  // Pre/Post wrappers set the ambient mode and emit no node of their own.
  if (expr.kind == ExprKind::kPre) {
    return CompileNode(*expr.children[0], scope, /*post_mode=*/false, nodes,
                       references_post);
  }
  if (expr.kind == ExprKind::kPost) {
    return CompileNode(*expr.children[0], scope, /*post_mode=*/true, nodes,
                       references_post);
  }

  const uint32_t idx = static_cast<uint32_t>(nodes->size());
  nodes->emplace_back();

  switch (expr.kind) {
    case ExprKind::kLiteral:
      (*nodes)[idx].op = Op::kLiteral;
      (*nodes)[idx].literal = expr.literal;
      return idx;
    case ExprKind::kColumnRef: {
      HYPER_ASSIGN_OR_RETURN(ResolvedRef ref,
                             ResolveRef(scope, expr.qualifier, expr.name));
      Node& n = (*nodes)[idx];
      n.op = Op::kColumnRef;
      n.slot = ref.slot;
      n.attr = ref.attr;
      n.post = post_mode;
      if (post_mode) *references_post = true;
      return idx;
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid inside Count(*)");
    case ExprKind::kNot:
    case ExprKind::kNeg: {
      (*nodes)[idx].op = expr.kind == ExprKind::kNot ? Op::kNot : Op::kNeg;
      HYPER_ASSIGN_OR_RETURN(
          uint32_t child, CompileNode(*expr.children[0], scope, post_mode,
                                      nodes, references_post));
      (*nodes)[idx].children.push_back(child);
      return idx;
    }
    case ExprKind::kBinary: {
      Op op;
      if (expr.op == BinaryOp::kAnd) {
        op = Op::kAnd;
      } else if (expr.op == BinaryOp::kOr) {
        op = Op::kOr;
      } else if (sql::IsComparisonOp(expr.op)) {
        op = Op::kCompare;
      } else {
        op = Op::kArith;
      }
      (*nodes)[idx].op = op;
      (*nodes)[idx].cmp = expr.op;
      HYPER_ASSIGN_OR_RETURN(
          uint32_t lhs, CompileNode(*expr.children[0], scope, post_mode,
                                    nodes, references_post));
      HYPER_ASSIGN_OR_RETURN(
          uint32_t rhs, CompileNode(*expr.children[1], scope, post_mode,
                                    nodes, references_post));
      (*nodes)[idx].children.push_back(lhs);
      (*nodes)[idx].children.push_back(rhs);
      return idx;
    }
    case ExprKind::kInList: {
      (*nodes)[idx].op = Op::kInList;
      for (const auto& child : expr.children) {
        HYPER_ASSIGN_OR_RETURN(uint32_t c,
                               CompileNode(*child, scope, post_mode, nodes,
                                           references_post));
        (*nodes)[idx].children.push_back(c);
      }
      return idx;
    }
    case ExprKind::kFuncCall: {
      if (EqualsIgnoreCase(expr.name, "ABS")) {
        if (expr.children.size() != 1) {
          return Status::InvalidArgument("Abs takes one argument");
        }
        (*nodes)[idx].op = Op::kAbs;
      } else if (EqualsIgnoreCase(expr.name, "L1")) {
        if (expr.children.size() != 2) {
          return Status::InvalidArgument("L1 takes two arguments");
        }
        (*nodes)[idx].op = Op::kL1;
      } else {
        return Status::InvalidArgument(
            "aggregate/function '" + expr.name +
            "' is not valid in a per-row expression");
      }
      for (const auto& child : expr.children) {
        HYPER_ASSIGN_OR_RETURN(uint32_t c,
                               CompileNode(*child, scope, post_mode, nodes,
                                           references_post));
        (*nodes)[idx].children.push_back(c);
      }
      return idx;
    }
    default:
      return Status::Internal("unhandled expression kind in compilation");
  }
}

}  // namespace

Result<CompiledExpr> CompiledExpr::Compile(const Expr& expr,
                                           const std::vector<ScopedTuple>& scope,
                                           bool post_mode) {
  CompiledExpr out;
  HYPER_ASSIGN_OR_RETURN(
      uint32_t root,
      CompileNode(expr, scope, post_mode, &out.nodes_, &out.references_post_));
  if (root != 0) {
    return Status::Internal("compiled expression root is not node 0");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row-mode evaluation (mirrors relational::EvalExpr exactly)
// ---------------------------------------------------------------------------

Result<Scalar> CompiledExpr::EvalNode(uint32_t idx,
                                      const BoundRow* frame) const {
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Node::Op::kLiteral:
      return Scalar::FromValue(n.literal);
    case Node::Op::kColumnRef: {
      const BoundRow& br = frame[n.slot];
      const Row* src = n.post ? (br.post != nullptr ? br.post : br.pre)
                              : br.pre;
      return Scalar::FromValue((*src)[n.attr]);
    }
    case Node::Op::kNot: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(bool b, inner.AsBool());
      return Scalar::Bool(!b);
    }
    case Node::Op::kNeg: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      if (inner.kind == Scalar::K::kInt) return Scalar::Int(-inner.i);
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(-d);
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs_val, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(bool lhs, lhs_val.AsBool());
      if (n.op == Node::Op::kAnd && !lhs) return Scalar::Bool(false);
      if (n.op == Node::Op::kOr && lhs) return Scalar::Bool(true);
      HYPER_ASSIGN_OR_RETURN(Scalar rhs_val, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(bool rhs, rhs_val.AsBool());
      return Scalar::Bool(rhs);
    }
    case Node::Op::kCompare: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], frame));
      if (n.cmp == BinaryOp::kEq) return Scalar::Bool(lhs.Equals(rhs));
      if (n.cmp == BinaryOp::kNe) return Scalar::Bool(!lhs.Equals(rhs));
      HYPER_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (n.cmp) {
        case BinaryOp::kLt: return Scalar::Bool(cmp < 0);
        case BinaryOp::kLe: return Scalar::Bool(cmp <= 0);
        case BinaryOp::kGt: return Scalar::Bool(cmp > 0);
        case BinaryOp::kGe: return Scalar::Bool(cmp >= 0);
        default: return Status::Internal("unhandled comparison");
      }
    }
    case Node::Op::kArith: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      const bool both_int =
          lhs.kind == Scalar::K::kInt && rhs.kind == Scalar::K::kInt;
      switch (n.cmp) {
        case BinaryOp::kAdd:
          return both_int ? Scalar::Int(lhs.i + rhs.i) : Scalar::Double(a + b);
        case BinaryOp::kSub:
          return both_int ? Scalar::Int(lhs.i - rhs.i) : Scalar::Double(a - b);
        case BinaryOp::kMul:
          return both_int ? Scalar::Int(lhs.i * rhs.i) : Scalar::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return Scalar::Double(a / b);
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    case Node::Op::kInList: {
      HYPER_ASSIGN_OR_RETURN(Scalar needle, EvalNode(n.children[0], frame));
      for (size_t c = 1; c < n.children.size(); ++c) {
        HYPER_ASSIGN_OR_RETURN(Scalar item, EvalNode(n.children[c], frame));
        if (needle.Equals(item)) return Scalar::Bool(true);
      }
      return Scalar::Bool(false);
    }
    case Node::Op::kAbs: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(std::fabs(d));
    }
    case Node::Op::kL1: {
      HYPER_ASSIGN_OR_RETURN(Scalar a, EvalNode(n.children[0], frame));
      HYPER_ASSIGN_OR_RETURN(Scalar b, EvalNode(n.children[1], frame));
      HYPER_ASSIGN_OR_RETURN(double da, a.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double db, b.AsDouble());
      return Scalar::Double(std::fabs(da - db));
    }
  }
  return Status::Internal("unhandled compiled node");
}

Result<bool> CompiledExpr::EvalRowBool(const BoundRow* frame) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, EvalRow(frame));
  return v.AsBool();
}

Result<Value> CompiledExpr::EvalRowValue(const BoundRow* frame) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, EvalRow(frame));
  return v.ToValue();
}

// ---------------------------------------------------------------------------
// PostImage
// ---------------------------------------------------------------------------

void PostImage::SetConst(size_t attr, Value v) {
  if (overrides_.size() <= attr) overrides_.resize(attr + 1);
  overrides_[attr].kind = OvKind::kConst;
  overrides_[attr].constant = std::move(v);
}

void PostImage::SetPerRowDouble(size_t attr, std::vector<double> values) {
  if (overrides_.size() <= attr) overrides_.resize(attr + 1);
  overrides_[attr].kind = OvKind::kPerRowDouble;
  overrides_[attr].per_row = std::move(values);
}

// ---------------------------------------------------------------------------
// Columnar binding
// ---------------------------------------------------------------------------

Result<ColumnBoundExpr> ColumnBoundExpr::Bind(const CompiledExpr& expr,
                                              const ColumnTable& table,
                                              const PostImage* post) {
  ColumnBoundExpr out;
  out.table_ = &table;
  out.post_ = post;
  out.nodes_ = expr.nodes();
  out.bound_.resize(out.nodes_.size());
  for (size_t i = 0; i < out.nodes_.size(); ++i) {
    const CompiledExpr::Node& n = out.nodes_[i];
    BoundNode& b = out.bound_[i];
    if (n.op == CompiledExpr::Node::Op::kColumnRef) {
      if (n.slot != 0) {
        return Status::InvalidArgument(
            "columnar binding requires a single-tuple scope");
      }
      if (n.attr >= table.num_columns()) {
        return Status::OutOfRange("attribute index out of range");
      }
      b.column = &table.col(n.attr);
      if (n.post && post != nullptr && post->has_override(n.attr)) {
        b.override_ = &post->overrides_[n.attr];
        if (b.override_->kind == PostImage::OvKind::kConst) {
          const Value& v = b.override_->constant;
          b.override_const =
              v.type() == ValueType::kString
                  ? Scalar::Str(&v.string_value(),
                                table.dict().Find(v.string_value()))
                  : Scalar::FromValue(v);
        }
      }
    } else if (n.op == CompiledExpr::Node::Op::kLiteral &&
               n.literal.type() == ValueType::kString) {
      b.literal_code = table.dict().Find(n.literal.string_value());
    }
  }
  return out;
}

Result<Scalar> ColumnBoundExpr::ReadColumn(uint32_t idx, size_t row) const {
  const BoundNode& b = bound_[idx];
  if (b.override_ != nullptr) {
    const bool active =
        post_->active_ == nullptr || (*post_->active_)[row];
    if (active) {
      if (b.override_->kind == PostImage::OvKind::kConst) {
        return b.override_const;
      }
      return Scalar::Double(b.override_->per_row[row]);
    }
  }
  const Column& col = *b.column;
  if (col.is_null(row)) return Scalar::Null();
  switch (col.kind) {
    case ColumnKind::kInt64: return Scalar::Int(col.i64[row]);
    case ColumnKind::kDouble: return Scalar::Double(col.f64[row]);
    case ColumnKind::kBool: return Scalar::Bool(col.b8[row] != 0);
    case ColumnKind::kCode: {
      const int32_t code = col.codes[row];
      if (code == Dictionary::kNullCode) return Scalar::Null();
      return Scalar::Str(&table_->dict().at(code), code);
    }
  }
  return Status::Internal("unhandled column kind");
}

Result<Scalar> ColumnBoundExpr::EvalNode(uint32_t idx, size_t row) const {
  const CompiledExpr::Node& n = nodes_[idx];
  using Node = CompiledExpr::Node;
  switch (n.op) {
    case Node::Op::kLiteral: {
      Scalar v = Scalar::FromValue(n.literal);
      if (v.kind == Scalar::K::kStr) v.code = bound_[idx].literal_code;
      return v;
    }
    case Node::Op::kColumnRef:
      return ReadColumn(idx, row);
    case Node::Op::kNot: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(bool b, inner.AsBool());
      return Scalar::Bool(!b);
    }
    case Node::Op::kNeg: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      if (inner.kind == Scalar::K::kInt) return Scalar::Int(-inner.i);
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(-d);
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs_val, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(bool lhs, lhs_val.AsBool());
      if (n.op == Node::Op::kAnd && !lhs) return Scalar::Bool(false);
      if (n.op == Node::Op::kOr && lhs) return Scalar::Bool(true);
      HYPER_ASSIGN_OR_RETURN(Scalar rhs_val, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(bool rhs, rhs_val.AsBool());
      return Scalar::Bool(rhs);
    }
    case Node::Op::kCompare: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], row));
      if (n.cmp == BinaryOp::kEq) return Scalar::Bool(lhs.Equals(rhs));
      if (n.cmp == BinaryOp::kNe) return Scalar::Bool(!lhs.Equals(rhs));
      HYPER_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (n.cmp) {
        case BinaryOp::kLt: return Scalar::Bool(cmp < 0);
        case BinaryOp::kLe: return Scalar::Bool(cmp <= 0);
        case BinaryOp::kGt: return Scalar::Bool(cmp > 0);
        case BinaryOp::kGe: return Scalar::Bool(cmp >= 0);
        default: return Status::Internal("unhandled comparison");
      }
    }
    case Node::Op::kArith: {
      HYPER_ASSIGN_OR_RETURN(Scalar lhs, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar rhs, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      const bool both_int =
          lhs.kind == Scalar::K::kInt && rhs.kind == Scalar::K::kInt;
      switch (n.cmp) {
        case BinaryOp::kAdd:
          return both_int ? Scalar::Int(lhs.i + rhs.i) : Scalar::Double(a + b);
        case BinaryOp::kSub:
          return both_int ? Scalar::Int(lhs.i - rhs.i) : Scalar::Double(a - b);
        case BinaryOp::kMul:
          return both_int ? Scalar::Int(lhs.i * rhs.i) : Scalar::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return Scalar::Double(a / b);
        default:
          return Status::Internal("unhandled binary operator");
      }
    }
    case Node::Op::kInList: {
      HYPER_ASSIGN_OR_RETURN(Scalar needle, EvalNode(n.children[0], row));
      for (size_t c = 1; c < n.children.size(); ++c) {
        HYPER_ASSIGN_OR_RETURN(Scalar item, EvalNode(n.children[c], row));
        if (needle.Equals(item)) return Scalar::Bool(true);
      }
      return Scalar::Bool(false);
    }
    case Node::Op::kAbs: {
      HYPER_ASSIGN_OR_RETURN(Scalar inner, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(double d, inner.AsDouble());
      return Scalar::Double(std::fabs(d));
    }
    case Node::Op::kL1: {
      HYPER_ASSIGN_OR_RETURN(Scalar a, EvalNode(n.children[0], row));
      HYPER_ASSIGN_OR_RETURN(Scalar b, EvalNode(n.children[1], row));
      HYPER_ASSIGN_OR_RETURN(double da, a.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double db, b.AsDouble());
      return Scalar::Double(std::fabs(da - db));
    }
  }
  return Status::Internal("unhandled compiled node");
}

Result<bool> ColumnBoundExpr::EvalBool(size_t row) const {
  HYPER_ASSIGN_OR_RETURN(Scalar v, Eval(row));
  return v.AsBool();
}

// ---------------------------------------------------------------------------
// Vectorized mask kernel
//
// Split into a row-independent eligibility walk (MaskEligible) and a range
// runner (MaskRun) so large tables shard the run per ColumnTable segment:
// every kernel is element-wise, so the mask is bit-identical at any thread
// count, SIMD level, and range decomposition. Eligibility failing is the
// complete set of per-row error sources, so an eligible tree's EvalBool
// succeeds on every row — callers rely on that (e.g. tri-state caches).
// ---------------------------------------------------------------------------

namespace {

/// Conversion chunk: big enough to amortize dispatch, small enough that the
/// double scratch stays in L1/L2.
constexpr size_t kNumChunk = 4096;

bool SimdCmpOf(BinaryOp op, simd::Cmp* out) {
  switch (op) {
    case BinaryOp::kEq: *out = simd::Cmp::kEq; return true;
    case BinaryOp::kNe: *out = simd::Cmp::kNe; return true;
    case BinaryOp::kLt: *out = simd::Cmp::kLt; return true;
    case BinaryOp::kLe: *out = simd::Cmp::kLe; return true;
    case BinaryOp::kGt: *out = simd::Cmp::kGt; return true;
    case BinaryOp::kGe: *out = simd::Cmp::kGe; return true;
    default: return false;
  }
}

/// Numeric image of rows [begin, begin + len) of a null-free numeric
/// column — exactly Scalar::AsDouble per element.
void ToF64Span(const Column& col, size_t begin, size_t len, double* out) {
  switch (col.kind) {
    case ColumnKind::kInt64:
      simd::I64ToF64(col.i64.data() + begin, len, out);
      break;
    case ColumnKind::kDouble:
      std::memcpy(out, col.f64.data() + begin, len * sizeof(double));
      break;
    case ColumnKind::kBool:
      simd::U8ToF64(col.b8.data() + begin, len, out);
      break;
    case ColumnKind::kCode:
      break;  // excluded by eligibility
  }
}

/// Chunked column-vs-constant comparison through the double image (an int64
/// column against a fractional or out-of-range literal must compare as
/// doubles, exactly like the scalar path).
void CmpNumericConst(const Column& col, size_t begin, size_t len, double c,
                     simd::Cmp op, uint8_t* out) {
  if (col.kind == ColumnKind::kDouble) {
    simd::CmpF64Const(col.f64.data() + begin, len, c, op, out);
    return;
  }
  double buf[kNumChunk];
  for (size_t off = 0; off < len; off += kNumChunk) {
    const size_t m = std::min(kNumChunk, len - off);
    ToF64Span(col, begin + off, m, buf);
    simd::CmpF64Const(buf, m, c, op, out + off);
  }
}

}  // namespace

bool ColumnBoundExpr::MaskEligible(uint32_t idx) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];

  // A column reference is kernel-eligible when it reads the pre image
  // directly: no NULLs, no post override.
  auto eligible_col = [&](uint32_t node_idx) -> const Column* {
    const Node& cn = nodes_[node_idx];
    if (cn.op != Node::Op::kColumnRef) return nullptr;
    if (bound_[node_idx].override_ != nullptr) return nullptr;
    const Column* col = bound_[node_idx].column;
    if (col->has_nulls()) return nullptr;
    return col;
  };

  switch (n.op) {
    case Node::Op::kLiteral:
      return n.literal.AsBool().ok();
    case Node::Op::kColumnRef: {
      const Column* col = eligible_col(idx);
      return col != nullptr && col->kind != ColumnKind::kCode;
    }
    case Node::Op::kNot:
      return MaskEligible(n.children[0]);
    case Node::Op::kAnd:
    case Node::Op::kOr:
      return MaskEligible(n.children[0]) && MaskEligible(n.children[1]);
    case Node::Op::kCompare: {
      const uint32_t li = n.children[0], ri = n.children[1];
      const Column* lcol = eligible_col(li);
      const Column* rcol = eligible_col(ri);
      const bool eq_ne = n.cmp == BinaryOp::kEq || n.cmp == BinaryOp::kNe;

      if (lcol != nullptr && rcol != nullptr) {
        if (lcol->kind == ColumnKind::kCode ||
            rcol->kind == ColumnKind::kCode) {
          // Same-dictionary code equality; ordered comparisons need strings.
          return lcol->kind == rcol->kind && eq_ne;
        }
        return true;
      }
      const Column* col = lcol != nullptr ? lcol : rcol;
      const Node* lit = lcol != nullptr ? &nodes_[ri] : &nodes_[li];
      if (col == nullptr || lit->op != Node::Op::kLiteral) return false;
      const Value& lv = lit->literal;
      if (lv.is_null()) return false;  // NULL ordering: leave to fallback
      if (col->kind == ColumnKind::kCode) {
        // String literal: code compare. Number literal: Equals is false
        // without error (constant fill); ordered comparisons error.
        return eq_ne;
      }
      if (lv.type() == ValueType::kString) return eq_ne;  // constant fill
      return true;
    }
    case Node::Op::kInList: {
      if (eligible_col(n.children[0]) == nullptr) return false;
      for (size_t c = 1; c < n.children.size(); ++c) {
        if (nodes_[n.children[c]].op != Node::Op::kLiteral) return false;
        if (nodes_[n.children[c]].literal.is_null()) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

void ColumnBoundExpr::MaskRun(uint32_t idx, size_t begin, size_t end,
                              uint8_t* out) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];
  const size_t len = end - begin;

  switch (n.op) {
    case Node::Op::kLiteral: {
      std::memset(out, *n.literal.AsBool() ? 1 : 0, len);
      return;
    }
    case Node::Op::kColumnRef: {
      const Column& col = *bound_[idx].column;
      if (col.kind == ColumnKind::kBool) {
        std::memcpy(out, col.b8.data() + begin, len);  // already 0/1
        return;
      }
      CmpNumericConst(col, begin, len, 0.0, simd::Cmp::kNe, out);
      return;
    }
    case Node::Op::kNot: {
      MaskRun(n.children[0], begin, end, out);
      simd::MaskNot(out, len, out);
      return;
    }
    case Node::Op::kAnd:
    case Node::Op::kOr: {
      // Eager evaluation is safe here: kernel-eligible subtrees cannot error,
      // so the mask matches the short-circuit semantics bit for bit.
      MaskRun(n.children[0], begin, end, out);
      std::vector<uint8_t> rhs(len);
      MaskRun(n.children[1], begin, end, rhs.data());
      if (n.op == Node::Op::kAnd) {
        simd::MaskAnd(out, rhs.data(), len, out);
      } else {
        simd::MaskOr(out, rhs.data(), len, out);
      }
      return;
    }
    case Node::Op::kCompare: {
      const uint32_t li = n.children[0], ri = n.children[1];
      const Column* lcol = nodes_[li].op == Node::Op::kColumnRef
                               ? bound_[li].column
                               : nullptr;
      const Column* rcol = nodes_[ri].op == Node::Op::kColumnRef
                               ? bound_[ri].column
                               : nullptr;

      // column vs column.
      if (lcol != nullptr && rcol != nullptr) {
        if (lcol->kind == ColumnKind::kCode) {
          simd::CmpI32Cols(lcol->codes.data() + begin,
                           rcol->codes.data() + begin, len,
                           n.cmp == BinaryOp::kEq, out);
          return;
        }
        simd::Cmp op;
        SimdCmpOf(n.cmp, &op);
        if (lcol->kind == ColumnKind::kDouble &&
            rcol->kind == ColumnKind::kDouble) {
          simd::CmpF64Cols(lcol->f64.data() + begin, rcol->f64.data() + begin,
                           len, op, out);
          return;
        }
        double la[kNumChunk], ra[kNumChunk];
        for (size_t off = 0; off < len; off += kNumChunk) {
          const size_t m = std::min(kNumChunk, len - off);
          ToF64Span(*lcol, begin + off, m, la);
          ToF64Span(*rcol, begin + off, m, ra);
          simd::CmpF64Cols(la, ra, m, op, out + off);
        }
        return;
      }

      // column vs literal (either side).
      const Column* col = lcol != nullptr ? lcol : rcol;
      const uint32_t lit_idx = lcol != nullptr ? ri : li;
      const bool col_is_lhs = lcol != nullptr;
      const Value& lv = nodes_[lit_idx].literal;

      if (col->kind == ColumnKind::kCode) {
        if (lv.type() != ValueType::kString) {
          // Equals(string, number) is false without error.
          std::memset(out, n.cmp == BinaryOp::kNe ? 1 : 0, len);
          return;
        }
        simd::CmpI32Const(col->codes.data() + begin, len,
                          bound_[lit_idx].literal_code,
                          n.cmp == BinaryOp::kEq, out);
        return;
      }
      if (lv.type() == ValueType::kString) {
        std::memset(out, n.cmp == BinaryOp::kNe ? 1 : 0, len);
        return;
      }
      simd::Cmp op;
      SimdCmpOf(n.cmp, &op);
      if (!col_is_lhs) op = simd::Mirror(op);  // lit OP col == col ROP lit
      CmpNumericConst(*col, begin, len, lv.AsDouble().value(), op, out);
      return;
    }
    case Node::Op::kInList: {
      const Column& col = *bound_[n.children[0]].column;
      std::memset(out, 0, len);
      std::vector<uint8_t> tmp(len);
      if (col.kind == ColumnKind::kCode) {
        for (size_t c = 1; c < n.children.size(); ++c) {
          const Node& item = nodes_[n.children[c]];
          if (item.literal.type() != ValueType::kString) continue;  // never eq
          simd::CmpI32Const(col.codes.data() + begin, len,
                            bound_[n.children[c]].literal_code,
                            /*want_eq=*/true, tmp.data());
          simd::MaskOr(out, tmp.data(), len, out);
        }
        return;
      }
      for (size_t c = 1; c < n.children.size(); ++c) {
        const Node& item = nodes_[n.children[c]];
        if (item.literal.type() == ValueType::kString) continue;  // never eq
        CmpNumericConst(col, begin, len, item.literal.AsDouble().value(),
                        simd::Cmp::kEq, tmp.data());
        simd::MaskOr(out, tmp.data(), len, out);
      }
      return;
    }
    default:
      return;  // unreachable on eligible trees
  }
}

bool ColumnBoundExpr::TryMaskKernel(std::vector<uint8_t>* mask) const {
  if (!MaskEligible(0)) return false;
  const size_t n = table_->num_rows();
  mask->assign(n, 0);
  if (n >= 2 * ColumnTable::kSegmentRows) {
    uint8_t* data = mask->data();
    ThreadPool::Shared().ParallelForRange(
        n, ColumnTable::kSegmentRows,
        [this, data](size_t begin, size_t end) {
          MaskRun(0, begin, end, data + begin);
        });
  } else {
    MaskRun(0, 0, n, mask->data());
  }
  return true;
}

Result<std::vector<uint8_t>> ColumnBoundExpr::EvalMask() const {
  std::vector<uint8_t> mask;
  if (TryMaskKernel(&mask)) return mask;
  const size_t n = table_->num_rows();
  mask.assign(n, 0);
  for (size_t r = 0; r < n; ++r) {
    HYPER_ASSIGN_OR_RETURN(bool b, EvalBool(r));
    mask[r] = b ? 1 : 0;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// Vectorized numeric kernel
// ---------------------------------------------------------------------------

bool ColumnBoundExpr::NumEligible(uint32_t idx) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Node::Op::kLiteral:
      switch (n.literal.type()) {
        case ValueType::kBool:
        case ValueType::kInt:
        case ValueType::kDouble:
          return true;
        default:
          return false;  // NULL / string literals error through AsDouble
      }
    case Node::Op::kColumnRef: {
      if (bound_[idx].override_ != nullptr) return false;
      const Column* col = bound_[idx].column;
      return !col->has_nulls() && col->kind != ColumnKind::kCode;
    }
    case Node::Op::kNeg:
    case Node::Op::kAbs:
      return NumEligible(n.children[0]);
    case Node::Op::kArith:
    case Node::Op::kL1:
      return NumEligible(n.children[0]) && NumEligible(n.children[1]);
    case Node::Op::kNot:
    case Node::Op::kAnd:
    case Node::Op::kOr:
    case Node::Op::kCompare:
    case Node::Op::kInList:
      // Boolean subtrees route through the mask kernel; Scalar::Bool widens
      // to 0.0/1.0 exactly like the mask bytes.
      return MaskEligible(idx);
  }
  return false;
}

ColumnBoundExpr::NumType ColumnBoundExpr::NumNodeType(uint32_t idx) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Node::Op::kLiteral:
      switch (n.literal.type()) {
        case ValueType::kInt: return NumType::kInt;
        case ValueType::kBool: return NumType::kBool;
        default: return NumType::kDouble;
      }
    case Node::Op::kColumnRef:
      switch (bound_[idx].column->kind) {
        case ColumnKind::kInt64: return NumType::kInt;
        case ColumnKind::kBool: return NumType::kBool;
        default: return NumType::kDouble;
      }
    case Node::Op::kNeg:
      // Scalar: Int stays Int, everything else widens to double.
      return NumNodeType(n.children[0]) == NumType::kInt ? NumType::kInt
                                                         : NumType::kDouble;
    case Node::Op::kArith:
      if (n.cmp == BinaryOp::kDiv) return NumType::kDouble;
      return NumNodeType(n.children[0]) == NumType::kInt &&
                     NumNodeType(n.children[1]) == NumType::kInt
                 ? NumType::kInt
                 : NumType::kDouble;
    case Node::Op::kNot:
    case Node::Op::kAnd:
    case Node::Op::kOr:
    case Node::Op::kCompare:
    case Node::Op::kInList:
      return NumType::kBool;
    default:
      return NumType::kDouble;  // kAbs / kL1
  }
}

void ColumnBoundExpr::EvalNumChunk(uint32_t idx, size_t begin, size_t len,
                                   std::vector<int64_t>* out_i,
                                   std::vector<double>* out_d,
                                   std::vector<uint8_t>* out_m,
                                   uint8_t* err) const {
  using Node = CompiledExpr::Node;
  const Node& n = nodes_[idx];
  const NumType t = NumNodeType(idx);

  // Double image of a child's chunk result (reuses its double buffer when
  // it already is one) — exactly Scalar::AsDouble element-wise.
  const auto as_f64 = [len](NumType ct, std::vector<int64_t>& ci,
                            std::vector<double>& cd,
                            std::vector<uint8_t>& cm) -> const double* {
    if (ct == NumType::kDouble) return cd.data();
    cd.resize(len);
    if (ct == NumType::kInt) {
      simd::I64ToF64(ci.data(), len, cd.data());
    } else {
      simd::U8ToF64(cm.data(), len, cd.data());
    }
    return cd.data();
  };

  switch (n.op) {
    case Node::Op::kLiteral:
      if (t == NumType::kInt) {
        out_i->assign(len, n.literal.int_value());
      } else if (t == NumType::kBool) {
        out_m->assign(len, n.literal.bool_value() ? 1 : 0);
      } else {
        out_d->assign(len, n.literal.double_value());
      }
      return;
    case Node::Op::kColumnRef: {
      const Column& col = *bound_[idx].column;
      if (t == NumType::kInt) {
        out_i->assign(col.i64.begin() + begin, col.i64.begin() + begin + len);
      } else if (t == NumType::kBool) {
        out_m->assign(col.b8.begin() + begin, col.b8.begin() + begin + len);
      } else {
        out_d->assign(col.f64.begin() + begin, col.f64.begin() + begin + len);
      }
      return;
    }
    case Node::Op::kNot:
    case Node::Op::kAnd:
    case Node::Op::kOr:
    case Node::Op::kCompare:
    case Node::Op::kInList:
      out_m->resize(len);
      MaskRun(idx, begin, begin + len, out_m->data());
      return;
    case Node::Op::kNeg: {
      std::vector<int64_t> ci;
      std::vector<double> cd;
      std::vector<uint8_t> cm;
      EvalNumChunk(n.children[0], begin, len, &ci, &cd, &cm, err);
      if (t == NumType::kInt) {
        out_i->resize(len);
        for (size_t k = 0; k < len; ++k) (*out_i)[k] = -ci[k];
        return;
      }
      const double* c = as_f64(NumNodeType(n.children[0]), ci, cd, cm);
      out_d->resize(len);
      for (size_t k = 0; k < len; ++k) (*out_d)[k] = -c[k];
      return;
    }
    case Node::Op::kAbs: {
      std::vector<int64_t> ci;
      std::vector<double> cd;
      std::vector<uint8_t> cm;
      EvalNumChunk(n.children[0], begin, len, &ci, &cd, &cm, err);
      const double* c = as_f64(NumNodeType(n.children[0]), ci, cd, cm);
      out_d->resize(len);
      for (size_t k = 0; k < len; ++k) (*out_d)[k] = std::fabs(c[k]);
      return;
    }
    case Node::Op::kL1: {
      std::vector<int64_t> li, ri;
      std::vector<double> ld, rd;
      std::vector<uint8_t> lm, rm;
      EvalNumChunk(n.children[0], begin, len, &li, &ld, &lm, err);
      EvalNumChunk(n.children[1], begin, len, &ri, &rd, &rm, err);
      const double* a = as_f64(NumNodeType(n.children[0]), li, ld, lm);
      const double* b = as_f64(NumNodeType(n.children[1]), ri, rd, rm);
      out_d->resize(len);
      for (size_t k = 0; k < len; ++k) (*out_d)[k] = std::fabs(a[k] - b[k]);
      return;
    }
    case Node::Op::kArith: {
      std::vector<int64_t> li, ri;
      std::vector<double> ld, rd;
      std::vector<uint8_t> lm, rm;
      EvalNumChunk(n.children[0], begin, len, &li, &ld, &lm, err);
      EvalNumChunk(n.children[1], begin, len, &ri, &rd, &rm, err);
      if (t == NumType::kInt) {
        // Both children are int chunks: exactly the Scalar::Int arithmetic
        // (int64 wraparound and all), then the caller widens once.
        out_i->resize(len);
        switch (n.cmp) {
          case BinaryOp::kAdd:
            for (size_t k = 0; k < len; ++k) (*out_i)[k] = li[k] + ri[k];
            break;
          case BinaryOp::kSub:
            for (size_t k = 0; k < len; ++k) (*out_i)[k] = li[k] - ri[k];
            break;
          default:  // kMul (kDiv is never kInt)
            for (size_t k = 0; k < len; ++k) (*out_i)[k] = li[k] * ri[k];
            break;
        }
        return;
      }
      const double* a = as_f64(NumNodeType(n.children[0]), li, ld, lm);
      const double* b = as_f64(NumNodeType(n.children[1]), ri, rd, rm);
      out_d->resize(len);
      switch (n.cmp) {
        case BinaryOp::kAdd:
          for (size_t k = 0; k < len; ++k) (*out_d)[k] = a[k] + b[k];
          break;
        case BinaryOp::kSub:
          for (size_t k = 0; k < len; ++k) (*out_d)[k] = a[k] - b[k];
          break;
        case BinaryOp::kMul:
          for (size_t k = 0; k < len; ++k) (*out_d)[k] = a[k] * b[k];
          break;
        case BinaryOp::kDiv:
          // "division by zero" is the only per-row error an eligible tree
          // can hit; rows already errored upstream stay errored (err is
          // sticky) and their garbage values are never read.
          for (size_t k = 0; k < len; ++k) {
            err[k] |= (b[k] == 0.0);
            (*out_d)[k] = a[k] / b[k];
          }
          break;
        default:
          break;
      }
      return;
    }
    default:
      return;  // unreachable on eligible trees
  }
}

bool ColumnBoundExpr::TryEvalDoubleKernel(std::vector<double>* out,
                                          std::vector<uint8_t>* err) const {
  if (!NumEligible(0)) return false;
  const size_t n = table_->num_rows();
  out->assign(n, 0.0);
  err->assign(n, 0);
  const NumType root_t = NumNodeType(0);
  double* out_data = out->data();
  uint8_t* err_data = err->data();
  const auto run = [this, root_t, out_data, err_data](size_t begin,
                                                      size_t end) {
    std::vector<int64_t> bi;
    std::vector<double> bd;
    std::vector<uint8_t> bm;
    for (size_t off = begin; off < end; off += kNumChunk) {
      const size_t len = std::min(kNumChunk, end - off);
      EvalNumChunk(0, off, len, &bi, &bd, &bm, err_data + off);
      double* dst = out_data + off;
      if (root_t == NumType::kInt) {
        simd::I64ToF64(bi.data(), len, dst);
      } else if (root_t == NumType::kBool) {
        simd::U8ToF64(bm.data(), len, dst);
      } else {
        std::memcpy(dst, bd.data(), len * sizeof(double));
      }
      const uint8_t* e = err_data + off;
      for (size_t k = 0; k < len; ++k) {
        if (e[k]) dst[k] = 0.0;  // defined value on errored rows
      }
    }
  };
  if (n >= 2 * ColumnTable::kSegmentRows) {
    ThreadPool::Shared().ParallelForRange(n, ColumnTable::kSegmentRows, run);
  } else {
    run(0, n);
  }
  return true;
}

Result<std::vector<uint8_t>> EvalPredicateMask(const sql::Expr* pred,
                                               const ColumnTable& table) {
  if (pred == nullptr) {
    return std::vector<uint8_t>(table.num_rows(), 1);
  }
  std::vector<ScopedTuple> scope{
      ScopedTuple{table.schema().relation_name(), &table.schema()}};
  HYPER_ASSIGN_OR_RETURN(CompiledExpr compiled,
                         CompiledExpr::Compile(*pred, scope));
  HYPER_ASSIGN_OR_RETURN(ColumnBoundExpr bound,
                         ColumnBoundExpr::Bind(compiled, table));
  return bound.EvalMask();
}

}  // namespace hyper::relational
