#ifndef HYPER_RELATIONAL_EVAL_H_
#define HYPER_RELATIONAL_EVAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace hyper::relational {

/// One named tuple visible to an expression: `alias` (or relation name) plus
/// the schema and the row values. `post_row`, when present, carries the
/// hypothetical post-update image of the same tuple so `Post(...)` can be
/// evaluated; `Pre(...)` and bare references read `row`.
struct BoundTuple {
  std::string alias;
  const Schema* schema = nullptr;
  const Row* row = nullptr;
  const Row* post_row = nullptr;  // nullable: Post() unavailable when null
};

/// Evaluation environment: the set of tuples in scope.
class Env {
 public:
  Env() = default;

  void Bind(std::string alias, const Schema* schema, const Row* row,
            const Row* post_row = nullptr) {
    tuples_.push_back(BoundTuple{std::move(alias), schema, row, post_row});
  }

  /// Resolves `qualifier.name` (or unqualified `name`, which must be unique
  /// across bound tuples). `want_post` selects the post-update image.
  Result<Value> Lookup(const std::string& qualifier, const std::string& name,
                       bool want_post) const;

  const std::vector<BoundTuple>& tuples() const { return tuples_; }

 private:
  std::vector<BoundTuple> tuples_;
};

/// Evaluates a scalar expression. `post_mode` is the ambient Pre/Post state:
/// bare column references read the pre image by default; inside `Post(...)`
/// they read the post image. Aggregate calls are not valid here (they are
/// handled by the select executor / what-if engine); hitting one is an error.
Result<Value> EvalExpr(const sql::Expr& expr, const Env& env,
                       bool post_mode = false);

/// Evaluates a predicate to a boolean.
Result<bool> EvalPredicate(const sql::Expr& expr, const Env& env,
                           bool post_mode = false);

}  // namespace hyper::relational

#endif  // HYPER_RELATIONAL_EVAL_H_
