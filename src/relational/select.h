#ifndef HYPER_RELATIONAL_SELECT_H_
#define HYPER_RELATIONAL_SELECT_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace hyper::relational {

/// Executes the SQL subset allowed inside the Use operator:
/// SELECT (columns and SUM/AVG/COUNT aggregates, with aliases)
/// FROM one or more relations (aliased), WHERE any predicate (equi-join
/// conditions are executed as hash joins), GROUP BY expressions.
///
/// Output column naming: the alias when given, else the referenced column
/// name, else "col<i>". `view_name` names the produced relation (defaults
/// to "View"). Aggregates over empty groups yield NULL (AVG) or 0 (SUM,
/// COUNT).
Result<Table> ExecuteSelect(const Database& db, const sql::SelectStmt& stmt,
                            const std::string& view_name = "View");

}  // namespace hyper::relational

#endif  // HYPER_RELATIONAL_SELECT_H_
