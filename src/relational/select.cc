#include "relational/select.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"
#include "relational/compiled.h"
#include "relational/eval.h"

namespace hyper::relational {

using sql::AggKind;
using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStmt;

namespace {

struct Source {
  std::string alias;
  const Table* table = nullptr;
};

/// A joined tuple: row index per source (aligned with the sources vector).
using JoinedTuple = std::vector<size_t>;

struct ResolvedColumn {
  size_t source = 0;
  size_t attr = 0;
};

Result<ResolvedColumn> ResolveColumn(const std::vector<Source>& sources,
                                     const std::string& qualifier,
                                     const std::string& name) {
  const Source* found_source = nullptr;
  ResolvedColumn out;
  for (size_t s = 0; s < sources.size(); ++s) {
    if (!qualifier.empty() && !EqualsIgnoreCase(sources[s].alias, qualifier)) {
      continue;
    }
    const Schema& schema = sources[s].table->schema();
    if (!schema.Contains(name)) continue;
    if (found_source != nullptr) {
      return Status::InvalidArgument("ambiguous column '" + name + "'");
    }
    found_source = &sources[s];
    out.source = s;
    out.attr = schema.IndexOf(name).value();
  }
  if (found_source == nullptr) {
    return Status::NotFound(
        "unresolved column '" +
        (qualifier.empty() ? name : qualifier + "." + name) + "'");
  }
  return out;
}

/// An equi-join conjunct `a.X = b.Y` between two distinct sources.
struct JoinCondition {
  ResolvedColumn lhs;
  ResolvedColumn rhs;
};

std::vector<ScopedTuple> MakeScope(const std::vector<Source>& sources) {
  std::vector<ScopedTuple> scope;
  scope.reserve(sources.size());
  for (const Source& s : sources) {
    scope.push_back(ScopedTuple{s.alias, &s.table->schema()});
  }
  return scope;
}

/// Fills the per-slot row frame for one joined tuple (no post images in the
/// select executor).
void FillFrame(const std::vector<Source>& sources, const JoinedTuple& tuple,
               std::vector<BoundRow>* frame) {
  for (size_t s = 0; s < sources.size(); ++s) {
    (*frame)[s].pre = &sources[s].table->row(tuple[s]);
  }
}

/// Derives the output column name for a select item.
std::string ItemName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.agg != AggKind::kNone) {
    std::string base = AggKindName(item.agg);
    if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
      base += "_" + item.expr->name;
    }
    return base;
  }
  if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
    return item.expr->name;
  }
  return StrFormat("col%zu", index);
}

/// Accumulator for one aggregate select item within one group.
struct AggAccumulator {
  double sum = 0.0;
  size_t count = 0;      // rows contributing to sum (non-null)
  size_t count_rows = 0; // all rows (COUNT(*))

  /// `v` is the already-evaluated item expression (null pointer for
  /// COUNT(*) / '*' items, which have no expression).
  Status Add(const sql::SelectItem& item, const Value* vp) {
    ++count_rows;
    if (vp == nullptr) {
      return Status::OK();
    }
    const Value& v = *vp;
    if (v.is_null()) return Status::OK();
    if (item.agg == AggKind::kCount) {
      // COUNT over a boolean expression counts satisfying rows (the paper's
      // Count(Credit = 'Good') form); over non-boolean it counts non-NULLs.
      if (v.type() == ValueType::kBool) {
        if (v.bool_value()) ++count;
      } else {
        ++count;
      }
      return Status::OK();
    }
    HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
    sum += d;
    ++count;
    return Status::OK();
  }

  Value Finish(const sql::SelectItem& item) const {
    switch (item.agg) {
      case AggKind::kCount:
        if (item.expr == nullptr || item.expr->kind == ExprKind::kStar) {
          return Value::Int(static_cast<int64_t>(count_rows));
        }
        return Value::Int(static_cast<int64_t>(count));
      case AggKind::kSum:
        return Value::Double(sum);
      case AggKind::kAvg:
        return count == 0 ? Value::Null()
                          : Value::Double(sum / static_cast<double>(count));
      default:
        return Value::Null();
    }
  }
};

ValueType OutputTypeFor(const sql::SelectItem& item,
                        const std::vector<Source>& sources) {
  if (item.agg == AggKind::kCount) return ValueType::kInt;
  if (item.agg != AggKind::kNone) return ValueType::kDouble;
  if (item.expr->kind == ExprKind::kColumnRef) {
    auto resolved = ResolveColumn(sources, item.expr->qualifier, item.expr->name);
    if (resolved.ok()) {
      return sources[resolved->source]
          .table->schema()
          .attribute(resolved->attr)
          .type;
    }
  }
  return ValueType::kDouble;
}

Mutability OutputMutabilityFor(const sql::SelectItem& item,
                               const std::vector<Source>& sources) {
  if (item.agg != AggKind::kNone) return Mutability::kMutable;
  if (item.expr->kind == ExprKind::kColumnRef) {
    auto resolved = ResolveColumn(sources, item.expr->qualifier, item.expr->name);
    if (resolved.ok()) {
      return sources[resolved->source]
          .table->schema()
          .attribute(resolved->attr)
          .mutability;
    }
  }
  return Mutability::kMutable;
}

}  // namespace

Result<Table> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                            const std::string& view_name) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("select requires a From clause");
  }

  // Resolve sources.
  std::vector<Source> sources;
  for (const sql::TableRef& ref : stmt.from) {
    HYPER_ASSIGN_OR_RETURN(const Table* table, db.GetTable(ref.table));
    sources.push_back(
        Source{ref.alias.empty() ? ref.table : ref.alias, table});
  }

  // Classify where-conjuncts into hash-joinable equi-joins and residuals.
  std::vector<JoinCondition> join_conditions;
  std::vector<sql::ExprPtr> residual;
  if (stmt.where != nullptr) {
    for (sql::ExprPtr& term : sql::SplitConjunction(*stmt.where)) {
      bool is_join = false;
      if (term->kind == ExprKind::kBinary && term->op == BinaryOp::kEq &&
          term->children[0]->kind == ExprKind::kColumnRef &&
          term->children[1]->kind == ExprKind::kColumnRef) {
        auto lhs = ResolveColumn(sources, term->children[0]->qualifier,
                                 term->children[0]->name);
        auto rhs = ResolveColumn(sources, term->children[1]->qualifier,
                                 term->children[1]->name);
        if (lhs.ok() && rhs.ok() && lhs->source != rhs->source) {
          join_conditions.push_back(JoinCondition{*lhs, *rhs});
          is_join = true;
        }
      }
      if (!is_join) residual.push_back(std::move(term));
    }
  }

  // Left-deep join pipeline. `joined[k]` holds row ids for sources[0..k].
  std::vector<JoinedTuple> current;
  current.reserve(sources[0].table->num_rows());
  for (size_t r = 0; r < sources[0].table->num_rows(); ++r) {
    current.push_back({r});
  }

  std::vector<bool> condition_used(join_conditions.size(), false);
  for (size_t next = 1; next < sources.size(); ++next) {
    // Find a join condition connecting `next` to an already-joined source.
    int use_idx = -1;
    for (size_t c = 0; c < join_conditions.size(); ++c) {
      if (condition_used[c]) continue;
      const JoinCondition& jc = join_conditions[c];
      const bool connects =
          (jc.lhs.source == next && jc.rhs.source < next) ||
          (jc.rhs.source == next && jc.lhs.source < next);
      if (connects) {
        use_idx = static_cast<int>(c);
        break;
      }
    }

    std::vector<JoinedTuple> merged;
    const Table& next_table = *sources[next].table;
    if (use_idx >= 0) {
      condition_used[use_idx] = true;
      const JoinCondition& jc = join_conditions[use_idx];
      const ResolvedColumn& probe_col =
          jc.lhs.source == next ? jc.rhs : jc.lhs;
      const ResolvedColumn& build_col =
          jc.lhs.source == next ? jc.lhs : jc.rhs;
      // Build a hash table on the new source.
      std::unordered_multimap<size_t, size_t> hash;
      hash.reserve(next_table.num_rows());
      for (size_t r = 0; r < next_table.num_rows(); ++r) {
        hash.emplace(next_table.At(r, build_col.attr).Hash(), r);
      }
      for (const JoinedTuple& tuple : current) {
        const Value& probe =
            sources[probe_col.source].table->At(tuple[probe_col.source],
                                                probe_col.attr);
        auto [begin, end] = hash.equal_range(probe.Hash());
        for (auto it = begin; it != end; ++it) {
          if (!next_table.At(it->second, build_col.attr).Equals(probe)) {
            continue;  // hash collision
          }
          JoinedTuple extended = tuple;
          extended.push_back(it->second);
          merged.push_back(std::move(extended));
        }
      }
    } else {
      // No equi-join condition: cartesian product.
      merged.reserve(current.size() * next_table.num_rows());
      for (const JoinedTuple& tuple : current) {
        for (size_t r = 0; r < next_table.num_rows(); ++r) {
          JoinedTuple extended = tuple;
          extended.push_back(r);
          merged.push_back(std::move(extended));
        }
      }
    }
    current = std::move(merged);
  }

  // Any join conditions not consumed by the pipeline become residual filters.
  for (size_t c = 0; c < join_conditions.size(); ++c) {
    if (condition_used[c]) continue;
    const JoinCondition& jc = join_conditions[c];
    std::vector<JoinedTuple> kept;
    for (JoinedTuple& tuple : current) {
      const Value& a =
          sources[jc.lhs.source].table->At(tuple[jc.lhs.source], jc.lhs.attr);
      const Value& b =
          sources[jc.rhs.source].table->At(tuple[jc.rhs.source], jc.rhs.attr);
      if (a.Equals(b)) kept.push_back(std::move(tuple));
    }
    current = std::move(kept);
  }

  // Residual predicates, compiled once: references resolve to (slot, attr)
  // here instead of by name per row.
  const std::vector<ScopedTuple> scope = MakeScope(sources);
  std::vector<BoundRow> frame(sources.size());
  for (const sql::ExprPtr& pred : residual) {
    HYPER_ASSIGN_OR_RETURN(CompiledExpr compiled,
                           CompiledExpr::Compile(*pred, scope));
    std::vector<JoinedTuple> kept;
    for (JoinedTuple& tuple : current) {
      FillFrame(sources, tuple, &frame);
      HYPER_ASSIGN_OR_RETURN(bool pass, compiled.EvalRowBool(frame.data()));
      if (pass) kept.push_back(std::move(tuple));
    }
    current = std::move(kept);
  }

  // Output schema. Derived names that collide get a positional suffix.
  std::vector<AttributeDef> out_attrs;
  std::unordered_map<std::string, size_t> name_counts;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    AttributeDef def;
    def.name = ItemName(stmt.items[i], i);
    if (name_counts[def.name]++ > 0) {
      def.name += StrFormat("_%zu", i);
    }
    def.type = OutputTypeFor(stmt.items[i], sources);
    def.mutability = OutputMutabilityFor(stmt.items[i], sources);
    out_attrs.push_back(std::move(def));
  }
  Table out(Schema(view_name, std::move(out_attrs), /*key=*/{}));

  const bool has_aggregates = [&] {
    for (const auto& item : stmt.items) {
      if (item.agg != AggKind::kNone) return true;
    }
    return false;
  }();

  // Select-item and group-key expressions, compiled once. '*' items carry
  // no expression.
  std::vector<std::optional<CompiledExpr>> item_exprs(stmt.items.size());
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const auto& item = stmt.items[i];
    if (item.expr == nullptr || item.expr->kind == ExprKind::kStar) continue;
    HYPER_ASSIGN_OR_RETURN(CompiledExpr compiled,
                           CompiledExpr::Compile(*item.expr, scope));
    item_exprs[i] = std::move(compiled);
  }

  if (!has_aggregates && stmt.group_by.empty()) {
    // Plain projection.
    for (const JoinedTuple& tuple : current) {
      FillFrame(sources, tuple, &frame);
      Row row;
      row.reserve(stmt.items.size());
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!item_exprs[i].has_value()) {
          return Status::InvalidArgument("'*' is only valid inside Count(*)");
        }
        HYPER_ASSIGN_OR_RETURN(Value v,
                               item_exprs[i]->EvalRowValue(frame.data()));
        row.push_back(std::move(v));
      }
      HYPER_RETURN_NOT_OK(out.Append(std::move(row)));
    }
    return out;
  }

  // Grouped (or single-group) aggregation.
  struct Group {
    Row representative;  // select-item values taken from the first row
    std::vector<AggAccumulator> accumulators;
  };
  std::unordered_map<std::vector<Value>, Group, ValueVectorHash, ValueVectorEq>
      groups;
  std::vector<std::vector<Value>> group_order;

  std::vector<CompiledExpr> group_exprs;
  group_exprs.reserve(stmt.group_by.size());
  for (const auto& g : stmt.group_by) {
    HYPER_ASSIGN_OR_RETURN(CompiledExpr compiled,
                           CompiledExpr::Compile(*g, scope));
    group_exprs.push_back(std::move(compiled));
  }

  std::vector<Value> key;
  for (const JoinedTuple& tuple : current) {
    FillFrame(sources, tuple, &frame);
    key.clear();
    key.reserve(group_exprs.size());
    for (const CompiledExpr& g : group_exprs) {
      HYPER_ASSIGN_OR_RETURN(Value v, g.EvalRowValue(frame.data()));
      key.push_back(std::move(v));
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group group;
      group.accumulators.resize(stmt.items.size());
      group.representative.resize(stmt.items.size());
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].agg == AggKind::kNone) {
          if (!item_exprs[i].has_value()) {
            return Status::InvalidArgument(
                "'*' is only valid inside Count(*)");
          }
          HYPER_ASSIGN_OR_RETURN(Value v,
                                 item_exprs[i]->EvalRowValue(frame.data()));
          group.representative[i] = std::move(v);
        }
      }
      it = groups.emplace(key, std::move(group)).first;
      group_order.push_back(key);
    }
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (stmt.items[i].agg != AggKind::kNone) {
        const Value* vp = nullptr;
        Value v;
        if (item_exprs[i].has_value()) {
          HYPER_ASSIGN_OR_RETURN(v, item_exprs[i]->EvalRowValue(frame.data()));
          vp = &v;
        }
        HYPER_RETURN_NOT_OK(it->second.accumulators[i].Add(stmt.items[i], vp));
      }
    }
  }

  if (groups.empty() && stmt.group_by.empty()) {
    // Aggregates over an empty input produce one row of neutral values.
    Row row;
    for (const auto& item : stmt.items) {
      AggAccumulator empty;
      row.push_back(empty.Finish(item));
    }
    HYPER_RETURN_NOT_OK(out.Append(std::move(row)));
    return out;
  }

  for (const std::vector<Value>& key : group_order) {
    const Group& group = groups.at(key);
    Row row;
    row.reserve(stmt.items.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (stmt.items[i].agg == AggKind::kNone) {
        row.push_back(group.representative[i]);
      } else {
        row.push_back(group.accumulators[i].Finish(stmt.items[i]));
      }
    }
    HYPER_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  return out;
}

}  // namespace hyper::relational
