#ifndef HYPER_PROB_AGGREGATES_H_
#define HYPER_PROB_AGGREGATES_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace hyper::prob {

/// Accumulates a decomposable aggregate (Definition 6) across blocks.
///
/// Every aggregate HypeR supports decomposes as
///     aggr(D) = g({f'(D_i)})           with g = Sum,
/// where f'(D_i) is a per-block partial:
///   Count: partial = expected number of qualifying tuples in the block
///   Sum:   partial = expected sum of Y over qualifying tuples
///   Avg:   tracked as a (numerator, denominator) pair and finished as
///          numerator / denominator. With no post-update conditions in For,
///          the denominator is the deterministic count of qualifying tuples
///          (the paper's 1/|D| decomposition in Example 8); with post-update
///          conditions it is the expected qualifying count, making Avg a
///          ratio of expectations (documented deviation, DESIGN.md §5).
///
/// The combination properties of Definition 6 (alpha-homogeneity and
/// additivity of g) hold because g is Sum; tests exercise them directly.
class BlockAccumulator {
 public:
  explicit BlockAccumulator(sql::AggKind agg) : agg_(agg) {}

  /// Starts a new block partial.
  void BeginBlock();

  /// Adds one tuple's contribution to the current block:
  ///   `weight`         — the tuple's qualification probability
  ///                      Pr(mu_For,Post | mu_For,Pre) (1.0/0.0 when
  ///                      deterministic),
  ///   `weighted_value` — the expected *qualified* output contribution
  ///                      E[Y * 1{mu_For,Post}] (ignored for Count).
  /// Keeping the joint expectation (not value * weight) avoids dividing by
  /// near-zero qualification probabilities.
  void Add(double weight, double weighted_value);

  /// Closes the current block (applies f' and folds into g).
  void EndBlock();

  /// Final aggregate value over all blocks. NULL-like cases (Avg of an
  /// empty set) surface as an error.
  Result<double> Finish() const;

  size_t num_blocks() const { return num_blocks_; }

  /// g-folded partials accumulated so far. A block evaluated in isolation
  /// (one BeginBlock/Add.../EndBlock round on its own accumulator) exposes
  /// exactly the f'(D_i) partial here.
  double numerator() const { return numerator_; }
  double denominator() const { return denominator_; }

  /// Folds a block partial computed elsewhere into g. Because g is Sum,
  /// evaluating blocks on separate accumulators (possibly on separate
  /// threads) and merging them *in block order* reproduces the sequential
  /// fold bit for bit.
  void MergeBlockPartial(double block_numerator, double block_denominator);

 private:
  sql::AggKind agg_;
  double numerator_ = 0.0;    // g-folded partial numerators
  double denominator_ = 0.0;  // g-folded partial denominators (Avg)
  double block_numerator_ = 0.0;
  double block_denominator_ = 0.0;
  size_t num_blocks_ = 0;
  bool in_block_ = false;
};

}  // namespace hyper::prob

#endif  // HYPER_PROB_AGGREGATES_H_
