#include "prob/aggregates.h"

#include "common/logging.h"

namespace hyper::prob {

void BlockAccumulator::BeginBlock() {
  HYPER_DCHECK(!in_block_);
  in_block_ = true;
  block_numerator_ = 0.0;
  block_denominator_ = 0.0;
}

void BlockAccumulator::Add(double weight, double weighted_value) {
  HYPER_DCHECK(in_block_);
  switch (agg_) {
    case sql::AggKind::kCount:
      block_numerator_ += weight;
      break;
    case sql::AggKind::kSum:
      block_numerator_ += weighted_value;
      break;
    case sql::AggKind::kAvg:
      block_numerator_ += weighted_value;
      block_denominator_ += weight;
      break;
    case sql::AggKind::kNone:
      break;
  }
}

void BlockAccumulator::EndBlock() {
  HYPER_DCHECK(in_block_);
  in_block_ = false;
  // g = Sum: fold the block partial into the global accumulators.
  numerator_ += block_numerator_;
  denominator_ += block_denominator_;
  ++num_blocks_;
}

void BlockAccumulator::MergeBlockPartial(double block_numerator,
                                         double block_denominator) {
  HYPER_DCHECK(!in_block_);
  numerator_ += block_numerator;
  denominator_ += block_denominator;
  ++num_blocks_;
}

Result<double> BlockAccumulator::Finish() const {
  HYPER_DCHECK(!in_block_);
  switch (agg_) {
    case sql::AggKind::kCount:
    case sql::AggKind::kSum:
      return numerator_;
    case sql::AggKind::kAvg:
      if (denominator_ <= 0.0) {
        return Status::InvalidArgument(
            "Avg over an empty (or zero-probability) qualifying set");
      }
      return numerator_ / denominator_;
    case sql::AggKind::kNone:
      break;
  }
  return Status::InvalidArgument("unsupported aggregate");
}

}  // namespace hyper::prob
