#include "storage/value.h"

#include <cmath>

#include "common/strings.h"

namespace hyper {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "UNKNOWN";
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kBool: return bool_value() ? 1.0 : 0.0;
    case ValueType::kInt: return static_cast<double>(int_value());
    case ValueType::kDouble: return double_value();
    case ValueType::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a number");
    case ValueType::kString:
      return Status::InvalidArgument("cannot coerce string '" +
                                     string_value() + "' to a number");
  }
  return Status::Internal("unreachable");
}

Result<bool> Value::AsBool() const {
  switch (type()) {
    case ValueType::kBool: return bool_value();
    case ValueType::kInt: return int_value() != 0;
    case ValueType::kDouble: return double_value() != 0.0;
    case ValueType::kNull:
      return Status::InvalidArgument("cannot coerce NULL to a boolean");
    case ValueType::kString:
      return Status::InvalidArgument("cannot coerce string '" +
                                     string_value() + "' to a boolean");
  }
  return Status::Internal("unreachable");
}

bool Value::Equals(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return a == b;
  }
  if (a == ValueType::kString || b == ValueType::kString) {
    return a == b && string_value() == other.string_value();
  }
  // Both numeric-ish: compare as doubles.
  return AsDouble().value() == other.AsDouble().value();
}

Result<int> Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (a == ValueType::kNull && b == ValueType::kNull) return 0;
  if (a == ValueType::kNull) return -1;
  if (b == ValueType::kNull) return 1;
  if (a == ValueType::kString && b == ValueType::kString) {
    const int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a == ValueType::kString || b == ValueType::kString) {
    return Status::InvalidArgument(
        "cannot compare " + std::string(ValueTypeName(a)) + " with " +
        std::string(ValueTypeName(b)));
  }
  const double x = AsDouble().value();
  const double y = other.AsDouble().value();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kString:
      return std::hash<std::string>()(string_value());
    default: {
      // Hash numerics by their double image so Equals-equal values collide.
      const double d = AsDouble().value();
      if (d == 0.0) return 0;  // +0.0 and -0.0 compare equal.
      return std::hash<double>()(d);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return bool_value() ? "TRUE" : "FALSE";
    case ValueType::kInt: return std::to_string(int_value());
    case ValueType::kDouble: {
      std::string s = StrFormat("%.6g", double_value());
      return s;
    }
    case ValueType::kString: return "'" + string_value() + "'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace hyper
