#include "storage/table.h"

#include <sstream>

#include "common/strings.h"

namespace hyper {

namespace {

bool TypeAccepts(ValueType declared, ValueType actual) {
  if (actual == ValueType::kNull) return true;
  if (declared == actual) return true;
  // SQL-style widening: int literals land in double columns.
  if (declared == ValueType::kDouble && actual == ValueType::kInt) return true;
  if (declared == ValueType::kInt && actual == ValueType::kBool) return true;
  if (declared == ValueType::kDouble && actual == ValueType::kBool) return true;
  return false;
}

}  // namespace

Status Table::Append(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu of relation '%s'",
        row.size(), schema_.num_attributes(),
        schema_.relation_name().c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeAccepts(schema_.attribute(i).type, row[i].type())) {
      return Status::InvalidArgument(StrFormat(
          "value %s has type %s but attribute '%s' is declared %s",
          row[i].ToString().c_str(), ValueTypeName(row[i].type()),
          schema_.attribute(i).name.c_str(),
          ValueTypeName(schema_.attribute(i).type)));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::vector<Value>> Table::Column(const std::string& name) const {
  HYPER_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[idx]);
  return out;
}

Row Table::KeyOf(size_t tid) const {
  Row key;
  key.reserve(schema_.key_indices().size());
  for (size_t k : schema_.key_indices()) key.push_back(rows_[tid][k]);
  return key;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << num_rows() << " rows]\n";
  const size_t n = std::min(max_rows, num_rows());
  for (size_t t = 0; t < n; ++t) {
    os << "  #" << t << ": (";
    for (size_t i = 0; i < rows_[t].size(); ++i) {
      if (i > 0) os << ", ";
      os << rows_[t][i].ToString();
    }
    os << ")\n";
  }
  if (n < num_rows()) os << "  ... (" << (num_rows() - n) << " more)\n";
  return os.str();
}

}  // namespace hyper
