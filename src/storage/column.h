#ifndef HYPER_STORAGE_COLUMN_H_
#define HYPER_STORAGE_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hyper {

/// Sparse cell overrides for one table: attribute index -> row -> value.
/// Ordered maps keep patch application (and anything fingerprinting the
/// cells) deterministic. Structurally identical to the scenario-branch
/// delta maps, so branch overrides flow into ColumnTable::ApplyOverrides
/// without conversion.
using AttributeCellOverrides = std::map<size_t, Value>;
using TableCellOverrides = std::map<size_t, AttributeCellOverrides>;

/// Shared string interner: every distinct string is stored once and addressed
/// by a dense int32 code. Codes are assigned in first-intern order, so two
/// ColumnTables built over the same Dictionary agree on codes and equi-joins /
/// group-bys can hash 4-byte codes instead of strings. Code order is NOT
/// lexicographic — ordered comparisons must go through the strings.
class Dictionary {
 public:
  static constexpr int32_t kNullCode = -1;

  /// Returns the code of `s`, interning it first when absent.
  int32_t Intern(const std::string& s);

  /// Returns the code of `s`, or kNullCode when it was never interned.
  int32_t Find(const std::string& s) const;

  const std::string& at(int32_t code) const { return strings_[code]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

/// Physical representation of one column of a ColumnTable.
enum class ColumnKind {
  kInt64 = 0,  // data in i64
  kDouble,     // data in f64
  kBool,       // data in b8 (0/1)
  kCode,       // dictionary codes in codes (kNullCode for NULL)
};

const char* ColumnKindName(ColumnKind kind);

/// One typed column. Exactly one of the payload vectors is populated
/// (matching `kind`); `nulls` is empty when the column has no NULLs,
/// otherwise a parallel 0/1 mask.
struct Column {
  ColumnKind kind = ColumnKind::kDouble;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> b8;
  std::vector<int32_t> codes;
  std::vector<uint8_t> nulls;

  bool has_nulls() const { return !nulls.empty(); }
  bool is_null(size_t row) const { return !nulls.empty() && nulls[row] != 0; }
  size_t num_rows() const;
};

/// Column-major image of a Table: typed vectors per attribute with string
/// columns dictionary-encoded against a (shareable) interner.
///
/// ColumnTable is a read-optimized projection, not a second source of truth:
/// engines build one from the row store once per query and stream over the
/// typed vectors. The physical kind of each column is inferred from the
/// stored values (the row store is loosely typed); a column mixing ints and
/// doubles is promoted to kDouble, which preserves Equals/Compare/Hash
/// semantics for every value the generators produce (|int| < 2^53).
class ColumnTable {
 public:
  /// Builds the columnar image of `table`. `dict` may be shared across
  /// tables; when null a fresh dictionary is created. Errors when a column
  /// mixes strings with non-strings.
  static Result<ColumnTable> FromTable(
      const Table& table, std::shared_ptr<Dictionary> dict = nullptr);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& col(size_t attr) const { return columns_[attr]; }
  const Dictionary& dict() const { return *dict_; }
  const std::shared_ptr<Dictionary>& shared_dict() const { return dict_; }

  /// Reconstructs the Value at (row, attr). Mixed int/double columns come
  /// back as kDouble (Equals-compatible with the original ints).
  Value GetValue(size_t row, size_t attr) const;

  /// Numeric image of a column: bool -> 0/1, int -> double. Errors on kCode
  /// columns and on NULLs (same contract as Value::AsDouble).
  Result<std::vector<double>> ColumnAsDoubles(size_t attr) const;

  /// Materializes a row store with the same schema and Equals-equal values
  /// (used by tests and by callers that need the row API back).
  Table ToTable() const;

  /// Patches this image in place from sparse cell overrides (attribute ->
  /// row -> value), the delta-aware alternative to re-encoding a whole
  /// patched table through FromTable. Cells beyond the table shape are
  /// skipped (matching the scenario service's stale-override semantics).
  ///
  /// Every patched cell must fit the column's physical kind as inferred at
  /// build time — int into kInt64/kDouble, double into kDouble, bool into
  /// kBool, string into kCode, NULL anywhere; anything else (e.g. a double
  /// landing in an all-int column, which FromTable would have promoted to
  /// kDouble) returns FailedPrecondition, and the caller must rebuild from
  /// the table instead (only the dictionary may have grown). On OK the
  /// image is value-for-value (Equals) identical to FromTable over the
  /// patched rows; the physical kind may stay wider than a rebuild would
  /// infer (overrides erasing a column's only double keep it kDouble),
  /// which preserves Equals/Compare/Hash semantics per the mixed-column
  /// contract.
  ///
  /// A string override absent from the dictionary triggers a private copy of
  /// the dictionary before interning, so images sharing the original
  /// dictionary (the patch source) are never mutated under concurrent reads.
  ///
  /// Overrides are validated (and strings interned) in one sequential pass
  /// before any cell is written, so FailedPrecondition now leaves the image
  /// untouched; large patches are then applied in parallel per segment
  /// (disjoint row ranges, so the result is independent of thread count).
  Status ApplyOverrides(const TableCellOverrides& overrides);

  /// Fixed segment size for parallel kernels: ApplyOverrides, When-mask
  /// evaluation, and batch evaluation shard per segment, and a branch delta
  /// touches only its dirty segments.
  static constexpr size_t kSegmentRows = 65536;

  /// Number of kSegmentRows-sized segments covering the rows (0 when empty).
  size_t num_segments() const {
    return (num_rows_ + kSegmentRows - 1) / kSegmentRows;
  }

  /// Row range [begin, end) of segment `seg`.
  std::pair<size_t, size_t> SegmentBounds(size_t seg) const {
    const size_t begin = seg * kSegmentRows;
    return {begin, std::min(begin + kSegmentRows, num_rows_)};
  }

  /// Sorted ids of the segments containing at least one in-shape override
  /// cell (stale cells beyond the table shape are ignored, matching
  /// ApplyOverrides).
  std::vector<size_t> DirtySegments(const TableCellOverrides& overrides) const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  std::shared_ptr<Dictionary> dict_;
};

}  // namespace hyper

#endif  // HYPER_STORAGE_COLUMN_H_
