#ifndef HYPER_STORAGE_DATABASE_H_
#define HYPER_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hyper {

/// A named collection of relations — the paper's multi-relational database D.
///
/// The map is ordered so iteration (and thus block decomposition, ground-graph
/// construction, benchmarks) is deterministic.
class Database {
 public:
  Database() = default;

  /// Adds an empty relation with the given schema.
  Status AddTable(Schema schema);

  /// Adds a fully-built table.
  Status AddTable(Table table);

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Relation names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Total number of tuples across all relations.
  size_t TotalRows() const;

  /// Finds the unique relation containing attribute `attr`. Errors when the
  /// attribute is absent or ambiguous (the paper assumes update and output
  /// attributes appear in a single relation, §2).
  Result<std::string> RelationOfAttribute(const std::string& attr) const;

  /// Deep copy (used to materialize hypothetical worlds).
  Database Clone() const { return *this; }

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace hyper

#endif  // HYPER_STORAGE_DATABASE_H_
