#ifndef HYPER_STORAGE_DATABASE_H_
#define HYPER_STORAGE_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hyper {

/// A named collection of relations — the paper's multi-relational database D.
///
/// The map is ordered so iteration (and thus block decomposition, ground-graph
/// construction, benchmarks) is deterministic.
///
/// Relations are held through shared ownership so hypothetical worlds can be
/// structurally shared: `ShallowCopy` produces a Database whose tables alias
/// the original's storage, and `GetMutableTable` detaches (copies) a relation
/// before handing out mutable access — the scenario service's branch
/// materialization rides on this to serve many hypothetical worlds without
/// duplicating untouched relations.
class Database {
 public:
  Database() = default;

  /// Copying shares table storage (copy-on-write through GetMutableTable).
  /// Use Clone() for an eagerly independent deep copy.
  Database(const Database&) = default;
  Database& operator=(const Database&) = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Adds an empty relation with the given schema.
  Status AddTable(Schema schema);

  /// Adds a fully-built table.
  Status AddTable(Table table);

  /// Inserts or replaces a relation, sharing ownership with the caller. The
  /// database may later copy-on-write through this pointer, so callers must
  /// treat the pointee as frozen once handed over.
  Status PutTable(std::shared_ptr<Table> table);

  Result<const Table*> GetTable(const std::string& name) const;

  /// Shared-ownership read access: the returned handle stays valid (with the
  /// content it had at call time) even if this database later detaches the
  /// relation through copy-on-write or is destroyed — snapshot semantics for
  /// long-lived readers like prepared what-if plans.
  Result<std::shared_ptr<const Table>> GetTableShared(
      const std::string& name) const;

  /// Mutable access with copy-on-write: when the relation's storage is shared
  /// with another Database (via ShallowCopy or copy construction), it is
  /// detached first so mutation never leaks across copies. The returned
  /// pointer is invalidated by any subsequent copy/detach of this relation.
  Result<Table*> GetMutableTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Relation names in deterministic (sorted) order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Total number of tuples across all relations.
  size_t TotalRows() const;

  /// Finds the unique relation containing attribute `attr`. Errors when the
  /// attribute is absent or ambiguous (the paper assumes update and output
  /// attributes appear in a single relation, §2).
  Result<std::string> RelationOfAttribute(const std::string& attr) const;

  /// Eager deep copy: every relation's storage is duplicated immediately.
  /// Used to materialize hypothetical worlds whose tables are then mutated
  /// through raw pointers (see causal/scm.cc).
  Database Clone() const;

  /// Structural-sharing copy: O(#relations) handles, no row data copied.
  /// Safe because mutation goes through GetMutableTable's copy-on-write.
  Database ShallowCopy() const { return *this; }

  /// Order-independent-of-identity content hash over schemas and cell values:
  /// two databases with Equals-equal relations fingerprint identically. Used
  /// to scope plan-cache keys to a data snapshot.
  uint64_t ContentFingerprint() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace hyper

#endif  // HYPER_STORAGE_DATABASE_H_
