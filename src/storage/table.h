#ifndef HYPER_STORAGE_TABLE_H_
#define HYPER_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace hyper {

/// A row of values; position i corresponds to schema attribute i.
using Row = std::vector<Value>;

/// In-memory row store for one relation.
///
/// Rows are indexed by a dense tuple id (their position); the paper's tuple
/// identifiers p_i / r_j map onto these ids. The store is append-only except
/// for SetValue, which what-if machinery uses to materialize hypothetical
/// worlds on copies.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row after checking arity and (loosely) types: NULL is allowed
  /// anywhere, ints are accepted for double columns.
  Status Append(Row row);

  /// Unchecked append for generators on hot paths.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Pre-sizes the row vector; the million-row generators reserve up front
  /// so growth never copies the row headers repeatedly.
  void Reserve(size_t rows) { rows_.reserve(rows); }

  const Row& row(size_t tid) const { return rows_[tid]; }
  Row& mutable_row(size_t tid) { return rows_[tid]; }

  const Value& At(size_t tid, size_t attr) const { return rows_[tid][attr]; }
  void SetValue(size_t tid, size_t attr, Value v) {
    rows_[tid][attr] = std::move(v);
  }

  /// Column values by attribute name; errors if the attribute is unknown.
  Result<std::vector<Value>> Column(const std::string& name) const;

  /// The key of a row, as the ordered vector of key-attribute values.
  Row KeyOf(size_t tid) const;

  /// Renders at most `max_rows` rows for debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace hyper

#endif  // HYPER_STORAGE_TABLE_H_
