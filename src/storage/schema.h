#ifndef HYPER_STORAGE_SCHEMA_H_
#define HYPER_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace hyper {

/// Whether a hypothetical update may (directly or indirectly) change an
/// attribute's value (paper §2: mutable vs immutable attributes; keys are
/// always immutable).
enum class Mutability {
  kImmutable = 0,
  kMutable,
};

/// Declaration of one attribute of a relation.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kDouble;
  Mutability mutability = Mutability::kMutable;
};

/// Schema of one relation: ordered attributes plus the primary-key subset.
class Schema {
 public:
  Schema() = default;
  Schema(std::string relation_name, std::vector<AttributeDef> attributes,
         std::vector<std::string> key);

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  /// Index of `name`, or error when absent. Lookup is case-sensitive on
  /// attribute names (the SQL layer normalizes identifiers before calling).
  Result<size_t> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// Indices of the primary-key attributes, in declaration order of the key.
  const std::vector<size_t>& key_indices() const { return key_indices_; }
  bool IsKeyAttribute(size_t index) const;

  /// All mutable attribute indices.
  std::vector<size_t> MutableIndices() const;

  std::string ToString() const;

 private:
  std::string relation_name_;
  std::vector<AttributeDef> attributes_;
  std::vector<size_t> key_indices_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace hyper

#endif  // HYPER_STORAGE_SCHEMA_H_
