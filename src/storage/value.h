#ifndef HYPER_STORAGE_VALUE_H_
#define HYPER_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace hyper {

/// Runtime type of a Value / declared type of an attribute.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A dynamically-typed SQL value: NULL, boolean, 64-bit integer, double, or
/// string. Integers and doubles compare and combine numerically (SQL-style
/// coercion); strings only compare with strings; NULL compares equal only to
/// NULL (this library uses NULL as "absent", not three-valued logic — the
/// paper's model has no NULLs, they appear only in intermediate results).
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  ValueType type() const {
    switch (rep_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kBool;
      case 2: return ValueType::kInt;
      case 3: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return rep_.index() == 0; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble ||
           type() == ValueType::kBool;
  }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked in debug builds); use type() or the As* coercions first.
  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric coercion: bool -> 0/1, int -> double, double -> double.
  /// Fails on NULL and string.
  Result<double> AsDouble() const;

  /// Truthiness: bool as-is, numbers != 0. Fails on NULL and string.
  Result<bool> AsBool() const;

  /// Structural equality with numeric coercion between int/double/bool.
  bool Equals(const Value& other) const;

  /// Three-way comparison: -1, 0, +1. Numeric values compare numerically;
  /// strings lexicographically; NULL sorts before everything. Comparing a
  /// string with a number returns an error.
  Result<int> Compare(const Value& other) const;

  /// Hash consistent with Equals (numeric values hash by double value).
  size_t Hash() const;

  /// SQL-ish rendering: NULL, TRUE/FALSE, 42, 3.14, 'text'.
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor so Values can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash/equality for composite keys (vectors of values).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

}  // namespace hyper

#endif  // HYPER_STORAGE_VALUE_H_
