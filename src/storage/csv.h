#ifndef HYPER_STORAGE_CSV_H_
#define HYPER_STORAGE_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace hyper {

/// Options for loading a CSV into a Table.
struct CsvReadOptions {
  char delimiter = ',';
  /// Attributes to treat as the primary key (must exist in the header).
  std::vector<std::string> key;
  /// Attributes to mark immutable beyond the key (e.g. demographics).
  std::vector<std::string> immutable;
  /// When true (default), column types are inferred from the data: a column
  /// is INT if every non-empty field parses as an integer, DOUBLE if every
  /// field parses as a number, else STRING. Empty fields load as NULL.
  bool infer_types = true;
};

/// Parses one CSV line honoring double-quote quoting ("" escapes a quote).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

/// Reads a CSV stream with a header row into a Table named `relation`.
/// Deterministic type inference happens in a first pass over the data.
Result<Table> ReadCsv(std::istream& in, const std::string& relation,
                      const CsvReadOptions& options = {});

/// Convenience file wrapper.
Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& relation,
                          const CsvReadOptions& options = {});

/// Writes a table as CSV (header + rows). Strings are quoted when they
/// contain the delimiter, quotes, or newlines; NULL writes as empty.
Status WriteCsv(const Table& table, std::ostream& out, char delimiter = ',');
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace hyper

#endif  // HYPER_STORAGE_CSV_H_
