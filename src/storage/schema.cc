#include "storage/schema.h"

#include "common/logging.h"
#include "common/strings.h"

namespace hyper {

Schema::Schema(std::string relation_name,
               std::vector<AttributeDef> attributes,
               std::vector<std::string> key)
    : relation_name_(std::move(relation_name)),
      attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const bool inserted = index_.emplace(attributes_[i].name, i).second;
    HYPER_CHECK(inserted && "duplicate attribute name in schema");
  }
  for (const std::string& k : key) {
    auto it = index_.find(k);
    HYPER_CHECK(it != index_.end() && "key attribute not in schema");
    key_indices_.push_back(it->second);
    // Keys are always immutable (paper §2).
    attributes_[it->second].mutability = Mutability::kImmutable;
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("attribute '" + name + "' not in relation '" +
                            relation_name_ + "'");
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(name) > 0;
}

bool Schema::IsKeyAttribute(size_t index) const {
  for (size_t k : key_indices_) {
    if (k == index) return true;
  }
  return false;
}

std::vector<size_t> Schema::MutableIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].mutability == Mutability::kMutable) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(attributes_.size());
  for (size_t i = 0; i < attributes_.size(); ++i) {
    std::string col = attributes_[i].name;
    col += " ";
    col += ValueTypeName(attributes_[i].type);
    if (IsKeyAttribute(i)) col += " KEY";
    if (attributes_[i].mutability == Mutability::kImmutable &&
        !IsKeyAttribute(i)) {
      col += " IMMUTABLE";
    }
    cols.push_back(col);
  }
  return relation_name_ + "(" + Join(cols, ", ") + ")";
}

}  // namespace hyper
