#include "storage/column.h"

#include "common/strings.h"
#include "common/thread_pool.h"

namespace hyper {

int32_t Dictionary::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(strings_.size());
  strings_.push_back(s);
  index_.emplace(s, code);
  return code;
}

int32_t Dictionary::Find(const std::string& s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNullCode : it->second;
}

const char* ColumnKindName(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt64: return "int64";
    case ColumnKind::kDouble: return "double";
    case ColumnKind::kBool: return "bool";
    case ColumnKind::kCode: return "code";
  }
  return "?";
}

size_t Column::num_rows() const {
  switch (kind) {
    case ColumnKind::kInt64: return i64.size();
    case ColumnKind::kDouble: return f64.size();
    case ColumnKind::kBool: return b8.size();
    case ColumnKind::kCode: return codes.size();
  }
  return 0;
}

namespace {

/// Physical kind for a column given the value types it actually holds,
/// falling back to the declared type for all-NULL columns.
Result<ColumnKind> InferKind(const Table& table, size_t attr) {
  bool saw_string = false, saw_double = false, saw_int = false,
       saw_bool = false, saw_numeric = false;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    switch (table.At(r, attr).type()) {
      case ValueType::kNull: break;
      case ValueType::kBool: saw_bool = true; saw_numeric = true; break;
      case ValueType::kInt: saw_int = true; saw_numeric = true; break;
      case ValueType::kDouble: saw_double = true; saw_numeric = true; break;
      case ValueType::kString: saw_string = true; break;
    }
  }
  if (saw_string && saw_numeric) {
    return Status::InvalidArgument(
        "column '" + table.schema().attribute(attr).name +
        "' mixes strings with numeric values; cannot columnarize");
  }
  if (saw_string) return ColumnKind::kCode;
  if (saw_double) return ColumnKind::kDouble;
  if (saw_int && saw_bool) return ColumnKind::kDouble;
  if (saw_int) return ColumnKind::kInt64;
  if (saw_bool) return ColumnKind::kBool;
  // All NULL: shape after the declared type.
  switch (table.schema().attribute(attr).type) {
    case ValueType::kString: return ColumnKind::kCode;
    case ValueType::kInt: return ColumnKind::kInt64;
    case ValueType::kBool: return ColumnKind::kBool;
    default: return ColumnKind::kDouble;
  }
}

}  // namespace

Result<ColumnTable> ColumnTable::FromTable(const Table& table,
                                           std::shared_ptr<Dictionary> dict) {
  ColumnTable out;
  out.schema_ = table.schema();
  out.num_rows_ = table.num_rows();
  out.dict_ = dict != nullptr ? std::move(dict)
                              : std::make_shared<Dictionary>();
  const size_t n = table.num_rows();
  const size_t num_attrs = table.schema().num_attributes();
  out.columns_.resize(num_attrs);

  for (size_t a = 0; a < num_attrs; ++a) {
    Column& col = out.columns_[a];
    HYPER_ASSIGN_OR_RETURN(col.kind, InferKind(table, a));
    switch (col.kind) {
      case ColumnKind::kInt64: col.i64.resize(n); break;
      case ColumnKind::kDouble: col.f64.resize(n); break;
      case ColumnKind::kBool: col.b8.resize(n); break;
      case ColumnKind::kCode: col.codes.resize(n); break;
    }
    for (size_t r = 0; r < n; ++r) {
      const Value& v = table.At(r, a);
      if (v.is_null()) {
        if (col.nulls.empty()) col.nulls.resize(n, 0);
        col.nulls[r] = 1;
        switch (col.kind) {
          case ColumnKind::kInt64: col.i64[r] = 0; break;
          case ColumnKind::kDouble: col.f64[r] = 0.0; break;
          case ColumnKind::kBool: col.b8[r] = 0; break;
          case ColumnKind::kCode: col.codes[r] = Dictionary::kNullCode; break;
        }
        continue;
      }
      switch (col.kind) {
        case ColumnKind::kInt64:
          col.i64[r] = v.int_value();
          break;
        case ColumnKind::kDouble:
          col.f64[r] = v.AsDouble().value();
          break;
        case ColumnKind::kBool:
          col.b8[r] = v.bool_value() ? 1 : 0;
          break;
        case ColumnKind::kCode:
          col.codes[r] = out.dict_->Intern(v.string_value());
          break;
      }
    }
  }
  return out;
}

Value ColumnTable::GetValue(size_t row, size_t attr) const {
  const Column& col = columns_[attr];
  if (col.is_null(row)) return Value::Null();
  switch (col.kind) {
    case ColumnKind::kInt64: return Value::Int(col.i64[row]);
    case ColumnKind::kDouble: return Value::Double(col.f64[row]);
    case ColumnKind::kBool: return Value::Bool(col.b8[row] != 0);
    case ColumnKind::kCode: return Value::String(dict_->at(col.codes[row]));
  }
  return Value::Null();
}

Result<std::vector<double>> ColumnTable::ColumnAsDoubles(size_t attr) const {
  const Column& col = columns_[attr];
  if (col.kind == ColumnKind::kCode) {
    return Status::InvalidArgument(
        "cannot coerce string column '" + schema_.attribute(attr).name +
        "' to numbers");
  }
  if (col.has_nulls()) {
    return Status::InvalidArgument(
        "cannot coerce NULL to a number (column '" +
        schema_.attribute(attr).name + "')");
  }
  std::vector<double> out(num_rows_);
  switch (col.kind) {
    case ColumnKind::kInt64:
      for (size_t r = 0; r < num_rows_; ++r) {
        out[r] = static_cast<double>(col.i64[r]);
      }
      break;
    case ColumnKind::kDouble:
      out = col.f64;
      break;
    case ColumnKind::kBool:
      for (size_t r = 0; r < num_rows_; ++r) {
        out[r] = col.b8[r] != 0 ? 1.0 : 0.0;
      }
      break;
    case ColumnKind::kCode:
      break;  // handled above
  }
  return out;
}

std::vector<size_t> ColumnTable::DirtySegments(
    const TableCellOverrides& overrides) const {
  std::vector<uint8_t> dirty(num_segments(), 0);
  for (const auto& [attr, cells] : overrides) {
    if (attr >= columns_.size()) continue;
    for (const auto& [row, value] : cells) {
      (void)value;
      if (row >= num_rows_) continue;
      dirty[row / kSegmentRows] = 1;
    }
  }
  std::vector<size_t> out;
  for (size_t s = 0; s < dirty.size(); ++s) {
    if (dirty[s]) out.push_back(s);
  }
  return out;
}

Status ColumnTable::ApplyOverrides(const TableCellOverrides& overrides) {
  // Pass 1 (sequential): validate every in-shape cell and intern unseen
  // strings before anything is written, so a kind mismatch rejects the whole
  // patch with the image untouched. The dictionary is detached at most once:
  // the first unseen string pays one deep copy (so the patch source, which
  // shares dict_, is never mutated), every later one interns into the
  // already-private copy. After this pass the dictionary is read-only, so
  // the patch pass may Find() from any thread.
  struct PatchCell {
    size_t attr;
    size_t row;
    const Value* value;
    int32_t code;  // resolved dictionary code for kCode cells
  };
  std::vector<PatchCell> cells_flat;
  std::vector<uint8_t> needs_nulls(columns_.size(), 0);
  bool dict_private = false;
  for (const auto& [attr, cells] : overrides) {
    if (attr >= columns_.size()) continue;  // stale override beyond the shape
    Column& col = columns_[attr];
    for (const auto& [row, value] : cells) {
      if (row >= num_rows_) continue;  // stale override beyond the shape
      int32_t code = Dictionary::kNullCode;
      if (value.is_null()) {
        if (col.nulls.empty()) needs_nulls[attr] = 1;
      } else {
        bool fits = false;
        switch (col.kind) {
          case ColumnKind::kInt64:
            fits = value.type() == ValueType::kInt;
            break;
          case ColumnKind::kDouble:
            // kDouble already means "numeric, possibly mixed": FromTable
            // stores every numeric value through AsDouble here, so ints and
            // bools patch in without changing the inferred kind.
            fits = value.is_numeric();
            break;
          case ColumnKind::kBool:
            fits = value.type() == ValueType::kBool;
            break;
          case ColumnKind::kCode:
            fits = value.type() == ValueType::kString;
            if (fits) {
              code = dict_->Find(value.string_value());
              if (code == Dictionary::kNullCode) {
                if (!dict_private) {
                  dict_ = std::make_shared<Dictionary>(*dict_);
                  dict_private = true;
                }
                code = dict_->Intern(value.string_value());
              }
            }
            break;
        }
        if (!fits) {
          return Status::FailedPrecondition(
              "override value " + value.ToString() + " does not fit " +
              ColumnKindName(col.kind) + " column '" +
              schema_.attribute(attr).name + "'; rebuild from the table");
        }
      }
      cells_flat.push_back(PatchCell{attr, row, &value, code});
    }
  }
  for (size_t a = 0; a < columns_.size(); ++a) {
    if (needs_nulls[a]) columns_[a].nulls.resize(num_rows_, 0);
  }

  // Pass 2: patch. Cells in different segments touch disjoint rows, so large
  // patches shard per dirty segment — the written image is identical at any
  // thread count (each cell is written exactly once, by exactly one shard).
  const auto patch_one = [this](const PatchCell& cell) {
    Column& col = columns_[cell.attr];
    const Value& value = *cell.value;
    if (value.is_null()) {
      col.nulls[cell.row] = 1;
      switch (col.kind) {
        case ColumnKind::kInt64: col.i64[cell.row] = 0; break;
        case ColumnKind::kDouble: col.f64[cell.row] = 0.0; break;
        case ColumnKind::kBool: col.b8[cell.row] = 0; break;
        case ColumnKind::kCode:
          col.codes[cell.row] = Dictionary::kNullCode;
          break;
      }
      return;
    }
    switch (col.kind) {
      case ColumnKind::kInt64: col.i64[cell.row] = value.int_value(); break;
      case ColumnKind::kDouble:
        col.f64[cell.row] = value.AsDouble().value();
        break;
      case ColumnKind::kBool:
        col.b8[cell.row] = value.bool_value() ? 1 : 0;
        break;
      case ColumnKind::kCode: col.codes[cell.row] = cell.code; break;
    }
    if (!col.nulls.empty()) col.nulls[cell.row] = 0;
  };

  constexpr size_t kParallelPatchThreshold = 8192;
  if (cells_flat.size() < kParallelPatchThreshold || num_segments() <= 1) {
    for (const PatchCell& cell : cells_flat) patch_one(cell);
    return Status::OK();
  }
  std::vector<std::vector<PatchCell>> per_seg(num_segments());
  for (const PatchCell& cell : cells_flat) {
    per_seg[cell.row / kSegmentRows].push_back(cell);
  }
  std::vector<size_t> dirty;
  for (size_t s = 0; s < per_seg.size(); ++s) {
    if (!per_seg[s].empty()) dirty.push_back(s);
  }
  ThreadPool::Shared().ParallelFor(dirty.size(), [&](size_t d) {
    for (const PatchCell& cell : per_seg[dirty[d]]) patch_one(cell);
  });
  return Status::OK();
}

Table ColumnTable::ToTable() const {
  Table out(schema_);
  for (size_t r = 0; r < num_rows_; ++r) {
    Row row;
    row.reserve(columns_.size());
    for (size_t a = 0; a < columns_.size(); ++a) {
      row.push_back(GetValue(r, a));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace hyper
