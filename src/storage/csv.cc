#include "storage/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>

#include "common/strings.h"

namespace hyper {

namespace {

bool ParseInt(const std::string& text, int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<Table> ReadCsv(std::istream& in, const std::string& relation,
                      const CsvReadOptions& options) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV input is empty (no header row)");
  }
  const std::vector<std::string> header =
      SplitCsvLine(line, options.delimiter);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV header row is empty");
  }

  // Load raw fields.
  std::vector<std::vector<std::string>> rows;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (fields.size() != header.size()) {
      return Status::ParseError(StrFormat(
          "CSV line %zu has %zu fields, header has %zu", line_number,
          fields.size(), header.size()));
    }
    rows.push_back(std::move(fields));
  }

  // Infer per-column types.
  std::vector<ValueType> types(header.size(), ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (const auto& row : rows) {
        const std::string& field = row[c];
        if (field.empty()) continue;
        any_value = true;
        int64_t i;
        double d;
        if (!ParseInt(field, &i)) all_int = false;
        if (!ParseDouble(field, &d)) all_double = false;
        if (!all_double) break;
      }
      if (!any_value) {
        types[c] = ValueType::kString;
      } else if (all_int) {
        types[c] = ValueType::kInt;
      } else if (all_double) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  // Build the schema.
  auto contains = [](const std::vector<std::string>& list,
                     const std::string& name) {
    for (const std::string& item : list) {
      if (EqualsIgnoreCase(item, name)) return true;
    }
    return false;
  };
  std::vector<AttributeDef> attrs;
  for (size_t c = 0; c < header.size(); ++c) {
    AttributeDef def;
    def.name = header[c];
    def.type = types[c];
    def.mutability = contains(options.immutable, header[c])
                         ? Mutability::kImmutable
                         : Mutability::kMutable;
    attrs.push_back(std::move(def));
  }
  for (const std::string& k : options.key) {
    bool found = false;
    for (const auto& attr : attrs) {
      if (attr.name == k) found = true;
    }
    if (!found) {
      return Status::InvalidArgument("key attribute '" + k +
                                     "' not in CSV header");
    }
  }
  Table table(Schema(relation, std::move(attrs), options.key));

  // Convert and append.
  for (size_t r = 0; r < rows.size(); ++r) {
    Row row;
    row.reserve(header.size());
    for (size_t c = 0; c < header.size(); ++c) {
      const std::string& field = rows[r][c];
      if (field.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          int64_t i = 0;
          ParseInt(field, &i);
          row.push_back(Value::Int(i));
          break;
        }
        case ValueType::kDouble: {
          double d = 0;
          ParseDouble(field, &d);
          row.push_back(Value::Double(d));
          break;
        }
        default:
          row.push_back(Value::String(field));
      }
    }
    HYPER_RETURN_NOT_OK(table.Append(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& relation,
                          const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  return ReadCsv(in, relation, options);
}

namespace {

std::string EscapeCsvField(const std::string& text, char delimiter) {
  bool needs_quotes = false;
  for (char c : text) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Status WriteCsv(const Table& table, std::ostream& out, char delimiter) {
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << delimiter;
    out << EscapeCsvField(schema.attribute(c).name, delimiter);
  }
  out << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << delimiter;
      const Value& v = table.At(r, c);
      switch (v.type()) {
        case ValueType::kNull:
          break;  // empty field
        case ValueType::kString:
          out << EscapeCsvField(v.string_value(), delimiter);
          break;
        case ValueType::kBool:
          out << (v.bool_value() ? "1" : "0");
          break;
        case ValueType::kInt:
          out << v.int_value();
          break;
        case ValueType::kDouble:
          out << StrFormat("%.17g", v.double_value());
          break;
      }
    }
    out << "\n";
  }
  if (!out.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return WriteCsv(table, out, delimiter);
}

}  // namespace hyper
