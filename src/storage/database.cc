#include "storage/database.h"

namespace hyper {

Status Database::AddTable(Schema schema) {
  return AddTable(Table(std::move(schema)));
}

Status Database::AddTable(Table table) {
  const std::string name = table.schema().relation_name();
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return &it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table.num_rows();
  return total;
}

Result<std::string> Database::RelationOfAttribute(
    const std::string& attr) const {
  std::string found;
  for (const auto& [name, table] : tables_) {
    if (table.schema().Contains(attr)) {
      if (!found.empty()) {
        return Status::InvalidArgument("attribute '" + attr +
                                       "' is ambiguous: appears in '" + found +
                                       "' and '" + name + "'");
      }
      found = name;
    }
  }
  if (found.empty()) {
    return Status::NotFound("attribute '" + attr + "' not in any relation");
  }
  return found;
}

}  // namespace hyper
