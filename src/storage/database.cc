#include "storage/database.h"

#include "common/hash.h"

namespace hyper {

Status Database::AddTable(Schema schema) {
  return AddTable(Table(std::move(schema)));
}

Status Database::AddTable(Table table) {
  const std::string name = table.schema().relation_name();
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  tables_.emplace(name, std::make_shared<Table>(std::move(table)));
  return Status::OK();
}

Status Database::PutTable(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot put a null table");
  }
  const std::string name = table->schema().relation_name();
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<std::shared_ptr<const Table>> Database::GetTableShared(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return std::shared_ptr<const Table>(it->second);
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  if (it->second.use_count() > 1) {
    // Storage is shared with another Database: detach before mutating.
    it->second = std::make_shared<Table>(*it->second);
  }
  return it->second.get();
}

Database Database::Clone() const {
  Database copy;
  for (const auto& [name, table] : tables_) {
    copy.tables_.emplace(name, std::make_shared<Table>(*table));
  }
  return copy;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table->num_rows();
  return total;
}

Result<std::string> Database::RelationOfAttribute(
    const std::string& attr) const {
  std::string found;
  for (const auto& [name, table] : tables_) {
    if (table->schema().Contains(attr)) {
      if (!found.empty()) {
        return Status::InvalidArgument("attribute '" + attr +
                                       "' is ambiguous: appears in '" + found +
                                       "' and '" + name + "'");
      }
      found = name;
    }
  }
  if (found.empty()) {
    return Status::NotFound("attribute '" + attr + "' not in any relation");
  }
  return found;
}

uint64_t Database::ContentFingerprint() const {
  Fnv1a fnv;
  for (const auto& [name, table] : tables_) {
    fnv.MixString(name);
    const Schema& schema = table->schema();
    for (const AttributeDef& attr : schema.attributes()) {
      fnv.MixString(attr.name);
      fnv.Mix(static_cast<uint64_t>(attr.type));
    }
    fnv.Mix(table->num_rows());
    for (size_t r = 0; r < table->num_rows(); ++r) {
      for (size_t c = 0; c < schema.num_attributes(); ++c) {
        fnv.Mix(table->At(r, c).Hash());
      }
    }
  }
  return fnv.hash();
}

}  // namespace hyper
