#include "whatif/naive.h"

#include <unordered_map>

#include "relational/eval.h"
#include "relational/select.h"
#include "whatif/compile.h"

namespace hyper::whatif {

using relational::Env;
using relational::EvalExpr;
using relational::EvalPredicate;
using sql::AggKind;

Result<double> NaiveWhatIf(const Database& db, const causal::Scm& scm,
                           const sql::WhatIfStmt& stmt) {
  HYPER_ASSIGN_OR_RETURN(CompiledWhatIf q, CompileWhatIf(db, stmt));
  const Table& view = *q.view_info->view;
  const Schema& vschema = view.schema();
  const size_t n = view.num_rows();

  // S = tuples selected by When (pre-update values).
  std::vector<bool> in_s(n, true);
  if (q.when != nullptr) {
    for (size_t r = 0; r < n; ++r) {
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r));
      HYPER_ASSIGN_OR_RETURN(bool sel, EvalPredicate(*q.when, env));
      in_s[r] = sel;
    }
  }

  // Interventions on the base relation R.
  std::vector<causal::GroundIntervention> interventions;
  std::vector<size_t> update_cols;
  for (const UpdateSpec& u : q.updates) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, vschema.IndexOf(u.attribute));
    update_cols.push_back(idx);
  }
  for (size_t r = 0; r < n; ++r) {
    if (!in_s[r]) continue;
    for (size_t j = 0; j < q.updates.size(); ++j) {
      HYPER_ASSIGN_OR_RETURN(Value post,
                             q.updates[j].Apply(view.At(r, update_cols[j])));
      interventions.push_back(causal::GroundIntervention{
          causal::TupleId{q.view_info->update_relation,
                          q.view_info->view_row_to_tid[r]},
          q.updates[j].attribute, std::move(post)});
    }
  }

  HYPER_ASSIGN_OR_RETURN(causal::GroundScm ground,
                         causal::GroundScm::Build(&scm, &db));
  HYPER_ASSIGN_OR_RETURN(std::vector<causal::PossibleWorld> worlds,
                         ground.PostUpdateWorlds(interventions));

  // View key columns, for matching pre rows to world rows.
  std::vector<size_t> key_cols;
  for (const std::string& k : q.view_info->view_key_columns) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, vschema.IndexOf(k));
    key_cols.push_back(idx);
  }

  double expectation = 0.0;
  double qualified_mass = 0.0;  // probability mass with a non-empty Avg set
  for (const causal::PossibleWorld& world : worlds) {
    // Recompute the relevant view over the possible world.
    Table view_post;
    if (q.view_info->update_relation == vschema.relation_name() &&
        stmt.use.is_table()) {
      HYPER_ASSIGN_OR_RETURN(const Table* t,
                             world.db.GetTable(stmt.use.table));
      view_post = *t;
    } else {
      HYPER_ASSIGN_OR_RETURN(
          view_post, relational::ExecuteSelect(world.db, *stmt.use.select,
                                               vschema.relation_name()));
    }

    // Key -> post-view row index.
    std::unordered_map<std::vector<Value>, size_t, ValueVectorHash,
                       ValueVectorEq>
        post_index;
    for (size_t r = 0; r < view_post.num_rows(); ++r) {
      std::vector<Value> key;
      key.reserve(key_cols.size());
      for (size_t c : key_cols) key.push_back(view_post.At(r, c));
      post_index.emplace(std::move(key), r);
    }

    // Definition 4: aggregate over qualifying tuples in this world.
    double sum = 0.0;
    size_t count = 0;
    for (size_t r = 0; r < n; ++r) {
      std::vector<Value> key;
      key.reserve(key_cols.size());
      for (size_t c : key_cols) key.push_back(view.At(r, c));
      auto it = post_index.find(key);
      if (it == post_index.end()) {
        return Status::Internal("view row lost its key in a possible world");
      }
      Env env;
      env.Bind(vschema.relation_name(), &vschema, &view.row(r),
               &view_post.row(it->second));
      if (q.for_pred != nullptr) {
        HYPER_ASSIGN_OR_RETURN(bool qualifies,
                               EvalPredicate(*q.for_pred, env));
        if (!qualifies) continue;
      }
      ++count;
      if (q.output_value != nullptr) {
        HYPER_ASSIGN_OR_RETURN(Value v, EvalExpr(*q.output_value, env));
        HYPER_ASSIGN_OR_RETURN(double d, v.AsDouble());
        sum += d;
      }
    }

    double world_value = 0.0;
    switch (q.output_agg) {
      case AggKind::kCount:
        world_value = static_cast<double>(count);
        break;
      case AggKind::kSum:
        world_value = sum;
        break;
      case AggKind::kAvg:
        if (count == 0) continue;  // excluded from normalization
        world_value = sum / static_cast<double>(count);
        break;
      default:
        return Status::InvalidArgument("unsupported aggregate");
    }
    expectation += world.prob * world_value;
    qualified_mass += world.prob;
  }

  if (q.output_agg == AggKind::kAvg) {
    if (qualified_mass <= 0.0) {
      return Status::InvalidArgument(
          "Avg undefined: qualifying set empty in every possible world");
    }
    return expectation / qualified_mass;
  }
  return expectation;
}

}  // namespace hyper::whatif
