#include "whatif/compile.h"

#include "common/strings.h"
#include "relational/select.h"

namespace hyper::whatif {

using sql::AggKind;
using sql::ExprKind;
using sql::ExprPtr;

Result<Value> UpdateSpec::Apply(const Value& pre) const {
  switch (func) {
    case sql::UpdateFuncKind::kSet:
      return constant;
    case sql::UpdateFuncKind::kScale: {
      HYPER_ASSIGN_OR_RETURN(double p, pre.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double c, constant.AsDouble());
      return Value::Double(c * p);
    }
    case sql::UpdateFuncKind::kShift: {
      HYPER_ASSIGN_OR_RETURN(double p, pre.AsDouble());
      HYPER_ASSIGN_OR_RETURN(double c, constant.AsDouble());
      return Value::Double(c + p);
    }
  }
  return Status::Internal("unhandled update function kind");
}

namespace {

/// Wraps bare column references of a predicate in Post(...): Output-clause
/// predicates like Count(Credit = 'Good') read post-update values (§3.1).
ExprPtr PostifyBareRefs(const sql::Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) {
    return sql::MakePost(expr.Clone());
  }
  if (expr.kind == ExprKind::kPre || expr.kind == ExprKind::kPost) {
    return expr.Clone();  // explicit wrappers win
  }
  auto out = std::make_unique<sql::Expr>();
  out->kind = expr.kind;
  out->literal = expr.literal;
  out->qualifier = expr.qualifier;
  out->name = expr.name;
  out->op = expr.op;
  for (const auto& child : expr.children) {
    out->children.push_back(PostifyBareRefs(*child));
  }
  return out;
}

}  // namespace

Result<ViewInfo> BuildRelevantView(const Database& db,
                                   const sql::UseClause& use,
                                   const std::string& update_attr) {
  HYPER_ASSIGN_OR_RETURN(std::string relation,
                         db.RelationOfAttribute(update_attr));
  HYPER_ASSIGN_OR_RETURN(const Table* base, db.GetTable(relation));

  ViewInfo info;
  info.update_relation = relation;

  if (use.is_table()) {
    if (use.table != relation) {
      // `Use Review` with an update attribute from Product is a query error.
      HYPER_ASSIGN_OR_RETURN(const Table* named, db.GetTable(use.table));
      if (!named->schema().Contains(update_attr)) {
        return Status::InvalidArgument(
            "Use relation '" + use.table + "' does not contain the update "
            "attribute '" + update_attr + "'");
      }
    }
    // Zero-copy: the view aliases the relation's storage (copy-on-write at
    // the Database layer keeps this snapshot stable under later mutation).
    HYPER_ASSIGN_OR_RETURN(info.view, db.GetTableShared(relation));
    for (size_t k : base->schema().key_indices()) {
      info.view_key_columns.push_back(base->schema().attribute(k).name);
    }
    info.view_row_to_tid.resize(base->num_rows());
    for (size_t t = 0; t < base->num_rows(); ++t) {
      info.view_row_to_tid[t] = t;
    }
    for (const AttributeDef& attr : base->schema().attributes()) {
      info.causal_of_column.emplace(attr.name, attr.name);
    }
    return info;
  }

  // Embedded select: execute it, then map rows back to R by key.
  const std::string view_name =
      use.view_name.empty() ? "RelevantView" : use.view_name;
  HYPER_ASSIGN_OR_RETURN(Table executed,
                         relational::ExecuteSelect(db, *use.select, view_name));
  info.view = std::make_shared<Table>(std::move(executed));

  // Column -> causal attribute mapping from the select items.
  for (size_t i = 0; i < use.select->items.size(); ++i) {
    const sql::SelectItem& item = use.select->items[i];
    const std::string col = info.view->schema().attribute(i).name;
    if (item.expr != nullptr && item.expr->kind == ExprKind::kColumnRef) {
      // Plain column or aggregate of a column: both stand for the base
      // attribute in the (augmented) causal graph.
      info.causal_of_column.emplace(col, item.expr->name);
    }
  }

  // The view must expose R's key (the §3.1 contract: the Select and Group By
  // clauses include the key of R, so the view has one row per R tuple).
  std::vector<size_t> key_attr_indices;
  for (size_t k : base->schema().key_indices()) {
    const std::string& key_name = base->schema().attribute(k).name;
    if (!info.view->schema().Contains(key_name)) {
      return Status::InvalidArgument(
          "relevant view must include the key attribute '" + key_name +
          "' of relation '" + relation + "'");
    }
    info.view_key_columns.push_back(key_name);
    key_attr_indices.push_back(k);
  }
  if (!info.view->schema().Contains(update_attr)) {
    return Status::InvalidArgument(
        "relevant view must include the update attribute '" + update_attr +
        "'");
  }

  // Key -> tid index on R.
  std::unordered_map<std::vector<Value>, size_t, ValueVectorHash, ValueVectorEq>
      key_to_tid;
  key_to_tid.reserve(base->num_rows());
  for (size_t t = 0; t < base->num_rows(); ++t) {
    std::vector<Value> key;
    key.reserve(key_attr_indices.size());
    for (size_t k : key_attr_indices) key.push_back(base->At(t, k));
    key_to_tid.emplace(std::move(key), t);
  }

  std::vector<size_t> view_key_cols;
  for (const std::string& name : info.view_key_columns) {
    HYPER_ASSIGN_OR_RETURN(size_t idx, info.view->schema().IndexOf(name));
    view_key_cols.push_back(idx);
  }

  info.view_row_to_tid.resize(info.view->num_rows());
  std::vector<bool> seen(base->num_rows(), false);
  for (size_t r = 0; r < info.view->num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(view_key_cols.size());
    for (size_t c : view_key_cols) key.push_back(info.view->At(r, c));
    auto it = key_to_tid.find(key);
    if (it == key_to_tid.end()) {
      return Status::Internal(
          "relevant view row has a key not present in relation '" + relation +
          "'");
    }
    if (seen[it->second]) {
      return Status::InvalidArgument(
          "relevant view has multiple rows for one tuple of '" + relation +
          "'; group by the relation key (§3.1)");
    }
    seen[it->second] = true;
    info.view_row_to_tid[r] = it->second;
  }
  return info;
}

std::vector<UpdateSpec> SpecsOfStatement(const sql::WhatIfStmt& stmt) {
  std::vector<UpdateSpec> specs;
  specs.reserve(stmt.updates.size());
  for (const sql::UpdateClause& u : stmt.updates) {
    UpdateSpec spec;
    spec.attribute = u.attribute;
    spec.func = u.func;
    spec.constant = u.constant;
    specs.push_back(std::move(spec));
  }
  return specs;
}

Result<CompiledWhatIf> CompileWhatIf(const Database& db,
                                     const sql::WhatIfStmt& stmt) {
  if (stmt.updates.empty()) {
    return Status::InvalidArgument("what-if query requires an Update clause");
  }
  HYPER_ASSIGN_OR_RETURN(
      ViewInfo info,
      BuildRelevantView(db, stmt.use, stmt.updates[0].attribute));
  return CompileWhatIfAgainst(std::make_shared<const ViewInfo>(std::move(info)),
                              stmt);
}

Result<CompiledWhatIf> CompileWhatIfAgainst(
    std::shared_ptr<const ViewInfo> view_info, const sql::WhatIfStmt& stmt) {
  if (stmt.updates.empty()) {
    return Status::InvalidArgument("what-if query requires an Update clause");
  }

  CompiledWhatIf out;
  out.view_info = std::move(view_info);

  const Schema& vschema = out.view_info->view->schema();
  for (const sql::UpdateClause& u : stmt.updates) {
    if (!vschema.Contains(u.attribute)) {
      return Status::InvalidArgument("update attribute '" + u.attribute +
                                     "' not in the relevant view");
    }
    HYPER_ASSIGN_OR_RETURN(size_t idx, vschema.IndexOf(u.attribute));
    if (vschema.attribute(idx).mutability == Mutability::kImmutable) {
      return Status::InvalidArgument("update attribute '" + u.attribute +
                                     "' is immutable");
    }
    UpdateSpec spec;
    spec.attribute = u.attribute;
    spec.func = u.func;
    spec.constant = u.constant;
    out.updates.push_back(std::move(spec));
  }

  if (stmt.when != nullptr) {
    if (sql::ContainsPost(*stmt.when)) {
      return Status::InvalidArgument(
          "the When operator selects tuples by pre-update values only "
          "(§3.1); Post(...) is not allowed");
    }
    out.when = stmt.when->Clone();
  }
  if (stmt.for_pred != nullptr) {
    out.for_pred = stmt.for_pred->Clone();
  }

  out.output_agg = stmt.output.agg;
  if (stmt.output.inner == nullptr) {
    // Count(*).
    if (out.output_agg != AggKind::kCount) {
      return Status::InvalidArgument("only Count supports '*'");
    }
  } else if (out.output_agg == AggKind::kCount) {
    // Count(pred): fold the predicate (over post-update values) into For.
    ExprPtr pred = PostifyBareRefs(*stmt.output.inner);
    if (out.for_pred != nullptr) {
      out.for_pred = sql::MakeBinary(sql::BinaryOp::kAnd,
                                     std::move(out.for_pred), std::move(pred));
    } else {
      out.for_pred = std::move(pred);
    }
  } else {
    // Sum/Avg(value-expression), evaluated on post-update values.
    out.output_value = PostifyBareRefs(*stmt.output.inner);
  }

  // Sanity: every column referenced anywhere must exist in the view.
  std::vector<std::string> referenced;
  if (out.when) sql::CollectColumnRefs(*out.when, &referenced);
  if (out.for_pred) sql::CollectColumnRefs(*out.for_pred, &referenced);
  if (out.output_value) sql::CollectColumnRefs(*out.output_value, &referenced);
  for (const std::string& col : referenced) {
    if (!vschema.Contains(col)) {
      return Status::InvalidArgument("attribute '" + col +
                                     "' not in the relevant view");
    }
  }
  return out;
}

}  // namespace hyper::whatif
