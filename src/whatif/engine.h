#ifndef HYPER_WHATIF_ENGINE_H_
#define HYPER_WHATIF_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "causal/graph.h"
#include "common/status.h"
#include "learn/estimator.h"
#include "learn/forest.h"
#include "sql/ast.h"
#include "storage/database.h"
#include "whatif/compile.h"

namespace hyper::whatif {

/// How the engine picks the adjustment set C of Equation (1).
enum class BackdoorMode {
  /// Minimal backdoor set from the causal graph (§A.2 greedy). This is
  /// "HypeR" in the paper's experiments.
  kGraph = 0,
  /// No background knowledge: every attribute joins the adjustment set
  /// ("HypeR-NB", §2.2 canonical model).
  kAllAttributes,
  /// No adjustment at all: condition on the update attribute only. This is
  /// the correlational "Indep" baseline of §5.1 — it ignores confounding
  /// and cross-attribute dependencies.
  kUpdateOnly,
};

const char* BackdoorModeName(BackdoorMode mode);

struct WhatIfOptions {
  learn::EstimatorKind estimator = learn::EstimatorKind::kForest;
  learn::ForestOptions forest = {};
  /// Shrinkage pseudo-count for the frequency estimator (0 = exact
  /// empirical conditionals; ~5-20 stabilizes sparse cells when continuous
  /// attributes are bucketized).
  double frequency_smoothing = 0.0;
  BackdoorMode backdoor = BackdoorMode::kGraph;
  /// Training-sample cap for the estimators; 0 = use every view row
  /// ("HypeR"), >0 = "HypeR-sampled" with this many rows (§5.2).
  size_t sample_size = 0;
  /// Compute per block of the block-independent decomposition (§3.3). Off
  /// switches to a single block — same value, used by the ablation bench.
  bool use_blocks = true;
  uint64_t seed = 7;
  /// Route the tuple scans through the columnar substrate with compiled
  /// expressions (default). Off = the legacy row-store interpreter path,
  /// kept for A/B benchmarking; both paths return identical answers.
  bool use_columnar = true;
  /// Worker threads for the independent-block loop (columnar path only):
  /// 1 = single-threaded, anything else = the process-wide hardware-sized
  /// pool (0 is the default). Blocks are evaluated on separate accumulators
  /// and merged in block order, so the answer is bit-for-bit identical for
  /// every setting. Also the forest trainer's thread budget (unless
  /// forest.num_threads overrides it).
  size_t num_threads = 0;
  /// Batched estimator inference in Evaluate (default): affected tuples are
  /// grouped per residual pattern and predicted with one PredictBatch call
  /// per estimator instead of a virtual Predict per tuple. Off = the legacy
  /// per-row prediction loop, kept for A/B benchmarking; both paths return
  /// bit-for-bit identical answers.
  bool batched_inference = true;
};

struct WhatIfResult {
  /// valwhatif(Q, D) — Definition 5.
  double value = 0.0;
  size_t view_rows = 0;
  size_t updated_rows = 0;   // |S|
  size_t num_blocks = 1;
  size_t num_patterns = 0;   // distinct post-residual formulas this query used
  std::vector<std::string> backdoor;  // adjustment set (causal names)
  /// Estimator training actually incurred by this call (0 when every needed
  /// pattern estimator was already trained on the shared plan).
  double train_seconds = 0.0;
  double total_seconds = 0.0;
  /// Plan construction (view + backdoor + encode + training matrix) charged
  /// to this call; ~0 when the plan came from a cache.
  double prepare_seconds = 0.0;
  /// Per-intervention evaluation time (includes lazy pattern training).
  double eval_seconds = 0.0;
  /// True when a ScenarioService / PlanCache served the prepared plan.
  bool plan_cache_hit = false;
  /// Pattern estimators this query needed that were already trained on the
  /// shared plan (by an earlier query or batch sibling).
  size_t pattern_cache_hits = 0;
};

/// A prepared what-if plan: the relevant view (columnar image), the backdoor
/// adjustment set, fitted encoders, the training matrix, the compiled hole
/// plan for residual folding, and a lazily-grown cache of trained pattern
/// estimators. Preparation is the expensive, intervention-independent part
/// of a what-if run; `WhatIfEngine::Evaluate` answers any intervention over
/// the same (view, update attributes, When, For, Output) shape against it.
///
/// Concurrency contract (audited for the parallel how-to scorer and the
/// scenario service, which share one PreparedWhatIf across threads): a
/// prepared plan is immutable after Prepare() except for three lazily-grown
/// caches — the residual-entry list, the hole-value -> entry map, and the
/// pattern-estimator map — all guarded by one internal mutex. Concurrent
/// Evaluate calls are safe:
///   - entries are unique_ptr-owned (stable addresses across list growth)
///     and individually immutable once published under the lock;
///   - a pattern estimator is trained by exactly the one caller that first
///     needs it, under the lock, so concurrent evaluations never duplicate
///     training (they observe the trained estimator as a cache hit);
///   - the pattern map is node-based, so estimator addresses survive rehash
///     and evaluations snapshot raw pointers, then predict lock-free
///     (Predict/PredictBatch are const and touch no shared mutable state).
/// Trained estimators are a pure function of (training matrix, pattern,
/// options), so answers are bit-for-bit identical to fresh single-query
/// runs no matter which caller happened to train first.
class PreparedWhatIf {
 public:
  ~PreparedWhatIf();
  PreparedWhatIf(const PreparedWhatIf&) = delete;
  PreparedWhatIf& operator=(const PreparedWhatIf&) = delete;

  /// Update attributes (in statement order) an intervention must target.
  const std::vector<std::string>& update_attributes() const {
    return update_attributes_;
  }
  const std::vector<std::string>& backdoor() const { return backdoor_; }
  size_t view_rows() const { return view_rows_; }
  size_t updated_rows() const { return updated_rows_; }
  double prepare_seconds() const { return prepare_seconds_; }

  /// Opaque internals (defined in engine.cc).
  struct Impl;

 private:
  friend class WhatIfEngine;
  PreparedWhatIf();

  std::unique_ptr<Impl> impl_;
  std::vector<std::string> update_attributes_;
  std::vector<std::string> backdoor_;
  size_t view_rows_ = 0;
  size_t updated_rows_ = 0;
  double prepare_seconds_ = 0.0;
};

/// The HypeR what-if engine (§3.3): builds the relevant view, interprets the
/// update as an intervention, and estimates the post-update aggregate with
/// the backdoor-adjusted estimator, decomposed over independent blocks.
class WhatIfEngine {
 public:
  /// `graph` may be null: the engine then behaves as if BackdoorMode were
  /// kAllAttributes (no background knowledge).
  WhatIfEngine(const Database* db, const causal::CausalGraph* graph,
               WhatIfOptions options = {});

  /// Runs a parsed what-if statement. On the columnar path this is exactly
  /// Prepare + Evaluate, so cached plans reproduce Run bit-for-bit.
  Result<WhatIfResult> Run(const sql::WhatIfStmt& stmt) const;

  /// Parses and runs query text (must be a what-if statement).
  Result<WhatIfResult> RunSql(const std::string& text) const;

  /// Builds the intervention-independent plan for `stmt`: relevant view,
  /// adjustment set, encoders, training matrix, residual hole plan. The
  /// update constants/functions of `stmt` are ignored — only the update
  /// attribute list matters. Returns Unimplemented when the statement needs
  /// the legacy row path (callers should fall back to Run).
  Result<std::shared_ptr<const PreparedWhatIf>> Prepare(
      const sql::WhatIfStmt& stmt) const;

  /// Evaluates one intervention against a prepared plan. `updates` must
  /// target the plan's update attributes in order; constants and update
  /// functions are free. Thread-safe; answers are bit-for-bit identical to
  /// a fresh Run of the corresponding statement.
  Result<WhatIfResult> Evaluate(const PreparedWhatIf& plan,
                                const std::vector<UpdateSpec>& updates) const;

  /// Evaluates N interventions against one prepared plan in a single sharded
  /// pass over the worker pool. results[i] corresponds to interventions[i]
  /// and is identical to Evaluate(plan, interventions[i]).
  ///
  /// Error handling: with `statuses == nullptr` the first failing
  /// intervention (in index order) fails the whole call. With a non-null
  /// `statuses`, the call succeeds, statuses->at(i) carries each
  /// intervention's own status (e.g. Avg over a zero-probability qualifying
  /// set), and results[i] is meaningful iff statuses->at(i).ok() — one bad
  /// intervention no longer aborts the rest of a sweep.
  Result<std::vector<WhatIfResult>> EvaluateBatch(
      const PreparedWhatIf& plan,
      const std::vector<std::vector<UpdateSpec>>& interventions,
      std::vector<Status>* statuses = nullptr) const;

  /// Human-readable execution plan: relevant-view shape, When selectivity,
  /// update interpretation, target attributes and the adjustment set the
  /// configured backdoor mode would use. No estimators are trained.
  Result<std::string> Explain(const sql::WhatIfStmt& stmt) const;
  Result<std::string> ExplainSql(const std::string& text) const;

  const WhatIfOptions& options() const { return options_; }

 private:
  /// Legacy interpreter: row store + per-row Env lookups.
  Result<WhatIfResult> RunRows(const sql::WhatIfStmt& stmt) const;

  const Database* db_;
  const causal::CausalGraph* graph_;  // nullable
  WhatIfOptions options_;
};

}  // namespace hyper::whatif

#endif  // HYPER_WHATIF_ENGINE_H_
